"""Legacy setup shim.

The execution environment has no ``wheel`` package (offline), so PEP-660
editable installs (``pip install -e .``) cannot build the editable wheel.
``python setup.py develop`` provides the equivalent development install; all
project metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
