#!/usr/bin/env python
"""Community-core analysis of a synthetic social network.

K-core decomposition is a classic social-network primitive ("K-Core has
been used in a variety of fields including the social sciences" — §II-A2):
peeling away low-engagement users exposes the densely connected core of a
community.

This example builds a preferential-attachment "social graph" (celebrities
emerge as hubs), runs the distributed asynchronous k-core for a ladder of
k values, and reports how the network contracts to its core — plus which
fraction of each k-core the top hubs represent.

Run:  python examples/social_network_kcore.py
"""

from __future__ import annotations

import numpy as np

from repro import DistributedGraph, EdgeList, kcore, preferential_attachment_edges
from repro.generators.permute import permute_labels


def main() -> None:
    n, attach = 8192, 6
    print(f"Building a preferential-attachment social network: "
          f"{n} users, {attach} friendships per newcomer")
    src, dst = preferential_attachment_edges(n, attach, seed=7)
    src, dst = permute_labels(src, dst, n, seed=8)
    edges = EdgeList.from_arrays(src, dst, n).simple_undirected()

    degrees = edges.out_degrees()
    hubs = np.argsort(degrees)[::-1][:5]
    print("Top-5 'celebrities' by degree:",
          ", ".join(f"user {int(h)} ({int(degrees[h])})" for h in hubs))

    graph = DistributedGraph.build(edges, num_partitions=16)

    print(f"\n{'k':>4}  {'core size':>10}  {'% of users':>10}  "
          f"{'hubs in core':>12}  {'sim ms':>8}")
    prev_size = n
    for k in (2, 3, 4, 6, 8, 12, 16):
        result = kcore(graph, k, topology="2d")
        alive = result.data.alive
        size = result.data.core_size
        hubs_in = int(np.count_nonzero(alive[hubs]))
        print(f"{k:>4}  {size:>10}  {100 * size / n:>9.1f}%  "
              f"{hubs_in:>12}  {result.time_us / 1e3:>8.2f}")
        assert size <= prev_size  # cores are nested
        prev_size = size
        if size == 0:
            break

    print("\nThe k-core ladder is nested: each core is a subgraph of the "
          "previous one, and the hubs persist the longest — the expected "
          "social-network signature.")


if __name__ == "__main__":
    main()
