#!/usr/bin/env python
"""Writing your own asynchronous traversal: a worked tutorial.

The paper's framework is generic: "traversal algorithms are created using a
visitor abstraction, which allows an algorithm designer to define
vertex-centric procedures to execute on traversed vertices" (§IV).  This
example builds a new algorithm from scratch — **k-hop neighborhood size
estimation** (how many vertices lie within k hops of a set of seed
vertices), a primitive behind influence/blast-radius queries — and runs it
on the distributed engine with ghosts, routing and termination detection
all working unchanged.

The recipe (mirroring Table I of the paper):

1. a *state* class: the per-vertex data (here: best known hop distance);
2. a *visitor* class with ``pre_visit`` (monotonic improve-or-drop filter,
   so ghosts are safe), ``visit`` (expand while under the hop budget), and
   ``priority`` (closer visitors first);
3. an :class:`~repro.AsyncAlgorithm` subclass wiring state construction,
   seeding and result gathering.

Run:  python examples/custom_algorithm.py
"""

from __future__ import annotations

import numpy as np

from repro import AsyncAlgorithm, DistributedGraph, EdgeList, Visitor, run_traversal
from repro.generators.rmat import rmat_edges

_INF = float("inf")


class HopState:
    """Per-vertex state: smallest hop count at which any seed reached us."""

    __slots__ = ("hops",)

    def __init__(self) -> None:
        self.hops = _INF


class HopVisitor(Visitor):
    """Bounded BFS wavefront visitor."""

    __slots__ = ("hops", "budget")

    def __init__(self, vertex: int, hops: int, budget: int) -> None:
        super().__init__(vertex)
        self.hops = hops
        self.budget = budget

    @property
    def priority(self) -> int:
        return self.hops  # closer wavefronts first

    def pre_visit(self, state: HopState) -> bool:
        # Monotonic improve-or-drop: safe as a ghost filter, safe on
        # replicas, and kills duplicate work exactly like BFS's pre_visit.
        if self.hops < state.hops:
            state.hops = self.hops
            return True
        return False

    def visit(self, ctx) -> None:
        if self.hops >= self.budget:
            return  # the frontier stops expanding at the hop budget
        if self.hops == ctx.state_of(self.vertex).hops:
            nxt = self.hops + 1
            for w in ctx.out_edges(self.vertex):
                ctx.push(HopVisitor(int(w), nxt, self.budget))


class KHopNeighborhood(AsyncAlgorithm):
    """Counts vertices within ``k`` hops of any seed."""

    name = "k-hop-neighborhood"
    uses_ghosts = True  # pre_visit is a monotonic filter
    visitor_bytes = 24

    def __init__(self, seeds: list[int], k: int) -> None:
        self.seeds = list(seeds)
        self.k = k

    def make_state(self, vertex: int, degree: int, role: str) -> HopState:
        return HopState()

    def initial_visitors(self, graph, rank):
        for seed in self.seeds:
            if graph.min_owner(seed) == rank:
                yield HopVisitor(seed, 0, self.k)

    def finalize(self, graph, states_per_rank):
        hops = np.full(graph.num_vertices, np.inf)
        for v, state in self.master_states(graph, states_per_rank):
            hops[v] = state.hops
        return hops


def main() -> None:
    scale = 11
    src, dst = rmat_edges(scale, 16 << scale, seed=21)
    edges = (
        EdgeList.from_arrays(src, dst, 1 << scale)
        .permuted(seed=22)
        .simple_undirected()
    )
    graph = DistributedGraph.build(edges, num_partitions=16, num_ghosts=64)

    degrees = edges.out_degrees()
    seeds = [int(np.argmax(degrees)), 7, 1234]
    n = graph.num_vertices
    print(f"RMAT scale {scale} on 16 ranks; seeds = {seeds}")
    print(f"\n{'k':>3}  {'within k hops':>13}  {'% of graph':>10}  "
          f"{'visitors':>9}  {'ghost-filtered':>14}")
    prev = 0
    for k in range(0, 6):
        result = run_traversal(graph, KHopNeighborhood(seeds, k), topology="2d")
        hops = result.data
        covered = int(np.count_nonzero(np.isfinite(hops)))
        print(f"{k:>3}  {covered:>13}  {100 * covered / n:>9.1f}%  "
              f"{result.stats.total_visits:>9}  "
              f"{result.stats.total_ghost_filtered:>14}")
        assert covered >= prev  # neighbourhoods are nested
        prev = covered

    print("\nThe same ~60-line recipe (state + visitor + algorithm) gets "
          "edge-list partitioning, replica forwarding, ghost filtering, "
          "routed aggregation and quiescence detection for free — the "
          "framework reuse the paper's visitor abstraction is about.")


if __name__ == "__main__":
    main()
