#!/usr/bin/env python
"""Clustering-coefficient estimation with distributed triangle counting.

"Triangle counting is a primitive for calculating important metrics such as
clustering coefficient" (§II-A3).  This example compares the global
clustering coefficient of a small-world graph as it is rewired toward
randomness — the classic Watts–Strogatz experiment — using the paper's
asynchronous triangle-counting visitor on 16 simulated ranks.

Run:  python examples/clustering_coefficient.py
"""

from __future__ import annotations

import numpy as np

from repro import DistributedGraph, EdgeList, small_world_edges, triangle_count


def global_clustering(edges: EdgeList, triangles: int) -> float:
    """C = 3 * triangles / wedges, with wedges = sum(d * (d - 1) / 2)."""
    d = edges.out_degrees().astype(np.float64)
    wedges = float((d * (d - 1) / 2).sum())
    return 3.0 * triangles / wedges if wedges else 0.0


def main() -> None:
    n, degree = 4096, 8
    print(f"Watts–Strogatz sweep: {n} vertices, degree {degree}")
    print(f"\n{'rewire':>8}  {'triangles':>10}  {'clustering':>10}  "
          f"{'visitors':>10}  {'sim ms':>8}")

    previous = None
    for rewire in (0.0, 0.01, 0.05, 0.2, 0.5, 1.0):
        src, dst = small_world_edges(n, degree, rewire_probability=rewire, seed=11)
        edges = EdgeList.from_arrays(src, dst, n).permuted(seed=12).simple_undirected()
        graph = DistributedGraph.build(edges, num_partitions=16)
        result = triangle_count(graph, topology="2d")
        c = global_clustering(edges, result.data.total)
        print(f"{rewire:>8.2f}  {result.data.total:>10}  {c:>10.4f}  "
              f"{result.stats.total_visits:>10}  {result.time_us / 1e3:>8.2f}")
        if previous is not None and rewire >= 0.05:
            assert c <= previous + 1e-9, "clustering should decay with rewiring"
        previous = c

    print("\nAs rewiring destroys the lattice neighbourhoods, the "
          "clustering coefficient collapses toward the random-graph value — "
          "the signature Watts–Strogatz curve, measured here by the "
          "distributed asynchronous triangle counter.")


if __name__ == "__main__":
    main()
