#!/usr/bin/env python
"""Tuning the ghost-vertex budget (the Figure 13 experiment, hands-on).

Ghost vertices are local, never-synchronised replicas of high in-degree
hubs that filter redundant BFS visitors before they reach the network
(§III-A2, §IV-B).  This example sweeps the per-partition ghost budget on a
hub-heavy RMAT graph and shows where the returns diminish — the knob a
real deployment would tune, with the paper's own default (256) marked.

Run:  python examples/ghost_tuning.py
"""

from __future__ import annotations

from repro import DistributedGraph, EdgeList, bgp_intrepid, rmat_edges
from repro.bench.harness import mean_over_sources


def main() -> None:
    scale, p = 12, 16
    src, dst = rmat_edges(scale, 16 << scale, seed=5)
    edges = EdgeList.from_arrays(src, dst, 1 << scale).permuted(seed=6).simple_undirected()
    machine = bgp_intrepid()
    print(f"RMAT scale {scale}, {p} ranks, BG/P profile, 2D routing")

    print(f"\n{'ghosts':>7}  {'sim ms':>8}  {'improvement':>11}  "
          f"{'filtered':>9}  {'sent':>9}")
    baseline_ms = None
    for ghosts in (0, 1, 4, 16, 64, 256, 512):
        graph = DistributedGraph.build(edges, p, num_ghosts=ghosts)
        row = mean_over_sources(edges, graph, num_sources=2, seed=0,
                                machine=machine, topology="2d")
        ms = row["time_us"] / 1e3
        if baseline_ms is None:
            baseline_ms = ms
        marker = "  <- paper default" if ghosts == 256 else ""
        print(f"{ghosts:>7}  {ms:>8.2f}  {100 * (baseline_ms - ms) / baseline_ms:>10.1f}%  "
              f"{row['ghost_filtered']:>9.0f}  {row['visitors_sent']:>9.0f}{marker}")

    print("\nEach ghost is one filter slot per partition: the first few "
          "catch the biggest hubs (steep gains), the rest catch ever "
          "smaller ones (diminishing returns) — exactly the Figure 13 "
          "shape.  'The number of ghosts required for scale-free graphs is "
          "small, because the number of high-degree vertices is small.'")


if __name__ == "__main__":
    main()
