#!/usr/bin/env python
"""External-memory BFS: traversing a graph that outgrows "DRAM".

Reproduces the paper's headline scenario (Figure 9 / Table II) at laptop
scale: a fixed simulated cluster whose per-rank page cache stands in for
node DRAM, traversing graphs that grow from cache-resident to 16x larger,
with the overflow living on a simulated Fusion-io NAND-Flash device behind
the user-space page cache of Section II-B.

Run:  python examples/external_memory_bfs.py
"""

from __future__ import annotations

from repro import DistributedGraph, EdgeList, hyperion_dit, rmat_edges
from repro.analysis.teps import mteps
from repro.bench.harness import make_page_caches, run_bfs_trial


def build(scale: int, p: int) -> tuple[EdgeList, DistributedGraph]:
    src, dst = rmat_edges(scale, 16 << scale, seed=3)
    edges = EdgeList.from_arrays(src, dst, 1 << scale).permuted(seed=4).simple_undirected()
    return edges, DistributedGraph.build(edges, p, num_ghosts=64)


def main() -> None:
    p = 8
    base_scale = 9

    # size the per-rank cache ("DRAM") to the base graph's working set
    base_edges, base_graph = build(base_scale, p)
    dram_bytes = int(max(part.csr.nbytes() for part in base_graph.partitions) * 1.25)
    machine = hyperion_dit("nvram", cache_bytes_per_rank=dram_bytes, page_size=256)
    print(f"Simulated cluster: {p} ranks, {dram_bytes // 1024} KiB 'DRAM' "
          f"page cache per rank, Fusion-io NAND Flash behind it")

    print(f"\n{'data':>6}  {'edges':>8}  {'hit rate':>8}  {'MTEPS':>8}  "
          f"{'vs 1x':>6}")
    base_mteps = None
    for factor in (1, 2, 4, 8, 16):
        scale = base_scale + factor.bit_length() - 1
        edges, graph = build(scale, p)
        caches = make_page_caches(machine, p)
        run_bfs_trial(edges, graph, machine=machine, topology="2d",
                      page_caches=caches, seed=99)  # warm-up pass
        row = run_bfs_trial(edges, graph, machine=machine, topology="2d",
                            page_caches=caches, seed=1)
        rate = row["cache_hit_rate"]
        m = mteps(row["traversed_edges"], row["time_us"])
        if base_mteps is None:
            base_mteps = m
        print(f"{factor:>5}x  {edges.num_edges:>8}  {rate:>8.3f}  "
              f"{m:>8.2f}  {m / base_mteps:>6.2f}")

    print("\nThe 1x graph runs from the warm page cache at DRAM speed; as "
          "the data outgrows it, the hit rate falls and TEPS degrades "
          "gracefully instead of collapsing — the asynchronous traversal "
          "keeps enough concurrent I/O in flight to hide flash latency "
          "(the paper's 32x / 39% result, Figure 9).")


if __name__ == "__main__":
    main()
