#!/usr/bin/env python
"""Web-style ranking pipeline: clean, partition, rank, cross-check.

Combines several of the library's tools the way a practitioner would on a
crawled web-ish graph:

1. generate a scale-free "web" (RMAT) and extract its giant component
   (rank computations are only meaningful inside one component),
2. characterise the degree distribution (power-law exponent, tail mass),
3. run asynchronous residual-push PageRank on 16 simulated ranks,
4. cross-check the ranking against in/out-degree — PageRank should be
   correlated with, but not identical to, raw degree.

Run:  python examples/web_ranking.py
"""

from __future__ import annotations

import numpy as np

from repro import DistributedGraph, EdgeList, pagerank, rmat_edges
from repro.analysis.degree import fit_power_law, tail_heaviness
from repro.graph.subgraph import largest_component


def main() -> None:
    scale = 10
    src, dst = rmat_edges(scale, 16 << scale, seed=33)
    raw = (
        EdgeList.from_arrays(src, dst, 1 << scale)
        .permuted(seed=34)
        .simple_undirected()
    )
    giant = largest_component(raw)
    edges = giant.edges
    print(f"Raw graph: {raw.num_vertices} vertices; giant component: "
          f"{edges.num_vertices} vertices, {edges.num_edges} CSR entries")

    degrees = edges.out_degrees()
    fit = fit_power_law(degrees, d_min=8)
    print(f"Degree tail: {fit}; top 1% of vertices hold "
          f"{100 * tail_heaviness(degrees):.1f}% of all edge endpoints")

    graph = DistributedGraph.build(edges, num_partitions=16, num_ghosts=64)
    result = pagerank(graph, threshold=3e-4, topology="2d")
    scores = result.data.scores
    print(f"\nPageRank converged: {result.stats.total_visits} visitor "
          f"executions, {result.time_us / 1e3:.1f} ms simulated")

    print(f"\n{'rank':>4}  {'vertex':>8}  {'score':>9}  {'degree':>7}  "
          f"(original id)")
    for i, (v, score) in enumerate(result.data.top(8), 1):
        print(f"{i:>4}  {v:>8}  {score:>9.5f}  {int(degrees[v]):>7}  "
              f"({int(giant.to_original(np.array([v]))[0])})")

    # sanity: on an *undirected* graph PageRank is provably close to
    # degree-proportional (exactly proportional at damping -> 1), so a very
    # high correlation is the expected signature — and a good end-to-end
    # check that the asynchronous push converged to the right fixed point.
    order_pr = np.argsort(scores)[::-1]
    order_deg = np.argsort(degrees)[::-1]
    top100_overlap = len(set(order_pr[:100]) & set(order_deg[:100]))
    corr = np.corrcoef(scores, degrees)[0, 1]
    print(f"\nPageRank-vs-degree: correlation {corr:.2f}, top-100 overlap "
          f"{top100_overlap}/100 — near-degree-proportional, the expected "
          "fixed point for an undirected graph (directed web graphs are "
          "where the orderings diverge).")


if __name__ == "__main__":
    main()
