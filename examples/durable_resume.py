#!/usr/bin/env python
"""Durable checkpoint/resume: a traversal that survives the host dying.

Walks the INTERNALS section 13 contract end to end at laptop scale:

1. run BFS with durable epoch checkpoints (``durable_dir``), keeping the
   stats of the uninterrupted run as the baseline;
2. simulate a host crash by re-running the same traversal and letting
   the durability fault injector corrupt one committed epoch, then
   resume: the loader falls back to the previous valid epoch and the
   resumed run still lands bit-identical;
3. diff the resumed run against the baseline — results, every stats
   field outside the ``durable_*`` family, and the order digest.

Run:  python examples/durable_resume.py
"""

from __future__ import annotations

import dataclasses
import tempfile

import numpy as np

from repro.algorithms.bfs import bfs
from repro.bench.harness import build_rmat_graph, pick_bfs_source
from repro.runtime.durability import DurableFaultPlan
from repro.runtime.trace import DURABILITY_STATS_FIELDS


def comparable(stats) -> dict:
    out = dataclasses.asdict(stats)
    out.pop("timeline", None)
    for field in DURABILITY_STATS_FIELDS:
        out.pop(field, None)
    return out


def main() -> None:
    edges, graph = build_rmat_graph(10, num_partitions=8, num_ghosts=128,
                                    seed=1)
    source = pick_bfs_source(edges, seed=1)

    with tempfile.TemporaryDirectory(prefix="durable_demo_") as tmp:
        # 1. The uninterrupted durable run: an epoch every 4 ticks.
        baseline = bfs(graph, source, durable_dir=f"{tmp}/baseline",
                       durable_interval=4, record_digests=True)
        print(f"baseline: {baseline.stats.ticks} ticks, "
              f"{baseline.stats.durable_checkpoints} epochs written, "
              f"{baseline.stats.durable_disk_bytes} bytes on disk")

        # 2. Same run, but the injector flips one byte in the *newest*
        #    epoch after it commits (a torn disk, a cosmic ray...).
        _, graph2 = build_rmat_graph(10, num_partitions=8, num_ghosts=128,
                                     seed=1)
        crashed = bfs(graph2, source, durable_dir=f"{tmp}/crashed",
                      durable_interval=4, durable_keep=3,
                      record_digests=True,
                      durable_faults=DurableFaultPlan.from_spec("bitflip=20"))
        print(f"crashed:  epoch at tick 20 corrupted "
              f"(durable_corrupt_epochs="
              f"{crashed.stats.durable_corrupt_epochs})")

        # 3. "Reboot the host" (a fresh graph build stands in for a fresh
        #    process) and resume from the surviving epochs.
        _, graph3 = build_rmat_graph(10, num_partitions=8, num_ghosts=128,
                                     seed=1)
        resumed = bfs(graph3, source, durable_dir=f"{tmp}/crashed",
                      durable_interval=4, durable_keep=3,
                      record_digests=True, durable_resume=True)
        print(f"resumed:  from tick {resumed.stats.durable_resume_tick} "
              f"after {resumed.stats.durable_fallbacks} fallback(s)")

        assert np.array_equal(baseline.data.levels, resumed.data.levels)
        assert np.array_equal(baseline.data.parents, resumed.data.parents)
        assert comparable(baseline.stats) == comparable(resumed.stats)
        assert baseline.stats.order_digest == resumed.stats.order_digest
        print("bit-identical: results, stats (minus durable_*), "
              "order digest all match the uninterrupted run")


if __name__ == "__main__":
    main()
