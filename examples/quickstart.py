#!/usr/bin/env python
"""Quickstart: build a Graph500-style graph, partition it, traverse it.

Walks the full pipeline of the paper on a laptop-scale instance:

1. generate an RMAT scale-free graph (Graph500 v1.2 parameters),
2. permute labels and simplify to an undirected graph,
3. partition the sorted edge list across 16 simulated ranks with 64 ghost
   vertices per partition,
4. run asynchronous BFS, k-core and triangle counting,
5. print the simulated performance trace of each traversal.

Run:  python examples/quickstart.py [scale]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    DistributedGraph,
    EdgeList,
    bfs,
    kcore,
    rmat_edges,
    triangle_count,
)
from repro.analysis.teps import bfs_traversed_edges, mteps


def main(scale: int = 10) -> None:
    num_vertices = 1 << scale
    num_edges = 16 << scale  # Graph500 edgefactor 16

    print(f"Generating RMAT graph: scale {scale} "
          f"({num_vertices} vertices, {num_edges} generator edges)")
    src, dst = rmat_edges(scale, num_edges, seed=42)
    edges = (
        EdgeList.from_arrays(src, dst, num_vertices)
        .permuted(seed=43)          # destroy generator locality (paper §VII-A)
        .simple_undirected()        # symmetrize + dedup for undirected algos
    )
    print(f"Simple undirected graph: {edges.num_edges} directed CSR entries, "
          f"max degree {int(edges.out_degrees().max())}")

    graph = DistributedGraph.build(edges, num_partitions=16, num_ghosts=64)
    split = [v for v in range(num_vertices) if graph.is_split(v)]
    print(f"Edge list partitioning: 16 ranks, {len(split)} split adjacency "
          f"lists (hubs spanning multiple partitions)")

    # ------------------------------------------------------------------ #
    source = int(np.argmax(edges.out_degrees()))
    result = bfs(graph, source, topology="2d")
    traversed = bfs_traversed_edges(edges, result.data.levels)
    print("\nBFS from the largest hub:")
    print(f"  reached {result.data.num_reached}/{num_vertices} vertices in "
          f"{result.data.max_level} levels")
    print(f"  simulated time {result.time_us / 1e3:.2f} ms  "
          f"-> {mteps(traversed, result.time_us):.2f} MTEPS")
    print(f"  ghost-filtered visitors: {result.stats.total_ghost_filtered}")

    # ------------------------------------------------------------------ #
    for k in (4, 16):
        r = kcore(graph, k, topology="2d")
        print(f"\n{k}-core: {r.data.core_size} vertices remain "
              f"({r.stats.total_visits} visitor executions, "
              f"{r.time_us / 1e3:.2f} ms simulated)")

    # ------------------------------------------------------------------ #
    r = triangle_count(graph, topology="2d")
    print(f"\nTriangles: {r.data.total} "
          f"({r.stats.total_visits} visitor executions, "
          f"{r.time_us / 1e3:.2f} ms simulated)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10)
