"""Tests for ASCII chart rendering."""

import pytest

from repro.bench.sparkline import bar_chart, sparkline


class TestSparkline:
    def test_monotone(self):
        s = sparkline([1, 2, 3, 4])
        assert len(s) == 4
        assert s[0] == "▁" and s[-1] == "█"

    def test_constant(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_single(self):
        assert len(sparkline([1.0])) == 1

    def test_order_reflected(self):
        up = sparkline([0, 10])
        down = sparkline([10, 0])
        assert up == down[::-1]


class TestBarChart:
    def test_basic(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10  # peak fills the width
        assert lines[0].count("#") == 5

    def test_zero_value_no_bar(self):
        out = bar_chart(["x", "y"], [0.0, 4.0])
        assert out.splitlines()[0].count("#") == 0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], []) == ""

    def test_labels_aligned(self):
        out = bar_chart(["a", "long-label"], [1, 1])
        lines = out.splitlines()
        assert lines[0].index("#") == lines[1].index("#")
