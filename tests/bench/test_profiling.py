"""Tests for the cProfile wrapper."""

from repro.bench.profiling import profile_call


def _busywork():
    total = 0
    for i in range(20_000):
        total += i * i
    return total


class TestProfileCall:
    def test_returns_result(self):
        report = profile_call(_busywork)
        assert report.result == _busywork()

    def test_measures_something(self):
        report = profile_call(_busywork)
        assert report.total_calls >= 1
        assert report.host_seconds >= 0.0

    def test_hotspots_named(self):
        report = profile_call(_busywork)
        assert report.hotspots
        assert any("_busywork" in name for name, _ in report.hotspots)

    def test_summary_format(self):
        report = profile_call(_busywork)
        text = report.summary(top=3)
        assert "host time" in text
        assert text.count("\n") <= 3

    def test_profiles_a_traversal(self, rmat_small, rmat_small_graph):
        from repro.algorithms.bfs import bfs

        report = profile_call(lambda: bfs(rmat_small_graph, int(rmat_small.src[0])))
        assert report.result.data.num_reached > 0
        # the engine loop should be visible among the hotspots
        assert any("engine" in name or "run" in name for name, _ in report.hotspots)
