"""Tests for the Graph500-style run harness."""

import numpy as np
import pytest

from repro.bench.graph500 import run_graph500
from repro.bench.harness import build_rmat_graph
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.runtime.costmodel import hyperion_dit, laptop


@pytest.fixture(scope="module")
def small_setup():
    return build_rmat_graph(8, num_partitions=4, num_ghosts=8, seed=9)


class TestRun:
    def test_basic_run(self, small_setup):
        edges, graph = small_setup
        run = run_graph500(edges, graph, num_searches=8, seed=1)
        assert run.num_searches == 8
        assert run.all_validated
        assert run.teps_values.shape == (8,)
        assert np.all(run.teps_values > 0)

    def test_statistics_ordering(self, small_setup):
        edges, graph = small_setup
        run = run_graph500(edges, graph, num_searches=8, seed=1)
        assert run.min_teps <= run.harmonic_mean_teps <= run.max_teps
        assert run.min_teps <= run.median_teps <= run.max_teps

    def test_sources_non_isolated(self, small_setup):
        edges, graph = small_setup
        run = run_graph500(edges, graph, num_searches=8, seed=2)
        degrees = edges.out_degrees()
        assert np.all(degrees[run.sources] > 0)

    def test_deterministic(self, small_setup):
        edges, graph = small_setup
        a = run_graph500(edges, graph, num_searches=4, seed=5)
        b = run_graph500(edges, graph, num_searches=4, seed=5)
        assert np.array_equal(a.sources, b.sources)
        assert np.array_equal(a.teps_values, b.teps_values)

    def test_summary(self, small_setup):
        edges, graph = small_setup
        run = run_graph500(edges, graph, num_searches=4, seed=1)
        assert "harmonic mean" in run.summary()

    def test_invalid_searches(self, small_setup):
        edges, graph = small_setup
        with pytest.raises(ValueError):
            run_graph500(edges, graph, num_searches=0)

    def test_no_sources(self):
        el = EdgeList.from_pairs([], num_vertices=4)
        # a graph with no edges cannot be partitioned; emulate via tiny graph
        el2 = EdgeList.from_pairs([(0, 1)], 4).simple_undirected()
        graph = DistributedGraph.build(el2, 1)
        run = run_graph500(el2, graph, num_searches=2, seed=0)
        assert set(run.sources) <= {0, 1}
        del el


class TestNVRAMWarmCache:
    def test_later_searches_benefit_from_warm_cache(self, small_setup):
        edges, graph = small_setup
        machine = hyperion_dit("nvram", cache_bytes_per_rank=1 << 20, page_size=256)
        run = run_graph500(edges, graph, num_searches=6, seed=3, machine=machine)
        # the big cache retains the whole graph: after the first search the
        # rest run from DRAM and are consistently faster
        assert np.median(run.times_us[1:]) < run.times_us[0]

    def test_dram_machine_works(self, small_setup):
        edges, graph = small_setup
        run = run_graph500(edges, graph, num_searches=3, machine=laptop())
        assert run.all_validated


class TestSSSPKernel:
    def test_sssp_kernel_runs(self, small_setup):
        edges, graph = small_setup
        run = run_graph500(edges, graph, num_searches=3, kernel="sssp", seed=4)
        assert run.all_validated
        assert np.all(run.teps_values > 0)

    def test_unknown_kernel(self, small_setup):
        edges, graph = small_setup
        with pytest.raises(ValueError):
            run_graph500(edges, graph, num_searches=1, kernel="bc")

    def test_sssp_slower_than_bfs(self, small_setup):
        """SSSP's label corrections cost more visitors than plain BFS on
        the same sources."""
        edges, graph = small_setup
        b = run_graph500(edges, graph, num_searches=3, kernel="bfs", seed=6)
        s = run_graph500(edges, graph, num_searches=3, kernel="sssp", seed=6)
        assert s.times_us.mean() > b.times_us.mean()
