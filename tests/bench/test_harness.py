"""Tests for the benchmark harness plumbing."""

import numpy as np
import pytest

from repro.bench.harness import (
    build_pa_graph,
    build_rmat_graph,
    build_sw_graph,
    make_page_caches,
    mean_over_sources,
    pick_bfs_source,
    run_bfs_trial,
)
from repro.graph.edge_list import EdgeList
from repro.runtime.costmodel import hyperion_dit, laptop


class TestBuilders:
    def test_rmat(self):
        edges, graph = build_rmat_graph(7, num_partitions=4, num_ghosts=4)
        assert graph.num_partitions == 4
        assert edges.num_vertices == 128
        # simple undirected: in-degrees match out-degrees
        assert np.array_equal(edges.out_degrees(), edges.in_degrees())

    def test_pa(self):
        edges, graph = build_pa_graph(200, 3, rewire=0.2, num_partitions=4)
        assert edges.num_vertices == 200
        assert graph.strategy == "edge_list"

    def test_sw(self):
        edges, graph = build_sw_graph(128, 4, rewire=0.1, num_partitions=4)
        assert edges.num_vertices == 128

    def test_1d_strategy_passthrough(self):
        _, graph = build_rmat_graph(7, num_partitions=4, strategy="1d")
        assert graph.strategy == "1d"


class TestSourcePicking:
    def test_degree_requirement(self):
        el = EdgeList.from_pairs([(0, 1)], 5).simple_undirected()
        for seed in range(10):
            s = pick_bfs_source(el, seed=seed)
            assert s in (0, 1)

    def test_deterministic(self):
        el = EdgeList.from_pairs([(0, 1), (2, 3), (4, 0)], 5).simple_undirected()
        assert pick_bfs_source(el, seed=3) == pick_bfs_source(el, seed=3)

    def test_no_eligible_source(self):
        el = EdgeList.from_pairs([], num_vertices=3)
        with pytest.raises(ValueError):
            pick_bfs_source(el)


class TestTrials:
    def test_row_fields(self):
        edges, graph = build_rmat_graph(7, num_partitions=4, num_ghosts=4)
        row = run_bfs_trial(edges, graph, machine=laptop())
        for key in ("teps", "time_us", "reached", "traversed_edges", "p",
                    "visit_imbalance", "cache_hit_rate"):
            assert key in row
        assert row["p"] == 4
        assert row["teps"] > 0

    def test_mean_over_sources(self):
        edges, graph = build_rmat_graph(7, num_partitions=4)
        row = mean_over_sources(edges, graph, num_sources=3, machine=laptop())
        assert row["num_sources"] == 3
        assert row["time_us"] > 0


class TestPageCaches:
    def test_none_for_dram(self):
        assert make_page_caches(laptop(), 4) is None

    def test_created_for_nvram(self):
        caches = make_page_caches(hyperion_dit("nvram"), 4)
        assert len(caches) == 4

    def test_warm_cache_improves_hit_rate(self):
        edges, graph = build_rmat_graph(8, num_partitions=4, num_ghosts=4)
        machine = hyperion_dit("nvram", cache_bytes_per_rank=1 << 20, page_size=256)
        cold = run_bfs_trial(edges, graph, machine=machine, seed=1)
        warm_row = mean_over_sources(
            edges, graph, num_sources=1, seed=1, machine=machine, warm_cache=True
        )
        assert warm_row["cache_hit_rate"] > cold["cache_hit_rate"]
