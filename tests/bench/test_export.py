"""Tests for CSV export of experiment rows."""

import pytest

from repro.bench.export import load_csv_rows, rows_to_csv


class TestRoundTrip:
    def test_basic(self, tmp_path):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        path = tmp_path / "rows.csv"
        cols = rows_to_csv(rows, path)
        assert cols == ["a", "b"]
        loaded = load_csv_rows(path)
        assert loaded[0]["a"] == "1"
        assert loaded[1]["b"] == "4.5"

    def test_ragged_rows(self, tmp_path):
        rows = [{"a": 1}, {"a": 2, "extra": "x"}]
        path = tmp_path / "ragged.csv"
        cols = rows_to_csv(rows, path)
        assert cols == ["a", "extra"]
        loaded = load_csv_rows(path)
        assert loaded[0]["extra"] == ""

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            rows_to_csv([], tmp_path / "никогда.csv")

    def test_experiment_rows_export(self, tmp_path):
        from repro.bench.experiments import fig01_hub_growth

        rows, _ = fig01_hub_growth(scales=(6, 8), thresholds=(8,))
        path = tmp_path / "fig01.csv"
        rows_to_csv(rows, path)
        loaded = load_csv_rows(path)
        assert len(loaded) == 2
        assert "max_degree" in loaded[0]
