"""Smoke tests: every experiment driver runs at miniature scale and
produces well-formed rows and a printable report.

The full-size qualitative assertions live in ``benchmarks/``; these tests
exist so a broken driver fails fast in the unit suite.
"""

import pytest

from repro.bench import experiments as E


def _check(rows, report, required_keys):
    assert rows, "experiment produced no rows"
    for key in required_keys:
        assert key in rows[0], f"missing column {key}"
    assert isinstance(report, str) and "\n" in report


def test_fig01():
    rows, report = E.fig01_hub_growth(scales=(6, 8), thresholds=(8,))
    _check(rows, report, ["scale", "max_degree", "edges_deg>=8"])


def test_fig02():
    rows, report = E.fig02_partition_imbalance(
        vertices_per_partition=64, partition_counts=(4, 16)
    )
    _check(rows, report, ["imbalance_1d", "imbalance_2d", "imbalance_edge_list"])


def test_fig05():
    rows, report = E.fig05_bfs_weak_scaling(
        vertices_per_rank=32, ranks=(2, 4), num_sources=1
    )
    _check(rows, report, ["teps", "p", "time_us"])


def test_fig06():
    rows, report = E.fig06_kcore_weak_scaling(
        vertices_per_rank=32, ranks=(2, 4), ks=(2,)
    )
    _check(rows, report, ["k", "core_size", "time_us"])


def test_fig07():
    rows, report = E.fig07_triangle_weak_scaling(
        vertices_per_rank=16, ranks=(2,), degree=4, rewires=(0.0, 0.2)
    )
    _check(rows, report, ["rewire", "triangles", "time_us"])


def test_fig08():
    rows, report = E.fig08_em_bfs_weak_scaling(
        vertices_per_rank=64, ranks=(2, 4), num_sources=1
    )
    _check(rows, report, ["teps", "cache_hit_rate"])


def test_fig09():
    rows, report = E.fig09_nvram_data_scaling(
        base_scale=6, num_ranks=2, factors=(1, 2), num_sources=1
    )
    _check(rows, report, ["factor", "storage", "teps_vs_dram"])
    assert rows[0]["storage"] == "dram"


def test_fig10():
    rows, report = E.fig10_diameter_effect(
        num_vertices=256, degree=4, rewires=(1.0, 0.1), num_ranks=4, num_sources=1
    )
    _check(rows, report, ["max_level", "teps"])


def test_fig11():
    rows, report = E.fig11_degree_effect(
        num_vertices=128, edges_per_vertex=3, rewires=(0.0, 1.0), num_ranks=4
    )
    _check(rows, report, ["max_degree", "triangles", "time_us"])


def test_fig12():
    rows, report = E.fig12_elp_vs_1d(
        vertices_per_rank=32, ranks=(2, 4), num_sources=1
    )
    _check(rows, report, ["strategy", "max_partition_edges", "teps"])
    assert {r["strategy"] for r in rows} == {"edge_list", "1d"}


def test_fig13():
    rows, report = E.fig13_ghost_sweep(
        scale=7, num_ranks=4, ghost_counts=(0, 4), num_sources=1
    )
    _check(rows, report, ["ghosts", "improvement_pct"])
    assert rows[0]["improvement_pct"] == 0.0


def test_table2():
    rows, report = E.table2_graph500_nvram(
        base_scale=6, nvram_extra_scale=1, num_sources=1
    )
    _check(rows, report, ["machine_name", "storage", "mteps"])
    assert len(rows) == 4


@pytest.mark.parametrize(
    "name,kwargs",
    [
        ("ablation_routing", dict(scale=7, num_ranks=4, num_sources=1)),
        ("ablation_locality_ordering", dict(scale=7, num_ranks=2, num_sources=1)),
        ("ablation_aggregation", dict(scale=7, num_ranks=4, sizes=(1, 8), num_sources=1)),
        ("ablation_termination", dict(scale=7, num_ranks=4, num_sources=1)),
        ("ablation_io_concurrency", dict(scale=7, num_ranks=2, concurrencies=(1, 8), num_sources=1)),
    ],
)
def test_ablations(name, kwargs):
    rows, report = getattr(E, name)(**kwargs)
    assert rows and isinstance(report, str)


def test_ablation_memory_mode_smoke():
    rows, report = E.ablation_semi_vs_full_external(
        scale=7, num_ranks=2, cache_bytes_per_rank=4096, num_sources=1
    )
    assert {r["memory_mode"] for r in rows} == {"semi-external", "fully-external"}
    assert isinstance(report, str)


def test_extension_strong_scaling_smoke():
    rows, report = E.extension_strong_scaling(
        scale=7, ranks=(2, 4), num_sources=1
    )
    assert rows[0]["speedup"] == 1.0
    assert isinstance(report, str)


def test_extension_pagerank_smoke():
    rows, report = E.extension_pagerank_convergence(
        scale=7, num_ranks=2, thresholds=(1e-2,)
    )
    assert rows[0]["l1_error"] >= 0
    assert isinstance(report, str)
