"""Tests for the report table formatter."""

from repro.bench.report import format_table


def test_alignment_and_header():
    rows = [{"a": 1, "b": 2.5}, {"a": 100, "b": 0.25}]
    out = format_table(rows, ["a", ("b", ".2f")])
    lines = out.splitlines()
    assert lines[0].split() == ["a", "b"]
    assert "100" in lines[3]
    assert "0.25" in lines[3]


def test_title():
    out = format_table([{"x": 1}], ["x"], title="My Table")
    assert out.splitlines()[0] == "My Table"


def test_missing_key_renders_dash():
    out = format_table([{"x": 1}], ["x", "missing"])
    assert "-" in out.splitlines()[-1]


def test_empty_rows():
    out = format_table([], ["a", "b"])
    assert "a" in out and "b" in out


def test_format_spec_ignored_for_strings():
    out = format_table([{"name": "abc"}], [("name", ".2f")])
    assert "abc" in out
