"""Shared fixtures: small deterministic graphs used across the suite."""

from __future__ import annotations

from hypothesis import settings
import numpy as np
import pytest

from repro.generators.rmat import rmat_edges
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList

# No example database: property tests stay stateless and the repo stays
# free of .hypothesis/ artifacts.
settings.register_profile("repro", database=None, deadline=None)
settings.load_profile("repro")


@pytest.fixture
def figure3_edges() -> EdgeList:
    """The paper's Figure 3 worked example: 8 vertices, 16 edges."""
    src = [0, 1, 1, 2, 2, 2, 2, 2, 2, 3, 4, 5, 5, 6, 7, 7]
    dst = [1, 0, 2, 1, 3, 4, 5, 6, 7, 2, 2, 2, 7, 2, 2, 5]
    return EdgeList.from_arrays(np.array(src), np.array(dst), 8).sorted_by_source()


@pytest.fixture
def path_graph() -> EdgeList:
    """Undirected path 0-1-2-3-4 (diameter 4, no triangles)."""
    return EdgeList.from_pairs(
        [(i, i + 1) for i in range(4)], num_vertices=5
    ).simple_undirected()


@pytest.fixture
def triangle_graph() -> EdgeList:
    """Two triangles sharing vertex 2: {0,1,2} and {2,3,4}."""
    return EdgeList.from_pairs(
        [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)], num_vertices=5
    ).simple_undirected()


@pytest.fixture
def star_graph() -> EdgeList:
    """Star with hub 0 and 16 leaves — the minimal hub stress case."""
    return EdgeList.from_pairs(
        [(0, i) for i in range(1, 17)], num_vertices=17
    ).simple_undirected()


@pytest.fixture(scope="session")
def rmat_small() -> EdgeList:
    """A scale-8 RMAT graph, permuted and simplified (session-cached)."""
    src, dst = rmat_edges(8, 16 << 8, seed=42)
    return EdgeList.from_arrays(src, dst, 1 << 8).permuted(seed=43).simple_undirected()


@pytest.fixture(scope="session")
def rmat_small_graph(rmat_small: EdgeList) -> DistributedGraph:
    """The scale-8 RMAT graph partitioned over 8 ranks with ghosts."""
    return DistributedGraph.build(rmat_small, 8, num_ghosts=8)


def make_graph(edges: EdgeList, p: int, **kwargs) -> DistributedGraph:
    """Helper used by many tests."""
    return DistributedGraph.build(edges, p, **kwargs)
