"""Execute the README's Python snippets — documentation that cannot drift.

Every fenced ``python`` block in README.md that imports from ``repro`` is
executed in a shared namespace (top to bottom, so later snippets can use
names defined by earlier ones, exactly as a reader would follow along).
"""

from pathlib import Path
import re

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def _python_blocks() -> list[str]:
    text = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    return [b for b in blocks if "repro" in b]


def test_readme_has_snippets():
    assert len(_python_blocks()) >= 2


def test_readme_snippets_execute(capsys):
    namespace: dict = {}
    for i, block in enumerate(_python_blocks()):
        try:
            exec(compile(block, f"README.md:block{i}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"README snippet {i} failed: {exc}\n---\n{block}")
    capsys.readouterr()  # swallow the snippets' prints
