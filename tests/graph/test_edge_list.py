"""Tests for the EdgeList container."""

from hypothesis import given
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graph.edge_list import EdgeList


def edges_strategy(max_n=32, max_m=128):
    """Random edge lists for property tests."""
    return st.integers(min_value=1, max_value=max_n).flatmap(
        lambda n: st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=max_m,
        ).map(lambda pairs: EdgeList.from_pairs(pairs, num_vertices=n))
    )


class TestConstruction:
    def test_from_pairs(self):
        el = EdgeList.from_pairs([(0, 1), (1, 2)], num_vertices=3)
        assert el.num_edges == 2
        assert el.num_vertices == 3

    def test_from_arrays_infers_n(self):
        el = EdgeList.from_arrays(np.array([0, 5]), np.array([3, 1]))
        assert el.num_vertices == 6

    def test_empty(self):
        el = EdgeList.from_pairs([], num_vertices=0)
        assert el.num_edges == 0

    def test_mismatched_lengths(self):
        with pytest.raises(GraphConstructionError):
            EdgeList(src=np.array([0]), dst=np.array([0, 1]), num_vertices=2)

    def test_out_of_range(self):
        with pytest.raises(GraphConstructionError):
            EdgeList.from_pairs([(0, 9)], num_vertices=3)

    def test_negative_vertex(self):
        with pytest.raises(GraphConstructionError):
            EdgeList.from_pairs([(-1, 0)], num_vertices=3)

    def test_negative_num_vertices(self):
        with pytest.raises(GraphConstructionError):
            EdgeList.from_pairs([], num_vertices=-1)


class TestDegrees:
    def test_out_in_degrees(self):
        el = EdgeList.from_pairs([(0, 1), (0, 2), (1, 2)], num_vertices=3)
        assert list(el.out_degrees()) == [2, 1, 0]
        assert list(el.in_degrees()) == [0, 1, 2]
        assert list(el.degrees()) == [2, 2, 2]

    def test_symmetrized_degree_equals_out_degree(self):
        el = EdgeList.from_pairs([(0, 1), (1, 2)], num_vertices=3).simple_undirected()
        assert np.array_equal(el.out_degrees(), el.in_degrees())


class TestSort:
    def test_sorted_flag(self):
        el = EdgeList.from_pairs([(2, 0), (0, 1)], num_vertices=3)
        assert not el.sorted_by_src
        s = el.sorted_by_source()
        assert s.sorted_by_src
        assert np.all(np.diff(s.src) >= 0)

    def test_sort_is_stable(self):
        el = EdgeList.from_pairs([(1, 9), (0, 5), (1, 3)], num_vertices=10)
        s = el.sorted_by_source()
        # edges of source 1 keep original relative order (9 before 3)
        assert list(s.dst) == [5, 9, 3]

    def test_sort_idempotent(self):
        el = EdgeList.from_pairs([(1, 0), (0, 1)], num_vertices=2).sorted_by_source()
        assert el.sorted_by_source() is el


class TestSymmetrize:
    def test_reverse_edges_added(self):
        el = EdgeList.from_pairs([(0, 1)], num_vertices=2).symmetrized()
        pairs = set(zip(el.src.tolist(), el.dst.tolist(), strict=False))
        assert pairs == {(0, 1), (1, 0)}

    def test_self_loop_not_duplicated(self):
        el = EdgeList.from_pairs([(0, 0), (0, 1)], num_vertices=2).symmetrized()
        assert el.num_edges == 3  # (0,0), (0,1), (1,0)


class TestDedup:
    def test_removes_duplicates(self):
        el = EdgeList.from_pairs([(0, 1), (0, 1), (1, 0)], num_vertices=2).deduplicated()
        assert el.num_edges == 2

    def test_result_sorted(self):
        el = EdgeList.from_pairs([(1, 0), (0, 1), (1, 0)], num_vertices=2).deduplicated()
        assert el.sorted_by_src

    def test_empty(self):
        el = EdgeList.from_pairs([], num_vertices=3).deduplicated()
        assert el.num_edges == 0


class TestSelfLoops:
    def test_removed(self):
        el = EdgeList.from_pairs([(0, 0), (0, 1)], num_vertices=2).without_self_loops()
        assert el.num_edges == 1
        assert (int(el.src[0]), int(el.dst[0])) == (0, 1)


class TestPermuted:
    def test_preserves_structure(self):
        el = EdgeList.from_pairs([(0, 1), (1, 2), (2, 0)], num_vertices=3)
        p = el.permuted(seed=3)
        assert p.num_edges == el.num_edges
        assert np.array_equal(
            np.sort(p.degrees()), np.sort(el.degrees())
        )


class TestSimpleUndirected:
    @given(edges_strategy())
    def test_properties(self, el):
        simple = el.simple_undirected()
        # no self loops
        assert not np.any(simple.src == simple.dst)
        # symmetric: every edge's reverse present
        pairs = set(zip(simple.src.tolist(), simple.dst.tolist(), strict=False))
        assert all((b, a) in pairs for a, b in pairs)
        # no duplicates
        assert len(pairs) == simple.num_edges
        # sorted by source
        assert np.all(np.diff(simple.src) >= 0)

    @given(edges_strategy())
    def test_idempotent(self, el):
        once = el.simple_undirected()
        twice = once.simple_undirected()
        assert np.array_equal(once.src, twice.src)
        assert np.array_equal(once.dst, twice.dst)
