"""Tests for ghost-vertex selection and tables."""

import numpy as np
import pytest

from repro.graph.ghosts import GhostTable, select_ghost_candidates


def _owners(n, value=99):
    """min_owners array where nothing is locally mastered by rank 0."""
    return np.full(n, value, dtype=np.int64)


class TestSelection:
    def test_top_k_by_local_indegree(self):
        targets = np.array([5, 5, 5, 3, 3, 7])
        got = select_ghost_candidates(
            targets, num_ghosts=2, rank=0, min_owners=_owners(8)
        )
        assert list(got) == [5, 3]  # 7 appears once -> ineligible

    def test_min_local_indegree_filter(self):
        targets = np.array([1, 2, 3])  # all singletons
        got = select_ghost_candidates(
            targets, num_ghosts=3, rank=0, min_owners=_owners(4)
        )
        assert got.size == 0

    def test_local_masters_excluded(self):
        targets = np.array([4, 4, 4, 6, 6])
        owners = _owners(8)
        owners[4] = 0  # rank 0 masters vertex 4 -> no ghost needed
        got = select_ghost_candidates(targets, num_ghosts=4, rank=0, min_owners=owners)
        assert list(got) == [6]

    def test_budget_respected(self):
        targets = np.repeat(np.arange(10), 3)
        got = select_ghost_candidates(
            targets, num_ghosts=4, rank=0, min_owners=_owners(10)
        )
        assert got.size == 4

    def test_deterministic_tie_break(self):
        targets = np.array([2, 2, 9, 9, 5, 5])
        got = select_ghost_candidates(
            targets, num_ghosts=2, rank=0, min_owners=_owners(10)
        )
        assert list(got) == [2, 5]  # equal counts -> ascending vertex id

    def test_zero_budget(self):
        got = select_ghost_candidates(
            np.array([1, 1]), num_ghosts=0, rank=0, min_owners=_owners(2)
        )
        assert got.size == 0

    def test_negative_budget(self):
        with pytest.raises(ValueError):
            select_ghost_candidates(
                np.array([1]), num_ghosts=-1, rank=0, min_owners=_owners(2)
            )

    def test_empty_targets(self):
        got = select_ghost_candidates(
            np.array([], dtype=np.int64), num_ghosts=5, rank=0, min_owners=_owners(2)
        )
        assert got.size == 0


class TestGhostTable:
    def test_lookup(self):
        table = GhostTable(np.array([3, 7]), lambda v: {"id": v})
        assert len(table) == 2
        assert table.has_local_ghost(3)
        assert not table.has_local_ghost(4)
        assert table.local_ghost(7) == {"id": 7}

    def test_state_is_per_vertex(self):
        table = GhostTable(np.array([1, 2]), lambda v: [v])
        table.local_ghost(1).append(99)
        assert table.local_ghost(2) == [2]

    def test_vertices_sorted(self):
        table = GhostTable(np.array([9, 1, 5]), lambda v: None)
        assert table.vertices() == [1, 5, 9]

    def test_filter_counters_start_zero(self):
        table = GhostTable(np.array([1]), lambda v: None)
        assert table.filter_hits == 0 and table.filter_passes == 0
