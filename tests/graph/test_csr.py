"""Tests for CSR adjacency storage."""

from hypothesis import given
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graph.csr import CSR


class TestBuild:
    def test_basic(self):
        csr = CSR.from_edges(np.array([0, 0, 1]), np.array([2, 1, 0]), num_rows=3)
        assert csr.num_rows == 3
        assert csr.num_edges == 3
        assert list(csr.neighbors(0)) == [1, 2]  # rows sorted
        assert list(csr.neighbors(1)) == [0]
        assert list(csr.neighbors(2)) == []

    def test_vertex_base(self):
        csr = CSR.from_edges(
            np.array([10, 10, 11]), np.array([5, 3, 7]), vertex_base=10, num_rows=2
        )
        assert list(csr.neighbors(10)) == [3, 5]
        assert list(csr.neighbors(11)) == [7]

    def test_unsorted_rows_option(self):
        csr = CSR.from_edges(
            np.array([0, 0]), np.array([2, 1]), num_rows=1, sort_rows=False
        )
        assert list(csr.neighbors(0)) == [2, 1]

    def test_empty(self):
        csr = CSR.from_edges(np.array([], dtype=np.int64), np.array([], dtype=np.int64), num_rows=4)
        assert csr.num_edges == 0
        assert all(csr.degree(v) == 0 for v in range(4))

    def test_source_out_of_range(self):
        with pytest.raises(GraphConstructionError):
            CSR.from_edges(np.array([5]), np.array([0]), num_rows=3)


class TestValidation:
    def test_bad_row_ptr_start(self):
        with pytest.raises(GraphConstructionError):
            CSR(row_ptr=np.array([1, 2]), cols=np.array([0, 0]))

    def test_bad_row_ptr_end(self):
        with pytest.raises(GraphConstructionError):
            CSR(row_ptr=np.array([0, 1]), cols=np.array([0, 0]))

    def test_decreasing_row_ptr(self):
        with pytest.raises(GraphConstructionError):
            CSR(row_ptr=np.array([0, 2, 1, 3]), cols=np.array([0, 0, 0]))


class TestQueries:
    def test_degree(self):
        csr = CSR.from_edges(np.array([0, 0, 0, 2]), np.array([1, 2, 3, 0]), num_rows=3)
        assert csr.degree(0) == 3
        assert csr.degree(1) == 0
        assert csr.degree(2) == 1

    def test_has_edge(self):
        csr = CSR.from_edges(np.array([0, 0, 1]), np.array([3, 7, 2]), num_rows=2)
        assert csr.has_edge(0, 3)
        assert csr.has_edge(0, 7)
        assert not csr.has_edge(0, 5)
        assert csr.has_edge(1, 2)
        assert not csr.has_edge(1, 3)

    def test_out_of_range_vertex(self):
        csr = CSR.from_edges(np.array([0]), np.array([1]), num_rows=1)
        with pytest.raises(IndexError):
            csr.neighbors(5)
        with pytest.raises(IndexError):
            csr.neighbors(-1)

    def test_nbytes_positive(self):
        csr = CSR.from_edges(np.array([0]), np.array([1]), num_rows=1)
        assert csr.nbytes() == csr.row_ptr.nbytes + csr.cols.nbytes


@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), min_size=0, max_size=100
    )
)
def test_csr_roundtrip_property(pairs):
    """CSR preserves exactly the multiset of edges."""
    src = np.array([p[0] for p in pairs], dtype=np.int64)
    dst = np.array([p[1] for p in pairs], dtype=np.int64)
    csr = CSR.from_edges(src, dst, num_rows=16)
    rebuilt = sorted(
        (v, int(w)) for v in range(16) for w in csr.neighbors(v)
    )
    assert rebuilt == sorted(zip(src.tolist(), dst.tolist(), strict=False))
