"""Tests for 1D block partitioning (the baseline)."""

import numpy as np
import pytest

from repro.errors import PartitioningError
from repro.graph.edge_list import EdgeList
from repro.graph.partition_1d import OneDPartitioning


class TestBuild:
    def test_even_blocks(self):
        part = OneDPartitioning.build(8, 4)
        assert [part.vertex_range(r) for r in range(4)] == [
            (0, 2), (2, 4), (4, 6), (6, 8),
        ]

    def test_uneven_blocks_cover_everything(self):
        part = OneDPartitioning.build(10, 3)
        ranges = [part.vertex_range(r) for r in range(3)]
        assert ranges[0][0] == 0 and ranges[-1][1] == 10
        for (_a, b), (c, _d) in zip(ranges, ranges[1:], strict=False):
            assert b == c

    def test_too_many_partitions(self):
        with pytest.raises(PartitioningError):
            OneDPartitioning.build(2, 3)

    def test_zero_partitions(self):
        with pytest.raises(PartitioningError):
            OneDPartitioning.build(4, 0)


class TestOwner:
    def test_scalar_and_vector(self):
        part = OneDPartitioning.build(8, 4)
        assert part.owner(0) == 0
        assert part.owner(7) == 3
        assert list(part.owner(np.array([0, 2, 5, 7]))) == [0, 1, 2, 3]

    def test_owner_matches_range(self):
        part = OneDPartitioning.build(100, 7)
        for v in range(100):
            r = part.owner(v)
            lo, hi = part.vertex_range(r)
            assert lo <= v < hi


class TestEdgeCounts:
    def test_hub_concentration(self):
        """The paper's 1D pathology: one hub's whole adjacency list lands on
        a single partition."""
        el = EdgeList.from_pairs([(0, i) for i in range(1, 16)], 16)
        part = OneDPartitioning.build(16, 4)
        counts = part.edge_counts(el)
        assert counts[0] == 15
        assert counts[1] == counts[2] == counts[3] == 0

    def test_total_preserved(self):
        el = EdgeList.from_pairs([(i % 8, (i + 3) % 8) for i in range(40)], 8)
        counts = OneDPartitioning.build(8, 4).edge_counts(el)
        assert counts.sum() == 40
