"""Tests for the simulated distributed sample sort."""

import numpy as np
import pytest

from repro.errors import PartitioningError
from repro.generators.rmat import rmat_edges
from repro.graph.dist_sort import sample_sort_edges
from repro.graph.edge_list import EdgeList
from repro.runtime.costmodel import laptop


def _rmat(scale=9, seed=0):
    src, dst = rmat_edges(scale, 16 << scale, seed=seed)
    return EdgeList.from_arrays(src, dst, 1 << scale).permuted(seed=seed + 1)


class TestCorrectness:
    def test_result_is_globally_sorted(self):
        edges = _rmat()
        result = sample_sort_edges(edges, 8, laptop())
        assert result.edges.sorted_by_src
        assert np.all(np.diff(result.edges.src) >= 0)

    def test_matches_sequential_sort(self):
        edges = _rmat()
        result = sample_sort_edges(edges, 8, laptop())
        expected = edges.sorted_by_source()
        assert np.array_equal(result.edges.src, expected.src)
        assert np.array_equal(result.edges.dst, expected.dst)

    def test_single_rank(self):
        edges = _rmat(scale=7)
        result = sample_sort_edges(edges, 1, laptop())
        assert result.exchange_bytes == 0 or result.bucket_imbalance == 1.0
        assert result.edges.sorted_by_src

    def test_empty(self):
        edges = EdgeList.from_pairs([], num_vertices=4)
        result = sample_sort_edges(edges, 4, laptop())
        assert result.time_us == 0.0


class TestCostModel:
    def test_time_positive(self):
        result = sample_sort_edges(_rmat(), 8, laptop())
        assert result.time_us > 0

    def test_more_ranks_cheaper_critical_path(self):
        """With more ranks each local slice shrinks, so the per-rank sort
        term of the critical path drops."""
        edges = _rmat(scale=11)
        t4 = sample_sort_edges(edges, 4, laptop()).time_us
        t32 = sample_sort_edges(edges, 32, laptop()).time_us
        assert t32 < t4

    def test_splitter_count(self):
        result = sample_sort_edges(_rmat(), 8, laptop())
        assert result.splitters.size == 7

    def test_sampling_quality(self):
        """Oversampled splitters give reasonable bucket balance on a
        permuted scale-free graph."""
        result = sample_sort_edges(_rmat(scale=11), 16, laptop(), oversample=16)
        assert result.bucket_imbalance < 3.0

    def test_deterministic(self):
        edges = _rmat()
        a = sample_sort_edges(edges, 8, laptop(), seed=5)
        b = sample_sort_edges(edges, 8, laptop(), seed=5)
        assert a.time_us == b.time_us
        assert np.array_equal(a.splitters, b.splitters)


class TestValidation:
    def test_zero_ranks(self):
        with pytest.raises(PartitioningError):
            sample_sort_edges(_rmat(scale=6), 0, laptop())
