"""Tests for partitioned-graph checkpointing."""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.bench.harness import build_rmat_graph
from repro.errors import GraphConstructionError
from repro.graph.checkpoint import load_distributed_graph, save_distributed_graph


@pytest.fixture(scope="module")
def built():
    return build_rmat_graph(8, num_partitions=8, num_ghosts=8, seed=17)


class TestRoundTrip:
    def test_structure_identical(self, built, tmp_path):
        _, graph = built
        path = tmp_path / "graph.ckpt.npz"
        save_distributed_graph(graph, path)
        loaded = load_distributed_graph(path)
        assert loaded.num_partitions == graph.num_partitions
        assert loaded.strategy == graph.strategy
        assert np.array_equal(loaded.edges.src, graph.edges.src)
        assert np.array_equal(loaded.min_owners, graph.min_owners)
        assert np.array_equal(loaded.max_owners, graph.max_owners)
        for a, b in zip(loaded.partitions, graph.partitions, strict=False):
            assert (a.state_lo, a.state_hi) == (b.state_lo, b.state_hi)
            assert (a.edge_lo, a.edge_hi) == (b.edge_lo, b.edge_hi)
            assert np.array_equal(a.csr.cols, b.csr.cols)
            assert np.array_equal(a.ghost_candidates, b.ghost_candidates)

    def test_traversal_identical(self, built, tmp_path):
        edges, graph = built
        path = tmp_path / "graph.ckpt.npz"
        save_distributed_graph(graph, path)
        loaded = load_distributed_graph(path)
        s = int(edges.src[0])
        original = bfs(graph, s)
        reloaded = bfs(loaded, s)
        assert np.array_equal(original.data.levels, reloaded.data.levels)
        assert original.stats.time_us == reloaded.stats.time_us

    def test_1d_strategy_roundtrip(self, tmp_path):
        _, graph = build_rmat_graph(7, num_partitions=4, strategy="1d", seed=3)
        path = tmp_path / "oned.npz"
        save_distributed_graph(graph, path)
        assert load_distributed_graph(path).strategy == "1d"

    def test_ghost_budget_roundtrips_when_unmaterialized(self, tmp_path):
        # Regression: the saved num_ghosts must be the build-time *budget*,
        # not max(materialized candidates).  Build with a budget far larger
        # than any partition can fill; the loaded graph must carry the same
        # budget so a later rebuild behaves identically.
        _, graph = build_rmat_graph(7, num_partitions=4, num_ghosts=10_000, seed=3)
        assert graph.num_ghosts == 10_000
        assert all(
            p.ghost_candidates.size < 10_000 for p in graph.partitions
        )
        path = tmp_path / "budget.npz"
        save_distributed_graph(graph, path)
        loaded = load_distributed_graph(path)
        assert loaded.num_ghosts == 10_000
        for a, b in zip(loaded.partitions, graph.partitions, strict=False):
            assert np.array_equal(a.ghost_candidates, b.ghost_candidates)


class TestValidation:
    def test_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, whatever=np.arange(4))
        with pytest.raises(GraphConstructionError):
            load_distributed_graph(path)

    def test_future_version_rejected(self, built, tmp_path):
        _, graph = built
        path = tmp_path / "v999.npz"
        save_distributed_graph(graph, path)
        with np.load(path) as a:
            data = dict(a)
        data["format_version"] = np.int64(999)
        np.savez(path, **data)
        with pytest.raises(GraphConstructionError):
            load_distributed_graph(path)
