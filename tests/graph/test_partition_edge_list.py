"""Tests for edge list partitioning — Section III-A1 and Figure 3."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.errors import PartitioningError
from repro.generators.rmat import rmat_edges
from repro.graph.edge_list import EdgeList
from repro.graph.partition_edge_list import EdgeListPartitioning
from repro.utils import bitpack


class TestPaperFigure3Example:
    """The exact worked example from the paper's Figure 3."""

    def test_owner_operations(self, figure3_edges):
        elp = EdgeListPartitioning.build(figure3_edges, 4)
        # "min_owner(2) = 0, max_owner(2) = 2, min_owner(5) = 2,
        #  max_owner(5) = 3"
        assert elp.min_owner(2) == 0
        assert elp.max_owner(2) == 2
        assert elp.min_owner(5) == 2
        assert elp.max_owner(5) == 3

    def test_even_split(self, figure3_edges):
        elp = EdgeListPartitioning.build(figure3_edges, 4)
        assert list(elp.edge_counts()) == [4, 4, 4, 4]

    def test_split_vertices(self, figure3_edges):
        elp = EdgeListPartitioning.build(figure3_edges, 4)
        assert set(elp.split_vertices().tolist()) == {2, 5}

    def test_validate_passes(self, figure3_edges):
        EdgeListPartitioning.build(figure3_edges, 4).validate(figure3_edges)

    def test_binary_search_variant_agrees(self, figure3_edges):
        elp = EdgeListPartitioning.build(figure3_edges, 4)
        for v in range(8):
            assert elp.min_owner_by_search(v, figure3_edges.src) == elp.min_owner(v)


class TestEdgeBalance:
    def test_perfect_balance_divisible(self):
        el = EdgeList.from_pairs([(i // 4, (i + 1) % 8) for i in range(32)], 8)
        elp = EdgeListPartitioning.build(el.sorted_by_source(), 8)
        assert list(elp.edge_counts()) == [4] * 8

    def test_near_balance_indivisible(self):
        el = EdgeList.from_pairs([(i % 5, (i + 1) % 5) for i in range(13)], 5)
        elp = EdgeListPartitioning.build(el.sorted_by_source(), 4)
        counts = elp.edge_counts()
        assert counts.sum() == 13
        assert counts.max() - counts.min() <= 1

    def test_single_hub_split_across_all(self):
        """One vertex owning every edge is split across all partitions —
        the pathology that breaks 1D but not edge list partitioning."""
        el = EdgeList.from_pairs([(0, i) for i in range(1, 17)], 17)
        elp = EdgeListPartitioning.build(el.sorted_by_source(), 4)
        assert list(elp.edge_counts()) == [4, 4, 4, 4]
        assert elp.min_owner(0) == 0
        assert elp.max_owner(0) == 3


class TestStateRanges:
    def test_ranges_cover_all_vertices(self, figure3_edges):
        elp = EdgeListPartitioning.build(figure3_edges, 4)
        covered = set()
        for r in range(4):
            lo, hi = elp.state_range(r)
            covered.update(range(lo, hi + 1))
        assert covered == set(range(8))

    def test_partition0_covers_leading_isolated_vertices(self):
        # vertices 0..2 have no out-edges; they are homed to partition 0
        el = EdgeList.from_pairs([(3, 0), (3, 1), (4, 0), (5, 1)], 6)
        elp = EdgeListPartitioning.build(el.sorted_by_source(), 2)
        lo, hi = elp.state_range(0)
        assert lo == 0
        assert elp.min_owner(0) == 0
        assert elp.max_owner(0) == 0

    def test_trailing_isolated_vertices_homed_last(self):
        el = EdgeList.from_pairs([(0, 1), (1, 0)], 5)
        elp = EdgeListPartitioning.build(el.sorted_by_source(), 2)
        assert elp.min_owner(4) == 1
        lo, hi = elp.state_range(1)
        assert hi == 4


class TestLocators:
    def test_locators_roundtrip(self, figure3_edges):
        elp = EdgeListPartitioning.build(figure3_edges, 4)
        locators = elp.locators()
        for v in range(8):
            assert bitpack.vertex_of(int(locators[v])) == v
            assert bitpack.min_owner_of(int(locators[v])) == elp.min_owner(v)
            assert bitpack.max_owner_of(int(locators[v])) == elp.max_owner(v)


class TestValidation:
    def test_unsorted_rejected(self):
        el = EdgeList.from_pairs([(3, 0), (1, 0), (2, 0)], 4)
        with pytest.raises(PartitioningError):
            EdgeListPartitioning.build(el, 2)

    def test_too_many_partitions(self):
        el = EdgeList.from_pairs([(0, 1)], 2).sorted_by_source()
        with pytest.raises(PartitioningError):
            EdgeListPartitioning.build(el, 2)

    def test_zero_partitions(self, figure3_edges):
        with pytest.raises(PartitioningError):
            EdgeListPartitioning.build(figure3_edges, 0)


class TestInvariantsRMAT:
    """Structural invariants on a realistic scale-free instance."""

    @pytest.fixture(scope="class")
    def elp_and_edges(self):
        src, dst = rmat_edges(9, 16 << 9, seed=11)
        edges = EdgeList.from_arrays(src, dst, 1 << 9).permuted(seed=12)
        edges = edges.simple_undirected()
        return EdgeListPartitioning.build(edges, 16), edges

    def test_validate(self, elp_and_edges):
        elp, edges = elp_and_edges
        elp.validate(edges)

    def test_split_count_bounded_by_p(self, elp_and_edges):
        # "The global number of partitioned adjacency lists is bounded by
        # O(p), where each partition contains at most two split lists."
        elp, _ = elp_and_edges
        assert elp.split_vertices().size <= elp.num_partitions

    def test_owner_ranges_consistent(self, elp_and_edges):
        elp, edges = elp_and_edges
        src = edges.src
        for v in range(0, edges.num_vertices, 7):
            lo = np.searchsorted(src, v, side="left")
            hi = np.searchsorted(src, v, side="right")
            if lo < hi:
                # every rank in [min, max] holds at least one edge of v
                for rank in range(elp.min_owner(v), elp.max_owner(v) + 1):
                    elo, ehi = elp.edge_slice(rank)
                    assert np.any(src[elo:ehi] == v)


@settings(max_examples=40, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 19), st.integers(0, 19)), min_size=4, max_size=120
    ),
    p=st.integers(min_value=1, max_value=4),
)
def test_partitioning_invariants_property(pairs, p):
    """Property test: for arbitrary sorted edge lists, the partitioning
    tiles the edges, owners are consistent, and validate() passes."""
    el = EdgeList.from_pairs(pairs, num_vertices=20).sorted_by_source()
    if el.num_edges < p:
        return
    elp = EdgeListPartitioning.build(el, p)
    elp.validate(el)
    assert int(elp.edge_counts().sum()) == el.num_edges
    out_deg = el.out_degrees()
    for v in range(20):
        assert 0 <= elp.min_owner(v) <= elp.max_owner(v) < p
        if out_deg[v] == 0:
            assert elp.min_owner(v) == elp.max_owner(v)
        lo, hi = elp.state_range(elp.min_owner(v))
        assert lo <= v <= hi  # master stores v's state
