"""Tests for the locator directory (owner-in-identifier representation)."""

from repro.graph.locator import LocatorDirectory
from repro.graph.partition_edge_list import EdgeListPartitioning


def test_directory_matches_partitioning(figure3_edges):
    elp = EdgeListPartitioning.build(figure3_edges, 4)
    directory = LocatorDirectory.from_partitioning(elp)
    for v in range(8):
        assert directory.min_owner(v) == elp.min_owner(v)
        assert directory.max_owner(v) == elp.max_owner(v)


def test_locator_decoding_matches_directory(figure3_edges):
    """The paper's chosen representation: owners decodable from the
    identifier alone, no directory access."""
    elp = EdgeListPartitioning.build(figure3_edges, 4)
    directory = LocatorDirectory.from_partitioning(elp)
    for v in range(8):
        loc = directory.locator(v)
        assert directory.vertex(loc) == v
        assert directory.min_owner_from_locator(loc) == elp.min_owner(v)
        assert directory.max_owner_from_locator(loc) == elp.max_owner(v)


def test_locators_distinct(figure3_edges):
    elp = EdgeListPartitioning.build(figure3_edges, 4)
    directory = LocatorDirectory.from_partitioning(elp)
    locators = {directory.locator(v) for v in range(8)}
    assert len(locators) == 8
