"""Tests for 2D block partitioning and the hypersparsity critique."""

import numpy as np
import pytest

from repro.errors import PartitioningError
from repro.generators.rmat import rmat_edges
from repro.graph.edge_list import EdgeList
from repro.graph.partition_2d import (
    TwoDBlockPartitioning,
    grid_shape,
    hypersparsity_report,
)
from repro.utils.stats import imbalance


class TestGridShape:
    def test_perfect_square(self):
        assert grid_shape(16) == (4, 4)

    def test_rectangular(self):
        assert grid_shape(8) == (2, 4)

    def test_prime(self):
        assert grid_shape(7) == (1, 7)

    def test_one(self):
        assert grid_shape(1) == (1, 1)

    def test_invalid(self):
        with pytest.raises(PartitioningError):
            grid_shape(0)


class TestBlockAssignment:
    def test_corners(self):
        part = TwoDBlockPartitioning.build(8, 4)  # 2x2 grid
        blocks = part.block_of(np.array([0, 0, 7, 7]), np.array([0, 7, 0, 7]))
        assert list(blocks) == [0, 1, 2, 3]

    def test_total_preserved(self):
        el = EdgeList.from_pairs([(i % 8, (i * 3) % 8) for i in range(50)], 8)
        part = TwoDBlockPartitioning.build(8, 4)
        assert part.edge_counts(el).sum() == 50


class TestHubSplitting:
    def test_2d_splits_hub_rows(self):
        """The paper's Figure 2 mechanism: a hub's adjacency spreads over
        the sqrt(p) blocks of its row, so 2D imbalance << 1D imbalance."""
        n = 64
        pairs = [(0, i) for i in range(1, n)]  # hub 0
        pairs += [(i, (i + 1) % n) for i in range(1, n)]
        el = EdgeList.from_pairs(pairs, n)
        part2d = TwoDBlockPartitioning.build(n, 16)
        counts2d = part2d.edge_counts(el)
        from repro.graph.partition_1d import OneDPartitioning

        counts1d = OneDPartitioning.build(n, 16).edge_counts(el)
        assert imbalance(counts2d) < imbalance(counts1d)


class TestStateFootprint:
    def test_state_words_scale(self):
        """Section VIII-A: per-partition state is O(V / sqrt(p)) for 2D
        (vs O(V / p) for 1D/edge-list) — the 'scaling wall' argument."""
        n = 1 << 16
        p16 = TwoDBlockPartitioning.build(n, 16)
        p64 = TwoDBlockPartitioning.build(n, 64)
        # quadrupling p only halves the per-partition state
        assert p64.state_words_per_partition() == pytest.approx(
            p16.state_words_per_partition() / 2, rel=0.01
        )


class TestHypersparsity:
    def test_sparse_graph_goes_hypersparse(self):
        """Section VIII-A: blocks become hypersparse (fewer edges than
        vertices) once sqrt(p) exceeds the average degree."""
        scale = 10
        src, dst = rmat_edges(scale, 4 << scale, seed=0)  # avg degree 4
        el = EdgeList.from_arrays(src, dst, 1 << scale)
        part = TwoDBlockPartitioning.build(1 << scale, 64)  # sqrt(p)=8 > 4
        report = hypersparsity_report(el, part)
        assert report["hypersparse_fraction"] > 0.5

    def test_dense_enough_graph_is_fine(self):
        scale = 10
        src, dst = rmat_edges(scale, 64 << scale, seed=0)  # avg degree 64
        el = EdgeList.from_arrays(src, dst, 1 << scale)
        part = TwoDBlockPartitioning.build(1 << scale, 16)  # sqrt(p)=4 << 64
        report = hypersparsity_report(el, part)
        assert report["hypersparse_fraction"] < 0.2
