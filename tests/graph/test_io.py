"""Tests for edge-list file I/O."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graph.edge_list import EdgeList
from repro.graph.io import (
    load_binary_edges,
    load_text_edges,
    save_binary_edges,
    save_text_edges,
)


@pytest.fixture
def edges():
    return EdgeList.from_pairs([(0, 1), (2, 0), (1, 2), (3, 3)], 5)


class TestBinary:
    def test_roundtrip(self, edges, tmp_path):
        path = tmp_path / "graph.npz"
        save_binary_edges(edges, path)
        loaded = load_binary_edges(path)
        assert np.array_equal(loaded.src, edges.src)
        assert np.array_equal(loaded.dst, edges.dst)
        assert loaded.num_vertices == 5
        assert loaded.sorted_by_src == edges.sorted_by_src

    def test_sorted_flag_preserved(self, edges, tmp_path):
        path = tmp_path / "sorted.npz"
        save_binary_edges(edges.sorted_by_source(), path)
        assert load_binary_edges(path).sorted_by_src

    def test_bad_archive(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(GraphConstructionError):
            load_binary_edges(path)


class TestText:
    def test_roundtrip(self, edges, tmp_path):
        path = tmp_path / "graph.txt"
        save_text_edges(edges, path)
        loaded = load_text_edges(path, num_vertices=5)
        assert np.array_equal(loaded.src, edges.src)
        assert np.array_equal(loaded.dst, edges.dst)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# header\n0 1\n# middle\n1 2\n")
        loaded = load_text_edges(path)
        assert loaded.num_edges == 2
        assert loaded.num_vertices == 3

    def test_sortedness_detected(self, tmp_path):
        path = tmp_path / "s.txt"
        path.write_text("0 5\n1 3\n1 0\n4 2\n")
        assert load_text_edges(path).sorted_by_src
        path.write_text("4 2\n0 5\n")
        assert not load_text_edges(path).sorted_by_src

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        loaded = load_text_edges(path, num_vertices=3)
        assert loaded.num_edges == 0
        assert loaded.num_vertices == 3

    def test_bad_columns(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(GraphConstructionError):
            load_text_edges(path)


class TestEndToEnd:
    def test_saved_graph_traverses(self, tmp_path):
        from repro.algorithms.bfs import bfs
        from repro.graph.distributed import DistributedGraph
        from repro.reference.bfs import bfs_levels

        el = EdgeList.from_pairs(
            [(i, (i + 1) % 16) for i in range(16)], 16
        ).simple_undirected()
        path = tmp_path / "ring.npz"
        save_binary_edges(el, path)
        loaded = load_binary_edges(path)
        g = DistributedGraph.build(loaded, 4)
        assert np.array_equal(bfs(g, 0).data.levels, bfs_levels(el, 0))
