"""Tests for the DistributedGraph facade."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.errors import PartitioningError
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList


class TestBuildEdgeList:
    def test_figure3(self, figure3_edges):
        g = DistributedGraph.build(figure3_edges, 4)
        assert g.num_partitions == 4
        assert g.num_vertices == 8
        assert g.num_edges == 16
        assert g.strategy == "edge_list"

    def test_adjacency_slices_union(self, figure3_edges):
        """The union of per-rank slices is exactly each vertex's full
        adjacency list — the key property replica forwarding relies on."""
        g = DistributedGraph.build(figure3_edges, 4)
        for v in range(8):
            gathered = np.concatenate(
                [g.out_edges_local(r, v) for r in range(4)]
            )
            lo = np.searchsorted(figure3_edges.src, v, "left")
            hi = np.searchsorted(figure3_edges.src, v, "right")
            expected = np.sort(figure3_edges.dst[lo:hi])
            assert np.array_equal(np.sort(gathered), expected)

    def test_slices_come_from_owner_chain_only(self, figure3_edges):
        g = DistributedGraph.build(figure3_edges, 4)
        for v in range(8):
            for r in range(4):
                edges_here = g.out_edges_local(r, v).size
                if not g.min_owner(v) <= r <= g.max_owner(v):
                    assert edges_here == 0

    def test_masters_partition_vertices(self, figure3_edges):
        g = DistributedGraph.build(figure3_edges, 4)
        all_masters = np.concatenate([g.masters_on(r) for r in range(4)])
        assert np.array_equal(np.sort(all_masters), np.arange(8))

    def test_degree(self, figure3_edges):
        g = DistributedGraph.build(figure3_edges, 4)
        assert g.degree(2) == 6
        assert g.degree(0) == 1

    def test_is_split(self, figure3_edges):
        g = DistributedGraph.build(figure3_edges, 4)
        assert g.is_split(2) and g.is_split(5)
        assert not g.is_split(0)

    def test_replica_ranks(self, figure3_edges):
        g = DistributedGraph.build(figure3_edges, 4)
        assert list(g.replica_ranks(2)) == [0, 1, 2]
        assert list(g.replica_ranks(0)) == [0]

    def test_locator_directory_present(self, figure3_edges):
        g = DistributedGraph.build(figure3_edges, 4)
        assert g.locator_directory is not None
        assert g.locator_directory.min_owner(5) == 2


class TestBuild1D:
    def test_min_equals_max_owner(self, figure3_edges):
        g = DistributedGraph.build(figure3_edges, 4, strategy="1d")
        assert np.array_equal(g.min_owners, g.max_owners)
        assert g.locator_directory is None

    def test_full_adjacency_on_single_rank(self, figure3_edges):
        g = DistributedGraph.build(figure3_edges, 4, strategy="1d")
        for v in range(8):
            r = g.min_owner(v)
            lo = np.searchsorted(figure3_edges.src, v, "left")
            hi = np.searchsorted(figure3_edges.src, v, "right")
            assert g.out_edges_local(r, v).size == hi - lo

    def test_unknown_strategy(self, figure3_edges):
        with pytest.raises(PartitioningError):
            DistributedGraph.build(figure3_edges, 4, strategy="3d")


class TestGhostCandidates:
    def test_populated_for_remote_hubs(self, star_graph):
        g = DistributedGraph.build(star_graph, 4, num_ghosts=4)
        hub = int(np.argmax(star_graph.out_degrees()))
        # partitions holding many leaf->hub edges but not mastering the hub
        # should select it as a ghost candidate
        found = any(
            hub in g.partitions[r].ghost_candidates
            for r in range(4)
            if g.min_owner(hub) != r
        )
        assert found

    def test_zero_budget_gives_empty(self, star_graph):
        g = DistributedGraph.build(star_graph, 4, num_ghosts=0)
        assert all(p.ghost_candidates.size == 0 for p in g.partitions)


class TestLocalPartition:
    def test_counts(self, figure3_edges):
        g = DistributedGraph.build(figure3_edges, 4)
        assert sum(p.num_local_edges for p in g.partitions) == 16
        for p in g.partitions:
            assert p.num_state_vertices == p.state_hi - p.state_lo + 1
            assert p.holds_vertex(p.state_lo)
            assert not p.holds_vertex(p.state_hi + 1)


@settings(max_examples=30, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 11)), min_size=4, max_size=60
    ),
    p=st.integers(min_value=1, max_value=4),
)
def test_adjacency_union_property(pairs, p):
    """For arbitrary graphs and partition counts, per-rank adjacency slices
    union to the full adjacency with no duplication."""
    el = EdgeList.from_pairs(pairs, num_vertices=12).simple_undirected()
    if el.num_edges < p:
        return
    g = DistributedGraph.build(el, p)
    for v in range(12):
        gathered = np.concatenate(
            [g.out_edges_local(r, v) for r in range(p)]
        ) if p else np.array([])
        lo = np.searchsorted(el.src, v, "left")
        hi = np.searchsorted(el.src, v, "right")
        assert np.array_equal(np.sort(gathered), np.sort(el.dst[lo:hi]))
