"""Property tests for the distributed sample sort."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np

from repro.graph.dist_sort import sample_sort_edges
from repro.graph.edge_list import EdgeList
from repro.runtime.costmodel import laptop


@settings(max_examples=30, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 31), st.integers(0, 31)), min_size=1, max_size=150
    ),
    p=st.integers(min_value=1, max_value=6),
    seed=st.integers(0, 10),
)
def test_sample_sort_equals_sequential_sort(pairs, p, seed):
    """For arbitrary edge lists, rank counts and sampling seeds, the
    distributed sort's output is bit-identical to a sequential stable sort."""
    edges = EdgeList.from_pairs(pairs, num_vertices=32)
    result = sample_sort_edges(edges, p, laptop(), seed=seed)
    expected = edges.sorted_by_source()
    assert np.array_equal(result.edges.src, expected.src)
    assert np.array_equal(result.edges.dst, expected.dst)
    assert result.time_us >= 0.0
    assert result.splitters.size == p - 1 or edges.num_edges == 0


@settings(max_examples=20, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 31), st.integers(0, 31)), min_size=4, max_size=150
    ),
    p=st.integers(min_value=2, max_value=6),
)
def test_exchange_bounded_by_edges(pairs, p):
    """The all-to-all never moves more than every edge once."""
    edges = EdgeList.from_pairs(pairs, num_vertices=32)
    result = sample_sort_edges(edges, p, laptop())
    assert 0 <= result.exchange_bytes <= edges.num_edges * 16
    assert result.bucket_imbalance >= 1.0 - 1e-12
