"""Tests for partition-quality metrics (the Figure 2 machinery)."""

import numpy as np

from repro.generators.rmat import rmat_edges
from repro.graph.edge_list import EdgeList
from repro.graph.metrics import quality_1d, quality_2d, quality_edge_list


def _rmat(scale=10, seed=0):
    src, dst = rmat_edges(scale, 16 << scale, seed=seed)
    return EdgeList.from_arrays(src, dst, 1 << scale).permuted(seed=seed + 1)


class TestEdgeListQuality:
    def test_exact_balance(self):
        q = quality_edge_list(_rmat(), 16)
        assert q.edge_imbalance < 1.001
        assert q.strategy == "edge_list"

    def test_accepts_unsorted_input(self):
        el = EdgeList.from_pairs([(3, 0), (1, 2), (0, 1), (2, 3)], 4)
        q = quality_edge_list(el, 2)
        assert q.num_partitions == 2


class TestComparativeShape:
    """The Figure 2 ordering on a scale-free graph."""

    def test_1d_worst_edge_list_best(self):
        edges = _rmat(scale=12)
        p = 64
        q1 = quality_1d(edges, p)
        q2 = quality_2d(edges, p)
        qe = quality_edge_list(edges, p)
        assert qe.edge_imbalance <= q2.edge_imbalance
        assert q2.edge_imbalance <= q1.edge_imbalance

    def test_1d_imbalance_grows_with_p(self):
        """Weak-scaling shape: fixing the graph, more partitions make the
        hub mass a bigger fraction of each fair share."""
        edges = _rmat(scale=12)
        i8 = quality_1d(edges, 8).edge_imbalance
        i128 = quality_1d(edges, 128).edge_imbalance
        assert i128 > i8


class TestCounts:
    def test_totals(self):
        import pytest

        edges = _rmat(scale=9)
        for q in (quality_1d(edges, 8), quality_2d(edges, 8), quality_edge_list(edges, 8)):
            # every strategy accounts for exactly the input edges
            assert q.mean_edges * q.num_partitions == pytest.approx(edges.num_edges)
            assert q.max_edges > 0
            assert np.isfinite(q.edge_imbalance)
