"""Tests for subgraph extraction."""

import numpy as np
import pytest

from repro.graph.edge_list import EdgeList
from repro.graph.subgraph import induced_subgraph, kcore_subgraph, largest_component


class TestInducedSubgraph:
    def test_basic(self, triangle_graph):
        sub = induced_subgraph(triangle_graph, np.array([0, 1, 2]))
        assert sub.num_vertices == 3
        assert sub.edges.num_edges == 6  # the first triangle, both directions

    def test_relabelling_compact(self):
        el = EdgeList.from_pairs([(2, 7), (7, 9)], 10).simple_undirected()
        sub = induced_subgraph(el, np.array([2, 7, 9]))
        assert sub.num_vertices == 3
        assert set(sub.edges.src.tolist()) <= {0, 1, 2}
        assert list(sub.original_ids) == [2, 7, 9]

    def test_to_original(self):
        el = EdgeList.from_pairs([(2, 7)], 10).simple_undirected()
        sub = induced_subgraph(el, np.array([2, 7]))
        assert list(sub.to_original(np.array([0, 1]))) == [2, 7]

    def test_crossing_edges_dropped(self):
        el = EdgeList.from_pairs([(0, 1), (1, 2)], 3).simple_undirected()
        sub = induced_subgraph(el, np.array([0, 1]))
        assert sub.edges.num_edges == 2  # only 0<->1 survives

    def test_duplicates_collapsed(self):
        el = EdgeList.from_pairs([(0, 1)], 2).simple_undirected()
        sub = induced_subgraph(el, np.array([0, 0, 1, 1]))
        assert sub.num_vertices == 2

    def test_out_of_range(self):
        el = EdgeList.from_pairs([(0, 1)], 2)
        with pytest.raises(ValueError):
            induced_subgraph(el, np.array([5]))

    def test_empty_selection(self):
        el = EdgeList.from_pairs([(0, 1)], 2).simple_undirected()
        sub = induced_subgraph(el, np.array([], dtype=np.int64))
        assert sub.num_vertices == 0
        assert sub.edges.num_edges == 0


class TestLargestComponent:
    def test_picks_giant(self):
        # component A: 0-1-2 (3 vertices); component B: 3-4 (2 vertices)
        el = EdgeList.from_pairs([(0, 1), (1, 2), (3, 4)], 5).simple_undirected()
        sub = largest_component(el)
        assert sub.num_vertices == 3
        assert set(sub.original_ids.tolist()) == {0, 1, 2}

    def test_connected_graph_unchanged_count(self, path_graph):
        sub = largest_component(path_graph)
        assert sub.num_vertices == path_graph.num_vertices
        assert sub.edges.num_edges == path_graph.num_edges

    def test_traversable(self):
        """The extracted giant component feeds straight into the framework
        and is fully reachable."""
        from repro.algorithms.bfs import bfs
        from repro.graph.distributed import DistributedGraph

        el = EdgeList.from_pairs(
            [(i, i + 1) for i in range(20)] + [(30, 31)], 32
        ).simple_undirected()
        sub = largest_component(el)
        g = DistributedGraph.build(sub.edges, 4)
        r = bfs(g, 0)
        assert r.data.num_reached == sub.num_vertices


class TestKCoreSubgraph:
    def test_extracts_core(self):
        # 4-clique with a pendant: 3-core is the clique
        pairs = [(i, j) for i in range(4) for j in range(i + 1, 4)] + [(0, 4)]
        el = EdgeList.from_pairs(pairs, 5).simple_undirected()
        sub = kcore_subgraph(el, 3)
        assert sub.num_vertices == 4
        assert sub.edges.num_edges == 12  # K4 both directions

    def test_empty_core(self, path_graph):
        sub = kcore_subgraph(path_graph, 2)
        assert sub.num_vertices == 0
