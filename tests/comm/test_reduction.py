"""Tests for the simulated tree all-reduce."""

import operator

import pytest

from repro.comm.reduction import tree_allreduce


class TestValues:
    def test_sum(self):
        out = tree_allreduce([1, 2, 3, 4], operator.add)
        assert out.value == 10

    def test_max(self):
        out = tree_allreduce([5, 9, 2], max)
        assert out.value == 9

    def test_single_rank(self):
        out = tree_allreduce([42], operator.add)
        assert out.value == 42
        assert out.levels == 0
        assert out.time_us == 0.0
        assert out.messages == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tree_allreduce([], operator.add)


class TestCostModel:
    def test_levels_log2(self):
        assert tree_allreduce([0] * 8, operator.add).levels == 3
        assert tree_allreduce([0] * 9, operator.add).levels == 4

    def test_time_scales_with_latency(self):
        a = tree_allreduce([0] * 16, operator.add, hop_latency_us=1.0)
        b = tree_allreduce([0] * 16, operator.add, hop_latency_us=2.0)
        assert b.time_us == pytest.approx(2 * a.time_us)

    def test_message_count(self):
        assert tree_allreduce([0] * 5, operator.add).messages == 8
