"""Tests for the hypercube routing topology (related-work comparison)."""

import pytest

from repro.comm.mailbox import Mailbox
from repro.comm.message import KIND_VISITOR
from repro.comm.network import Network
from repro.comm.routing import HypercubeTopology, make_topology
from repro.errors import RoutingError


class TestStructure:
    def test_channels_are_log_p(self):
        topo = HypercubeTopology(16)
        for r in range(16):
            assert len(topo.channels(r)) == 4
            for c in topo.channels(r):
                assert bin(r ^ c).count("1") == 1  # single-bit neighbours

    def test_hops_bounded_by_log_p(self):
        topo = HypercubeTopology(32)
        for s in range(32):
            for d in range(32):
                if s != d:
                    route = topo.route(s, d)
                    assert route[-1] == d
                    assert len(route) == bin(s ^ d).count("1")

    def test_power_of_two_required(self):
        with pytest.raises(RoutingError):
            HypercubeTopology(12)

    def test_factory(self):
        assert make_topology("hypercube", 8).name == "hypercube"

    def test_single_rank(self):
        topo = HypercubeTopology(1)
        assert topo.dimensions == 0


class TestDelivery:
    def test_all_pairs_deliver(self):
        p = 16
        net = Network(p)
        topo = HypercubeTopology(p)
        boxes = [Mailbox(r, topo, net) for r in range(p)]
        for s in range(p):
            for d in range(p):
                if s != d:
                    boxes[s].send(d, KIND_VISITOR, (s, d), 8)
        for b in boxes:
            b.flush()
        delivered = {r: [] for r in range(p)}
        for _ in range(3 * topo.dimensions):
            arrivals = net.advance()
            for r, box in enumerate(boxes):
                for env in box.receive(arrivals[r]):
                    delivered[r].append(env.payload)
            for b in boxes:
                b.flush()
            if net.idle() and not any(b.has_buffered() for b in boxes):
                break
        for d in range(p):
            assert {pair[0] for pair in delivered[d]} == set(range(p)) - {d}


class TestTraversalIntegration:
    def test_bfs_over_hypercube(self, rmat_small):
        import numpy as np

        from repro.algorithms.bfs import bfs
        from repro.graph.distributed import DistributedGraph
        from repro.reference.bfs import bfs_levels

        g = DistributedGraph.build(rmat_small, 8, num_ghosts=4)
        s = int(rmat_small.src[0])
        r = bfs(g, s, topology="hypercube")
        assert np.array_equal(r.data.levels, bfs_levels(rmat_small, s))
