"""Unit tests for the reliable exactly-once transport."""

import pytest

from repro.comm.faults import CrashEvent, FaultPlan
from repro.comm.message import (
    ACK_PACKET_BYTES,
    KIND_VISITOR,
    RELIABLE_HEADER_BYTES,
    Envelope,
    Packet,
)
from repro.comm.reliable import ReliableTransport
from repro.errors import CommunicationError


def visitor_packet(src, dst, tag):
    env = Envelope(dest=dst, kind=KIND_VISITOR, payload=tag, size_bytes=16)
    return Packet(src=src, hop_dest=dst, envelopes=[env])


def payloads(packets):
    return [env.payload for pkt in packets for env in pkt.envelopes]


def drain(transport, limit=8):
    """Advance empty ticks until trailing acks settle."""
    for _ in range(limit):
        if transport.idle():
            return
        transport.advance()
    assert transport.idle()


class TestValidation:
    def test_num_ranks(self):
        with pytest.raises(CommunicationError):
            ReliableTransport(0)

    def test_timeout_floor(self):
        with pytest.raises(CommunicationError):
            ReliableTransport(2, retransmit_timeout=2)

    def test_invalid_destination(self):
        t = ReliableTransport(2)
        with pytest.raises(CommunicationError):
            t.send_packet(visitor_packet(0, 5, "x"))

    def test_crash_requires_recovery_manager(self):
        plan = FaultPlan(crashes=(CrashEvent(tick=1, rank=0),))
        t = ReliableTransport(2, plan)
        with pytest.raises(CommunicationError, match="recovery"):
            t.advance()


class TestFaultFreeDelivery:
    def test_single_packet(self):
        t = ReliableTransport(2)
        t.send_packet(visitor_packet(0, 1, "a"))
        assert t.packets_in_flight() == 1
        assert t.visitor_envelopes_in_flight() == 1
        released = t.advance()
        assert payloads(released[1]) == ["a"]
        assert t.packets_in_flight() == 0
        rep = t.take_report()
        assert rep.data_latency >= 1
        assert sum(rep.retrans_packets) == 0
        assert rep.dropped == rep.duplicated == rep.duplicates_discarded == 0

    def test_canonical_release_order(self):
        t = ReliableTransport(4)
        # inject out of src order; release must sort by (src, seq)
        t.send_packet(visitor_packet(3, 1, "c0"))
        t.send_packet(visitor_packet(0, 1, "a0"))
        t.send_packet(visitor_packet(3, 1, "c1"))
        t.send_packet(visitor_packet(0, 1, "a1"))
        released = t.advance()
        assert payloads(released[1]) == ["a0", "a1", "c0", "c1"]

    def test_sequence_numbers_per_channel(self):
        t = ReliableTransport(3)
        p1 = visitor_packet(0, 1, "x")
        p2 = visitor_packet(0, 2, "y")
        p3 = visitor_packet(0, 1, "z")
        for p in (p1, p2, p3):
            t.send_packet(p)
        assert (p1.seq, p2.seq, p3.seq) == (0, 0, 1)

    def test_overhead_accounting(self):
        t = ReliableTransport(2)
        pkt = visitor_packet(0, 1, "a")
        t.send_packet(pkt)
        t.advance()
        rep = t.take_report()
        # sender pays the reliable header once; no retransmissions happened
        assert rep.overhead_bytes[0] == RELIABLE_HEADER_BYTES
        assert sum(rep.retrans_bytes) == 0
        # the receiver's cumulative ack departs in the round after release
        # (standalone — no reverse data to piggyback on)
        ack_seen = rep.ack_packets[1]
        assert rep.overhead_bytes[1] == ack_seen * ACK_PACKET_BYTES
        for _ in range(6):
            if t.idle():
                break
            t.advance()
            ack_seen += t.take_report().ack_packets[1]
        assert ack_seen == 1
        assert t.idle()

    def test_wire_totals_include_headers(self):
        t = ReliableTransport(2)
        pkt = visitor_packet(0, 1, "a")
        t.send_packet(pkt)
        t.advance()
        drain(t)
        # one data transmission (+ reliable header) and one standalone ack
        assert t.total_packets == 2
        assert t.total_bytes == pkt.wire_bytes + RELIABLE_HEADER_BYTES + ACK_PACKET_BYTES


class TestFaultyDelivery:
    def _run(self, plan, n=40):
        t = ReliableTransport(4, plan)
        tags = []
        for i in range(n):
            tag = f"m{i}"
            tags.append(tag)
            t.send_packet(visitor_packet(i % 3, 3, tag))
        released = t.advance()
        return t, released, tags

    def test_drops_are_retransmitted_same_tick(self):
        plan = FaultPlan(seed=11, drop_rate=0.3)
        t, released, tags = self._run(plan)
        # every logical message released within the single advance() call
        assert sorted(payloads(released[3])) == sorted(tags)
        rep = t.take_report()
        assert rep.dropped > 0
        assert sum(rep.retrans_packets) > 0
        assert sum(rep.retrans_bytes) > 0
        drain(t, limit=20)

    def test_duplicates_are_discarded(self):
        plan = FaultPlan(seed=11, duplicate_rate=0.6)
        t, released, tags = self._run(plan)
        assert sorted(payloads(released[3])) == sorted(tags)  # exactly once
        assert t.take_report().duplicated > 0
        # delayed duplicate copies arrive on later ticks and are discarded
        discarded = t.take_report().duplicates_discarded
        for _ in range(20):
            if t.idle():
                break
            for r, pkts in enumerate(t.advance()):
                assert not pkts, f"duplicate released at rank {r}"
            discarded += t.take_report().duplicates_discarded
        assert t.idle()
        assert discarded > 0

    def test_delays_stretch_latency_not_schedule(self):
        plan = FaultPlan(seed=11, delay_rate=0.8, max_delay=5)
        t, released, tags = self._run(plan)
        assert sorted(payloads(released[3])) == sorted(tags)
        rep = t.take_report()
        assert rep.delayed > 0
        assert rep.data_latency > 1
        drain(t, limit=30)

    def test_same_seed_same_wire_behaviour(self):
        plan = FaultPlan(seed=9, drop_rate=0.2, duplicate_rate=0.2, delay_rate=0.2)
        runs = []
        for _ in range(2):
            t, released, _ = self._run(plan)
            rep = t.take_report()
            runs.append(
                (
                    payloads(released[3]),
                    rep.rounds,
                    rep.dropped,
                    rep.duplicated,
                    rep.delayed,
                    tuple(rep.retrans_packets),
                    t.total_packets,
                    t.total_bytes,
                )
            )
        assert runs[0] == runs[1]

    def test_unrecoverable_fabric_raises(self):
        plan = FaultPlan(seed=1, drop_rate=0.99)
        t = ReliableTransport(2, plan, max_attempts=3)
        t.send_packet(visitor_packet(0, 1, "doomed"))
        with pytest.raises(CommunicationError, match="retransmission attempts"):
            t.advance()


class TestChannelWindow:
    def test_window_validation(self):
        with pytest.raises(CommunicationError):
            ReliableTransport(2, channel_window=0)

    def test_window_defers_but_delivers_in_order(self):
        t = ReliableTransport(2, channel_window=1)
        tags = [f"m{i}" for i in range(6)]
        for tag in tags:
            t.send_packet(visitor_packet(0, 1, tag))
        released, stalls = [], 0
        for _ in range(40):
            arrivals = t.advance()
            released.extend(payloads(arrivals[1]))
            stalls += t.take_report().window_stalls
            if t.idle():
                break
        assert released == tags  # per-channel FIFO preserved
        assert stalls > 0  # the credit gate engaged

    def test_unbounded_window_never_stalls(self):
        t = ReliableTransport(2)
        for i in range(6):
            t.send_packet(visitor_packet(0, 1, i))
        stalls = 0
        for _ in range(20):
            t.advance()
            stalls += t.take_report().window_stalls
            if t.idle():
                break
        assert t.idle() and stalls == 0
