"""Tests for routing topologies — Section III-B and Figure 4."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.comm.routing import (
    DirectTopology,
    Grid2DTopology,
    Grid3DTopology,
    make_topology,
    max_channels,
    mean_hops,
)
from repro.errors import RoutingError


class TestPaperFigure4Example:
    """'As an example, when Rank 11 sends to Rank 5, the message is first
    aggregated and routed through Rank 9.'  (16 ranks, 4x4 grid)"""

    def test_route_11_to_5_via_9(self):
        topo = Grid2DTopology(16, shape=(4, 4))
        assert topo.route(11, 5) == [9, 5]

    def test_first_hop(self):
        topo = Grid2DTopology(16, shape=(4, 4))
        assert topo.next_hop(11, 5) == 9
        assert topo.next_hop(9, 5) == 5


class TestDirect:
    def test_single_hop(self):
        topo = DirectTopology(8)
        for s in range(8):
            for d in range(8):
                if s != d:
                    assert topo.route(s, d) == [d]

    def test_channels_all_to_all(self):
        topo = DirectTopology(8)
        assert len(topo.channels(3)) == 7

    def test_rank_bounds(self):
        topo = DirectTopology(4)
        with pytest.raises(RoutingError):
            topo.next_hop(0, 4)
        with pytest.raises(RoutingError):
            topo.next_hop(-1, 0)


class TestGrid2D:
    def test_channel_count_is_sqrt_p(self):
        """'reduces the number of communicating channels a process requires
        to O(sqrt(p))'"""
        topo = Grid2DTopology(64)  # 8x8
        for r in range(64):
            assert len(topo.channels(r)) == 7 + 7

    def test_at_most_two_hops(self):
        topo = Grid2DTopology(16)
        for s in range(16):
            for d in range(16):
                if s != d:
                    assert topo.num_hops(s, d) <= 2

    def test_same_row_is_one_hop(self):
        topo = Grid2DTopology(16, shape=(4, 4))
        assert topo.route(4, 7) == [7]

    def test_same_col_is_one_hop(self):
        topo = Grid2DTopology(16, shape=(4, 4))
        assert topo.route(1, 13) == [13]

    def test_bad_shape(self):
        with pytest.raises(RoutingError):
            Grid2DTopology(16, shape=(3, 4))

    def test_non_square_p(self):
        topo = Grid2DTopology(12)  # 3x4
        assert topo.rows * topo.cols == 12
        for s in range(12):
            for d in range(12):
                if s != d:
                    assert topo.route(s, d)[-1] == d


class TestGrid3D:
    def test_at_most_three_hops(self):
        topo = Grid3DTopology(64)  # 4x4x4
        for s in range(0, 64, 5):
            for d in range(0, 64, 7):
                if s != d:
                    assert topo.num_hops(s, d) <= 3

    def test_channel_count_is_cbrt_p(self):
        topo = Grid3DTopology(64)
        for r in range(64):
            assert len(topo.channels(r)) == 3 + 3 + 3

    def test_fewer_channels_than_2d_at_scale(self):
        """The reason BG/P experiments use 3D routing: further channel
        reduction at large p."""
        p = 4096
        topo2 = Grid2DTopology(p)
        topo3 = Grid3DTopology(p)
        assert max_channels(topo3) < max_channels(topo2) < p - 1

    def test_coords_roundtrip(self):
        topo = Grid3DTopology(24)
        seen = set()
        for r in range(24):
            seen.add(topo.coords(r))
        assert len(seen) == 24


class TestFactory:
    def test_names(self):
        assert make_topology("direct", 4).name == "direct"
        assert make_topology("2d", 4).name == "2d"
        assert make_topology("3d", 8).name == "3d"

    def test_hypercube(self):
        assert make_topology("hypercube", 4).name == "hypercube"

    def test_unknown(self):
        with pytest.raises(RoutingError):
            make_topology("butterfly", 4)


class TestMeanHops:
    def test_direct_is_one(self):
        assert mean_hops(DirectTopology(6)) == 1.0

    def test_2d_between_one_and_two(self):
        h = mean_hops(Grid2DTopology(16))
        assert 1.0 < h < 2.0

    def test_single_rank(self):
        assert mean_hops(DirectTopology(1)) == 0.0


@settings(max_examples=25, deadline=None)
@given(
    p=st.sampled_from([4, 8, 12, 16, 27, 36, 64]),
    name=st.sampled_from(["direct", "2d", "3d"]),
)
def test_all_routes_terminate_property(p, name):
    """Every route reaches its destination within the topology's hop bound."""
    topo = make_topology(name, p)
    bound = {"direct": 1, "2d": 2, "3d": 3}[name]
    for s in range(p):
        for d in range(p):
            if s != d:
                route = topo.route(s, d)
                assert route[-1] == d
                assert len(route) <= bound
