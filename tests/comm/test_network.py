"""Tests for the store-and-forward network."""

import pytest

from repro.comm.message import KIND_VISITOR, Envelope, Packet
from repro.comm.network import Network
from repro.errors import CommunicationError


def _packet(src, dest, n=1):
    envs = [Envelope(dest=dest, kind=KIND_VISITOR, payload=i, size_bytes=8) for i in range(n)]
    return Packet(src=src, hop_dest=dest, envelopes=envs)


class TestDelivery:
    def test_one_tick_latency(self):
        net = Network(4)
        net.send_packet(_packet(0, 2))
        # packets sent during tick t arrive at the t+1 boundary, not later
        first = net.advance()
        assert len(first[2]) == 1
        assert not first[0]
        second = net.advance()
        assert all(not inbox for inbox in second)

    def test_multiple_packets_same_dest(self):
        net = Network(3)
        net.send_packet(_packet(0, 1))
        net.send_packet(_packet(2, 1))
        arrivals = net.advance()
        assert len(arrivals[1]) == 2

    def test_invalid_dest(self):
        net = Network(2)
        with pytest.raises(CommunicationError):
            net.send_packet(_packet(0, 5))

    def test_zero_ranks_invalid(self):
        with pytest.raises(CommunicationError):
            Network(0)


class TestIdleTracking:
    def test_idle_initially(self):
        assert Network(2).idle()

    def test_busy_after_send_until_drained(self):
        net = Network(2)
        net.send_packet(_packet(0, 1))
        assert not net.idle()
        net.advance()  # handed to the destination mailbox
        assert net.idle()

    def test_packets_in_flight_counts(self):
        net = Network(4)
        net.send_packet(_packet(0, 1))
        net.send_packet(_packet(0, 2))
        assert net.packets_in_flight() == 2


class TestAccounting:
    def test_totals(self):
        net = Network(2)
        p = _packet(0, 1, n=3)
        net.send_packet(p)
        assert net.total_packets == 1
        assert net.total_bytes == p.wire_bytes
