"""Tests for the counting quiescence detector (global_empty)."""

import pytest

from repro.comm.mailbox import Mailbox
from repro.comm.message import KIND_CONTROL, KIND_VISITOR
from repro.comm.network import Network
from repro.comm.routing import DirectTopology
from repro.comm.termination import LocalSnapshot, QuiescenceDetector
from repro.errors import TerminationError


class Harness:
    """Minimal fabric driving detectors, with scriptable local state."""

    def __init__(self, p):
        self.net = Network(p)
        topo = DirectTopology(p)
        self.boxes = [Mailbox(r, topo, self.net) for r in range(p)]
        self.quiet = [True] * p
        self.detectors = [
            QuiescenceDetector(r, p, self.boxes[r], self._snapshot_fn(r))
            for r in range(p)
        ]

    def _snapshot_fn(self, r):
        return lambda: LocalSnapshot(
            sent=self.boxes[r].visitors_sent,
            received=self.boxes[r].visitors_received,
            quiet=self.quiet[r],
        )

    def tick(self):
        arrivals = self.net.advance()
        for r, box in enumerate(self.boxes):
            for env in box.receive(arrivals[r]):
                if env.kind == KIND_CONTROL:
                    self.detectors[r].handle(env.payload)
        if not self.detectors[0].terminated:
            self.detectors[0].maybe_start_wave()
        for box in self.boxes:
            box.flush()

    def run(self, max_ticks=200):
        for t in range(max_ticks):
            self.tick()
            if all(d.terminated for d in self.detectors):
                return t
        return None


class TestQuietSystemTerminates:
    @pytest.mark.parametrize("p", [1, 2, 3, 8, 13])
    def test_terminates(self, p):
        h = Harness(p)
        assert h.run() is not None

    def test_needs_two_waves(self):
        """Double counting: a single wave never announces termination."""
        h = Harness(4)
        h.tick()  # wave started
        assert not h.detectors[0].terminated


class TestInFlightMessagesBlockTermination:
    def test_unreceived_visitor_blocks(self):
        h = Harness(2)
        # a visitor is sent but its packet is parked, never delivered
        h.boxes[0].send(1, KIND_VISITOR, "v", 8)
        for _ in range(20):
            arrivals = h.net.advance()
            # deliver control traffic only; steal visitor packets
            for r, box in enumerate(h.boxes):
                keep = []
                for pkt in arrivals[r]:
                    if any(e.kind == KIND_VISITOR for e in pkt.envelopes):
                        continue  # drop: simulates in-flight forever
                    keep.append(pkt)
                for env in box.receive(keep):
                    if env.kind == KIND_CONTROL:
                        h.detectors[r].handle(env.payload)
            if not h.detectors[0].terminated:
                h.detectors[0].maybe_start_wave()
            for box in h.boxes:
                box.flush()
        assert not any(d.terminated for d in h.detectors)

    def test_busy_rank_blocks(self):
        h = Harness(3)
        h.quiet[2] = False
        for _ in range(30):
            h.tick()
        assert not h.detectors[0].terminated
        # rank quiesces -> termination follows
        h.quiet[2] = True
        assert h.run() is not None


class TestActivityBetweenWavesBlocksTermination:
    def test_send_after_first_quiet_wave_delays(self):
        """Counters changing between waves invalidate the first snapshot:
        the detector must take two *fresh* consistent waves afterwards."""
        h = Harness(2)
        h.tick()  # start wave 0
        # inject traffic mid-protocol
        h.boxes[1].send(0, KIND_VISITOR, "late", 8)
        ticks = h.run()
        assert ticks is not None
        # the visitor was actually delivered before termination
        assert h.boxes[0].visitors_received == 1


class TestProtocolErrors:
    def test_non_root_cannot_start(self):
        h = Harness(2)
        with pytest.raises(TerminationError):
            h.detectors[1].maybe_start_wave()

    def test_unknown_message(self):
        h = Harness(2)
        with pytest.raises(TerminationError):
            h.detectors[0].handle(("bogus",))

    def test_stale_reply_rejected(self):
        h = Harness(3)
        h.tick()
        with pytest.raises(TerminationError):
            h.detectors[0].handle(("reply", 999, 0, 0, True))


class TestTerminateBroadcast:
    def test_all_ranks_learn(self):
        h = Harness(8)
        h.run()
        assert all(d.terminated for d in h.detectors)

    def test_waves_counted(self):
        h = Harness(4)
        h.run()
        assert h.detectors[0].waves_participated >= 2
