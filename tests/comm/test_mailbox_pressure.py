"""Bounded-mailbox flow control: the backpressure invariant, the
byte-granular ledger, and checkpoint round-tripping of flow-control state.
"""

import numpy as np
import pytest

from repro.comm.mailbox import Mailbox
from repro.comm.message import KIND_VISITOR
from repro.comm.network import Network
from repro.comm.routing import DirectTopology, Grid2DTopology
from repro.core.batch import VisitorBatch
from repro.errors import CommunicationError
from repro.memory.device import dram
from repro.memory.spill import SpillPager


def _fabric(p, topo_cls=DirectTopology, agg=16, cap=None, spill=False):
    net = Network(p)
    topo = topo_cls(p)
    pagers = [
        SpillPager(page_size=64, device=dram()) if spill else None
        for _ in range(p)
    ]
    boxes = [
        Mailbox(r, topo, net, aggregation_size=agg, capacity_bytes=cap,
                spill=pagers[r])
        for r in range(p)
    ]
    return net, boxes, pagers


def _batch(dests):
    n = len(dests)
    return (
        np.asarray(dests, dtype=np.int64),
        VisitorBatch(np.arange(n, dtype=np.int64), np.zeros(n, dtype=np.int64)),
    )


class TestBackpressureInvariant:
    def test_cap_validation(self):
        net = Network(2)
        with pytest.raises(CommunicationError):
            Mailbox(0, DirectTopology(2), net, capacity_bytes=0)

    def test_resident_bytes_never_exceed_cap(self):
        cap = 50
        net, boxes, _ = _fabric(2, agg=64, cap=cap)
        for i in range(40):
            boxes[0].send(1, KIND_VISITOR, i, 16)
            assert boxes[0].resident_bytes() <= cap
        assert boxes[0].max_resident_bytes <= cap
        assert boxes[0].bp_stalls > 0
        boxes[0].flush()
        assert boxes[0].resident_bytes() == 0

    def test_unbounded_mailbox_keeps_zero_counters(self):
        net, boxes, _ = _fabric(2, agg=64)
        for i in range(40):
            boxes[0].send(1, KIND_VISITOR, i, 16)
        assert boxes[0].bp_stalls == 0
        assert boxes[0].bp_spilled_bytes == 0
        assert boxes[0].max_resident_bytes == 0

    def test_ledger_arithmetic(self):
        # per-message wire size 16 + 8 = 24; cap 60 holds 2.5 messages
        net, boxes, _ = _fabric(2, agg=64, cap=60)
        mb = boxes[0]
        for _ in range(5):
            mb.send(1, KIND_VISITOR, 0, 16)
        # 5 * 24 = 120 buffered; 60 beyond the cap; ceil(60/24) = 3 stalls
        assert mb.bp_spilled_bytes == 60
        assert mb.bp_stalls == 3
        assert mb.resident_bytes() == 60
        mb.flush()
        assert mb.bp_unspilled_bytes == 60

    def test_spilled_always_read_back_by_flush(self):
        net, boxes, pagers = _fabric(2, agg=64, cap=40, spill=True)
        for i in range(30):
            boxes[0].send(1, KIND_VISITOR, i, 16)
        boxes[0].flush()
        assert boxes[0].bp_spilled_bytes == boxes[0].bp_unspilled_bytes > 0
        assert pagers[0].bytes_spilled == pagers[0].bytes_unspilled


class TestObjectBatchLedgerParity:
    """The byte-granular ledger must be envelope-boundary independent:
    N object sends and one N-visitor batch produce identical counters."""

    @pytest.mark.parametrize("topo_cls", [DirectTopology, Grid2DTopology])
    def test_send_batch_matches_n_sends(self, topo_cls):
        dests = [1, 1, 1, 2, 2, 1, 3, 3, 3, 3, 1, 2] * 3
        p = 4
        _, obj_boxes, _ = _fabric(p, topo_cls=topo_cls, agg=8, cap=40)
        _, bat_boxes, _ = _fabric(p, topo_cls=topo_cls, agg=8, cap=40)
        for d in dests:
            obj_boxes[0].send(d, KIND_VISITOR, 0, 16)
        darr, batch = _batch(dests)
        bat_boxes[0].send_stream(darr, batch, 16)
        for name in ("bp_stalls", "bp_spilled_bytes", "max_resident_bytes",
                     "visitors_sent", "packets_sent", "bytes_sent"):
            assert getattr(obj_boxes[0], name) == getattr(bat_boxes[0], name), name

    def test_split_batch_spill_matches_whole(self):
        _, a_boxes, _ = _fabric(2, agg=100, cap=40)
        _, b_boxes, _ = _fabric(2, agg=100, cap=40)
        darr, batch = _batch([1] * 20)
        a_boxes[0].send_batch(1, batch, 16)
        head, tail = batch.split(7)
        b_boxes[0].send_batch(1, head, 16)
        b_boxes[0].send_batch(1, tail, 16)
        assert a_boxes[0].bp_stalls == b_boxes[0].bp_stalls
        assert a_boxes[0].bp_spilled_bytes == b_boxes[0].bp_spilled_bytes


class TestSnapshotRoundTrip:
    """Regression: a checkpoint taken while routed envelopes sit in the
    aggregation buffers must round-trip the flow-control ledger, or the
    first replayed flush desynchronises backpressure accounting."""

    def _loaded_mailbox(self):
        # 3x3 grid: rank 0 -> 8 routes through an intermediate hop, so
        # buffered traffic is genuinely multi-hop.
        net, boxes, pagers = _fabric(9, topo_cls=Grid2DTopology, agg=64,
                                     cap=40, spill=True)
        mb = boxes[0]
        for i in range(10):
            mb.send(8, KIND_VISITOR, i, 16)
        assert mb.has_buffered() and mb.bp_spilled_bytes > 0
        return net, mb, pagers[0]

    def test_flow_control_state_round_trips(self):
        _, mb, _ = self._loaded_mailbox()
        snap = mb.snapshot_state()
        before = (dict(mb._buffer_bytes), dict(mb._spill_bytes),
                  mb.bp_stalls, mb.bp_spilled_bytes, mb.bp_unspilled_bytes,
                  mb.max_resident_bytes)
        # perturb past the checkpoint, then crash-restore
        for i in range(20):
            mb.send(8, KIND_VISITOR, 100 + i, 16)
        mb.flush()
        mb.restore_state(snap)
        after = (dict(mb._buffer_bytes), dict(mb._spill_bytes),
                 mb.bp_stalls, mb.bp_spilled_bytes, mb.bp_unspilled_bytes,
                 mb.max_resident_bytes)
        assert after == before

    def test_replayed_flush_is_consistent_after_restore(self):
        """After restore, re-running the identical sends and flushing must
        reproduce the pre-crash ledger exactly — and the unspilled total
        must match the spilled total once the buffers drain."""
        net, mb, pager = self._loaded_mailbox()
        snap = mb.snapshot_state()
        for i in range(10, 20):
            mb.send(8, KIND_VISITOR, i, 16)
        mb.flush()
        expect = (mb.bp_stalls, mb.bp_spilled_bytes, mb.bp_unspilled_bytes,
                  mb.packets_sent, mb.bytes_sent)
        mb.restore_state(snap)
        for i in range(10, 20):
            mb.send(8, KIND_VISITOR, i, 16)
        mb.flush()
        got = (mb.bp_stalls, mb.bp_spilled_bytes, mb.bp_unspilled_bytes,
               mb.packets_sent, mb.bytes_sent)
        assert got == expect
        assert mb.bp_spilled_bytes == mb.bp_unspilled_bytes

    def test_snapshot_shares_envelopes_not_containers(self):
        _, mb, _ = self._loaded_mailbox()
        snap = mb.snapshot_state()
        n_buffered = sum(len(b) for b in snap["buffers"].values())
        mb.flush()
        assert sum(len(b) for b in snap["buffers"].values()) == n_buffered
