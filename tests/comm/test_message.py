"""Tests for envelope / packet wire accounting."""

from repro.comm.message import (
    ENVELOPE_HEADER_BYTES,
    KIND_CONTROL,
    KIND_VISITOR,
    PACKET_HEADER_BYTES,
    Envelope,
    Packet,
)


class TestEnvelope:
    def test_wire_bytes(self):
        env = Envelope(dest=3, kind=KIND_VISITOR, payload="x", size_bytes=24)
        assert env.wire_bytes == 24 + ENVELOPE_HEADER_BYTES

    def test_kinds_distinct(self):
        assert KIND_VISITOR != KIND_CONTROL


class TestPacket:
    def test_empty_packet_is_header_only(self):
        pkt = Packet(src=0, hop_dest=1)
        assert pkt.wire_bytes == PACKET_HEADER_BYTES

    def test_wire_bytes_sum(self):
        envs = [
            Envelope(dest=1, kind=KIND_VISITOR, payload=None, size_bytes=8),
            Envelope(dest=1, kind=KIND_VISITOR, payload=None, size_bytes=16),
        ]
        pkt = Packet(src=0, hop_dest=1, envelopes=envs)
        expected = PACKET_HEADER_BYTES + sum(e.wire_bytes for e in envs)
        assert pkt.wire_bytes == expected

    def test_aggregation_amortises_header(self):
        """The whole point of aggregation: one fat packet beats n thin ones."""
        one_each = [
            Packet(src=0, hop_dest=1,
                   envelopes=[Envelope(1, KIND_VISITOR, None, 8)])
            for _ in range(16)
        ]
        fat = Packet(
            src=0, hop_dest=1,
            envelopes=[Envelope(1, KIND_VISITOR, None, 8) for _ in range(16)],
        )
        assert fat.wire_bytes < sum(p.wire_bytes for p in one_each)
