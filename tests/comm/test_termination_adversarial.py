"""Adversarial soundness of the counting quiescence detector.

The detector's guarantee is *safety*: it must never announce global
termination while visitor work remains anywhere — queued locally, buffered
in a mailbox, or in flight.  Here a seeded adversary delays control and
visitor packets and permutes delivery order across channels (per-channel
FIFO is preserved — that is what the fabric, plain or reliable,
guarantees), while a random workload spawns visitors that create work at
their destinations.  At every tick where the root has announced
termination, the system must genuinely be quiet; and once the workload
dries up, termination must still be reached (liveness under bounded
delay).
"""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np

from repro.comm.mailbox import Mailbox
from repro.comm.message import KIND_CONTROL, KIND_VISITOR
from repro.comm.network import Network
from repro.comm.routing import DirectTopology
from repro.comm.termination import LocalSnapshot, QuiescenceDetector


class AdversarialFabric:
    """Re-delivers flushed packets with seeded delays and cross-channel
    permutation.  Per-channel ``(src, dst)`` FIFO order is preserved and
    no packet is held more than ``max_hold`` ticks past arrival."""

    def __init__(self, num_ranks: int, rng, max_hold: int = 4):
        self.num_ranks = num_ranks
        self.rng = rng
        self.max_hold = max_hold
        self._channels: dict[tuple[int, int], deque] = {}

    def pending_visitor_count(self) -> int:
        return sum(
            env.count
            for q in self._channels.values()
            for _, pkt in q
            for env in pkt.envelopes
            if env.kind == KIND_VISITOR
        )

    def exchange(self, arrivals):
        for pkts in arrivals:
            for pkt in pkts:
                ch = (pkt.src, pkt.hop_dest)
                self._channels.setdefault(ch, deque()).append([0, pkt])
        groups: dict[int, list[list]] = {r: [] for r in range(self.num_ranks)}
        for ch in sorted(self._channels):
            q = self._channels[ch]
            release = int(self.rng.integers(0, len(q) + 1))
            if release == 0 and q and q[0][0] >= self.max_hold:
                release = 1  # bounded delay: the front packet is overdue
            batch = [q.popleft()[1] for _ in range(release)]
            if batch:
                groups[ch[1]].append(batch)
            for item in q:
                item[0] += 1
        out = [[] for _ in range(self.num_ranks)]
        for r, chunks in groups.items():
            order = self.rng.permutation(len(chunks))
            out[r] = [pkt for i in order for pkt in chunks[i]]
        return out


class ChaosHarness:
    """Random visitor workload over the adversarial fabric."""

    def __init__(self, p: int, seed: int, budget: int = 120):
        self.p = p
        self.rng = np.random.default_rng(seed)
        self.net = Network(p)
        topo = DirectTopology(p)
        self.boxes = [Mailbox(r, topo, self.net) for r in range(p)]
        self.fabric = AdversarialFabric(p, self.rng)
        self.work = [0] * p
        self.work[0] = 3  # seed work at the root's rank
        self.budget = budget  # total visitor sends (guarantees drain)
        self.detectors = [
            QuiescenceDetector(r, p, self.boxes[r], self._snapshot_fn(r))
            for r in range(p)
        ]
        # one guaranteed visitor so every example exercises the fabric
        self.boxes[0].send(p - 1, KIND_VISITOR, "seed", 8)

    def _snapshot_fn(self, r):
        return lambda: LocalSnapshot(
            sent=self.boxes[r].visitors_sent,
            received=self.boxes[r].visitors_received,
            quiet=self.work[r] == 0,
        )

    def work_remaining(self) -> bool:
        outstanding = sum(b.visitors_sent for b in self.boxes) - sum(
            b.visitors_received for b in self.boxes
        )
        return any(self.work) or outstanding > 0

    def tick(self):
        arrivals = self.fabric.exchange(self.net.advance())
        for r, box in enumerate(self.boxes):
            for env in box.receive(arrivals[r]):
                if env.kind == KIND_CONTROL:
                    self.detectors[r].handle(env.payload)
                else:
                    self.work[r] += 1  # each visitor creates local work
        for r in range(self.p):
            if self.work[r]:
                self.work[r] -= 1
                if self.budget > 0 and self.rng.random() < 0.7:
                    dest = int(self.rng.integers(0, self.p))
                    self.boxes[r].send(dest, KIND_VISITOR, "w", 8)
                    self.budget -= 1
        if not self.detectors[0].terminated:
            self.detectors[0].maybe_start_wave()
        for box in self.boxes:
            box.flush()


@settings(max_examples=15)
@given(
    p=st.sampled_from([2, 3, 5, 8]),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_detector_never_fires_with_work_remaining(p, seed):
    h = ChaosHarness(p, seed)
    terminated_at = None
    for t in range(800):
        h.tick()
        if h.detectors[0].terminated:
            # safety: the announcement implies the system is truly quiet
            assert not h.work_remaining(), (
                f"detector fired at tick {t} with work remaining (seed={seed})"
            )
            assert h.fabric.pending_visitor_count() == 0
        if all(d.terminated for d in h.detectors):
            terminated_at = t
            break
    # liveness: the workload is finite and delays are bounded
    assert terminated_at is not None, f"no termination within 800 ticks (seed={seed})"
    sent = sum(b.visitors_sent for b in h.boxes)
    recv = sum(b.visitors_received for b in h.boxes)
    assert sent == recv
    assert sent > 0  # the workload actually exercised the fabric


def test_withheld_visitor_blocks_forever():
    """Direct adversarial hold: a visitor packet parked past every wave
    keeps the detector silent no matter how control traffic is permuted."""
    h = ChaosHarness(2, seed=1, budget=0)
    h.work = [0, 0]
    h.boxes[0].send(1, KIND_VISITOR, "parked", 8)
    h.fabric.max_hold = 10**9  # the adversary never releases visitor data
    orig_exchange = AdversarialFabric.exchange

    def control_only(self, arrivals):
        out = orig_exchange(self, arrivals)
        kept = [[] for _ in range(self.num_ranks)]
        for r, pkts in enumerate(out):
            for pkt in pkts:
                if any(e.kind == KIND_VISITOR for e in pkt.envelopes):
                    continue  # swallow visitor packets entirely
                kept[r].append(pkt)
        return kept

    h.fabric.exchange = control_only.__get__(h.fabric, AdversarialFabric)
    for _ in range(60):
        h.tick()
    assert not any(d.terminated for d in h.detectors)
