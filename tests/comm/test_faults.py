"""Tests for the deterministic fault plan and injector."""

import pytest

from repro.comm.faults import CrashEvent, FaultDecision, FaultInjector, FaultPlan
from repro.errors import ConfigurationError


class TestFaultPlan:
    def test_defaults_are_noop(self):
        plan = FaultPlan()
        assert not plan.any_faults
        assert not plan.has_crashes

    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(drop_rate=1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(duplicate_rate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultPlan(delay_rate=2.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(max_delay=0)

    def test_crash_event_validated(self):
        with pytest.raises(ConfigurationError):
            CrashEvent(tick=0, rank=1)
        with pytest.raises(ConfigurationError):
            CrashEvent(tick=1, rank=-1)
        with pytest.raises(ConfigurationError):
            CrashEvent(tick=1, rank=0, down_rounds=0)

    def test_crashes_normalised_to_tuple(self):
        plan = FaultPlan(crashes=[CrashEvent(tick=3, rank=1)])
        assert isinstance(plan.crashes, tuple)
        assert plan.has_crashes and plan.any_faults

    def test_crashes_at(self):
        plan = FaultPlan(
            crashes=(CrashEvent(3, 1), CrashEvent(3, 2), CrashEvent(9, 0))
        )
        assert [e.rank for e in plan.crashes_at(3)] == [1, 2]
        assert plan.crashes_at(4) == []


class TestFromSpec:
    def test_full_spec(self):
        plan = FaultPlan.from_spec(
            "seed=7,drop=0.02,dup=0.01,delay=0.05,maxdelay=4,crash=40:2:6"
        )
        assert plan.seed == 7
        assert plan.drop_rate == 0.02
        assert plan.duplicate_rate == 0.01
        assert plan.delay_rate == 0.05
        assert plan.max_delay == 4
        assert plan.crashes == (CrashEvent(tick=40, rank=2, down_rounds=6),)

    def test_multiple_crashes(self):
        plan = FaultPlan.from_spec("crash=40:2+90:1:8")
        assert plan.crashes == (
            CrashEvent(tick=40, rank=2),
            CrashEvent(tick=90, rank=1, down_rounds=8),
        )

    def test_empty_spec_is_noop(self):
        assert not FaultPlan.from_spec("").any_faults

    @pytest.mark.parametrize(
        "spec",
        ["bogus=1", "drop", "drop=lots", "crash=40", "crash=a:b", "seed=x"],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec(spec)


class TestFaultInjector:
    def test_same_seed_same_sequence(self):
        plan = FaultPlan(seed=5, drop_rate=0.2, duplicate_rate=0.2, delay_rate=0.3)
        a = [FaultInjector(plan).decide() for _ in range(1)]  # warm check
        inj1, inj2 = FaultInjector(plan), FaultInjector(plan)
        seq1 = [inj1.decide() for _ in range(500)]
        seq2 = [inj2.decide() for _ in range(500)]
        assert seq1 == seq2
        assert (inj1.dropped, inj1.duplicated, inj1.delayed) == (
            inj2.dropped,
            inj2.duplicated,
            inj2.delayed,
        )
        assert isinstance(a[0], FaultDecision)

    def test_different_seeds_differ(self):
        def mk(s):
            inj = FaultInjector(FaultPlan(seed=s, drop_rate=0.2, duplicate_rate=0.2))
            return [inj.decide() for _ in range(200)]

        assert mk(1) != mk(2)

    def test_zero_rates_never_fault(self):
        inj = FaultInjector(FaultPlan(seed=1))
        for _ in range(100):
            d = inj.decide()
            assert not d.dropped and not d.duplicated and d.delay == 0
        assert inj.dropped == inj.duplicated == inj.delayed == 0

    def test_rates_roughly_respected(self):
        inj = FaultInjector(FaultPlan(seed=3, drop_rate=0.5))
        for _ in range(1000):
            inj.decide()
        assert 400 < inj.dropped < 600

    def test_delays_bounded(self):
        inj = FaultInjector(FaultPlan(seed=3, delay_rate=0.9, max_delay=3))
        delays = {inj.decide().delay for _ in range(500)}
        assert delays <= {0, 1, 2, 3}
        assert max(delays) >= 1
