"""Tests for the routed, aggregating mailbox."""

import pytest

from repro.comm.mailbox import Mailbox
from repro.comm.message import KIND_CONTROL, KIND_VISITOR
from repro.comm.network import Network
from repro.comm.routing import DirectTopology, Grid2DTopology
from repro.errors import CommunicationError


def _fabric(p, topo_cls=DirectTopology, agg=16, **topo_kwargs):
    net = Network(p)
    topo = topo_cls(p, **topo_kwargs)
    boxes = [Mailbox(r, topo, net, aggregation_size=agg) for r in range(p)]
    return net, boxes


def _pump(net, boxes, max_ticks=10):
    """Run delivery ticks until the fabric drains; returns {rank: payloads}."""
    delivered = {r: [] for r in range(len(boxes))}
    for _ in range(max_ticks):
        arrivals = net.advance()
        for r, box in enumerate(boxes):
            for env in box.receive(arrivals[r]):
                delivered[r].append(env.payload)
        for box in boxes:
            box.flush()
        if net.idle() and not any(b.has_buffered() for b in boxes):
            break
    return delivered


class TestDirectDelivery:
    def test_simple_send(self):
        net, boxes = _fabric(2)
        boxes[0].send(1, KIND_VISITOR, "hello", 8)
        boxes[0].flush()
        delivered = _pump(net, boxes)
        assert delivered[1] == ["hello"]

    def test_local_send_short_circuits(self):
        net, boxes = _fabric(2)
        boxes[0].send(0, KIND_VISITOR, "self", 8)
        delivered = _pump(net, boxes)
        assert delivered[0] == ["self"]
        assert net.total_packets == 0  # never touched the wire

    def test_counters(self):
        net, boxes = _fabric(2)
        boxes[0].send(1, KIND_VISITOR, "a", 8)
        boxes[0].send(1, KIND_CONTROL, "c", 8)
        boxes[0].flush()
        _pump(net, boxes)
        assert boxes[0].visitors_sent == 1  # control not counted
        assert boxes[1].visitors_received == 1


class TestAggregation:
    def test_eager_flush_at_threshold(self):
        net, boxes = _fabric(2, agg=3)
        for i in range(3):
            boxes[0].send(1, KIND_VISITOR, i, 8)
        # threshold reached -> packet already on the wire without flush()
        assert net.total_packets == 1

    def test_small_batches_wait_for_flush(self):
        net, boxes = _fabric(2, agg=10)
        boxes[0].send(1, KIND_VISITOR, 0, 8)
        assert net.total_packets == 0
        assert boxes[0].has_buffered()
        boxes[0].flush()
        assert net.total_packets == 1

    def test_aggregation_reduces_packets(self):
        """The aggregation claim: same messages, fewer packets."""
        net1, boxes1 = _fabric(2, agg=1)
        net16, boxes16 = _fabric(2, agg=16)
        for boxes, _net in ((boxes1, net1), (boxes16, net16)):
            for i in range(16):
                boxes[0].send(1, KIND_VISITOR, i, 8)
            boxes[0].flush()
        assert net1.total_packets == 16
        assert net16.total_packets == 1

    def test_invalid_aggregation_size(self):
        net = Network(2)
        with pytest.raises(CommunicationError):
            Mailbox(0, DirectTopology(2), net, aggregation_size=0)


class Test2DRouting:
    def test_two_hop_delivery(self):
        """Figure 4's example through the real mailbox: 11 -> 5 via 9."""
        net, boxes = _fabric(16, Grid2DTopology, shape=(4, 4))
        boxes[11].send(5, KIND_VISITOR, "routed", 8)
        boxes[11].flush()
        delivered = _pump(net, boxes)
        assert delivered[5] == ["routed"]
        assert boxes[9].envelopes_forwarded == 1  # transited rank 9

    def test_transit_reaggregates(self):
        """Envelopes from different row peers bound for the same final
        destination merge at the intermediate hop into one packet — the
        O(sqrt(p)) aggregation gain."""
        net, boxes = _fabric(16, Grid2DTopology, shape=(4, 4), agg=16)
        # 8, 10 and 11 share row 2; all send to rank 5 (column 1)
        for sender in (8, 10, 11):
            boxes[sender].send(5, KIND_VISITOR, sender, 8)
        for b in boxes:
            b.flush()
        delivered = _pump(net, boxes)
        assert sorted(delivered[5]) == [8, 10, 11]
        # rank 9 forwarded all three envelopes in a single packet
        assert boxes[9].envelopes_forwarded == 3
        assert boxes[9].packets_sent == 1

    def test_all_pairs_deliver(self):
        net, boxes = _fabric(16, Grid2DTopology, shape=(4, 4))
        for s in range(16):
            for d in range(16):
                if s != d:
                    boxes[s].send(d, KIND_VISITOR, (s, d), 8)
        for b in boxes:
            b.flush()
        delivered = _pump(net, boxes, max_ticks=20)
        for d in range(16):
            senders = {pair[0] for pair in delivered[d]}
            assert senders == set(range(16)) - {d}


class TestProtocolErrors:
    def test_wrong_hop_packet_rejected(self):
        from repro.comm.message import Envelope, Packet

        net, boxes = _fabric(2)
        bad = Packet(src=0, hop_dest=0, envelopes=[Envelope(1, KIND_VISITOR, "x", 8)])
        with pytest.raises(CommunicationError):
            boxes[1].receive([bad])


class TestBatchSends:
    """send_batch / send_stream must be indistinguishable from N
    individual sends: same packets, bytes, counters and arrival order."""

    @staticmethod
    def _flatten(payloads):
        """Delivered payloads -> [(vertex, payload)] in arrival order,
        whether they arrived as scalars or as VisitorBatch envelopes."""
        from repro.core.batch import VisitorBatch

        out = []
        for p in payloads:
            if isinstance(p, VisitorBatch):
                out.extend(zip(p.vertices.tolist(), p.payloads.tolist(), strict=False))
            else:
                out.append(p)
        return out

    def _pump_flat(self, net, boxes, **kw):
        delivered = _pump(net, boxes, **kw)
        return {r: self._flatten(v) for r, v in delivered.items()}

    def test_send_batch_matches_individual_sends(self):
        import numpy as np

        from repro.core.batch import VisitorBatch

        n = 23
        net_a, boxes_a = _fabric(2, agg=7)
        net_b, boxes_b = _fabric(2, agg=7)
        for i in range(n):
            boxes_a[0].send(1, KIND_VISITOR, (i, i * 10), 8)
        batch = VisitorBatch(np.arange(n), np.arange(n) * 10)
        boxes_b[0].send_batch(1, batch, 8)
        # threshold flushes must fire at the same logical counts
        assert net_a.total_packets == net_b.total_packets == n // 7
        for boxes in (boxes_a, boxes_b):
            boxes[0].flush()
        got_a = self._pump_flat(net_a, boxes_a)
        got_b = self._pump_flat(net_b, boxes_b)
        assert got_a[1] == got_b[1]
        for attr in ("visitors_sent", "packets_sent", "bytes_sent"):
            assert getattr(boxes_a[0], attr) == getattr(boxes_b[0], attr)
        assert boxes_a[1].visitors_received == boxes_b[1].visitors_received == n

    def test_send_stream_matches_individual_sends_2d(self):
        """Mixed-destination stream over a routed topology: every
        per-receiver arrival sequence and every counter must match."""
        import numpy as np

        from repro.core.batch import VisitorBatch

        rng = np.random.default_rng(7)
        dests = rng.integers(0, 16, size=200)
        vertices = np.arange(200)
        payloads = rng.integers(0, 1000, size=200)
        net_a, boxes_a = _fabric(16, Grid2DTopology, shape=(4, 4), agg=5)
        net_b, boxes_b = _fabric(16, Grid2DTopology, shape=(4, 4), agg=5)
        for d, v, p in zip(dests.tolist(), vertices.tolist(), payloads.tolist(), strict=False):
            boxes_a[3].send(d, KIND_VISITOR, (v, p), 8)
        boxes_b[3].send_stream(dests, VisitorBatch(vertices, payloads), 8)
        for boxes in (boxes_a, boxes_b):
            for b in boxes:
                b.flush()
        got_a = self._pump_flat(net_a, boxes_a, max_ticks=20)
        got_b = self._pump_flat(net_b, boxes_b, max_ticks=20)
        assert got_a == got_b
        assert net_a.total_packets == net_b.total_packets
        for ba, bb in zip(boxes_a, boxes_b, strict=False):
            for attr in ("visitors_sent", "visitors_received", "packets_sent",
                         "bytes_sent", "envelopes_forwarded"):
                assert getattr(ba, attr) == getattr(bb, attr), attr

    def test_send_stream_loopback(self):
        import numpy as np

        from repro.core.batch import VisitorBatch

        net, boxes = _fabric(4)
        dests = np.array([0, 0, 2])
        boxes[0].send_stream(dests, VisitorBatch(np.arange(3), np.arange(3)), 8)
        boxes[0].flush()
        got = self._pump_flat(net, boxes)
        assert got[0] == [(0, 0), (1, 1)]
        assert got[2] == [(2, 2)]

    def test_buffered_visitor_count(self):
        import numpy as np

        from repro.core.batch import VisitorBatch

        net, boxes = _fabric(2, agg=100)
        boxes[0].send(1, KIND_VISITOR, "v", 8)
        boxes[0].send(1, KIND_CONTROL, "c", 8)  # not a visitor
        boxes[0].send_batch(1, VisitorBatch(np.arange(5), np.arange(5)), 8)
        boxes[0].send(0, KIND_VISITOR, "self", 8)  # loopback queue
        assert boxes[0].buffered_visitor_count() == 7
        boxes[0].flush()
        assert boxes[0].buffered_visitor_count() == 1  # loopback remains
        assert net.visitor_envelopes_in_flight() == 6

    def test_visitor_envelopes_in_flight_counts_logical_messages(self):
        import numpy as np

        from repro.core.batch import VisitorBatch

        net, boxes = _fabric(2)
        boxes[0].send_batch(1, VisitorBatch(np.arange(9), np.arange(9)), 8)
        boxes[0].flush()
        assert net.visitor_envelopes_in_flight() == 9
        net.advance()
        assert net.visitor_envelopes_in_flight() == 0
