"""Durable resume equivalence matrix + host-crash restart (INTERNALS §13).

The durability layer's defining contract: a run killed by the host and
restarted with ``durable_resume=True`` finishes with results, every stats
field outside the ``durable_*`` family (the simulated clock included),
and the order digests bit-identical to the same run left uninterrupted.
The matrix covers three algorithms x object/batch x ``workers`` in
{1, 4}, the hostile compositions (transport chaos with simulated rank
crashes, memory pressure with stragglers), cross-worker-count resume,
and — in one subprocess cell — a real SIGKILL mid-run through the CLI.

Also pins the partial-stats contract: a ``TraversalError`` raised on
``max_ticks`` or an unhealed worker failure carries the durability and
supervision counters accumulated so far.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.kcore import kcore
from repro.algorithms.pagerank import pagerank
from repro.bench.harness import build_rmat_graph, pick_bfs_source
from repro.comm.faults import CrashEvent, FaultPlan
from repro.core.traversal import run_traversal
from repro.core.visitor import AsyncAlgorithm, Visitor
from repro.errors import TraversalError
from repro.runtime.costmodel import EngineConfig
from repro.runtime.pressure import StragglerPlan
from repro.runtime.trace import DURABILITY_STATS_FIELDS

INTERVAL = 4

RUNNERS = {
    "bfs": lambda g, s, **kw: bfs(g, s, **kw),
    "kcore": lambda g, s, **kw: kcore(g, 3, **kw),
    "pagerank": lambda g, s, **kw: pagerank(g, **kw),
}

DATA = {
    "bfs": lambda r: (r.data.levels, r.data.parents),
    "kcore": lambda r: (r.data.alive,),
    "pagerank": lambda r: (r.data.scores,),
}


def _graph():
    return build_rmat_graph(8, num_partitions=4, num_ghosts=64, seed=1)


@pytest.fixture(scope="module")
def source():
    edges, _ = _graph()
    return pick_bfs_source(edges, seed=1)


def _stats_dict(stats, *, include_durable: bool = False) -> dict:
    out = dataclasses.asdict(stats)
    out.pop("timeline", None)
    if not include_durable:
        for field in DURABILITY_STATS_FIELDS:
            out.pop(field, None)
    return out


def _assert_resume_identical(algo, source, tmp_path, **kw):
    """Run durably to completion, then resume from the last epoch in a
    fresh process-equivalent (rebuilt graph) and diff everything."""
    run = RUNNERS[algo]
    d = str(tmp_path / "dur")
    full = run(_graph()[1], source, durable_dir=d, durable_interval=INTERVAL,
               record_digests=True, **kw)
    resumed = run(_graph()[1], source, durable_dir=d, durable_interval=INTERVAL,
                  record_digests=True, durable_resume=True, **kw)
    assert resumed.stats.durable_resumes == 1
    assert resumed.stats.durable_resume_tick > 0
    assert _stats_dict(full.stats) == _stats_dict(resumed.stats)
    assert full.stats.order_digest == resumed.stats.order_digest
    for a, b in zip(DATA[algo](full), DATA[algo](resumed), strict=False):
        assert np.array_equal(a, b)
    return full, resumed


# --------------------------------------------------------------------- #
# The resume equivalence matrix
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("algo", sorted(RUNNERS))
@pytest.mark.parametrize("batch", [False, True], ids=["object", "batch"])
def test_resume_bit_identical_sequential(algo, batch, source, tmp_path):
    _assert_resume_identical(algo, source, tmp_path, batch=batch)


@pytest.mark.parametrize("algo", sorted(RUNNERS))
def test_resume_bit_identical_workers(algo, source, tmp_path):
    _assert_resume_identical(algo, source, tmp_path, batch=True, workers=4)


def test_resume_written_at_workers4_resumed_at_workers1(source, tmp_path):
    """The epoch format is worker-count-independent (cold caches)."""
    d = str(tmp_path / "dur")
    full = bfs(_graph()[1], source, durable_dir=d, durable_interval=INTERVAL,
               record_digests=True, batch=True, workers=4)
    resumed = bfs(_graph()[1], source, durable_dir=d, durable_interval=INTERVAL,
                  record_digests=True, durable_resume=True, batch=True)
    assert _stats_dict(full.stats) == _stats_dict(resumed.stats)
    assert np.array_equal(full.data.levels, resumed.data.levels)


# --------------------------------------------------------------------- #
# Hostile compositions
# --------------------------------------------------------------------- #
def test_resume_under_chaos_with_simulated_crash(source, tmp_path):
    """A simulated rank crash scheduled *after* the resume point replays
    from the transplanted recovery snapshot, landing on the same
    recovery_us and counters as the uninterrupted run."""
    plan = FaultPlan(seed=7, drop_rate=0.02,
                     crashes=(CrashEvent(tick=14, rank=1),))
    full, resumed = _assert_resume_identical(
        "bfs", source, tmp_path, faults=plan)
    assert full.stats.recoveries == 1
    assert resumed.stats.recoveries == 1


def test_resume_under_chaos_with_workers(source, tmp_path):
    plan = FaultPlan(seed=7, drop_rate=0.02,
                     crashes=(CrashEvent(tick=14, rank=1),))
    _assert_resume_identical("bfs", source, tmp_path, faults=plan, workers=4)


def test_resume_under_pressure(source, tmp_path):
    full, _ = _assert_resume_identical(
        "bfs", source, tmp_path,
        mailbox_cap=64, queue_spill=16,
        stragglers=StragglerPlan(seed=3, factor=4.0, fraction=0.25),
    )
    assert full.stats.total_bp_stalls > 0 or full.stats.total_queue_spilled > 0


# --------------------------------------------------------------------- #
# A real SIGKILL through the CLI (one subprocess cell)
# --------------------------------------------------------------------- #
def test_sigkill_and_cli_resume(tmp_path):
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(root, "src"), env.get("PYTHONPATH")) if p
    )

    def cli(*cmd):
        return subprocess.run(
            [sys.executable, "-m", "repro", *cmd],
            env=env, capture_output=True, text=True, timeout=300,
        )

    g = str(tmp_path / "g.npz")
    out = cli("generate", "rmat", "--scale", "8", "--seed", "1", "--simple",
              "-o", g)
    assert out.returncode == 0, out.stderr
    common = ("--graph", g, "-p", "4", "--ghosts", "64", "--seed", "1",
              "--record-digests", "--durable-interval", str(INTERVAL))

    base = cli("bfs", *common, "--durable", str(tmp_path / "base"),
               "--stats-json", str(tmp_path / "base.json"))
    assert base.returncode == 0, base.stderr

    killed = cli("bfs", *common, "--durable", str(tmp_path / "kill"),
                 "--kill-at-tick", "8")
    assert killed.returncode == -signal.SIGKILL

    resumed = cli("bfs", *common, "--durable", str(tmp_path / "kill"),
                  "--resume", "--stats-json", str(tmp_path / "resumed.json"))
    assert resumed.returncode == 0, resumed.stderr

    with open(tmp_path / "base.json", encoding="utf-8") as fh:
        base_payload = json.load(fh)
    with open(tmp_path / "resumed.json", encoding="utf-8") as fh:
        res_payload = json.load(fh)
    strip = lambda s: {k: v for k, v in s.items()  # noqa: E731
                       if not k.startswith("durable_")}
    assert strip(base_payload["stats"]) == strip(res_payload["stats"])
    assert base_payload["arrays"] == res_payload["arrays"]
    assert res_payload["stats"]["durable_resume_tick"] == 8


# --------------------------------------------------------------------- #
# Partial-stats contract on the error paths
# --------------------------------------------------------------------- #
def test_max_ticks_partial_stats_carry_durability_counters(source, tmp_path):
    with pytest.raises(TraversalError) as excinfo:
        bfs(_graph()[1], source, durable_dir=str(tmp_path / "dur"),
            durable_interval=2,
            config=EngineConfig(max_ticks=6,
                                durable_dir=str(tmp_path / "dur"),
                                durable_interval=2))
    stats = excinfo.value.stats
    assert stats is not None
    assert stats.durable_checkpoints >= 2
    assert stats.durable_bytes > 0
    assert stats.ticks == 6


class _DelayedBombVisitor(Visitor):
    """Floods like BFS but detonates when it lands on the bomb vertex."""

    __slots__ = ("bomb",)

    def __init__(self, vertex: int, bomb: int) -> None:
        super().__init__(vertex)
        self.bomb = bomb

    def pre_visit(self, vertex_data) -> bool:
        if self.vertex == self.bomb:
            raise RuntimeError("bomb vertex reached")
        if vertex_data.get("seen"):
            return False
        vertex_data["seen"] = True
        return True

    def visit(self, ctx) -> None:
        for w in ctx.out_edges(self.vertex):
            ctx.push(_DelayedBombVisitor(int(w), self.bomb))


class _BombAlgorithm(AsyncAlgorithm):
    name = "bomb"
    uses_ghosts = False
    visitor_bytes = 16

    def __init__(self, source: int, bomb: int) -> None:
        self.source = source
        self.bomb = bomb

    def make_state(self, vertex: int, degree: int, role: str) -> dict:
        return {}

    def initial_visitors(self, graph, rank):
        if rank == graph.min_owner(self.source):
            yield _DelayedBombVisitor(self.source, self.bomb)

    def finalize(self, graph, states_per_rank):
        return None


def test_worker_failure_partial_stats_carry_counters(source, tmp_path):
    """Fail-fast worker death (no restart budget, no injection plan): the
    TraversalError's partial stats keep the durability counters
    accumulated before the failure alongside the usual per-rank ones."""
    graph = _graph()[1]
    seq_levels = bfs(graph, source).data.levels
    # Detonate deep enough that epochs (interval 2) land first.
    bomb = int(np.flatnonzero(seq_levels == 4)[0])
    with pytest.raises(TraversalError) as excinfo:
        run_traversal(graph, _BombAlgorithm(source, bomb), workers=4,
                      durable_dir=str(tmp_path / "dur"), durable_interval=2)
    err = excinfo.value
    assert "parallel worker failed" in str(err)
    stats = err.stats
    assert stats is not None
    assert stats.ticks >= 4
    assert stats.durable_checkpoints >= 2
    assert stats.durable_bytes > 0
    assert sum(c.visits for c in stats.ranks) > 0
