"""Fault injection: prove the guard rails actually guard.

Each test plants a specific defect — a buggy algorithm, an illegal ghost
declaration, a tampered partitioning — and asserts the corresponding
checker catches it (or demonstrates the failure mode the design rule
exists to prevent)."""

import numpy as np
import pytest

from repro.algorithms.bfs import BFSAlgorithm, BFSState, BFSVisitor
from repro.algorithms.kcore import KCoreAlgorithm, kcore
from repro.analysis.validate import validate_bfs
from repro.core.traversal import run_traversal
from repro.errors import PartitioningError
from repro.graph.distributed import DistributedGraph
from repro.graph.partition_edge_list import EdgeListPartitioning
from repro.reference.kcore import kcore_members


class BuggyBFSVisitor(BFSVisitor):
    """A BFS whose expansion 'forgets' every other edge — it produces a
    plausible-looking but incomplete tree."""

    __slots__ = ()

    def visit(self, ctx) -> None:
        if self.length == ctx.state_of(self.vertex).length:
            nxt = self.length + 1
            for i, w in enumerate(ctx.out_edges(self.vertex)):
                if i % 2 == 0:  # the bug: skips odd-indexed edges
                    ctx.push(BuggyBFSVisitor(int(w), nxt, self.vertex))


class BuggyBFS(BFSAlgorithm):
    name = "buggy-bfs"

    def initial_visitors(self, graph, rank):
        if rank == graph.min_owner(self.source):
            yield BuggyBFSVisitor(self.source, 0, self.source)


class WrongLevelVisitor(BFSVisitor):
    """A BFS that records off-by-one levels (classic fencepost bug)."""

    __slots__ = ()

    def pre_visit(self, vertex_data: BFSState) -> bool:
        if self.length < vertex_data.length:
            vertex_data.length = self.length + 1  # the bug
            vertex_data.parent = self.parent
            return True
        return False


class TestValidatorCatchesBuggyAlgorithms:
    def test_incomplete_expansion_detected(self, rmat_small):
        graph = DistributedGraph.build(rmat_small, 8)
        source = int(rmat_small.src[0])
        result = run_traversal(graph, BuggyBFS(source))
        report = validate_bfs(
            rmat_small, source, result.data.levels, result.data.parents
        )
        assert not report.valid  # skipped edges leave reached->unreached edges

    def test_off_by_one_levels_detected(self, rmat_small):
        class OffByOneBFS(BFSAlgorithm):
            name = "off-by-one-bfs"

            def initial_visitors(self, graph, rank):
                if rank == graph.min_owner(self.source):
                    yield WrongLevelVisitor(self.source, 0, self.source)

        graph = DistributedGraph.build(rmat_small, 8)
        source = int(rmat_small.src[0])
        result = run_traversal(graph, OffByOneBFS(source))
        report = validate_bfs(
            rmat_small, source, result.data.levels, result.data.parents
        )
        assert not report.valid


class TestWhyCountingAlgorithmsCannotUseGhosts:
    """Section IV-B: "Algorithms that require precise counts of events,
    such as k-core, cannot use ghosts."  Force the illegal configuration
    and show it corrupts the result — the rule is load-bearing."""

    def test_kcore_with_ghosts_is_wrong(self):
        from repro.graph.edge_list import EdgeList

        class IllegalGhostKCore(KCoreAlgorithm):
            uses_ghosts = True  # the violation

        # Star: hub 0 with 32 degree-1 leaves.  Every leaf dies instantly
        # and must deliver its removal notification to the hub; the correct
        # 3-core is empty.  A ghost of the hub filters all but the first
        # notification per partition, so the hub wrongly survives.
        edges = EdgeList.from_pairs(
            [(0, i) for i in range(1, 33)], 33
        ).simple_undirected()
        k = 3
        graph = DistributedGraph.build(edges, 4, num_ghosts=4)
        correct = kcore_members(edges, k)
        assert correct.sum() == 0

        sane = kcore(graph, k).data.alive
        assert np.array_equal(sane, correct)  # legal config is right

        result = run_traversal(graph, IllegalGhostKCore(k))
        # ghosts swallowed decisive decrement events: the hub survives
        assert result.stats.total_ghost_filtered > 0
        assert result.data.alive.sum() > 0
        assert not np.array_equal(result.data.alive, correct)


class TestTamperedPartitioningDetected:
    def _tamper(self, elp: EdgeListPartitioning, **overrides) -> EdgeListPartitioning:
        fields = dict(
            num_vertices=elp.num_vertices,
            num_partitions=elp.num_partitions,
            edge_bounds=elp.edge_bounds.copy(),
            cut_sources=elp.cut_sources.copy(),
            min_owners=elp.min_owners.copy(),
            max_owners=elp.max_owners.copy(),
            state_lo=elp.state_lo.copy(),
            state_hi=elp.state_hi.copy(),
        )
        fields.update(overrides)
        return EdgeListPartitioning(**fields)

    def test_non_tiling_bounds(self, figure3_edges):
        elp = EdgeListPartitioning.build(figure3_edges, 4)
        bounds = elp.edge_bounds.copy()
        bounds[-1] -= 1
        bad = self._tamper(elp, edge_bounds=bounds)
        with pytest.raises(PartitioningError):
            bad.validate(figure3_edges)

    def test_inverted_owners(self, figure3_edges):
        elp = EdgeListPartitioning.build(figure3_edges, 4)
        mins = elp.min_owners.copy()
        mins[2] = 3  # min above max for split vertex 2
        bad = self._tamper(elp, min_owners=mins)
        with pytest.raises(PartitioningError):
            bad.validate(figure3_edges)

    def test_shrunk_state_range(self, figure3_edges):
        elp = EdgeListPartitioning.build(figure3_edges, 4)
        hi = elp.state_hi.copy()
        hi[1] = elp.state_lo[1] - 0  # make partition 1's range exclude its edges
        lo = elp.state_lo.copy()
        lo[1] = lo[1] + 1
        bad = self._tamper(elp, state_lo=lo)
        with pytest.raises(PartitioningError):
            bad.validate(figure3_edges)
        del hi
