"""End-to-end pipeline integration: generator -> permute -> simplify ->
distributed sort -> partition -> traverse -> validate, across the full
configuration matrix."""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.connected_components import connected_components
from repro.algorithms.kcore import kcore
from repro.algorithms.triangles import triangle_count
from repro.analysis.validate import validate_bfs
from repro.bench.harness import pick_bfs_source
from repro.generators.preferential_attachment import preferential_attachment_edges
from repro.generators.rmat import rmat_edges
from repro.generators.small_world import small_world_edges
from repro.graph.dist_sort import sample_sort_edges
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.reference.bfs import bfs_levels
from repro.reference.components import component_labels
from repro.reference.kcore import kcore_members
from repro.reference.triangles import total_triangles
from repro.runtime.costmodel import laptop


def _generate(model: str, seed: int = 13) -> EdgeList:
    if model == "rmat":
        src, dst = rmat_edges(8, 16 << 8, seed=seed)
        n = 1 << 8
    elif model == "pa":
        src, dst = preferential_attachment_edges(256, 4, seed=seed)
        n = 256
    else:
        src, dst = small_world_edges(256, 6, rewire_probability=0.2, seed=seed)
        n = 256
    return EdgeList.from_arrays(src, dst, n).permuted(seed=seed + 1).simple_undirected()


@pytest.mark.parametrize("model", ["rmat", "pa", "sw"])
@pytest.mark.parametrize("strategy", ["edge_list", "1d"])
@pytest.mark.parametrize("p", [3, 8])
def test_bfs_pipeline(model, strategy, p):
    edges = _generate(model)
    graph = DistributedGraph.build(edges, p, strategy=strategy, num_ghosts=8)
    source = pick_bfs_source(edges, seed=0)
    result = bfs(graph, source)
    assert np.array_equal(result.data.levels, bfs_levels(edges, source))
    assert validate_bfs(edges, source, result.data.levels, result.data.parents).valid


@pytest.mark.parametrize("model", ["rmat", "pa", "sw"])
def test_all_algorithms_one_graph(model):
    """All four undirected algorithms agree with their references on the
    same distributed graph instance."""
    edges = _generate(model)
    graph = DistributedGraph.build(edges, 8, num_ghosts=8)
    source = pick_bfs_source(edges, seed=1)

    assert np.array_equal(bfs(graph, source).data.levels, bfs_levels(edges, source))
    assert np.array_equal(kcore(graph, 3).data.alive, kcore_members(edges, 3))
    assert triangle_count(graph).data.total == total_triangles(edges)
    assert np.array_equal(
        connected_components(graph).data.labels, component_labels(edges)
    )


def test_sorted_via_sample_sort_pipeline():
    """The distributed sort feeds partitioning directly (sorted flag set),
    and the traversal over the sorted result is correct."""
    src, dst = rmat_edges(8, 16 << 8, seed=3)
    raw = EdgeList.from_arrays(src, dst, 1 << 8).permuted(seed=4).simple_undirected()
    # shuffle to simulate an unsorted on-disk edge list
    rng = np.random.default_rng(5)
    order = rng.permutation(raw.num_edges)
    shuffled = EdgeList(src=raw.src[order], dst=raw.dst[order], num_vertices=raw.num_vertices)

    sort_result = sample_sort_edges(shuffled, 8, laptop())
    graph = DistributedGraph.build(sort_result.edges, 8, num_ghosts=8)
    source = pick_bfs_source(raw, seed=0)
    assert np.array_equal(bfs(graph, source).data.levels, bfs_levels(raw, source))


def test_file_roundtrip_pipeline(tmp_path):
    """Generate, save, reload, partition, traverse: the full user journey."""
    from repro.graph.io import load_binary_edges, save_binary_edges

    edges = _generate("rmat")
    path = tmp_path / "pipeline.npz"
    save_binary_edges(edges, path)
    loaded = load_binary_edges(path)
    graph = DistributedGraph.build(loaded, 4, num_ghosts=4)
    source = pick_bfs_source(edges, seed=2)
    assert np.array_equal(bfs(graph, source).data.levels, bfs_levels(edges, source))


def test_repeated_traversals_share_graph():
    """One partitioned graph serves many traversals without interference
    (per-traversal state is freshly constructed)."""
    edges = _generate("rmat")
    graph = DistributedGraph.build(edges, 8, num_ghosts=8)
    first = bfs(graph, pick_bfs_source(edges, seed=3))
    for seed in range(4):
        source = pick_bfs_source(edges, seed=seed)
        result = bfs(graph, source)
        assert np.array_equal(result.data.levels, bfs_levels(edges, source))
    again = bfs(graph, first.data.source)
    assert np.array_equal(again.data.levels, first.data.levels)
    assert again.stats.time_us == first.stats.time_us  # fully deterministic
