"""Golden-trace regression pin.

The simulator is fully deterministic, so one fixed configuration's
aggregate trace can be pinned exactly.  If any of these numbers move, the
engine's *semantics* changed (message counts, ghost filtering, scheduling
or the clock) — which must be a conscious decision, not an accident.
Update the constants only when such a change is intended, and say why in
the commit.
"""

from repro.algorithms.bfs import bfs
from repro.bench.harness import build_rmat_graph

# configuration under pin
_SCALE = 9
_RANKS = 8
_GHOSTS = 32
_SEED = 2024
_SOURCE = 100

# golden aggregates (recorded from the current engine)
GOLDEN = {
    "visits": 534,
    "visitors_sent": 6235,
    "ghost_filtered": 3338,
    "packets": 570,
    "ticks": 22,
    "time_us": 288.592,
    "reached": 458,
    "max_level": 4,
}


def test_golden_trace():
    edges, graph = build_rmat_graph(
        _SCALE, num_partitions=_RANKS, num_ghosts=_GHOSTS, seed=_SEED
    )
    result = bfs(graph, _SOURCE, topology="2d")
    stats = result.stats
    got = {
        "visits": stats.total_visits,
        "visitors_sent": stats.total_visitors_sent,
        "ghost_filtered": stats.total_ghost_filtered,
        "packets": stats.total_packets,
        "ticks": stats.ticks,
        "time_us": round(stats.time_us, 3),
        "reached": result.data.num_reached,
        "max_level": result.data.max_level,
    }
    assert got == GOLDEN
