"""The fault-equivalence invariant (the PR's acceptance bar).

For every algorithm x topology x batch-mode combination, a run under an
adversarial fault plan — packet drops, duplications, delays, plus a rank
crash with checkpoint/replay recovery — must terminate through the counting
quiescence detector with vertex states and logical visit counts
*bit-identical* to the fault-free run on the same reliable transport.
Faults are allowed to change only simulated time and wire-level traffic.

The baseline is the reliable transport with no faults: the reliable layer
releases packets in canonical ``(src, seq)`` order (reconstructible across
crash recovery), which differs from the plain fabric's injection order only
in same-tick tie-breaks (identical BFS levels, occasionally different but
equally valid parents); see INTERNALS §8.
"""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.connected_components import connected_components
from repro.algorithms.kcore import kcore
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp import sssp
from repro.algorithms.triangles import triangle_count
from repro.comm.faults import CrashEvent, FaultPlan
from repro.generators.rmat import rmat_edges
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList

NOISE_PLAN = FaultPlan(
    seed=7, drop_rate=0.03, duplicate_rate=0.02, delay_rate=0.05, max_delay=3
)
CRASH_PLAN = FaultPlan(
    seed=7,
    drop_rate=0.03,
    duplicate_rate=0.02,
    crashes=(CrashEvent(tick=6, rank=2),),
)


@pytest.fixture(scope="module")
def graph_and_source():
    src, dst = rmat_edges(7, 16 << 7, seed=42)
    edges = EdgeList.from_arrays(src, dst, 1 << 7).permuted(seed=43).simple_undirected()
    g = DistributedGraph.build(edges, 8, num_ghosts=8)
    return g, int(edges.src[0])


def _result_arrays(algorithm, result):
    """The algorithm's vertex-state output arrays, by name."""
    data = result.data
    if algorithm == "bfs":
        return {"levels": data.levels, "parents": data.parents}
    if algorithm == "sssp":
        return {"distances": data.distances, "parents": data.parents}
    if algorithm == "cc":
        return {"labels": data.labels}
    if algorithm == "triangles":
        return {"per_vertex": data.per_vertex}
    if algorithm == "pagerank":
        return {"scores": data.scores}
    return {"alive": data.alive}


def _run(algorithm, g, s, **kwargs):
    if algorithm == "bfs":
        return bfs(g, s, **kwargs)
    if algorithm == "sssp":
        return sssp(g, s, **kwargs)
    if algorithm == "cc":
        return connected_components(g, **kwargs)
    if algorithm == "triangles":
        return triangle_count(g, **kwargs)
    if algorithm == "pagerank":
        return pagerank(g, **kwargs)
    return kcore(g, 3, **kwargs)


def assert_equivalent(algorithm, faulty, baseline):
    for name, arr in _result_arrays(algorithm, faulty).items():
        expected = _result_arrays(algorithm, baseline)[name]
        assert np.array_equal(arr, expected), f"{name} diverged under faults"
    fs, bs = faulty.stats, baseline.stats
    assert fs.ticks == bs.ticks
    assert fs.total_visits == bs.total_visits
    assert fs.total_previsits == bs.total_previsits
    assert [r.visits for r in fs.ranks] == [r.visits for r in bs.ranks]
    assert [r.edges_scanned for r in fs.ranks] == [
        r.edges_scanned for r in bs.ranks
    ]
    assert fs.termination_waves == bs.termination_waves


# Every algorithm runs both modes since PR 5's batch kernels; triangles
# and pagerank (the heavy visitor volumes) keep to the direct topology so
# the matrix stays tier-1-fast — the 2d cells live in
# tests/integration/test_batch_matrix.py.
MATRIX = [
    (alg, topology, batch)
    for alg in ("bfs", "sssp", "cc", "kcore", "triangles", "pagerank")
    for topology in (("direct", "2d") if alg not in ("triangles", "pagerank")
                     else ("direct",))
    for batch in (False, True)
]


def _ids(case):
    alg, topology, batch = case
    return f"{alg}-{topology}-{'batch' if batch else 'object'}"


@pytest.mark.parametrize("case", MATRIX, ids=_ids)
class TestFaultEquivalence:
    def test_noise_plan(self, case, graph_and_source):
        alg, topology, batch = case
        g, s = graph_and_source
        baseline = _run(alg, g, s, reliable=True, topology=topology, batch=batch)
        faulty = _run(
            alg, g, s, faults=NOISE_PLAN, topology=topology, batch=batch
        )
        assert_equivalent(alg, faulty, baseline)
        # the run must actually have been perturbed, and must cost time
        assert faulty.stats.packets_dropped > 0
        assert faulty.stats.retransmitted_packets > 0
        assert faulty.stats.fault_seed == 7
        assert faulty.stats.time_us > baseline.stats.time_us

    def test_crash_plan(self, case, graph_and_source):
        alg, topology, batch = case
        g, s = graph_and_source
        baseline = _run(alg, g, s, reliable=True, topology=topology, batch=batch)
        faulty = _run(
            alg, g, s, faults=CRASH_PLAN, topology=topology, batch=batch
        )
        assert_equivalent(alg, faulty, baseline)
        assert faulty.stats.crashes == 1
        assert faulty.stats.recoveries == 1
        assert faulty.stats.replayed_ticks > 0
        assert faulty.stats.checkpoints_taken > 0
        assert faulty.stats.recovery_us > 0.0


class TestFaultsOnlyStretchTime:
    def test_wire_traffic_grows_but_logical_counts_do_not(self, graph_and_source):
        g, s = graph_and_source
        baseline = bfs(g, s, reliable=True)
        faulty = bfs(g, s, faults=NOISE_PLAN)
        assert faulty.stats.total_packets == baseline.stats.total_packets
        assert faulty.stats.total_bytes == baseline.stats.total_bytes
        assert faulty.stats.retransmitted_bytes > 0
        assert faulty.stats.reliable_overhead_bytes > baseline.stats.reliable_overhead_bytes

    def test_same_plan_same_run(self, graph_and_source):
        g, s = graph_and_source
        r1 = bfs(g, s, faults=NOISE_PLAN)
        r2 = bfs(g, s, faults=NOISE_PLAN)
        assert r1.stats.time_us == r2.stats.time_us
        assert r1.stats.packets_dropped == r2.stats.packets_dropped
        assert r1.stats.retransmitted_packets == r2.stats.retransmitted_packets
        assert np.array_equal(r1.data.parents, r2.data.parents)
