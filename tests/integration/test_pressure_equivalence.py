"""The resource-pressure equivalence invariant (this PR's acceptance bar).

Bounded mailboxes with backpressure, storage faults with bounded retries,
and 4x straggler skew are all *cost-only* mechanisms: for every algorithm
x topology x batch-mode combination they must leave vertex states and
every logical counter (visits, pre-visits, edge scans, packets, bytes,
cache hits/misses, ticks, termination waves) bit-identical to the
unconstrained run.  Only simulated time and the pressure/fault/IO overhead
counters may differ.
"""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.connected_components import connected_components
from repro.algorithms.kcore import kcore
from repro.algorithms.sssp import sssp
from repro.comm.faults import CrashEvent, FaultPlan
from repro.errors import ConfigurationError, MemorySystemError
from repro.generators.rmat import rmat_edges
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.memory.faults import StorageFaultPlan
from repro.runtime.costmodel import STORAGE_NVRAM, EngineConfig, hyperion_dit
from repro.runtime.pressure import StragglerPlan

# Tight budget keeps queues deep enough that both the mailbox cap and the
# visitor-queue resident limit actually engage on a scale-7 graph.
CONFIG = EngineConfig(visitor_budget=8)
MAILBOX_CAP = 40  # tight enough that even k-core's small visitors overflow
QUEUE_SPILL = 2
STORAGE_PLAN = StorageFaultPlan(
    seed=5, read_error_rate=0.1, spike_rate=0.05, torn_rate=0.02,
    bandwidth_degradation=2.0, max_retries=8,
)
STRAGGLER_PLAN = StragglerPlan(seed=3, factor=4.0, fraction=0.25, rebalance=0.5)
NVRAM = hyperion_dit(STORAGE_NVRAM, cache_bytes_per_rank=32 * 1024)


@pytest.fixture(scope="module")
def graph_and_source():
    src, dst = rmat_edges(7, 16 << 7, seed=42)
    edges = EdgeList.from_arrays(src, dst, 1 << 7).permuted(seed=43).simple_undirected()
    g = DistributedGraph.build(edges, 8, num_ghosts=8)
    return g, int(edges.src[0])


def _run(algorithm, g, s, **kwargs):
    kwargs.setdefault("config", CONFIG)
    if algorithm == "bfs":
        return bfs(g, s, **kwargs)
    if algorithm == "sssp":
        return sssp(g, s, **kwargs)
    if algorithm == "cc":
        return connected_components(g, **kwargs)
    return kcore(g, 3, **kwargs)


def _result_arrays(algorithm, result):
    data = result.data
    if algorithm == "bfs":
        return {"levels": data.levels, "parents": data.parents}
    if algorithm == "sssp":
        return {"distances": data.distances, "parents": data.parents}
    if algorithm == "cc":
        return {"labels": data.labels}
    return {"alive": data.alive}


def assert_equivalent(algorithm, pressured, baseline):
    for name, arr in _result_arrays(algorithm, pressured).items():
        expected = _result_arrays(algorithm, baseline)[name]
        assert np.array_equal(arr, expected), f"{name} diverged under pressure"
    ps, bs = pressured.stats, baseline.stats
    assert ps.ticks == bs.ticks
    assert ps.total_visits == bs.total_visits
    assert ps.total_previsits == bs.total_previsits
    assert ps.total_packets == bs.total_packets
    assert ps.total_bytes == bs.total_bytes
    assert [r.visits for r in ps.ranks] == [r.visits for r in bs.ranks]
    assert [r.edges_scanned for r in ps.ranks] == [
        r.edges_scanned for r in bs.ranks
    ]
    assert [r.cache_misses for r in ps.ranks] == [
        r.cache_misses for r in bs.ranks
    ]
    assert ps.termination_waves == bs.termination_waves


# kcore is object-path only (no supports_batch); the others run both modes.
MATRIX = [
    (alg, topology, batch)
    for alg in ("bfs", "sssp", "cc", "kcore")
    for topology in ("direct", "2d")
    for batch in ((False, True) if alg != "kcore" else (False,))
]


def _ids(case):
    alg, topology, batch = case
    return f"{alg}-{topology}-{'batch' if batch else 'object'}"


@pytest.mark.parametrize("case", MATRIX, ids=_ids)
class TestPressureEquivalence:
    def test_bounded_mailbox_and_queue_spill(self, case, graph_and_source):
        alg, topology, batch = case
        g, s = graph_and_source
        baseline = _run(alg, g, s, topology=topology, batch=batch)
        pressured = _run(alg, g, s, topology=topology, batch=batch,
                         mailbox_cap=MAILBOX_CAP, queue_spill=QUEUE_SPILL)
        assert_equivalent(alg, pressured, baseline)
        # the caps must actually have engaged, and cost time
        assert pressured.stats.total_bp_stalls > 0
        assert pressured.stats.total_bp_spilled_bytes > 0
        assert pressured.stats.backpressure_stall_us > 0
        assert pressured.stats.spill_io_us > 0
        assert pressured.stats.time_us > baseline.stats.time_us

    def test_storage_faults_with_retries(self, case, graph_and_source):
        alg, topology, batch = case
        g, s = graph_and_source
        baseline = _run(alg, g, s, topology=topology, batch=batch,
                        machine=NVRAM)
        faulty = _run(alg, g, s, topology=topology, batch=batch,
                      machine=NVRAM, storage_faults=STORAGE_PLAN)
        assert_equivalent(alg, faulty, baseline)
        fs = faulty.stats
        assert fs.storage_fault_seed == STORAGE_PLAN.seed
        assert fs.storage_retries + fs.storage_spikes + fs.torn_pages > 0
        assert fs.storage_fault_us > 0
        assert fs.storage_errors == 0  # retries bounded well below exhaustion
        assert fs.time_us > baseline.stats.time_us

    def test_straggler_skew(self, case, graph_and_source):
        alg, topology, batch = case
        g, s = graph_and_source
        baseline = _run(alg, g, s, topology=topology, batch=batch)
        skewed = _run(alg, g, s, topology=topology, batch=batch,
                      stragglers=STRAGGLER_PLAN)
        assert_equivalent(alg, skewed, baseline)
        assert skewed.stats.max_slowdown == 4.0
        assert skewed.stats.straggler_stall_us > 0
        assert skewed.stats.rebalanced_us > 0  # rebalance=0.5 stole work
        assert skewed.stats.time_us > baseline.stats.time_us


class TestAdversarialCombination:
    """Caps + storage faults + stragglers + a crashing, lossy fabric, all
    at once, on the 2D topology — no deadlock, bit-identical results."""

    def test_everything_at_once(self, graph_and_source):
        g, s = graph_and_source
        crash = FaultPlan(seed=7, drop_rate=0.03, duplicate_rate=0.02,
                          crashes=(CrashEvent(tick=6, rank=2),))
        baseline = _run("bfs", g, s, machine=NVRAM, topology="2d",
                        reliable=True)
        hostile = _run("bfs", g, s, machine=NVRAM, topology="2d",
                       faults=crash, mailbox_cap=MAILBOX_CAP,
                       queue_spill=QUEUE_SPILL, storage_faults=STORAGE_PLAN,
                       stragglers=STRAGGLER_PLAN)
        assert_equivalent("bfs", hostile, baseline)
        hs = hostile.stats
        assert hs.crashes == 1 and hs.recoveries == 1
        assert hs.replayed_ticks > 0
        assert hs.total_bp_stalls > 0
        assert hs.storage_retries + hs.storage_spikes + hs.torn_pages > 0
        assert hs.straggler_stall_us > 0

    def test_combined_pressure_is_deterministic(self, graph_and_source):
        g, s = graph_and_source
        kw = dict(machine=NVRAM, mailbox_cap=MAILBOX_CAP,
                  queue_spill=QUEUE_SPILL, storage_faults=STORAGE_PLAN,
                  stragglers=STRAGGLER_PLAN)
        a = _run("bfs", g, s, **kw)
        b = _run("bfs", g, s, **kw)
        assert a.stats.time_us == b.stats.time_us
        assert a.stats.total_bp_stalls == b.stats.total_bp_stalls
        assert a.stats.storage_fault_us == b.stats.storage_fault_us

    def test_crash_with_in_flight_routed_envelopes_and_caps(
        self, graph_and_source
    ):
        """Regression: crash a rank while capped, multi-hop-routed traffic
        is in flight; replay must reconstruct the flow-control ledger and
        keep backpressure charging non-negative and bit-identical."""
        g, s = graph_and_source
        baseline = _run("bfs", g, s, topology="2d", reliable=True,
                        mailbox_cap=MAILBOX_CAP)
        crash = FaultPlan(seed=11, crashes=(CrashEvent(tick=5, rank=3),))
        crashed = _run("bfs", g, s, topology="2d", faults=crash,
                       mailbox_cap=MAILBOX_CAP)
        assert_equivalent("bfs", crashed, baseline)
        assert crashed.stats.recoveries == 1
        # replay re-drove the mailboxes: bp totals must match the
        # uncrashed bounded run exactly (flow-control state is replayed,
        # not double-counted)
        assert crashed.stats.total_bp_stalls == baseline.stats.total_bp_stalls
        assert (crashed.stats.total_bp_spilled_bytes
                == baseline.stats.total_bp_spilled_bytes)


class TestQueueSpillLedger:
    def test_every_spilled_visitor_is_paged_back_in(self, graph_and_source):
        g, s = graph_and_source
        res = _run("bfs", g, s, queue_spill=QUEUE_SPILL)
        spilled = sum(r.queue_spilled for r in res.stats.ranks)
        unspilled = sum(r.queue_unspilled for r in res.stats.ranks)
        assert spilled > 0
        assert spilled == unspilled  # queues drain at termination

    def test_fully_external_queue(self, graph_and_source):
        g, s = graph_and_source
        baseline = _run("bfs", g, s)
        res = _run("bfs", g, s, queue_spill=0)
        assert np.array_equal(baseline.data.levels, res.data.levels)
        assert res.stats.ticks == baseline.stats.ticks
        assert sum(r.queue_spilled for r in res.stats.ranks) > 0


class TestTransportWindow:
    def test_window_stalls_are_cost_only(self, graph_and_source):
        g, s = graph_and_source
        baseline = _run("bfs", g, s, reliable=True)
        windowed = _run(
            "bfs", g, s, reliable=True,
            config=EngineConfig(visitor_budget=8, reliable=True,
                                transport_window=1),
        )
        assert np.array_equal(baseline.data.levels, windowed.data.levels)
        assert windowed.stats.ticks == baseline.stats.ticks
        assert windowed.stats.transport_window_stalls > 0


class TestEscalation:
    def test_permanent_failure_without_recovery_raises(self, graph_and_source):
        g, s = graph_and_source
        with pytest.raises(MemorySystemError):
            _run("bfs", g, s, machine=NVRAM,
                 storage_faults=StorageFaultPlan(seed=1, read_error_rate=0.9,
                                                 max_retries=1))

    def test_permanent_failure_with_recovery_refetches(self, graph_and_source):
        g, s = graph_and_source
        baseline = _run("bfs", g, s, machine=NVRAM, reliable=True,
                        checkpoint_interval=8)
        recovered = _run("bfs", g, s, machine=NVRAM, reliable=True,
                         checkpoint_interval=8,
                         storage_faults=StorageFaultPlan(
                             seed=1, read_error_rate=0.9, max_retries=1))
        assert_equivalent("bfs", recovered, baseline)
        assert recovered.stats.storage_errors > 0
        assert recovered.stats.storage_recoveries == recovered.stats.storage_errors
        assert recovered.stats.time_us > baseline.stats.time_us

    def test_storage_faults_need_an_io_target(self, graph_and_source):
        g, s = graph_and_source
        with pytest.raises(ConfigurationError):
            _run("bfs", g, s,
                 storage_faults=StorageFaultPlan(seed=1, read_error_rate=0.1))
        # an active spill pager is a valid target on a DRAM machine
        res = _run("bfs", g, s, mailbox_cap=MAILBOX_CAP,
                   storage_faults=StorageFaultPlan(seed=1, read_error_rate=0.2,
                                                   max_retries=8))
        assert res.stats.storage_fault_seed == 1
