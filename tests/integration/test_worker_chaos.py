"""Worker-chaos matrix: the self-healing pool vs the unfailed sequential run.

The supervision layer's contract is the parallel executor's bit-identity
contract, kept *through host-process failures*: for every injected worker
fault (SIGKILL on command receipt, hang past the barrier deadline,
hard-exit mid-phase-A, restart-budget exhaustion, fork failure), the run
must complete and produce results, every ``TraversalStats`` counter
(wire-level transport stats and the float simulated clock included) and
per-tick order digests bit-identical to an unfailed ``workers=1`` run —
the only fields allowed to differ are the supervisor's own
(:data:`~repro.runtime.trace.SUPERVISION_STATS_FIELDS`).

The composition cells are the hard part: worker kills layered over
*simulated* rank-crash recovery (the supervisor must re-run recorded
replays so counter residue reproduces), over memory pressure
(backpressure + queue spill), and under the race detector.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.algorithms.bfs import BFSAlgorithm, bfs
from repro.algorithms.kcore import kcore
from repro.algorithms.pagerank import pagerank
from repro.bench.harness import build_rmat_graph
from repro.comm.faults import CrashEvent, FaultPlan, WorkerFaultPlan
from repro.runtime.costmodel import EngineConfig, laptop
from repro.runtime.engine import SimulationEngine
from repro.runtime.trace import SUPERVISION_STATS_FIELDS

try:
    import multiprocessing

    _HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
except ImportError:  # pragma: no cover
    _HAS_FORK = False

pytestmark = pytest.mark.skipif(
    not _HAS_FORK, reason="parallel executor requires the fork start method"
)

WORKERS = 4

RUNNERS = {
    "bfs": lambda g, **kw: bfs(g, 0, **kw),
    "kcore": lambda g, **kw: kcore(g, 3, **kw),
    "pagerank": lambda g, **kw: pagerank(g, **kw),
}

DATA = {
    "bfs": lambda r: (r.data.levels, r.data.parents),
    "kcore": lambda r: (r.data.alive,),
    "pagerank": lambda r: (r.data.scores,),
}

#: One fault scenario per acceptance row: (worker_faults spec, extra kwargs).
#: Fault ticks sit early (3-5) so every algorithm's run is still live.
SCENARIOS = {
    "kill": ("seed=7,kill=4:1", dict(worker_restarts=2)),
    "hang": ("seed=7,hang=4:2", dict(worker_restarts=2, worker_barrier_timeout=1.0)),
    "exita": ("seed=7,exita=3:0", dict(worker_restarts=2)),
    "degrade": ("seed=7,kill=4:1", dict(worker_restarts=0)),
    "forkfail": ("seed=7,kill=4:1,forkfail=2", dict(worker_restarts=2)),
}


def _stats_key(stats):
    """Every engine counter except the supervisor's own activity."""
    ranks = tuple(
        tuple(sorted(dataclasses.asdict(r).items())) for r in stats.ranks
    )
    top = tuple(sorted(
        (k, v) for k, v in dataclasses.asdict(stats).items()
        if k not in ("ranks", "timeline") and k not in SUPERVISION_STATS_FIELDS
    ))
    return top, ranks


def assert_healed_identical(algorithm, seq, par):
    for a, b in zip(DATA[algorithm](seq), DATA[algorithm](par), strict=False):
        assert np.array_equal(a, b), (
            f"{algorithm}: results diverged through a worker failure"
        )
    assert _stats_key(seq.stats) == _stats_key(par.stats), (
        f"{algorithm}: stats diverged through a worker failure"
    )


@pytest.fixture(scope="module")
def graph():
    _, g = build_rmat_graph(7, num_partitions=4, num_ghosts=32,
                            strategy="edge_list", seed=2024)
    return g


@pytest.fixture(scope="module")
def sequential(graph):
    return {name: run(graph, batch=True) for name, run in RUNNERS.items()}


# --------------------------------------------------------------------- #
# The chaos matrix: 3 algorithms x 5 failure scenarios
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("algorithm", sorted(RUNNERS))
def test_chaos_cell(algorithm, scenario, graph, sequential):
    spec, kw = SCENARIOS[scenario]
    par = RUNNERS[algorithm](
        graph, batch=True, workers=WORKERS,
        worker_faults=WorkerFaultPlan.from_spec(spec), **kw,
    )
    s = par.stats
    assert s.worker_crashes >= 1, "the injected fault never fired"
    if scenario == "hang":
        assert s.worker_hangs >= 1, "hang was not classified as a hang"
    if scenario in ("degrade", "forkfail"):
        assert s.worker_respawns == 0
        assert s.degraded_ranks >= 1, "degradation path never engaged"
    else:
        assert s.worker_respawns >= 1, "respawn path never engaged"
        assert s.degraded_ranks == 0
    assert s.worker_replayed_ticks >= 1
    assert s.supervision_us > 0.0
    assert_healed_identical(algorithm, sequential[algorithm], par)


def test_object_path_heals(graph):
    """The object (non-batch) path pickles states back at finalize; a
    respawned worker must ship the restored-and-replayed copies."""
    seq = bfs(graph, 0, batch=False)
    par = bfs(graph, 0, batch=False, workers=WORKERS,
              worker_faults=WorkerFaultPlan.from_spec("seed=7,kill=4:2"),
              worker_restarts=2)
    assert par.stats.worker_respawns >= 1
    assert_healed_identical("bfs", seq, par)


def test_degraded_rank0_owner_keeps_wave(graph, sequential):
    """Absorbing rank 0's owner moves termination-wave duty to the parent;
    wave counts and detector behaviour must not change."""
    par = bfs(graph, 0, batch=True, workers=WORKERS,
              worker_faults=WorkerFaultPlan.from_spec("seed=7,kill=3:0"),
              worker_restarts=0)
    assert par.stats.degraded_ranks >= 1
    seq = sequential["bfs"]
    assert par.stats.termination_waves == seq.stats.termination_waves
    assert_healed_identical("bfs", seq, par)


def test_multiple_failures_one_run(graph, sequential):
    """Three injected failures across distinct workers, all healed."""
    par = bfs(graph, 0, batch=True, workers=WORKERS,
              worker_faults=WorkerFaultPlan.from_spec(
                  "seed=7,kill=3:1+8:3,exita=6:0"),
              worker_restarts=4)
    assert par.stats.worker_crashes == 3
    assert par.stats.worker_respawns == 3
    assert_healed_identical("bfs", sequential["bfs"], par)


# --------------------------------------------------------------------- #
# Composition cells
# --------------------------------------------------------------------- #
def test_worker_kill_composes_with_simulated_crash_recovery(graph):
    """A worker dies *between* a simulated rank-crash recovery and the
    next checkpoint epoch: the supervisor must re-run the recorded replay
    during restore, or the recovery's counter residue is lost and the
    parent's per-tick deltas go negative."""
    crash = FaultPlan(seed=11, drop_rate=0.01,
                      crashes=(CrashEvent(tick=4, rank=1),))
    kw = dict(batch=True, faults=crash, checkpoint_interval=8)
    seq = bfs(graph, 0, **kw)
    assert seq.stats.recoveries == 1 and seq.stats.replayed_ticks >= 1
    par = bfs(graph, 0, workers=WORKERS, worker_restarts=2,
              worker_faults=WorkerFaultPlan.from_spec("seed=7,kill=6:1"), **kw)
    assert par.stats.recoveries == 1
    assert par.stats.worker_respawns == 1
    assert_healed_identical("bfs", seq, par)


def test_worker_kill_on_simulated_crash_tick(graph):
    """The worker kill lands on the same tick as a simulated rank crash
    (the transport recovers the rank, then the tick command kills the
    worker that just replayed it)."""
    crash = FaultPlan(seed=11, drop_rate=0.01,
                      crashes=(CrashEvent(tick=4, rank=1),
                               CrashEvent(tick=9, rank=3)))
    kw = dict(batch=True, faults=crash, checkpoint_interval=4)
    seq = bfs(graph, 0, **kw)
    par = bfs(graph, 0, workers=WORKERS, worker_restarts=2,
              worker_faults=WorkerFaultPlan.from_spec("seed=7,kill=9:3"), **kw)
    assert par.stats.recoveries == seq.stats.recoveries == 2
    assert par.stats.worker_respawns >= 1
    assert_healed_identical("bfs", seq, par)


def test_worker_kill_composes_with_degraded_crash_recovery(graph):
    """Same composition, degradation flavour: the parent itself re-runs
    the recorded simulated replay when absorbing the ranks."""
    crash = FaultPlan(seed=11, drop_rate=0.01,
                      crashes=(CrashEvent(tick=4, rank=1),))
    kw = dict(batch=True, faults=crash, checkpoint_interval=8)
    seq = bfs(graph, 0, **kw)
    par = bfs(graph, 0, workers=WORKERS, worker_restarts=0,
              worker_faults=WorkerFaultPlan.from_spec("seed=7,kill=6:1"), **kw)
    assert par.stats.degraded_ranks >= 1
    assert_healed_identical("bfs", seq, par)


def test_worker_kill_composes_with_memory_pressure(graph):
    """Backpressure + external queue spill: the respawned worker restores
    the spill pager, its read-back cache and the spill ledger, so pressure
    charges evolve bit-identically."""
    cfg = EngineConfig(batch=True, mailbox_cap_bytes=64, queue_spill=16)
    seq = bfs(graph, 0, config=cfg)
    assert seq.stats.total_bp_stalls > 0, "pressure cell is not pressured"
    par = bfs(graph, 0, config=dataclasses.replace(cfg, workers=WORKERS),
              worker_faults=WorkerFaultPlan.from_spec("seed=7,kill=5:2"),
              worker_restarts=2)
    assert par.stats.worker_respawns >= 1
    assert_healed_identical("bfs", seq, par)


def test_order_digests_identical_under_chaos(graph):
    """Per-tick order digests — the race detector's observable — survive
    a kill and a hang bit-identically."""
    def run(workers, **kw):
        cfg = EngineConfig(record_order_digests=True, batch=True,
                           workers=workers, **kw)
        eng = SimulationEngine(graph, BFSAlgorithm(0), laptop(), config=cfg)
        eng.run()
        return eng.tick_digests, eng.tick_rank_digests

    seq_digests, seq_rank_digests = run(1)
    par_digests, par_rank_digests = run(
        WORKERS,
        worker_faults=WorkerFaultPlan.from_spec("seed=7,kill=4:1,hang=7:2"),
        worker_restarts=2, worker_barrier_timeout=1.0,
    )
    assert seq_digests == par_digests
    assert seq_rank_digests == par_rank_digests


def test_race_detector_composes_with_worker_faults(graph):
    """--detect-races over a supervised pool: correct algorithms stay
    clean while workers are being killed and healed underneath."""
    from repro.runtime.race import detect_races

    report = detect_races(
        graph, BFSAlgorithm(0), workers=2,
        worker_faults=WorkerFaultPlan.from_spec("seed=7,kill=3:1"),
        worker_restarts=2,
    )
    assert report.clean, report.summary()
