"""Batch-path equivalence matrix for the counter-mutating algorithms.

{triangles, kcore, pagerank} x {direct, 2d} x {object, batch} must agree
bit-for-bit on final per-vertex data and on every traversal stat —
including the float simulated clock — plus a chaos cell (seeded faults on
the reliable transport under a bounded mailbox) where the same equality
must hold even for the wire-level fault counters: the batch path emits
packets in exactly the object path's order, so the fault injector's single
decision stream perturbs both runs identically.

BFS/SSSP/CC cover the overwrite-style ``pre_visit`` in
tests/core/test_batch_equivalence.py; the three algorithms here all mutate
counters (k-core decrements, triangle counters, PageRank residual
accumulation), which is the ordering-sensitive case INTERNALS §7 argues.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.algorithms.kcore import kcore
from repro.algorithms.pagerank import pagerank
from repro.algorithms.triangles import triangle_count
from repro.bench.harness import build_rmat_graph
from repro.comm.faults import FaultPlan
from repro.runtime.costmodel import EngineConfig

CHAOS_PLAN = FaultPlan(
    seed=7, drop_rate=0.03, duplicate_rate=0.02, delay_rate=0.05, max_delay=3
)

RUNNERS = {
    "triangles": lambda g, **kw: triangle_count(g, **kw),
    "kcore": lambda g, **kw: kcore(g, 3, **kw),
    "pagerank": lambda g, **kw: pagerank(g, **kw),
}

DATA = {
    "triangles": lambda r: {"per_vertex": r.data.per_vertex},
    "kcore": lambda r: {"alive": r.data.alive},
    "pagerank": lambda r: {"scores": r.data.scores},
}


def _full_stats_key(stats):
    """Every counter the engine reports, wire-level ones included."""
    ranks = tuple(
        tuple(sorted(dataclasses.asdict(r).items())) for r in stats.ranks
    )
    top = tuple(sorted(
        (k, v) for k, v in dataclasses.asdict(stats).items() if k != "ranks"
    ))
    return top, ranks


@pytest.fixture(scope="module")
def graph():
    _, g = build_rmat_graph(7, num_partitions=4, num_ghosts=32,
                            strategy="edge_list", seed=2024)
    return g


def assert_bit_identical(algorithm, obj, bat):
    for name, arr in DATA[algorithm](obj).items():
        assert np.array_equal(arr, DATA[algorithm](bat)[name]), (
            f"{algorithm}: {name} diverged between object and batch paths"
        )
    assert _full_stats_key(obj.stats) == _full_stats_key(bat.stats)


@pytest.mark.parametrize("topology", ["direct", "2d"])
@pytest.mark.parametrize("algorithm", sorted(RUNNERS))
def test_matrix_cell(algorithm, topology, graph):
    run = RUNNERS[algorithm]
    obj = run(graph, topology=topology, batch=False)
    bat = run(graph, topology=topology, batch=True)
    assert_bit_identical(algorithm, obj, bat)


@pytest.mark.parametrize("algorithm", sorted(RUNNERS))
def test_chaos_cell(algorithm, graph):
    """Faults + bounded mailbox: the full stats key still matches, so the
    batch path's packet emission order is exactly the object path's (the
    fault injector draws from one global stream in transmission order)."""
    run = RUNNERS[algorithm]
    kw = dict(faults=CHAOS_PLAN, mailbox_cap=40,
              config=EngineConfig(visitor_budget=8))
    obj = run(graph, batch=False, **kw)
    bat = run(graph, batch=True, **kw)
    assert obj.stats.packets_dropped > 0  # the plan actually engaged
    assert obj.stats.total_bp_stalls > 0  # the cap actually engaged
    assert_bit_identical(algorithm, obj, bat)
