"""Parallel-executor equivalence matrix: ``workers=4`` vs sequential.

The process-parallel tick loop's defining contract is *bit-identity*: for
any worker count, every traversal stat — wire-level transport counters and
the float simulated clock included — every result array, and every
per-tick order digest must equal the sequential run's.  This matrix
checks that contract over all six algorithms x {direct, 2d} x {object,
batch}, plus the hostile cells: seeded faults on the reliable transport
under a bounded mailbox, rank crashes with checkpoint/replay recovery,
and memory pressure (mailbox cap + queue spill), where the equality must
hold even for fault, retransmission and backpressure counters — the
barrier merge replays worker packets in exactly the sequential global
send order, so the fault injector's single decision stream perturbs both
runs identically.
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

from repro.algorithms.bfs import BFSAlgorithm, bfs
from repro.algorithms.connected_components import connected_components
from repro.algorithms.kcore import kcore
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp import sssp
from repro.algorithms.triangles import triangle_count
from repro.bench.harness import build_rmat_graph
from repro.comm.faults import CrashEvent, FaultPlan
from repro.runtime.costmodel import EngineConfig, laptop
from repro.runtime.engine import SimulationEngine

WORKERS = 4

#: CI runs this matrix under both IPC transports: ``REPRO_IPC=pipe``
#: re-points every parallel cell at the pickled-pipe path (the default,
#: unset, exercises the engine default — the shared-memory ring).
IPC = os.environ.get("REPRO_IPC")
IPC_KW = {"ipc": IPC} if IPC else {}

CHAOS_PLAN = FaultPlan(
    seed=7, drop_rate=0.03, duplicate_rate=0.02, delay_rate=0.05, max_delay=3
)
CRASH_PLAN = FaultPlan(
    seed=11, drop_rate=0.01,
    crashes=(CrashEvent(tick=4, rank=1), CrashEvent(tick=9, rank=3)),
)

RUNNERS = {
    "bfs": lambda g, **kw: bfs(g, 0, **kw),
    "sssp": lambda g, **kw: sssp(g, 0, **kw),
    "cc": lambda g, **kw: connected_components(g, **kw),
    "triangles": lambda g, **kw: triangle_count(g, **kw),
    "kcore": lambda g, **kw: kcore(g, 3, **kw),
    "pagerank": lambda g, **kw: pagerank(g, **kw),
}

DATA = {
    "bfs": lambda r: (r.data.levels, r.data.parents),
    "sssp": lambda r: (r.data.distances,),
    "cc": lambda r: (r.data.labels,),
    "triangles": lambda r: (r.data.per_vertex,),
    "kcore": lambda r: (r.data.alive,),
    "pagerank": lambda r: (r.data.scores,),
}


def _full_stats_key(stats):
    """Every counter the engine reports, wire-level ones included, plus
    the per-tick timeline when traced."""
    ranks = tuple(
        tuple(sorted(dataclasses.asdict(r).items())) for r in stats.ranks
    )
    top = tuple(sorted(
        (k, v) for k, v in dataclasses.asdict(stats).items()
        if k not in ("ranks", "timeline")
    ))
    timeline = tuple(
        tuple(sorted(dataclasses.asdict(s).items())) for s in stats.timeline
    )
    return top, ranks, timeline


def assert_bit_identical(algorithm, seq, par):
    for a, b in zip(DATA[algorithm](seq), DATA[algorithm](par), strict=False):
        assert np.array_equal(a, b), (
            f"{algorithm}: result arrays diverged at workers={WORKERS}"
        )
    assert _full_stats_key(seq.stats) == _full_stats_key(par.stats)


@pytest.fixture(scope="module")
def graph():
    _, g = build_rmat_graph(7, num_partitions=4, num_ghosts=32,
                            strategy="edge_list", seed=2024)
    return g


@pytest.mark.parametrize("batch", [False, True], ids=["object", "batch"])
@pytest.mark.parametrize("topology", ["direct", "2d"])
@pytest.mark.parametrize("algorithm", sorted(RUNNERS))
def test_matrix_cell(algorithm, topology, batch, graph):
    run = RUNNERS[algorithm]
    seq = run(graph, topology=topology, batch=batch)
    par = run(graph, topology=topology, batch=batch, workers=WORKERS, **IPC_KW)
    assert_bit_identical(algorithm, seq, par)


@pytest.mark.parametrize("algorithm", sorted(RUNNERS))
def test_chaos_cell(algorithm, graph):
    """Faults + reliable transport + bounded mailbox: the barrier merge
    preserves the global send order the fault injector draws against."""
    run = RUNNERS[algorithm]
    kw = dict(batch=True, faults=CHAOS_PLAN, mailbox_cap=64,
              config=EngineConfig(visitor_budget=8), **IPC_KW)
    seq = run(graph, **kw)
    par = run(graph, workers=WORKERS, **kw)
    assert seq.stats.packets_dropped > 0  # the plan actually engaged
    assert seq.stats.total_bp_stalls > 0  # the cap actually engaged
    assert_bit_identical(algorithm, seq, par)


@pytest.mark.parametrize("batch", [False, True], ids=["object", "batch"])
@pytest.mark.parametrize("algorithm", ["bfs", "kcore"])
def test_crash_recovery_cell(algorithm, batch, graph):
    """Rank crashes: worker-side checkpoint/replay reproduces the
    sequential recovery manager's transport operation sequence."""
    run = RUNNERS[algorithm]
    kw = dict(batch=batch, faults=CRASH_PLAN, checkpoint_interval=4,
              config=EngineConfig(visitor_budget=8), **IPC_KW)
    seq = run(graph, **kw)
    par = run(graph, workers=WORKERS, **kw)
    assert seq.stats.recoveries == 2  # both planned crashes engaged
    assert_bit_identical(algorithm, seq, par)


@pytest.mark.parametrize("algorithm", ["bfs", "pagerank"])
def test_pressure_cell(algorithm, graph):
    """Mailbox cap + queue spill: the spill pager and backpressure ledger
    run worker-side, their charges merge parent-side in rank order."""
    run = RUNNERS[algorithm]
    kw = dict(batch=True, mailbox_cap=64, queue_spill=16,
              config=EngineConfig(visitor_budget=8), **IPC_KW)
    seq = run(graph, **kw)
    par = run(graph, workers=WORKERS, **kw)
    assert seq.stats.total_queue_spilled > 0  # the spill limit actually engaged
    assert_bit_identical(algorithm, seq, par)


def test_order_digests_identical(graph):
    """The per-tick order digests — the race detector's observable — are
    bit-identical between schedules, not just the final stats."""
    def digests(workers: int, ipc: str | None = IPC) -> tuple[list, list]:
        engine = SimulationEngine(
            graph, BFSAlgorithm(0), laptop(),
            config=EngineConfig(record_order_digests=True, workers=workers,
                                ipc_transport=ipc or "ring"),
        )
        engine.run()
        return engine.tick_digests, engine.tick_rank_digests

    seq_tick, seq_rank = digests(1)
    par_tick, par_rank = digests(WORKERS)
    assert len(seq_tick) > 0
    assert seq_tick == par_tick
    assert seq_rank == par_rank
    # Both transports, not just the one under test: the digests are the
    # strongest observable that frame decode order == pickle decode order.
    assert digests(WORKERS, "ring") == (seq_tick, seq_rank)
    assert digests(WORKERS, "pipe") == (seq_tick, seq_rank)


def test_workers_clamped_to_partitions(graph):
    """workers > p degrades gracefully to one worker per rank."""
    seq = bfs(graph, 0, batch=True)
    par = bfs(graph, 0, batch=True, workers=64, **IPC_KW)
    assert_bit_identical("bfs", seq, par)


# --------------------------------------------------------------------- #
# IPC transport cells (INTERNALS §14)
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("algorithm", ["bfs", "pagerank"])
def test_ipc_transports_bit_identical(algorithm, graph):
    """Ring and pipe decode into the same barrier merge: results and the
    full stats key match the sequential run under both transports."""
    run = RUNNERS[algorithm]
    seq = run(graph, batch=True)
    ring = run(graph, batch=True, workers=WORKERS, ipc="ring")
    pipe = run(graph, batch=True, workers=WORKERS, ipc="pipe")
    assert ring.ipc["transport"] == "ring"
    assert pipe.ipc["transport"] == "pipe"
    assert_bit_identical(algorithm, seq, ring)
    assert_bit_identical(algorithm, seq, pipe)


def test_ring_steady_state_pickles_nothing(graph):
    """The zero-pickle contract: a clean batch-mode ring run moves every
    per-tick byte through frames — ``tick_bytes_pickled`` is exactly 0."""
    r = bfs(graph, 0, batch=True, workers=WORKERS, ipc="ring")
    assert r.ipc["transport"] == "ring"
    assert r.ipc["frames"] > 0
    assert r.ipc["frame_bytes"] > 0
    assert r.ipc["ring_spills"] == 0
    assert r.ipc["tick_bytes_pickled"] == 0
    # Control-plane traffic (start/checkpoint/finalize) still pickles.
    assert r.ipc["bytes_pickled"] > 0


def test_pipe_mode_reports_no_frames(graph):
    r = bfs(graph, 0, batch=True, workers=WORKERS, ipc="pipe")
    assert r.ipc["transport"] == "pipe"
    assert r.ipc["frames"] == 0
    assert r.ipc["tick_bytes_pickled"] > 0


def test_object_path_stays_on_pipe(graph):
    """The ring fast path is batch-mode only; object-mode runs keep the
    pickled pipe even when ``ipc="ring"`` is requested."""
    r = bfs(graph, 0, batch=False, workers=WORKERS, ipc="ring")
    assert r.ipc["transport"] == "pipe"
    assert r.ipc["frames"] == 0
    assert_bit_identical("bfs", bfs(graph, 0, batch=False), r)


def test_tiny_ring_overflow_spills_to_pipe(graph, monkeypatch):
    """Frames that do not fit fall back to the pickled pipe per tick;
    a deliberately tiny arena forces spills and the run must still be
    bit-identical (the spill reply is the exact pipe-mode payload)."""
    import repro.runtime.parallel as parallel

    monkeypatch.setattr(parallel, "RING_BYTES", 1 << 9)
    seq = bfs(graph, 0, batch=True)
    par = bfs(graph, 0, batch=True, workers=WORKERS, ipc="ring")
    assert par.ipc["transport"] == "ring"
    assert par.ipc["ring_spills"] > 0
    assert par.ipc["tick_bytes_pickled"] > 0  # the spilled ticks
    assert_bit_identical("bfs", seq, par)


def test_respawned_worker_reattaches_ring(graph):
    """A SIGKILLed worker's replacement forks against reset arenas and
    serves the rest of the run over frames, bit-identically (modulo the
    supervisor's own activity counters)."""
    from repro.comm.faults import WorkerFaultPlan
    from repro.runtime.trace import SUPERVISION_STATS_FIELDS

    kw = dict(batch=True, checkpoint_interval=4, reliable=True,
              config=EngineConfig(visitor_budget=8))
    seq = bfs(graph, 0, **kw)
    par = bfs(graph, 0, workers=WORKERS, worker_restarts=2,
              worker_faults=WorkerFaultPlan.from_spec("seed=3,kill=5:1"),
              ipc="ring", **kw)
    assert par.stats.worker_respawns >= 1  # the kill actually engaged
    assert par.ipc["transport"] == "ring"
    assert par.ipc["frames"] > 0
    for a, b in zip(DATA["bfs"](seq), DATA["bfs"](par), strict=False):
        assert np.array_equal(a, b)

    def key(stats):
        top, ranks, timeline = _full_stats_key(stats)
        return tuple(
            (k, v) for k, v in top if k not in SUPERVISION_STATS_FIELDS
        ), ranks, timeline

    assert key(seq.stats) == key(par.stats)
