"""Edge-case integration tests: degenerate graphs and extreme configs."""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.connected_components import connected_components
from repro.algorithms.kcore import kcore
from repro.algorithms.sssp import sssp
from repro.algorithms.triangles import triangle_count
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.runtime.costmodel import EngineConfig, hyperion_dit
from repro.types import UNREACHED


class TestSingleEdgeGraph:
    @pytest.fixture
    def g(self):
        el = EdgeList.from_pairs([(0, 1)], 2).simple_undirected()
        return DistributedGraph.build(el, 1)

    def test_bfs(self, g):
        r = bfs(g, 0)
        assert list(r.data.levels) == [0, 1]

    def test_kcore(self, g):
        assert kcore(g, 1).data.core_size == 2
        assert kcore(g, 2).data.core_size == 0

    def test_triangles(self, g):
        assert triangle_count(g).data.total == 0

    def test_cc(self, g):
        assert connected_components(g).data.num_components == 1

    def test_sssp(self, g):
        r = sssp(g, 1)
        assert np.isfinite(r.data.distances).all()


class TestSelfLoopHeavyInput:
    def test_pipeline_strips_loops(self):
        el = EdgeList.from_pairs(
            [(0, 0), (1, 1), (0, 1), (1, 2), (2, 2)], 3
        ).simple_undirected()
        assert el.num_edges == 4  # (0,1),(1,0),(1,2),(2,1)
        g = DistributedGraph.build(el, 2)
        r = bfs(g, 0)
        assert list(r.data.levels) == [0, 1, 2]


class TestMultiEdgeInput:
    def test_dedup_keeps_one(self):
        el = EdgeList.from_pairs(
            [(0, 1)] * 5 + [(1, 2)] * 3, 3
        ).simple_undirected()
        assert el.num_edges == 4
        g = DistributedGraph.build(el, 2)
        assert triangle_count(g).data.total == 0


class TestIsolatedVertexBlocks:
    def test_leading_and_trailing_isolated(self):
        """Vertices 0-2 and 7-9 have no edges at all."""
        el = EdgeList.from_pairs([(3, 4), (4, 5), (5, 6)], 10).simple_undirected()
        g = DistributedGraph.build(el, 3)
        r = bfs(g, 3)
        assert r.data.num_reached == 4
        assert r.data.levels[0] == UNREACHED
        assert r.data.levels[9] == UNREACHED
        cc = connected_components(g)
        assert cc.data.num_components == 7  # one path + 6 singletons


class TestExtremePartitionCounts:
    def test_p_equals_m(self):
        """One edge per partition: every multi-edge vertex is split."""
        el = EdgeList.from_pairs([(0, 1), (1, 2), (2, 3)], 4).simple_undirected()
        g = DistributedGraph.build(el, el.num_edges)  # p = 6
        r = bfs(g, 0)
        assert list(r.data.levels) == [0, 1, 2, 3]

    def test_star_fully_split(self, star_graph):
        p = star_graph.num_edges  # 32 partitions, 1 edge each
        g = DistributedGraph.build(star_graph, p)
        assert g.max_owner(0) - g.min_owner(0) >= 10  # hub spans many ranks
        r = bfs(g, 0)
        assert r.data.num_reached == 17


class TestExtremeEngineConfigs:
    def test_budget_one(self, rmat_small, rmat_small_graph):
        from repro.reference.bfs import bfs_levels

        r = bfs(
            rmat_small_graph, int(rmat_small.src[0]),
            config=EngineConfig(visitor_budget=1, use_termination_detector=False),
        )
        assert np.array_equal(
            r.data.levels, bfs_levels(rmat_small, int(rmat_small.src[0]))
        )

    def test_aggregation_one(self, rmat_small, rmat_small_graph):
        from repro.reference.bfs import bfs_levels

        r = bfs(
            rmat_small_graph, int(rmat_small.src[0]),
            config=EngineConfig(aggregation_size=1),
        )
        assert np.array_equal(
            r.data.levels, bfs_levels(rmat_small, int(rmat_small.src[0]))
        )

    def test_io_concurrency_ignored_on_dram(self, rmat_small, rmat_small_graph):
        a = bfs(rmat_small_graph, 0, config=EngineConfig(io_concurrency=1))
        b = bfs(rmat_small_graph, 0, config=EngineConfig(io_concurrency=None))
        assert a.stats.time_us == b.stats.time_us

    def test_tiny_cache_still_correct(self, rmat_small):
        from repro.reference.bfs import bfs_levels

        g = DistributedGraph.build(rmat_small, 4)
        machine = hyperion_dit("nvram", cache_bytes_per_rank=4096, page_size=256)
        r = bfs(g, int(rmat_small.src[0]), machine=machine)
        assert np.array_equal(
            r.data.levels, bfs_levels(rmat_small, int(rmat_small.src[0]))
        )
        assert r.stats.cache_hit_rate() < 1.0


class TestSourceEdgeCases:
    def test_isolated_source(self):
        el = EdgeList.from_pairs([(1, 2)], 4).simple_undirected()
        g = DistributedGraph.build(el, 1)
        r = bfs(g, 3)  # no edges at all
        assert r.data.num_reached == 1
        assert r.data.levels[3] == 0

    def test_last_vertex_source(self, rmat_small, rmat_small_graph):
        source = rmat_small.num_vertices - 1
        r = bfs(rmat_small_graph, source)
        assert r.data.levels[source] == 0
