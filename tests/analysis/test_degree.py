"""Tests for degree-distribution analysis and the power-law fit."""

import numpy as np
import pytest

from repro.analysis.degree import (
    degree_histogram_report,
    fit_power_law,
    tail_heaviness,
)
from repro.generators.preferential_attachment import preferential_attachment_edges
from repro.generators.rmat import rmat_edges
from repro.generators.small_world import small_world_edges
from repro.graph.edge_list import EdgeList


def _degrees(src, dst, n):
    return EdgeList.from_arrays(src, dst, n).degrees()


class TestPowerLawFit:
    def test_synthetic_power_law_recovered(self):
        """Sampling from an exact discrete power law recovers alpha."""
        rng = np.random.default_rng(0)
        alpha = 2.5
        d = np.arange(4, 5000)
        probs = d.astype(np.float64) ** -alpha
        probs /= probs.sum()
        sample = rng.choice(d, size=50_000, p=probs)
        fit = fit_power_law(sample, d_min=4)
        assert fit.alpha == pytest.approx(alpha, abs=0.1)

    def test_ba_exponent_near_three(self):
        """Pure preferential attachment is the textbook alpha ~= 3 case."""
        src, dst = preferential_attachment_edges(20_000, 4, seed=1)
        fit = fit_power_law(_degrees(src, dst, 20_000), d_min=8)
        assert 2.3 < fit.alpha < 3.7

    def test_rewiring_steepens_tail(self):
        """Full rewiring (random graph) has a much steeper effective tail
        than pure PA — the Figure 11 mechanism in exponent form."""
        n = 8192
        src, dst = preferential_attachment_edges(n, 4, seed=2)
        pa_fit = fit_power_law(_degrees(src, dst, n), d_min=8)
        src, dst = preferential_attachment_edges(n, 4, rewire_probability=1.0, seed=2)
        random_fit = fit_power_law(_degrees(src, dst, n), d_min=8)
        assert random_fit.alpha > pa_fit.alpha + 0.5

    def test_empty_tail(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1, 1, 1]), d_min=4)

    def test_bad_dmin(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([5, 6]), d_min=1)


class TestTailHeaviness:
    def test_scale_free_vs_uniform(self):
        scale = 12
        src, dst = rmat_edges(scale, 16 << scale, seed=3)
        rmat_tail = tail_heaviness(_degrees(src, dst, 1 << scale))
        src, dst = small_world_edges(1 << scale, 16, seed=3)
        sw_tail = tail_heaviness(_degrees(src, dst, 1 << scale))
        assert rmat_tail > 3 * sw_tail
        assert sw_tail < 0.03  # uniform degree: top 1% holds ~1%

    def test_empty(self):
        assert tail_heaviness(np.array([])) == 0.0


class TestHistogramReport:
    def test_contains_buckets(self):
        report = degree_histogram_report(np.array([0, 1, 2, 3, 9]))
        assert "[2, 4)" in report
        assert "[8, 16)" in report
        assert report.splitlines()[0].startswith("degree-range")

    def test_empty(self):
        assert "empty" in degree_histogram_report(np.array([]))
