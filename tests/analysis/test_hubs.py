"""Tests for hub-growth analysis (Figure 1)."""

import numpy as np

from repro.analysis.hubs import hub_growth_curve, hub_stats, rmat_degree_counts


class TestHubStats:
    def test_basic(self):
        degrees = np.array([1, 1, 100, 2000])
        s = hub_stats(degrees, thresholds=(100, 1000))
        assert s.max_degree == 2000
        assert s.edges_at_threshold[100] == 2100
        assert s.edges_at_threshold[1000] == 2000
        assert s.num_edges == 2102

    def test_empty(self):
        s = hub_stats(np.array([], dtype=np.int64))
        assert s.max_degree == 0
        assert s.num_vertices == 0


class TestDegreeCounts:
    def test_totals(self):
        degrees = rmat_degree_counts(8, 16, seed=0)
        assert degrees.sum() == 2 * 16 * 256  # each edge contributes 2

    def test_chunking_consistent(self):
        a = rmat_degree_counts(8, 16, seed=0, chunk_size=1 << 20)
        b = rmat_degree_counts(8, 16, seed=0, chunk_size=1 << 20)
        assert np.array_equal(a, b)


class TestGrowthCurve:
    def test_figure1_shape(self):
        """The paper's claim at reproduction scale: the max-degree hub and
        the threshold-edge series all grow with scale, while the mean
        degree stays constant."""
        curve = hub_growth_curve((8, 10, 12), thresholds=(32,), seed=0)
        max_degrees = [s.max_degree for s in curve]
        hub_edges = [s.edges_at_threshold[32] for s in curve]
        assert max_degrees[0] < max_degrees[1] < max_degrees[2]
        assert hub_edges[0] < hub_edges[1] < hub_edges[2]
        mean_degrees = [s.num_edges / s.num_vertices for s in curve]
        assert all(abs(m - mean_degrees[0]) < 1e-9 for m in mean_degrees)
