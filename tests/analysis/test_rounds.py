"""Tests for the Section VI-D parallel-round bounds.

Beyond arithmetic checks, the bounds are validated as *invariants* against
the simulator: measured ticks (a constant-factor proxy for parallel rounds)
must not exceed the corresponding bound by more than a small constant.
"""

import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.kcore import kcore
from repro.algorithms.triangles import triangle_count
from repro.analysis.rounds import (
    bfs_round_bound,
    kcore_round_bound,
    triangle_round_bound,
)
from repro.runtime.costmodel import EngineConfig
from repro.types import UNREACHED


class TestFormulas:
    def test_bfs_ghosts_reduce_hub_term(self):
        without = bfs_round_bound(10, 1000, 8, max_in_degree=500)
        with_g = bfs_round_bound(10, 1000, 8, max_in_degree=500, with_ghosts=True)
        assert without - with_g == 500 - 8

    def test_kcore_always_pays_hub_term(self):
        assert kcore_round_bound(10, 1000, 8, 500) == 10 + 125 + 500

    def test_triangle_quadratic_in_degree(self):
        small = triangle_round_bound(1000, 8, max_out_degree=4, max_in_degree=4)
        big = triangle_round_bound(1000, 8, max_out_degree=64, max_in_degree=64)
        assert big > 10 * small

    def test_validation(self):
        with pytest.raises(ValueError):
            bfs_round_bound(1, 10, 0, 1)
        with pytest.raises(ValueError):
            triangle_round_bound(-1, 2, 1, 1)


class TestBoundsHoldInSimulation:
    """Measured work per processor stays within a constant factor of the
    analytical bounds (the simulator's tick count is a lower-granularity
    proxy: each tick executes up to visitor_budget visitors per rank)."""

    CONFIG = EngineConfig(visitor_budget=1, use_termination_detector=False)

    def _props(self, edges):
        d_out = int(edges.out_degrees().max())
        d_in = int(edges.in_degrees().max())
        return d_out, d_in

    def test_bfs_ticks_within_bound(self, rmat_small, rmat_small_graph):
        s = int(rmat_small.src[0])
        r = bfs(rmat_small_graph, s, config=self.CONFIG)
        levels = r.data.levels
        diameter = int(levels[levels != UNREACHED].max())
        _, d_in = self._props(rmat_small)
        bound = bfs_round_bound(
            diameter, rmat_small.num_edges, rmat_small_graph.num_partitions, d_in
        )
        assert r.stats.ticks <= 8 * bound

    def test_kcore_ticks_within_bound(self, rmat_small, rmat_small_graph):
        r = kcore(rmat_small_graph, 4, config=self.CONFIG)
        _, d_in = self._props(rmat_small)
        # diameter proxied by n (safe upper bound for the critical path)
        bound = kcore_round_bound(
            rmat_small.num_vertices, rmat_small.num_edges,
            rmat_small_graph.num_partitions, d_in,
        )
        assert r.stats.ticks <= 8 * bound

    def test_triangle_ticks_within_bound(self, rmat_small, rmat_small_graph):
        r = triangle_count(rmat_small_graph, config=self.CONFIG)
        d_out, d_in = self._props(rmat_small)
        bound = triangle_round_bound(
            rmat_small.num_edges, rmat_small_graph.num_partitions, d_out, d_in
        )
        assert r.stats.ticks <= 8 * bound
