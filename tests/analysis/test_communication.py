"""Tests for the communication-density analysis."""

import numpy as np

from repro.analysis.communication import communication_profile
from repro.bench.harness import build_rmat_graph
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList


class TestStructure:
    def test_single_rank_no_cut(self, rmat_small):
        g = DistributedGraph.build(rmat_small, 1)
        profile = communication_profile(g)
        assert profile.cut_edges == 0
        assert profile.communicating_pairs == 0
        assert profile.cut_fraction == 0.0

    def test_counts_bounded(self, rmat_small):
        g = DistributedGraph.build(rmat_small, 8)
        profile = communication_profile(g)
        assert 0 < profile.cut_edges <= rmat_small.num_edges
        assert 0 < profile.communicating_pairs <= 8 * 7
        assert 0.0 < profile.pair_density <= 1.0

    def test_ring_is_sparse_cut(self):
        """A ring partitioned into contiguous blocks cuts only the block
        boundaries — the easy case where no routing is needed."""
        n = 64
        el = EdgeList.from_pairs(
            [(i, (i + 1) % n) for i in range(n)], n
        ).simple_undirected()
        g = DistributedGraph.build(el, 8)
        profile = communication_profile(g)
        assert profile.cut_fraction < 0.15

    def test_scale_free_is_dense(self):
        """The paper's motivating case: a permuted scale-free graph has a
        polynomial cut and near-all-to-all communicating pairs."""
        _, g = build_rmat_graph(10, num_partitions=16, seed=3)
        profile = communication_profile(g)
        assert profile.cut_fraction > 0.5
        assert profile.pair_density > 0.9  # effectively all-to-all

    def test_hotspot_visible(self):
        """A single huge hub concentrates incoming cut edges on its master
        rank — the hotspot ghosts exist to dissipate."""
        n = 128
        pairs = [(i, 0) for i in range(1, n)]
        el = EdgeList.from_pairs(pairs, n).simple_undirected()
        g = DistributedGraph.build(el, 8)
        profile = communication_profile(g)
        hub_master = g.min_owner(0)
        in_cut = profile.in_cut_per_rank
        assert in_cut[hub_master] == in_cut.max()
        assert in_cut[hub_master] > 3 * np.mean(in_cut)

    def test_totals_consistent(self, rmat_small):
        g = DistributedGraph.build(rmat_small, 8)
        profile = communication_profile(g)
        assert profile.in_cut_per_rank.sum() == profile.cut_edges
