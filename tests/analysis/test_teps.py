"""Tests for TEPS accounting."""

import numpy as np
import pytest

from repro.analysis.teps import bfs_traversed_edges, gteps, mteps, teps
from repro.graph.edge_list import EdgeList
from repro.types import UNREACHED


class TestTraversedEdges:
    def test_full_coverage(self, path_graph):
        levels = np.array([0, 1, 2, 3, 4], dtype=np.int64)
        # 4 undirected edges, all reached
        assert bfs_traversed_edges(path_graph, levels) == 4

    def test_partial_coverage(self):
        el = EdgeList.from_pairs([(0, 1), (2, 3)], 4).simple_undirected()
        levels = np.array([0, 1, UNREACHED, UNREACHED], dtype=np.int64)
        assert bfs_traversed_edges(el, levels) == 1

    def test_directed_convention(self):
        el = EdgeList.from_pairs([(0, 1), (1, 2)], 3).sorted_by_source()
        levels = np.array([0, 1, 2], dtype=np.int64)
        assert bfs_traversed_edges(el, levels, undirected=False) == 2


class TestUnits:
    def test_scaling(self):
        assert teps(1_000_000, 1_000_000) == pytest.approx(1e6)  # 1M edges / 1s
        assert mteps(1_000_000, 1_000_000) == pytest.approx(1.0)
        assert gteps(1_000_000_000, 1_000_000) == pytest.approx(1.0)

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError):
            teps(10, 0.0)
