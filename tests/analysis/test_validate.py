"""Tests for the Graph500-style BFS validator."""

import pytest

from repro.algorithms.bfs import bfs
from repro.analysis.validate import validate_bfs
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.types import UNREACHED


def _run(edges, source, p=4, **kwargs):
    g = DistributedGraph.build(edges, p, **kwargs)
    r = bfs(g, source)
    return r.data.levels, r.data.parents


class TestValidOutputs:
    def test_real_bfs_validates(self, rmat_small):
        s = int(rmat_small.src[0])
        levels, parents = _run(rmat_small, s, p=8, num_ghosts=8)
        report = validate_bfs(rmat_small, s, levels, parents)
        assert report.valid, report.errors

    def test_path(self, path_graph):
        levels, parents = _run(path_graph, 0, p=2)
        assert validate_bfs(path_graph, 0, levels, parents).valid

    def test_disconnected(self):
        el = EdgeList.from_pairs([(0, 1), (3, 4)], 5).simple_undirected()
        levels, parents = _run(el, 0, p=2)
        assert validate_bfs(el, 0, levels, parents).valid


class TestCorruptionsDetected:
    @pytest.fixture
    def good(self, path_graph):
        levels, parents = _run(path_graph, 0, p=2)
        return path_graph, levels.copy(), parents.copy()

    def test_wrong_source_level(self, good):
        edges, levels, parents = good
        levels[0] = 3
        assert not validate_bfs(edges, 0, levels, parents).valid

    def test_wrong_source_parent(self, good):
        edges, levels, parents = good
        parents[0] = 2
        assert not validate_bfs(edges, 0, levels, parents).valid

    def test_level_skip(self, good):
        edges, levels, parents = good
        levels[4] = 9  # path vertex jumped levels
        report = validate_bfs(edges, 0, levels, parents)
        assert not report.valid

    def test_nonexistent_tree_edge(self, good):
        edges, levels, parents = good
        parents[4] = 0  # (0, 4) is not an edge of the path
        levels[4] = 1
        report = validate_bfs(edges, 0, levels, parents)
        assert not report.valid
        assert any("does not exist" in e or "spans" in e for e in report.errors)

    def test_unreached_parent(self, good):
        edges, levels, parents = good
        parents[2] = 4
        levels[4] = UNREACHED
        assert not validate_bfs(edges, 0, levels, parents).valid

    def test_missed_vertex(self, good):
        edges, levels, parents = good
        levels[4] = UNREACHED  # reachable but claimed unreached
        parents[4] = -1
        report = validate_bfs(edges, 0, levels, parents)
        assert not report.valid
        assert any("missed" in e for e in report.errors)

    def test_error_cap(self, good):
        edges, levels, parents = good
        levels[1:] = 7  # everything broken
        report = validate_bfs(edges, 0, levels, parents, max_errors=2)
        assert len(report.errors) <= 2
