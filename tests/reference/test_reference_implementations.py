"""Validate the sequential references against networkx / scipy.

The distributed algorithms are tested against these references, so the
references themselves are grounded in a third-party implementation here.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import networkx as nx
import numpy as np
import pytest

from repro.graph.edge_list import EdgeList
from repro.reference.bfs import bfs_levels
from repro.reference.components import component_labels
from repro.reference.kcore import core_numbers
from repro.reference.triangles import total_triangles, triangles_per_max_vertex
from repro.types import UNREACHED


def _nx_graph(edges: EdgeList) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(edges.num_vertices))
    g.add_edges_from(zip(edges.src.tolist(), edges.dst.tolist(), strict=False))
    return g


def random_edges(seed, n=24, m=80):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    return EdgeList.from_arrays(src, dst, n).simple_undirected()


class TestBFSReference:
    @pytest.mark.parametrize("seed", range(5))
    def test_vs_networkx(self, seed):
        edges = random_edges(seed)
        nxg = _nx_graph(edges)
        levels = bfs_levels(edges, 0)
        nx_levels = nx.single_source_shortest_path_length(nxg, 0)
        for v in range(edges.num_vertices):
            if v in nx_levels:
                assert levels[v] == nx_levels[v]
            else:
                assert levels[v] == UNREACHED

    def test_source_out_of_range(self):
        with pytest.raises(ValueError):
            bfs_levels(random_edges(0), 999)

    def test_empty_graph(self):
        edges = EdgeList.from_pairs([], num_vertices=3)
        levels = bfs_levels(edges, 1)
        assert levels[1] == 0
        assert levels[0] == UNREACHED


class TestKCoreReference:
    @pytest.mark.parametrize("seed", range(5))
    def test_core_numbers_vs_networkx(self, seed):
        edges = random_edges(seed)
        nxg = _nx_graph(edges)
        expected = nx.core_number(nxg)
        got = core_numbers(edges)
        for v in range(edges.num_vertices):
            assert got[v] == expected.get(v, 0)

    def test_empty(self):
        assert core_numbers(EdgeList.from_pairs([], num_vertices=0)).size == 0


class TestTriangleReference:
    @pytest.mark.parametrize("seed", range(5))
    def test_total_vs_networkx(self, seed):
        edges = random_edges(seed)
        nxg = _nx_graph(edges)
        assert total_triangles(edges) == sum(nx.triangles(nxg).values()) // 3

    @pytest.mark.parametrize("seed", range(3))
    def test_per_vertex_sums_to_total(self, seed):
        edges = random_edges(seed)
        per_vertex = triangles_per_max_vertex(edges)
        assert int(per_vertex.sum()) == total_triangles(edges)

    def test_empty(self):
        edges = EdgeList.from_pairs([], num_vertices=4)
        assert total_triangles(edges) == 0
        assert triangles_per_max_vertex(edges).sum() == 0


class TestComponentsReference:
    @pytest.mark.parametrize("seed", range(5))
    def test_vs_networkx(self, seed):
        edges = random_edges(seed)
        nxg = _nx_graph(edges)
        got = component_labels(edges)
        for comp in nx.connected_components(nxg):
            labels = {int(got[v]) for v in comp}
            assert labels == {min(comp)}


@settings(max_examples=20, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=50
    )
)
def test_kcore_hierarchy_property(pairs):
    """Core numbers are monotone: the (k+1)-core is a subset of the k-core."""
    edges = EdgeList.from_pairs(pairs, num_vertices=12).simple_undirected()
    cores = core_numbers(edges)
    degrees = edges.out_degrees()
    assert np.all(cores <= degrees)
    assert np.all(cores >= 0)
