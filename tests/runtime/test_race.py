"""The tick-order race detector: clean algorithms are schedule-invariant,
a seeded cross-rank shared-state bug diverges at a localized tick."""

from __future__ import annotations

import pytest

from repro.algorithms.bfs import BFSAlgorithm, BFSVisitor
from repro.errors import ConfigurationError
from repro.generators.rmat import rmat_edges
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.runtime.costmodel import EngineConfig
from repro.runtime.race import detect_races


def build_graph(parts: int, scale: int = 7, seed: int = 5) -> DistributedGraph:
    src, dst = rmat_edges(scale, 16 << scale, seed=seed)
    edges = EdgeList.from_arrays(src, dst, 1 << scale)
    return DistributedGraph.build(edges, parts)


class RacyVisitor(BFSVisitor):
    """BFS visitor gated on a counter *shared across ranks* — impossible
    on a real distributed machine, and exactly the bug class the race
    detector exists to localize: which visitors expand depends on the
    global interleaving of visitor execution."""

    __slots__ = ("shared",)

    def __init__(self, vertex, length, parent, shared):
        super().__init__(vertex, length, parent)
        self.shared = shared

    def visit(self, ctx):
        n = self.shared[0]
        self.shared[0] = n + 1
        if n % 2 == 0 and self.length == ctx.state_of(self.vertex).length:
            nxt = self.length + 1
            for w in ctx.out_edges(self.vertex):
                ctx.push(RacyVisitor(int(w), nxt, self.vertex, self.shared))


class RacyAlgorithm(BFSAlgorithm):
    name = "racy-bfs"
    supports_batch = False

    def __init__(self):
        super().__init__(0)
        self.shared = [0]

    def initial_visitors(self, graph, rank):
        # One seed per rank so multiple ranks run visitors in the same
        # tick — the interleaving the parity gate leaks.
        v = int(graph.masters_on(rank)[0])
        yield RacyVisitor(v, 0, v, self.shared)


@pytest.mark.parametrize("batch", [False, True])
def test_clean_bfs_is_schedule_invariant(batch):
    graph = build_graph(4)
    report = detect_races(graph, lambda: BFSAlgorithm(0), batch=batch)
    assert report.clean
    assert report.first_divergent_tick is None
    assert report.divergent_ranks == ()
    assert report.baseline_ticks == report.perturbed_ticks > 0
    assert report.rank_order == (3, 2, 1, 0)
    assert "clean" in report.summary()


def test_racy_algorithm_diverges_at_first_tick():
    graph = build_graph(2)
    report = detect_races(graph, RacyAlgorithm)
    assert not report.clean
    # Both ranks run one seed visitor in the very first tick; which of
    # them sees the even counter value flips with the rank order.
    assert report.first_divergent_tick == 1
    assert report.divergent_ranks == (0, 1)
    assert "RACE" in report.summary()
    assert "tick 1" in report.summary()


def test_custom_rank_order_is_reported():
    graph = build_graph(4)
    order = (2, 0, 3, 1)
    report = detect_races(graph, lambda: BFSAlgorithm(0), rank_order=order)
    assert report.clean
    assert report.rank_order == order


def test_perturbed_order_requires_reliable_transport():
    with pytest.raises(ConfigurationError, match="reliable"):
        EngineConfig(rank_order=(1, 0))
    # Identity order is a no-op and allowed on the plain fabric.
    EngineConfig(rank_order=(0, 1))
    EngineConfig(rank_order=(1, 0), reliable=True)


def test_rank_order_must_be_permutation():
    with pytest.raises(ConfigurationError, match="permutation"):
        EngineConfig(rank_order=(0, 2), reliable=True)


def test_rank_order_length_must_match_ranks():
    graph = build_graph(2)
    with pytest.raises(ConfigurationError, match="2 ranks"):
        detect_races(graph, lambda: BFSAlgorithm(0), rank_order=(0, 1, 2))


def test_digest_recording_leaves_results_identical():
    graph = build_graph(4)
    from repro.algorithms.bfs import bfs

    base = bfs(graph, 0)
    instrumented = bfs(
        graph, 0,
        config=EngineConfig(record_order_digests=True),
    )
    assert (base.data.levels == instrumented.data.levels).all()
    assert (base.data.parents == instrumented.data.parents).all()
    assert base.stats.ticks == instrumented.stats.ticks
    assert base.stats.time_us == instrumented.stats.time_us
