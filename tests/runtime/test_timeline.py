"""Tests for the per-tick timeline trace."""

import numpy as np

from repro.algorithms.bfs import bfs
from repro.runtime.costmodel import EngineConfig


class TestTimeline:
    def test_off_by_default(self, rmat_small, rmat_small_graph):
        r = bfs(rmat_small_graph, int(rmat_small.src[0]))
        assert r.stats.timeline == []

    def test_one_sample_per_tick(self, rmat_small, rmat_small_graph):
        r = bfs(
            rmat_small_graph, int(rmat_small.src[0]),
            config=EngineConfig(trace_timeline=True),
        )
        assert len(r.stats.timeline) == r.stats.ticks
        ticks = [s.tick for s in r.stats.timeline]
        assert ticks == list(range(1, r.stats.ticks + 1))

    def test_time_monotone(self, rmat_small, rmat_small_graph):
        r = bfs(
            rmat_small_graph, int(rmat_small.src[0]),
            config=EngineConfig(trace_timeline=True),
        )
        times = [s.time_us for s in r.stats.timeline]
        assert all(b > a for a, b in zip(times, times[1:], strict=False))
        assert times[-1] == r.stats.time_us

    def test_drains_to_empty(self, rmat_small, rmat_small_graph):
        r = bfs(
            rmat_small_graph, int(rmat_small.src[0]),
            config=EngineConfig(trace_timeline=True),
        )
        last = r.stats.timeline[-1]
        assert last.queued_visitors == 0

    def test_visits_sum_matches(self, rmat_small, rmat_small_graph):
        r = bfs(
            rmat_small_graph, int(rmat_small.src[0]),
            config=EngineConfig(trace_timeline=True),
        )
        assert sum(s.visits_this_tick for s in r.stats.timeline) == r.stats.total_visits

    def test_wavefront_shape(self, rmat_small, rmat_small_graph):
        """With a tight visitor budget the BFS wavefront backs up in the
        local queues: the depth curve rises above its endpoints (a generous
        budget drains every queue within its tick, flattening the curve)."""
        r = bfs(
            rmat_small_graph, int(rmat_small.src[0]),
            config=EngineConfig(trace_timeline=True, visitor_budget=2),
        )
        depths = np.array([s.queued_visitors for s in r.stats.timeline])
        assert depths.max() > depths[0]
        assert depths.max() > depths[-1]
        assert depths[-1] == 0
