"""Unit tests for the durable checkpoint layer (INTERNALS §13).

Covers the epoch file format and its atomic commit protocol, the fault
injector's four corruption modes and the fallback ladder they exercise,
retention pruning, the orphaned-tmp sweep, the config-key guard against
resuming a different run, and the engine-config validation surface.
"""

from __future__ import annotations

import os

import pytest

from repro.algorithms.bfs import bfs
from repro.bench.harness import build_rmat_graph, pick_bfs_source
from repro.errors import CheckpointCorruptionError, ConfigurationError
from repro.runtime.costmodel import EngineConfig
from repro.runtime.durability import DurableFaultPlan, sweep_orphans
from repro.runtime.trace import DURABILITY_STATS_FIELDS, TraversalStats


@pytest.fixture(scope="module")
def small():
    """A tiny partitioned RMAT graph plus a BFS source (module-cached)."""
    edges, graph = build_rmat_graph(7, num_partitions=4, num_ghosts=32, seed=5)
    return edges, graph, pick_bfs_source(edges, seed=5)


def _rebuild():
    return build_rmat_graph(7, num_partitions=4, num_ghosts=32, seed=5)[1]


# --------------------------------------------------------------------- #
# DurableFaultPlan
# --------------------------------------------------------------------- #
class TestDurableFaultPlan:
    def test_from_spec(self):
        plan = DurableFaultPlan.from_spec(
            "seed=7,torn=32,bitflip=16+48,manifest=64,missing=80"
        )
        assert plan.seed == 7
        assert plan.torn == (32,)
        assert plan.bitflip == (16, 48)
        assert plan.manifest == (64,)
        assert plan.missing == (80,)
        assert plan.any_faults

    def test_empty_plan_has_no_faults(self):
        assert not DurableFaultPlan().any_faults

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            DurableFaultPlan.from_spec("seed=7,shred=3")

    def test_bad_tick_rejected(self):
        with pytest.raises(ConfigurationError):
            DurableFaultPlan.from_spec("torn=0")


# --------------------------------------------------------------------- #
# EngineConfig validation
# --------------------------------------------------------------------- #
class TestConfigValidation:
    @pytest.mark.parametrize("field, value", [
        ("durable_resume", True),
        ("durable_faults", DurableFaultPlan(torn=(4,))),
        ("kill_at_tick", 8),
    ])
    def test_durable_knobs_require_dir(self, field, value):
        with pytest.raises(ConfigurationError, match="durable_dir"):
            EngineConfig(**{field: value})

    def test_interval_and_keep_bounds(self, tmp_path):
        with pytest.raises(ConfigurationError):
            EngineConfig(durable_dir=str(tmp_path), durable_interval=0)
        with pytest.raises(ConfigurationError):
            EngineConfig(durable_dir=str(tmp_path), durable_keep=0)


# --------------------------------------------------------------------- #
# Epoch write / prune / orphan sweep
# --------------------------------------------------------------------- #
class TestEpochFiles:
    def test_epochs_written_and_pruned(self, small, tmp_path):
        _, graph, src = small
        d = str(tmp_path / "dur")
        result = bfs(graph, src, durable_dir=d, durable_interval=4,
                     durable_keep=1)
        assert result.stats.durable_checkpoints >= 2
        names = sorted(os.listdir(d))
        # keep=1: exactly one (bin, manifest) pair survives pruning.
        assert len(names) == 2
        assert names[0].endswith(".bin") and names[1].endswith(".json")
        assert result.stats.durable_disk_bytes > 0
        assert result.stats.durable_bytes > 0
        assert result.stats.durable_io_us > 0.0

    def test_no_tmp_files_left_behind(self, small, tmp_path):
        _, graph, src = small
        d = str(tmp_path / "dur")
        bfs(graph, src, durable_dir=d, durable_interval=4)
        assert not [n for n in os.listdir(d) if ".tmp" in n]

    def test_orphan_sweep(self, tmp_path):
        d = tmp_path / "dur"
        d.mkdir()
        (d / f"epoch_00000004.bin.tmp{os.getpid()}").write_bytes(b"torn")
        (d / "epoch_00000008.json.tmp12345").write_bytes(b"torn")
        (d / "epoch_00000004.bin").write_bytes(b"keep")
        assert sweep_orphans(str(d)) == 2
        assert sorted(os.listdir(d)) == ["epoch_00000004.bin"]

    def test_manager_sweeps_orphans_on_init(self, small, tmp_path):
        """A SIGKILL mid-write leaves epoch tmp files; the next durable
        run over the same directory must clean them up (the SpillPager-
        style temp-leak fix, applied at the durability layer)."""
        _, graph, src = small
        d = tmp_path / "dur"
        d.mkdir()
        orphan = d / "epoch_00000099.bin.tmp4242"
        orphan.write_bytes(b"half-written epoch from a killed process")
        bfs(graph, src, durable_dir=str(d), durable_interval=4)
        assert not orphan.exists()
        assert not [n for n in os.listdir(d) if ".tmp" in n]

    def test_stats_fields_exist(self):
        stats = TraversalStats(algorithm="bfs", machine="laptop",
                               topology="direct", num_ranks=1,
                               num_vertices=1, num_edges=1)
        for field in DURABILITY_STATS_FIELDS:
            assert hasattr(stats, field)
        assert hasattr(stats, "durable_io_us")
        assert hasattr(stats, "order_digest")


# --------------------------------------------------------------------- #
# Corruption fallback ladder
# --------------------------------------------------------------------- #
class TestCorruptionFallback:
    @pytest.mark.parametrize("mode", ["torn", "bitflip", "manifest", "missing"])
    def test_each_mode_falls_back(self, small, tmp_path, mode):
        _, graph, src = small
        d = str(tmp_path / "dur")
        full = bfs(graph, src, durable_dir=d, durable_interval=4,
                   durable_faults=DurableFaultPlan.from_spec(f"{mode}=8"))
        # Write-time read-back verification already counts the bad epoch.
        assert full.stats.durable_corrupt_epochs == 1
        resumed = bfs(_rebuild(), src, durable_dir=d, durable_interval=4,
                      durable_resume=True)
        assert resumed.stats.durable_resumes == 1
        # Fallback landed on a valid epoch, never the corrupted tick-8 one.
        assert resumed.stats.durable_resume_tick != 8
        assert resumed.stats.durable_resume_tick > 0
        assert (resumed.data.levels == full.data.levels).all()

    def test_all_epochs_corrupt_raises(self, small, tmp_path):
        _, graph, src = small
        d = str(tmp_path / "dur")
        bfs(graph, src, durable_dir=d, durable_interval=4,
            durable_faults=DurableFaultPlan.from_spec("bitflip=4+8+12"))
        with pytest.raises(CheckpointCorruptionError, match="failed verification"):
            bfs(_rebuild(), src, durable_dir=d, durable_interval=4,
                durable_resume=True)

    def test_fallbacks_counted(self, small, tmp_path):
        _, graph, src = small
        d = str(tmp_path / "dur")
        bfs(graph, src, durable_dir=d, durable_interval=4, durable_keep=3,
            durable_faults=DurableFaultPlan.from_spec("torn=12"))
        resumed = bfs(_rebuild(), src, durable_dir=d, durable_interval=4,
                      durable_resume=True)
        assert resumed.stats.durable_fallbacks == 1
        assert resumed.stats.durable_corrupt_epochs == 1
        assert resumed.stats.durable_resume_tick == 8

    def test_resume_empty_dir_starts_fresh(self, small, tmp_path):
        _, graph, src = small
        d = str(tmp_path / "empty")
        baseline = bfs(graph, src)
        resumed = bfs(_rebuild(), src, durable_dir=d, durable_interval=1000,
                      durable_resume=True)
        assert resumed.stats.durable_resumes == 0
        assert (resumed.data.levels == baseline.data.levels).all()


# --------------------------------------------------------------------- #
# Config-key guard
# --------------------------------------------------------------------- #
class TestConfigKey:
    def test_different_run_rejected(self, small, tmp_path):
        """Epochs from a different workload are a user error, not
        corruption — the fallback ladder must not silently absorb them."""
        from repro.algorithms.kcore import kcore

        _, graph, src = small
        d = str(tmp_path / "dur")
        bfs(graph, src, durable_dir=d, durable_interval=4)
        with pytest.raises(ConfigurationError, match="different run"):
            kcore(_rebuild(), 3, durable_dir=d, durable_interval=4,
                  durable_resume=True)

    def test_warm_caches_with_resume_rejected(self, small, tmp_path):
        from repro.algorithms.bfs import BFSAlgorithm
        from repro.memory.page_cache import PageCache
        from repro.runtime.costmodel import hyperion_dit
        from repro.runtime.engine import SimulationEngine

        _, graph, src = small
        machine = hyperion_dit("nvram")
        caches = [
            PageCache(capacity_pages=32, page_size=machine.page_size,
                      device=machine.storage)
            for _ in range(graph.num_partitions)
        ]
        with pytest.raises(ConfigurationError, match="warm"):
            SimulationEngine(
                graph, BFSAlgorithm(src), machine,
                config=EngineConfig(durable_dir=str(tmp_path / "dur"),
                                    durable_resume=True),
                page_caches=caches,
            )
