"""Unit tests for the straggler plan/clock and the pressure engine knobs."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime.costmodel import EngineConfig
from repro.runtime.pressure import StragglerClock, StragglerPlan


class TestStragglerPlan:
    def test_defaults(self):
        plan = StragglerPlan()
        assert plan.any_skew  # factor 4, fraction 0.25

    def test_no_skew_when_factor_one(self):
        assert not StragglerPlan(factor=1.0).any_skew
        assert not StragglerPlan(fraction=0.0).any_skew
        assert StragglerPlan(fraction=0.0, ranks=(2,)).any_skew

    @pytest.mark.parametrize("kwargs", [
        {"factor": 0.5},
        {"fraction": -0.1},
        {"fraction": 1.1},
        {"rebalance": 2.0},
        {"ranks": (-1,)},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            StragglerPlan(**kwargs)

    def test_explicit_ranks(self):
        s = StragglerPlan(ranks=(1, 5), factor=8.0).slowdowns(8)
        assert s[1] == 8.0 and s[5] == 8.0
        assert sum(s) == 6 + 16.0

    def test_explicit_rank_out_of_range(self):
        with pytest.raises(ConfigurationError):
            StragglerPlan(ranks=(9,)).slowdowns(8)

    def test_seeded_selection_is_deterministic_and_nonempty(self):
        a = StragglerPlan(seed=3, fraction=0.25).slowdowns(16)
        b = StragglerPlan(seed=3, fraction=0.25).slowdowns(16)
        assert np.array_equal(a, b)
        assert (a > 1.0).any()
        # a tiny fraction still forces at least one straggler
        c = StragglerPlan(seed=3, fraction=1e-9).slowdowns(16)
        assert (c > 1.0).sum() == 1

    def test_from_spec(self):
        plan = StragglerPlan.from_spec(
            "seed=9,factor=8,fraction=0.5,rebalance=0.25,pacing=0"
        )
        assert plan.seed == 9
        assert plan.factor == 8.0
        assert plan.fraction == 0.5
        assert plan.rebalance == 0.25
        assert plan.pacing is False

    def test_from_spec_ranks(self):
        assert StragglerPlan.from_spec("ranks=1+5,factor=2").ranks == (1, 5)

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            StragglerPlan.from_spec("bogus=1")
        with pytest.raises(ConfigurationError):
            StragglerPlan.from_spec("ranks=a+b")
        with pytest.raises(ConfigurationError):
            StragglerPlan.from_spec("factor")


class TestStragglerClock:
    def test_no_skew_passthrough(self):
        clock = StragglerClock(StragglerPlan(ranks=(3,), factor=4.0), 4)
        costs = np.array([10.0, 2.0, 3.0, 0.0])
        # the straggler rank is idle this tick: no stretch
        assert clock.tick_cost(costs) == 10.0
        assert clock.stall_us == 0.0

    def test_rebalance_zero_pays_full_skew(self):
        clock = StragglerClock(
            StragglerPlan(ranks=(0,), factor=4.0, rebalance=0.0), 2
        )
        costs = np.array([10.0, 8.0])
        assert clock.tick_cost(costs) == 40.0
        assert clock.stall_us == 30.0

    def test_rebalance_one_pays_best_balance(self):
        clock = StragglerClock(
            StragglerPlan(ranks=(0,), factor=4.0, rebalance=1.0), 2
        )
        costs = np.array([10.0, 8.0])
        # scaled = [40, 8]; balanced = max(base=10, mean=24) = 24
        assert clock.tick_cost(costs) == 24.0
        assert clock.rebalanced_us == 16.0

    def test_rebalance_never_beats_unskewed_critical_path(self):
        clock = StragglerClock(
            StragglerPlan(ranks=(1,), factor=2.0, rebalance=1.0), 8
        )
        costs = np.zeros(8)
        costs[0] = 10.0
        costs[1] = 6.0  # skewed to 12, mean well below base
        assert clock.tick_cost(costs) == 10.0

    def test_pacing_floor_tracks_observed_skew(self):
        plan = StragglerPlan(ranks=(0,), factor=4.0)
        clock = StragglerClock(plan, 2)
        assert clock.pacing_floor(1.0) == 1.0  # EWMA starts at 1
        for _ in range(200):
            clock.tick_cost(np.array([10.0, 1.0]))
        assert clock.pacing_floor(1.0) == pytest.approx(4.0, rel=0.01)
        # bounded by the worst configured slowdown
        assert clock.pacing_floor(1.0) <= clock.max_slowdown

    def test_pacing_disabled(self):
        clock = StragglerClock(StragglerPlan(ranks=(0,), pacing=False), 2)
        clock.tick_cost(np.array([10.0, 1.0]))
        assert clock.pacing_floor(1.0) == 1.0


class TestPressureConfigValidation:
    def test_mailbox_cap_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(mailbox_cap_bytes=0)

    def test_queue_spill_must_be_nonnegative(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(queue_spill=-1)
        EngineConfig(queue_spill=0)  # fully external queue is valid

    def test_transport_window_requires_reliable(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(transport_window=4)
        EngineConfig(transport_window=4, reliable=True)
        with pytest.raises(ConfigurationError):
            EngineConfig(transport_window=0, reliable=True)

    def test_spill_cache_pages_positive(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(spill_cache_pages=0)

    def test_spill_active(self):
        assert not EngineConfig().spill_active
        assert EngineConfig(mailbox_cap_bytes=64).spill_active
        assert EngineConfig(queue_spill=0).spill_active
