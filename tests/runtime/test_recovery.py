"""Tests for epoch checkpointing and crash recovery."""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.comm.faults import CrashEvent, FaultPlan
from repro.comm.mailbox import Mailbox
from repro.comm.message import KIND_VISITOR
from repro.comm.network import Network
from repro.comm.routing import DirectTopology
from repro.comm.termination import LocalSnapshot, QuiescenceDetector
from repro.errors import ConfigurationError
from repro.generators.rmat import rmat_edges
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.runtime.costmodel import EngineConfig, MachineModel, laptop


@pytest.fixture(scope="module")
def graph_and_source():
    src, dst = rmat_edges(7, 16 << 7, seed=42)
    edges = EdgeList.from_arrays(src, dst, 1 << 7).permuted(seed=43).simple_undirected()
    g = DistributedGraph.build(edges, 8, num_ghosts=8)
    return g, int(edges.src[0])


class TestComponentSnapshots:
    def test_mailbox_roundtrip(self):
        net = Network(4)
        topo = DirectTopology(4)
        box = Mailbox(0, topo, net, aggregation_size=64)
        box.send(2, KIND_VISITOR, "a", 16)
        box.send(3, KIND_VISITOR, "b", 16)
        box.send(0, KIND_VISITOR, "loop", 16)
        snap = box.snapshot_state()
        # diverge: flush everything and send more
        box.flush()
        box.receive([])
        box.send(1, KIND_VISITOR, "c", 16)
        assert box.visitors_sent == 4
        box.restore_state(snap)
        assert box.visitors_sent == 3
        assert box.visitors_received == 0
        assert box.has_buffered()
        assert box.buffered_visitor_count() == 3
        # the snapshot survives a restore + further divergence (re-restorable)
        box.flush()
        box.restore_state(snap)
        assert box.buffered_visitor_count() == 3

    def test_detector_roundtrip(self):
        net = Network(2)
        topo = DirectTopology(2)
        boxes = [Mailbox(r, topo, net) for r in range(2)]
        det = QuiescenceDetector(
            0, 2, boxes[0], lambda: LocalSnapshot(sent=0, received=0, quiet=True)
        )
        snap = det.snapshot_state()
        det.maybe_start_wave()
        changed = det.snapshot_state()
        assert changed != snap
        det.restore_state(snap)
        assert det.snapshot_state() == snap
        assert not det.terminated


class TestCheckpointAccounting:
    def test_checkpoints_counted_and_charged(self, graph_and_source):
        g, s = graph_and_source
        base = bfs(g, s, reliable=True)
        ck = bfs(g, s, reliable=True, checkpoint_interval=4)
        assert base.stats.checkpoints_taken == 0
        assert ck.stats.checkpoints_taken >= base.stats.ticks // 4
        assert ck.stats.checkpoint_bytes > 0
        # checkpointing costs simulated time but changes nothing logical
        assert ck.stats.time_us > base.stats.time_us
        assert np.array_equal(ck.data.levels, base.data.levels)
        assert ck.stats.total_visits == base.stats.total_visits

    def test_checkpoint_cost_scales_with_byte_rate(self, graph_and_source):
        g, s = graph_and_source
        cheap = laptop()
        dear_kwargs = {
            f.name: getattr(cheap, f.name)
            for f in type(cheap).__dataclass_fields__.values()
        }
        dear_kwargs["checkpoint_byte_us"] = cheap.checkpoint_byte_us * 100 + 1.0
        dear = MachineModel(**dear_kwargs)
        r_cheap = bfs(g, s, machine=cheap, reliable=True, checkpoint_interval=4)
        r_dear = bfs(g, s, machine=dear, reliable=True, checkpoint_interval=4)
        assert r_dear.stats.time_us > r_cheap.stats.time_us
        assert np.array_equal(r_dear.data.levels, r_cheap.data.levels)

    def test_checkpointing_requires_reliable_transport(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(checkpoint_interval=4)

    def test_crash_plan_implies_checkpointing(self):
        plan = FaultPlan(crashes=(CrashEvent(tick=5, rank=1),))
        cfg = EngineConfig(faults=plan)
        assert cfg.reliable_active
        assert cfg.checkpoint_every > 0


class TestCrashRecovery:
    def test_single_crash_recovers_bit_identical(self, graph_and_source):
        g, s = graph_and_source
        base = bfs(g, s, reliable=True)
        plan = FaultPlan(seed=7, crashes=(CrashEvent(tick=6, rank=2),))
        r = bfs(g, s, faults=plan, checkpoint_interval=4)
        assert r.stats.crashes == 1
        assert r.stats.recoveries == 1
        assert r.stats.replayed_ticks > 0
        assert r.stats.recovery_us > 0.0
        assert r.stats.time_us > base.stats.time_us
        assert np.array_equal(r.data.levels, base.data.levels)
        assert r.stats.total_visits == base.stats.total_visits
        assert [rk.visits for rk in r.stats.ranks] == [
            rk.visits for rk in base.stats.ranks
        ]

    def test_repeated_crashes_same_rank(self, graph_and_source):
        g, s = graph_and_source
        base = bfs(g, s, reliable=True)
        plan = FaultPlan(
            seed=7,
            crashes=(CrashEvent(tick=5, rank=2), CrashEvent(tick=9, rank=2)),
        )
        r = bfs(g, s, faults=plan, checkpoint_interval=3)
        assert r.stats.crashes == 2
        assert r.stats.recoveries == 2
        assert np.array_equal(r.data.levels, base.data.levels)
        assert r.stats.total_visits == base.stats.total_visits

    def test_crash_of_different_ranks(self, graph_and_source):
        g, s = graph_and_source
        base = bfs(g, s, reliable=True)
        plan = FaultPlan(
            seed=3,
            crashes=(CrashEvent(tick=4, rank=0), CrashEvent(tick=8, rank=5)),
        )
        r = bfs(g, s, faults=plan, checkpoint_interval=3)
        assert r.stats.recoveries == 2
        assert np.array_equal(r.data.levels, base.data.levels)

    def test_recovery_time_charged_to_clock(self, graph_and_source):
        g, s = graph_and_source
        plan = FaultPlan(seed=7, crashes=(CrashEvent(tick=6, rank=2),))
        r = bfs(g, s, faults=plan, checkpoint_interval=4)
        # the crashed rank's restart cost is visible in simulated time
        assert r.stats.recovery_us >= laptop().restart_us
