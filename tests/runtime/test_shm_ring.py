"""Unit tests for the shared-memory SPSC frame ring (INTERNALS §14):
framing round-trips, wraparound at the arena boundary, overflow refusal
(the pipe-spill trigger), torn/stale-frame detection via the per-frame
sequence and checksum words, and the supervisor's reset protocol."""

from __future__ import annotations

import os
import struct

import pytest

from repro.runtime.shm_ring import RingIntegrityError, RingOverflow, SpscRing


def test_single_frame_round_trip():
    ring = SpscRing(1 << 12)
    payload = b"hello, frames"
    ring.write(0x20001, payload)
    tag, out = ring.read()
    assert tag == 0x20001
    assert bytes(out) == payload
    assert ring.used() == 0
    assert ring.frames_written == ring.frames_read == 1


def test_read_returns_writable_buffer():
    """The codec hands out numpy views over the frame buffer; they must
    be mutable like their pickled twins, so the ring returns bytearray."""
    ring = SpscRing(1 << 12)
    ring.write(1, b"abc")
    _, out = ring.read()
    out[0] = 0x7A  # would raise on a readonly buffer
    assert bytes(out) == b"zbc"


def test_fifo_order_and_interleaving():
    ring = SpscRing(1 << 12)
    ring.write(1, b"first")
    ring.write(2, b"second")
    assert ring.read() == (1, bytearray(b"first"))
    ring.write(3, b"third")
    assert ring.read() == (2, bytearray(b"second"))
    assert ring.read() == (3, bytearray(b"third"))


def test_empty_payload_frame():
    ring = SpscRing(1 << 12)
    ring.write(9, b"")
    tag, out = ring.read()
    assert tag == 9
    assert bytes(out) == b""


def test_wraparound_at_arena_boundary():
    """Frames larger than the space left before the boundary wrap in two
    slices; hundreds of mixed-size frames through a small ring force the
    wrap point onto every offset class."""
    ring = SpscRing(1 << 10)
    rng_payloads = [bytes([i % 256]) * ((37 * i) % 400) for i in range(300)]
    for i, payload in enumerate(rng_payloads):
        ring.write(i, payload)
        if i % 2 == 1:  # keep two frames resident across the wrap
            for _ in range(2):
                tag, out = ring.read()
                assert bytes(out) == rng_payloads[tag]
    assert ring.frames_read == 300


def test_overflow_refused_not_corrupted():
    ring = SpscRing(1 << 10)
    big = os.urandom(600)
    assert ring.try_write(1, big)
    assert not ring.try_write(2, big)  # does not fit -> caller spills
    with pytest.raises(RingOverflow):
        ring.write(2, big)
    # The resident frame is untouched by the refused writes.
    tag, out = ring.read()
    assert tag == 1
    assert bytes(out) == big
    # Space reclaimed by the read is writable again.
    assert ring.try_write(2, big)


def test_frame_cost_is_the_admission_metric():
    ring = SpscRing(1 << 10)
    payload = b"x" * 100
    n = 0
    while ring.free() >= SpscRing.frame_cost(len(payload)):
        ring.write(n, payload)
        n += 1
    assert n > 0
    assert not ring.try_write(n, payload)


def test_empty_ring_read_is_integrity_error():
    ring = SpscRing(1 << 12)
    with pytest.raises(RingIntegrityError, match="buffered"):
        ring.read()


def test_torn_payload_detected_by_checksum():
    ring = SpscRing(1 << 12)
    ring.write(1, b"A" * 64)
    # Simulate a producer killed mid-write: flip one payload byte behind
    # the header (offset 128 ctrl + 24 frame header + somewhere inside).
    ring._mmap[128 + 24 + 10] ^= 0xFF
    with pytest.raises(RingIntegrityError, match="checksum"):
        ring.read()


def test_stale_frame_detected_by_sequence():
    """A replacement producer resuming against a dirty arena would replay
    old sequence numbers; the reader refuses them."""
    ring = SpscRing(1 << 12)
    ring.write(1, b"frame0")
    assert ring.read() == (1, bytearray(b"frame0"))
    # A restarted producer that forgot its sequence cursor replays seq 0;
    # the reader (expecting seq 1) must refuse the frame.
    struct.pack_into("<Q", ring._mmap, 72, 0)  # wseq
    ring.write(2, b"stale")
    with pytest.raises(RingIntegrityError, match="sequence"):
        ring.read()


def test_oversized_length_word_detected():
    ring = SpscRing(1 << 12)
    ring.write(1, b"ok")
    # Corrupt the length word (bytes 12..16 of the frame header).
    struct.pack_into("<I", ring._mmap, 128 + 12, 1 << 20)
    with pytest.raises(RingIntegrityError, match="length"):
        ring.read()


def test_reset_clears_frames_and_sequence_space():
    ring = SpscRing(1 << 12)
    ring.write(1, b"doomed")
    ring.write(2, b"also doomed")
    ring.reset()
    assert ring.used() == 0
    # A fresh producer starts at sequence 0 again and is readable.
    ring.write(3, b"clean")
    assert ring.read() == (3, bytearray(b"clean"))


def test_capacity_guard():
    with pytest.raises(ValueError):
        SpscRing(8)


def test_visible_across_fork():
    """The arena is anonymous MAP_SHARED: frames written by a forked
    child are readable by the parent with no pipe bytes."""
    import multiprocessing as mp

    if "fork" not in mp.get_all_start_methods():
        pytest.skip("requires fork")
    ring = SpscRing(1 << 12)
    done = mp.get_context("fork").Event()

    def child():
        ring.write(7, b"from the child")
        done.set()

    proc = mp.get_context("fork").Process(target=child)
    proc.start()
    assert done.wait(10.0)
    proc.join(10.0)
    assert ring.read() == (7, bytearray(b"from the child"))
