"""Unit tests for the process-parallel executor's building blocks:
shared-memory arenas, worker pool lifecycle (no child-process leaks),
worker-failure surfacing, configuration guards, and the race detector
running under a parallel schedule."""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.algorithms.bfs import BFSAlgorithm, bfs
from repro.bench.harness import build_rmat_graph
from repro.core.batch import SharedArrayBlock, share_state_arrays
from repro.core.visitor import AsyncAlgorithm, Visitor
from repro.errors import ConfigurationError, TraversalError
from repro.memory.page_cache import PageCache
from repro.runtime.costmodel import EngineConfig, trestles
from repro.runtime.race import detect_races

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel executor requires the fork start method",
)


@pytest.fixture(scope="module")
def graph():
    _, g = build_rmat_graph(7, num_partitions=4, num_ghosts=32,
                            strategy="edge_list", seed=2024)
    return g


# ---------------------------------------------------------------------- #
# SharedArrayBlock
# ---------------------------------------------------------------------- #
class TestSharedArrayBlock:
    def test_round_trip_preserves_values_dtypes_shapes(self):
        arrays = [
            ("a", np.arange(7, dtype=np.int64)),
            ("b", np.linspace(0.0, 1.0, 5)),
            ("c", np.array([True, False, True])),
        ]
        block = SharedArrayBlock(arrays)
        for name, arr in arrays:
            view = block.view(name)
            assert view.dtype == arr.dtype
            assert view.shape == arr.shape
            assert np.array_equal(view, arr)

    def test_views_are_aligned_and_disjoint(self):
        block = SharedArrayBlock([
            ("a", np.ones(3, dtype=np.int8)),
            ("b", np.full(4, 9, dtype=np.int64)),
        ])
        off_a, _, _ = block.layout["a"]
        off_b, _, _ = block.layout["b"]
        assert off_a % SharedArrayBlock.ALIGN == 0
        assert off_b % SharedArrayBlock.ALIGN == 0
        assert off_b >= 3  # b starts past a's bytes
        block.view("a")[:] = 0
        assert np.array_equal(block.view("b"), np.full(4, 9, dtype=np.int64))

    def test_mutations_cross_fork(self):
        """A child forked after construction writes into the very pages the
        parent reads — the property the batch-mode state handoff rests on."""
        block = SharedArrayBlock([("x", np.zeros(4, dtype=np.int64))])
        pid = os.fork()
        if pid == 0:  # child
            try:
                block.view("x")[:] = [5, 6, 7, 8]
            finally:
                os._exit(0)
        assert os.waitpid(pid, 0)[1] == 0
        assert np.array_equal(block.view("x"), [5, 6, 7, 8])

    def test_share_state_arrays_rebinds_in_place(self):
        class Block:
            __slots__ = ("values", "parents", "k")

            def __init__(self):
                self.values = np.arange(6, dtype=np.float64)
                self.parents = np.full(6, -1, dtype=np.int64)
                self.k = 3  # non-array slot: left alone

        state = Block()
        before = state.values.copy()
        arena = share_state_arrays(state)
        assert arena is not None
        assert np.array_equal(state.values, before)
        assert state.k == 3
        # the rebinding points at the arena, not the original heap arrays
        state.values[0] = 99.0
        assert arena.view("values")[0] == 99.0

    def test_share_state_arrays_none_without_arrays(self):
        class Empty:
            __slots__ = ("n",)

            def __init__(self):
                self.n = 4

        assert share_state_arrays(Empty()) is None


# ---------------------------------------------------------------------- #
# Pool lifecycle
# ---------------------------------------------------------------------- #
def test_pool_reaped_between_runs(graph):
    """Each run() forks its own pool and reaps it: back-to-back parallel
    traversals leave the child-process count at baseline."""
    baseline = len(multiprocessing.active_children())
    first = bfs(graph, 0, batch=True, workers=2)
    assert len(multiprocessing.active_children()) == baseline
    second = bfs(graph, 0, batch=True, workers=2)
    assert len(multiprocessing.active_children()) == baseline
    assert np.array_equal(first.data.levels, second.data.levels)


# ---------------------------------------------------------------------- #
# Worker failure surfacing
# ---------------------------------------------------------------------- #
class _DelayedBombVisitor(Visitor):
    """Floods like BFS but detonates when it lands on the bomb vertex."""

    __slots__ = ("bomb",)

    def __init__(self, vertex: int, bomb: int) -> None:
        super().__init__(vertex)
        self.bomb = bomb

    def pre_visit(self, vertex_data) -> bool:
        if self.vertex == self.bomb:
            raise RuntimeError("bomb vertex reached")
        if vertex_data.get("seen"):
            return False
        vertex_data["seen"] = True
        return True

    def visit(self, ctx) -> None:
        for w in ctx.out_edges(self.vertex):
            ctx.push(_DelayedBombVisitor(int(w), self.bomb))


class _BombAlgorithm(AsyncAlgorithm):
    name = "bomb"
    uses_ghosts = False
    visitor_bytes = 16

    def __init__(self, source: int, bomb: int) -> None:
        self.source = source
        self.bomb = bomb

    def make_state(self, vertex: int, degree: int, role: str) -> dict:
        return {}

    def initial_visitors(self, graph, rank):
        if rank == graph.min_owner(self.source):
            yield _DelayedBombVisitor(self.source, self.bomb)

    def finalize(self, graph, states_per_rank):
        return None


def test_worker_error_surfaces_as_traversal_error(graph):
    """A worker-side exception becomes a TraversalError carrying partial
    stats (like the max_ticks post-mortem), never a hang or a raw
    multiprocessing traceback."""
    from repro.core.traversal import run_traversal

    # A vertex some BFS hops from the source, so the bomb goes off after
    # at least one full barrier and partial counters exist.
    seq_levels = bfs(graph, 0).data.levels
    bomb = int(np.flatnonzero(seq_levels == 2)[0])

    baseline = len(multiprocessing.active_children())
    with pytest.raises(TraversalError) as excinfo:
        run_traversal(graph, _BombAlgorithm(0, bomb), workers=2)
    err = excinfo.value
    assert "parallel worker failed" in str(err)
    assert "bomb vertex reached" in str(err)
    assert err.stats is not None
    assert err.stats.ticks >= 1
    assert sum(c.visits for c in err.stats.ranks) > 0
    # the failed run's pool is still reaped
    assert len(multiprocessing.active_children()) == baseline


# ---------------------------------------------------------------------- #
# Configuration guards
# ---------------------------------------------------------------------- #
def test_workers_must_be_positive():
    with pytest.raises(ConfigurationError):
        EngineConfig(workers=0)


def test_warm_caches_rejected_with_workers(graph):
    """Caller-provided page caches live in the parent; workers cannot keep
    them warm, so the combination is refused up front."""
    machine = trestles()
    caches = [
        PageCache(capacity_pages=4, page_size=machine.page_size,
                  device=machine.device)
        for _ in range(graph.num_partitions)
    ]
    with pytest.raises(ConfigurationError, match="workers=1"):
        bfs(graph, 0, machine=machine, page_caches=caches, workers=2)


# ---------------------------------------------------------------------- #
# Race detector under a parallel schedule
# ---------------------------------------------------------------------- #
def test_race_detector_clean_under_parallel_schedule(graph):
    """detect_races composes with workers=2: both the baseline and the
    perturbed-rank-order runs execute on the parallel path and still
    produce bit-identical per-tick digests."""
    report = detect_races(graph, lambda: BFSAlgorithm(0), workers=2)
    assert report.clean, report.summary()


# ---------------------------------------------------------------------- #
# Supervision: crash surfacing, pool lifecycle, fault-plan parsing
# ---------------------------------------------------------------------- #
def test_worker_traceback_surfaced_parent_side(graph):
    """A worker-side exception crosses the pipe as a structured
    WorkerCrash: the parent's TraversalError chains from it and carries
    the child's full traceback, so the failing frame is debuggable
    without attaching to a dead process."""
    from repro.core.traversal import run_traversal
    from repro.runtime.parallel import WorkerCrash

    seq_levels = bfs(graph, 0).data.levels
    bomb = int(np.flatnonzero(seq_levels == 2)[0])
    with pytest.raises(TraversalError) as excinfo:
        run_traversal(graph, _BombAlgorithm(0, bomb), workers=2)
    crash = excinfo.value.__cause__
    assert isinstance(crash, WorkerCrash)
    assert crash.kind == "error"
    assert crash.worker is not None
    assert crash.worker_traceback is not None
    assert "bomb vertex reached" in crash.worker_traceback
    assert "_rank_tick" in crash.worker_traceback  # a child-side frame
    assert "--- worker traceback ---" in str(excinfo.value)


def test_pool_context_manager_reaps_on_parent_failure(graph, monkeypatch):
    """Regression: the pool is a context manager, so a *parent*-side
    exception between barriers (here: the simulated network blowing up)
    still tears every worker down instead of orphaning them."""
    from repro.runtime.costmodel import laptop
    from repro.runtime.engine import SimulationEngine

    baseline = len(multiprocessing.active_children())
    eng = SimulationEngine(graph, BFSAlgorithm(0), laptop(),
                           config=EngineConfig(batch=True, workers=2))
    calls = {"n": 0}
    orig = eng.network.advance

    def exploding_advance():
        calls["n"] += 1
        if calls["n"] == 3:
            raise RuntimeError("parent-side failure between barriers")
        return orig()

    monkeypatch.setattr(eng.network, "advance", exploding_advance)
    with pytest.raises(RuntimeError, match="between barriers"):
        eng.run()
    assert len(multiprocessing.active_children()) == baseline


def test_worker_fault_plan_from_spec():
    from repro.comm.faults import WorkerFaultPlan

    plan = WorkerFaultPlan.from_spec(
        "seed=7,kill=4:1+9:3,hang=6:0,exita=3:2,forkfail=2")
    assert plan.seed == 7
    assert plan.fork_failures == 2
    assert sorted((e.tick, e.rank, e.kind) for e in plan.events) == [
        (3, 2, "exita"), (4, 1, "kill"), (6, 0, "hang"), (9, 3, "kill"),
    ]
    assert [e.kind for e in plan.events_at(4)] == ["kill"]
    assert plan.any_faults


@pytest.mark.parametrize("spec", [
    "kill=4",            # missing rank
    "kill=4:1:2",        # too many fields
    "explode=4:1",       # unknown fault kind
    "kill=-1:0",         # negative tick
    "forkfail=x",        # non-integer
])
def test_worker_fault_plan_rejects_malformed_specs(spec):
    from repro.comm.faults import WorkerFaultPlan

    with pytest.raises(ConfigurationError):
        WorkerFaultPlan.from_spec(spec)


def test_worker_fault_config_guards():
    from repro.comm.faults import WorkerFaultPlan

    plan = WorkerFaultPlan.from_spec("kill=4:1")
    with pytest.raises(ConfigurationError, match="workers"):
        EngineConfig(worker_faults=plan)  # workers=1
    with pytest.raises(ConfigurationError):
        EngineConfig(workers=2, worker_restarts=-1)
    with pytest.raises(ConfigurationError):
        EngineConfig(workers=2, worker_barrier_timeout=0.0)


def test_worker_faults_reject_storage_faults():
    from repro.comm.faults import WorkerFaultPlan
    from repro.memory.faults import StorageFaultPlan

    with pytest.raises(ConfigurationError, match="storage"):
        EngineConfig(workers=2,
                     worker_faults=WorkerFaultPlan.from_spec("kill=4:1"),
                     storage_faults=StorageFaultPlan(seed=1))


def test_fault_plan_rank_out_of_range_rejected(graph):
    """A plan naming a rank the partition count doesn't have is refused at
    supervisor construction, not silently ignored."""
    from repro.comm.faults import WorkerFaultPlan

    with pytest.raises(ConfigurationError, match="rank"):
        bfs(graph, 0, batch=True, workers=2, worker_restarts=1,
            worker_faults=WorkerFaultPlan.from_spec("kill=4:9"))
