"""Unit tests for the SoA packet-frame codec: exact round-trips of batch
and control payloads (dtypes, seq/ack stamps, per-message sizes, value
types), the unframeable ladder that triggers the pipe fallback, and the
writable-view contract decoded batches must honor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.message import Envelope, Packet
from repro.core.batch import VisitorBatch
from repro.runtime.packet_codec import (
    UnframeablePayload,
    decode_ints,
    decode_packets,
    encode_ints,
    encode_packets,
)


def _batch(n: int, *, parents: bool = False, extras: int = 0, seed: int = 0):
    rng = np.random.default_rng(seed)
    return VisitorBatch(
        rng.integers(0, 1 << 20, n).astype(np.int64),
        rng.integers(0, 1 << 10, n).astype(np.int64),
        rng.integers(-1, 1 << 20, n).astype(np.int64) if parents else None,
        tuple(rng.integers(0, 99, n).astype(np.int64) for _ in range(extras)),
    )


def _round_trip(packets):
    # bytearray: the ring hands the decoder a writable buffer.
    return decode_packets(bytearray(encode_packets(packets)))


def assert_packets_equal(a, b):
    assert len(a) == len(b)
    for pa, pb in zip(a, b, strict=False):
        assert (pa.src, pa.hop_dest, pa.seq, pa.ack) == (
            pb.src, pb.hop_dest, pb.seq, pb.ack)
        assert len(pa.envelopes) == len(pb.envelopes)
        for ea, eb in zip(pa.envelopes, pb.envelopes, strict=False):
            assert (ea.dest, ea.kind, ea.size_bytes, ea.count) == (
                eb.dest, eb.kind, eb.size_bytes, eb.count)
            if isinstance(ea.payload, VisitorBatch):
                assert isinstance(eb.payload, VisitorBatch)
                for ca, cb in (
                    (ea.payload.vertices, eb.payload.vertices),
                    (ea.payload.payloads, eb.payload.payloads),
                    (ea.payload.parents, eb.payload.parents),
                    *zip(ea.payload.extras, eb.payload.extras, strict=True),
                ):
                    if ca is None:
                        assert cb is None
                    else:
                        assert ca.dtype == cb.dtype
                        assert np.array_equal(ca, cb)
            else:
                assert ea.payload == eb.payload
                # bool vs int distinction must survive the int64 column.
                for va, vb in zip(ea.payload, eb.payload, strict=True):
                    assert type(va) is type(vb)
        assert pa.wire_bytes == pb.wire_bytes


def test_batch_payload_round_trip():
    pkt = Packet(src=3, hop_dest=1, envelopes=[
        Envelope(dest=1, kind=2, payload=_batch(17, parents=True),
                 size_bytes=24, count=17),
    ], seq=41, ack=7)
    assert_packets_equal([pkt], _round_trip([pkt]))


def test_multi_packet_multi_envelope_round_trip():
    packets = [
        Packet(src=0, hop_dest=2, envelopes=[
            Envelope(dest=2, kind=2, payload=_batch(5, extras=1, seed=1),
                     size_bytes=16, count=5),
            Envelope(dest=3, kind=2, payload=_batch(9, extras=1, seed=2),
                     size_bytes=16, count=9),
        ]),
        Packet(src=1, hop_dest=0, envelopes=[]),
        Packet(src=2, hop_dest=0, envelopes=[
            Envelope(dest=0, kind=1, payload=("probe", 4, 1, True, 0),
                     size_bytes=8, count=1),
        ], seq=0, ack=3),
    ]
    assert_packets_equal(packets, _round_trip(packets))


def test_empty_packet_list():
    assert _round_trip([]) == []


def test_control_value_types_survive():
    pkt = Packet(src=0, hop_dest=1, envelopes=[
        Envelope(dest=1, kind=1, payload=("reply", 0, False, True, -5),
                 size_bytes=8, count=1),
        Envelope(dest=1, kind=1, payload=("terminate",), size_bytes=8, count=1),
    ])
    out = _round_trip([pkt])[0]
    assert out.envelopes[0].payload == ("reply", 0, False, True, -5)
    assert out.envelopes[0].payload[2] is False
    assert out.envelopes[0].payload[3] is True
    assert out.envelopes[1].payload == ("terminate",)


def test_non_default_column_dtypes_round_trip():
    batch = VisitorBatch(
        np.arange(6, dtype=np.uint32),
        np.linspace(0, 1, 6).astype(np.float64),
        np.arange(6, dtype=np.int16),
        (np.array([1, 0, 1, 1, 0, 0], dtype=np.bool_),),
    )
    pkt = Packet(src=0, hop_dest=1, envelopes=[
        Envelope(dest=1, kind=2, payload=batch, size_bytes=8, count=6)])
    assert_packets_equal([pkt], _round_trip([pkt]))


def test_decoded_columns_are_mutable_views():
    pkt = Packet(src=0, hop_dest=1, envelopes=[
        Envelope(dest=1, kind=2, payload=_batch(4), size_bytes=8, count=4)])
    out = _round_trip([pkt])[0]
    col = out.envelopes[0].payload.vertices
    col[0] = 12345  # raises on a readonly frombuffer view
    assert col[0] == 12345


def test_object_payload_unframeable():
    class NotAColumn:
        pass

    pkt = Packet(src=0, hop_dest=1, envelopes=[
        Envelope(dest=1, kind=0, payload=NotAColumn(), size_bytes=8, count=1)])
    with pytest.raises(UnframeablePayload):
        encode_packets([pkt])


def test_unregistered_control_string_unframeable():
    pkt = Packet(src=0, hop_dest=1, envelopes=[
        Envelope(dest=1, kind=1, payload=("gossip", 3), size_bytes=8, count=1)])
    with pytest.raises(UnframeablePayload):
        encode_packets([pkt])


def test_non_scalar_control_value_unframeable():
    pkt = Packet(src=0, hop_dest=1, envelopes=[
        Envelope(dest=1, kind=1, payload=(3.5,), size_bytes=8, count=1)])
    with pytest.raises(UnframeablePayload):
        encode_packets([pkt])


def test_heterogeneous_batch_schemas_unframeable():
    """One frame carries one column schema; mixing payload dtypes within
    a tick means something unusual is in flight — spill, don't guess."""
    pkt = Packet(src=0, hop_dest=1, envelopes=[
        Envelope(dest=1, kind=2, payload=_batch(3), size_bytes=8, count=3),
        Envelope(dest=2, kind=2, payload=VisitorBatch(
            np.arange(3, dtype=np.int32), np.arange(3, dtype=np.int64)),
            size_bytes=8, count=3),
    ])
    with pytest.raises(UnframeablePayload):
        encode_packets([pkt])


def test_unsupported_dtype_unframeable():
    batch = VisitorBatch(
        np.arange(3, dtype=np.complex128), np.arange(3, dtype=np.int64))
    pkt = Packet(src=0, hop_dest=1, envelopes=[
        Envelope(dest=1, kind=2, payload=batch, size_bytes=8, count=3)])
    with pytest.raises(UnframeablePayload):
        encode_packets([pkt])


def test_encode_ints_round_trip():
    assert decode_ints(bytearray(encode_ints((1, -2, 1 << 40, 0)))) == (
        1, -2, 1 << 40, 0)
    assert decode_ints(bytearray(encode_ints(()))) == ()
