"""Tests for the simulation engine: clock, termination, determinism."""

import numpy as np
import pytest

from repro.algorithms.bfs import BFSAlgorithm, bfs
from repro.core.traversal import run_traversal
from repro.errors import TraversalError
from repro.generators.rmat import rmat_edges
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.runtime.costmodel import EngineConfig, MachineModel, hyperion_dit, laptop
from repro.runtime.engine import SimulationEngine


@pytest.fixture(scope="module")
def graph_and_edges():
    src, dst = rmat_edges(8, 16 << 8, seed=21)
    edges = EdgeList.from_arrays(src, dst, 1 << 8).permuted(seed=22).simple_undirected()
    return DistributedGraph.build(edges, 8, num_ghosts=8), edges


class TestDeterminism:
    def test_identical_runs(self, graph_and_edges):
        g, edges = graph_and_edges
        s = int(edges.src[0])
        r1 = bfs(g, s)
        r2 = bfs(g, s)
        assert r1.stats.time_us == r2.stats.time_us
        assert r1.stats.ticks == r2.stats.ticks
        assert np.array_equal(r1.data.levels, r2.data.levels)
        assert r1.stats.total_packets == r2.stats.total_packets


class TestTermination:
    def test_detector_and_oracle_agree_on_result(self, graph_and_edges):
        g, edges = graph_and_edges
        s = int(edges.src[0])
        with_det = bfs(g, s, config=EngineConfig(use_termination_detector=True))
        oracle = bfs(g, s, config=EngineConfig(use_termination_detector=False))
        assert np.array_equal(with_det.data.levels, oracle.data.levels)

    def test_detector_costs_extra_ticks(self, graph_and_edges):
        g, edges = graph_and_edges
        s = int(edges.src[0])
        with_det = bfs(g, s, config=EngineConfig(use_termination_detector=True))
        oracle = bfs(g, s, config=EngineConfig(use_termination_detector=False))
        assert with_det.stats.ticks >= oracle.stats.ticks
        assert with_det.stats.termination_waves >= 2

    def test_max_ticks_guard(self, graph_and_edges):
        g, edges = graph_and_edges
        s = int(edges.src[0])
        with pytest.raises(TraversalError):
            bfs(g, s, config=EngineConfig(max_ticks=2))

    def test_max_ticks_error_carries_partial_stats(self, graph_and_edges):
        """A run killed by the tick guard still hands back its trace so the
        caller can see how far it got (essential for chaos debugging)."""
        g, edges = graph_and_edges
        s = int(edges.src[0])
        with pytest.raises(TraversalError) as excinfo:
            bfs(g, s, config=EngineConfig(max_ticks=3, trace_timeline=True))
        stats = excinfo.value.stats
        assert stats is not None
        assert stats.ticks == 3
        assert stats.total_visits > 0
        assert stats.time_us > 0.0
        assert len(stats.ranks) == g.num_partitions
        # a full run's prefix matches the truncated trace
        full = bfs(g, s, config=EngineConfig(trace_timeline=True))
        assert full.stats.ticks > 3
        assert len(stats.timeline) == 3
        assert [
            (t.tick, t.visits_this_tick) for t in stats.timeline
        ] == [(t.tick, t.visits_this_tick) for t in full.stats.timeline[:3]]


class TestClock:
    def test_time_positive_and_bounded_below_by_ticks(self, graph_and_edges):
        g, edges = graph_and_edges
        m = laptop()
        r = bfs(g, int(edges.src[0]), machine=m)
        assert r.stats.time_us >= r.stats.ticks * m.min_tick_us

    def test_slower_machine_slower_clock(self, graph_and_edges):
        g, edges = graph_and_edges
        s = int(edges.src[0])
        fast = bfs(g, s, machine=laptop())
        slow_model = MachineModel(
            name="slow", visit_us=50.0, previsit_us=10.0, edge_scan_us=5.0,
            packet_overhead_us=20.0, byte_us=0.1, hop_latency_us=10.0,
            min_tick_us=5.0,
        )
        slow = bfs(g, s, machine=slow_model)
        assert slow.stats.time_us > fast.stats.time_us
        # identical work, different clock
        assert slow.stats.total_visits == fast.stats.total_visits

    def test_critical_path_dominates(self):
        """A hub whose whole adjacency sits on one rank (1D layout) makes
        that rank scan every edge; edge-list layout splits the scan."""
        el = EdgeList.from_pairs(
            [(0, i) for i in range(1, 33)], 33
        ).simple_undirected()
        g_1d = DistributedGraph.build(el, 4, strategy="1d")
        g_el = DistributedGraph.build(el, 4)
        r_1d = run_traversal(g_1d, BFSAlgorithm(0))
        r_el = run_traversal(g_el, BFSAlgorithm(0))
        max_scan_1d = max(r.edges_scanned for r in r_1d.stats.ranks)
        max_scan_el = max(r.edges_scanned for r in r_el.stats.ranks)
        assert max_scan_1d > max_scan_el


class TestVisitorBudget:
    def test_small_budget_more_ticks(self, graph_and_edges):
        g, edges = graph_and_edges
        s = int(edges.src[0])
        small = bfs(g, s, config=EngineConfig(visitor_budget=4))
        large = bfs(g, s, config=EngineConfig(visitor_budget=1024))
        assert small.stats.ticks > large.stats.ticks
        assert np.array_equal(small.data.levels, large.data.levels)


class TestNVRAMIntegration:
    def test_cache_stats_populated(self, graph_and_edges):
        g, edges = graph_and_edges
        m = hyperion_dit("nvram", cache_bytes_per_rank=8192)
        r = bfs(g, int(edges.src[0]), machine=m)
        assert r.stats.total_cache_misses > 0
        assert 0.0 <= r.stats.cache_hit_rate() <= 1.0

    def test_nvram_slower_than_dram(self, graph_and_edges):
        g, edges = graph_and_edges
        s = int(edges.src[0])
        dram = bfs(g, s, machine=hyperion_dit("dram"))
        nvram = bfs(g, s, machine=hyperion_dit("nvram", cache_bytes_per_rank=4096))
        assert nvram.stats.time_us > dram.stats.time_us

    def test_bigger_cache_not_slower(self, graph_and_edges):
        g, edges = graph_and_edges
        s = int(edges.src[0])
        small = bfs(g, s, machine=hyperion_dit("nvram", cache_bytes_per_rank=4096))
        big = bfs(g, s, machine=hyperion_dit("nvram", cache_bytes_per_rank=1 << 20))
        assert big.stats.time_us <= small.stats.time_us
        assert big.stats.cache_hit_rate() >= small.stats.cache_hit_rate()


class TestTopologyMismatch:
    def test_rank_count_checked(self, graph_and_edges):
        from repro.comm.routing import DirectTopology

        g, _ = graph_and_edges
        with pytest.raises(TraversalError):
            SimulationEngine(g, BFSAlgorithm(0), laptop(), topology=DirectTopology(3))
