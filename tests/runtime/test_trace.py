"""Tests for traversal statistics containers."""

import pytest

from repro.runtime.trace import RankCounters, TraversalStats


def _stats(visits_per_rank):
    s = TraversalStats(
        algorithm="bfs", machine="m", topology="direct", num_ranks=len(visits_per_rank),
        num_vertices=10, num_edges=20,
    )
    for v in visits_per_rank:
        s.ranks.append(RankCounters(visits=v, cache_hits=v, cache_misses=1))
    return s


class TestAggregation:
    def test_totals(self):
        s = _stats([3, 5])
        assert s.total_visits == 8
        assert s.total_cache_hits == 8
        assert s.total_cache_misses == 2

    def test_hit_rate(self):
        s = _stats([8, 0])
        assert s.cache_hit_rate() == pytest.approx(8 / 10)

    def test_hit_rate_no_accesses(self):
        s = TraversalStats(
            algorithm="a", machine="m", topology="t", num_ranks=1,
            num_vertices=1, num_edges=1,
        )
        assert s.cache_hit_rate() == 1.0

    def test_visit_imbalance(self):
        assert _stats([4, 4]).visit_imbalance() == 1.0
        assert _stats([8, 0]).visit_imbalance() == 2.0

    def test_visit_imbalance_empty(self):
        s = _stats([0, 0])
        assert s.visit_imbalance() == 1.0

    def test_time_seconds(self):
        s = _stats([1])
        s.time_us = 2_000_000.0
        assert s.time_seconds == 2.0

    def test_summary_contains_key_fields(self):
        s = _stats([1, 2])
        s.time_us = 10.0
        text = s.summary()
        assert "bfs" in text and "p=2" in text
