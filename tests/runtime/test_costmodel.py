"""Tests for machine models and engine configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.costmodel import (
    STORAGE_DRAM,
    STORAGE_NVRAM,
    EngineConfig,
    MachineModel,
    bgp_intrepid,
    hyperion_dit,
    laptop,
    leviathan,
    trestles,
)


class TestPresets:
    def test_all_construct(self):
        for m in (laptop(), bgp_intrepid(), hyperion_dit(), trestles(), leviathan()):
            assert m.visit_us >= 0

    def test_hyperion_storage_variants(self):
        dram = hyperion_dit("dram")
        nvram = hyperion_dit("nvram")
        assert dram.storage == STORAGE_DRAM and dram.device is None
        assert nvram.storage == STORAGE_NVRAM and nvram.device is not None

    def test_bgp_slower_cores_than_hyperion(self):
        # PowerPC 450 vs x86: the profile must reflect it
        assert bgp_intrepid().visit_us > hyperion_dit().visit_us

    def test_nvram_presets_have_devices(self):
        assert trestles().device.name == "sata-ssd"
        # Leviathan's 4 ranks contend for one shared card
        assert leviathan().device.name == "fusion-io-shared"


class TestModelValidation:
    def test_nvram_requires_device(self):
        with pytest.raises(ConfigurationError):
            MachineModel(
                name="x", visit_us=1, previsit_us=1, edge_scan_us=1,
                packet_overhead_us=1, byte_us=1, hop_latency_us=1, min_tick_us=1,
                storage=STORAGE_NVRAM, device=None,
            )

    def test_unknown_storage(self):
        with pytest.raises(ConfigurationError):
            MachineModel(
                name="x", visit_us=1, previsit_us=1, edge_scan_us=1,
                packet_overhead_us=1, byte_us=1, hop_latency_us=1, min_tick_us=1,
                storage="tape",
            )

    def test_negative_cost(self):
        with pytest.raises(ConfigurationError):
            MachineModel(
                name="x", visit_us=-1, previsit_us=1, edge_scan_us=1,
                packet_overhead_us=1, byte_us=1, hop_latency_us=1, min_tick_us=1,
            )

    def test_cache_pages(self):
        m = hyperion_dit("nvram", cache_bytes_per_rank=8192)
        assert m.cache_pages_per_rank == 8192 // m.page_size or m.cache_pages_per_rank >= 1

    def test_with_storage(self):
        m = hyperion_dit("dram").with_storage(
            STORAGE_NVRAM, device=trestles().device, cache_bytes_per_rank=4096
        )
        assert m.storage == STORAGE_NVRAM
        assert m.cache_bytes_per_rank == 4096


class TestEngineConfig:
    def test_defaults_valid(self):
        cfg = EngineConfig()
        assert cfg.visitor_budget >= 1

    def test_bad_budget(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(visitor_budget=0)

    def test_bad_aggregation(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(aggregation_size=0)

    def test_bad_max_ticks(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(max_ticks=0)
