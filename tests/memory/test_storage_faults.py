"""Unit tests for the storage fault plan/injector and the spill pager."""

import pytest

from repro.errors import ConfigurationError, MemorySystemError
from repro.memory.device import MemoryDevice, dram, fusion_io
from repro.memory.faults import StorageFaultInjector, StorageFaultPlan
from repro.memory.spill import NS_MAILBOX, NS_QUEUE, SpillPager


class TestStorageFaultPlan:
    def test_defaults_are_noop(self):
        plan = StorageFaultPlan()
        assert not plan.any_faults

    def test_any_faults(self):
        assert StorageFaultPlan(read_error_rate=0.1).any_faults
        assert StorageFaultPlan(spike_rate=0.1).any_faults
        assert StorageFaultPlan(torn_rate=0.1).any_faults
        assert StorageFaultPlan(bandwidth_degradation=2.0).any_faults

    @pytest.mark.parametrize("kwargs", [
        {"read_error_rate": -0.1},
        {"read_error_rate": 1.0},
        {"spike_rate": 1.5},
        {"torn_rate": -1e-9},
        {"bandwidth_degradation": 0.5},
        {"max_retries": 0},
        {"spike_us": -1.0},
        {"retry_backoff_us": -1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            StorageFaultPlan(**kwargs)

    def test_from_spec(self):
        plan = StorageFaultPlan.from_spec(
            "seed=7,readerr=0.05,spike=0.02,spikeus=800,torn=0.01,"
            "slow=4,retries=5,backoff=25"
        )
        assert plan.seed == 7
        assert plan.read_error_rate == 0.05
        assert plan.spike_rate == 0.02
        assert plan.spike_us == 800.0
        assert plan.torn_rate == 0.01
        assert plan.bandwidth_degradation == 4.0
        assert plan.max_retries == 5
        assert plan.retry_backoff_us == 25.0

    def test_from_spec_rejects_unknown_key(self):
        with pytest.raises(ConfigurationError):
            StorageFaultPlan.from_spec("bogus=1")

    def test_from_spec_rejects_bad_value(self):
        with pytest.raises(ConfigurationError):
            StorageFaultPlan.from_spec("readerr=lots")


class TestStorageFaultInjector:
    PLAN = StorageFaultPlan(
        seed=11, read_error_rate=0.3, spike_rate=0.2, torn_rate=0.1,
        max_retries=4,
    )

    def test_deterministic(self):
        a = StorageFaultInjector(self.PLAN, 0, 4)
        b = StorageFaultInjector(self.PLAN, 0, 4)
        dev = fusion_io()
        fa = a.inspect_epoch(500, dev, 4096)
        fb = b.inspect_epoch(500, dev, 4096)
        assert (fa.retries, fa.spikes, fa.torn_pages, fa.permanent_failures,
                fa.extra_us) == (fb.retries, fb.spikes, fb.torn_pages,
                                 fb.permanent_failures, fb.extra_us)

    def test_ranks_draw_independent_streams(self):
        dev = fusion_io()
        f0 = StorageFaultInjector(self.PLAN, 0, 4).inspect_epoch(500, dev, 4096)
        f1 = StorageFaultInjector(self.PLAN, 1, 4).inspect_epoch(500, dev, 4096)
        assert f0.extra_us != f1.extra_us

    def test_stream_position_depends_only_on_miss_count(self):
        """Splitting the same misses across epochs must not change the
        outcome — the invariant that makes fault timing independent of
        tick boundaries (which differ between machines, never between
        equivalent runs)."""
        dev = fusion_io()
        whole = StorageFaultInjector(self.PLAN, 2, 4)
        split = StorageFaultInjector(self.PLAN, 2, 4)
        fw = whole.inspect_epoch(64, dev, 4096)
        totals = [0, 0, 0, 0]
        extra = 0.0
        for n in (10, 30, 1, 23):
            f = split.inspect_epoch(n, dev, 4096)
            totals[0] += f.retries
            totals[1] += f.spikes
            totals[2] += f.torn_pages
            totals[3] += f.permanent_failures
            extra += f.extra_us
        assert totals == [fw.retries, fw.spikes, fw.torn_pages,
                          fw.permanent_failures]
        assert extra == pytest.approx(fw.extra_us)

    def test_zero_misses_consume_no_draws(self):
        dev = fusion_io()
        a = StorageFaultInjector(self.PLAN, 0, 4)
        b = StorageFaultInjector(self.PLAN, 0, 4)
        for _ in range(5):
            f = a.inspect_epoch(0, dev, 4096)
            assert f.extra_us == 0.0
        assert a.inspect_epoch(100, dev, 4096).extra_us == pytest.approx(
            b.inspect_epoch(100, dev, 4096).extra_us
        )

    def test_degradation_only_consumes_no_draws_and_charges_transfer(self):
        plan = StorageFaultPlan(seed=1, bandwidth_degradation=3.0)
        dev = fusion_io()
        inj = StorageFaultInjector(plan, 0, 2)
        f = inj.inspect_epoch(10, dev, 4096)
        healthy = 10 * 4096 / dev.bandwidth_bytes_per_us
        assert f.extra_us == pytest.approx(healthy * 2.0)
        assert f.retries == f.spikes == f.torn_pages == 0

    def test_retry_costs_and_permanent_failures(self):
        # error rate so high every read fails to exhaustion
        plan = StorageFaultPlan(
            seed=3, read_error_rate=0.99, max_retries=2, retry_backoff_us=50.0
        )
        dev = fusion_io()
        inj = StorageFaultInjector(plan, 0, 1)
        f = inj.inspect_epoch(200, dev, 4096)
        assert f.retries > 0
        assert f.permanent_failures > 0
        assert f.retries <= 200 * plan.max_retries
        assert f.extra_us > 0
        # cumulative tallies mirror the epoch records
        assert inj.retries == f.retries
        assert inj.permanent_failures == f.permanent_failures

    def test_spikes_and_torn_pages_charge_time(self):
        dev = fusion_io()
        spikes = StorageFaultInjector(
            StorageFaultPlan(seed=5, spike_rate=0.5, spike_us=700.0), 0, 1
        ).inspect_epoch(100, dev, 4096)
        assert spikes.spikes > 0
        assert spikes.extra_us == pytest.approx(spikes.spikes * 700.0)
        torn = StorageFaultInjector(
            StorageFaultPlan(seed=5, torn_rate=0.5), 0, 1
        ).inspect_epoch(100, dev, 4096)
        assert torn.torn_pages > 0
        per_reread = dev.read_latency_us + 4096 / dev.bandwidth_bytes_per_us
        assert torn.extra_us == pytest.approx(torn.torn_pages * per_reread)


class TestDeviceWrites:
    def test_write_figures_default_to_read_figures(self):
        dev = fusion_io()
        assert dev.batch_write_us(7, 4096) == dev.batch_read_us(7, 4096)

    def test_asymmetric_write_model(self):
        dev = MemoryDevice(
            name="nand", read_latency_us=60.0, bandwidth_bytes_per_us=200.0,
            io_parallelism=10, write_latency_us=500.0,
            write_bandwidth_bytes_per_us=100.0,
        )
        assert dev.batch_write_us(10, 4096) == pytest.approx(
            1 * 500.0 + 10 * 4096 / 100.0
        )
        assert dev.batch_write_us(0, 4096) == 0.0

    def test_write_field_validation(self):
        with pytest.raises(MemorySystemError):
            MemoryDevice(name="x", read_latency_us=1.0,
                         bandwidth_bytes_per_us=1.0, io_parallelism=1,
                         write_latency_us=-1.0)
        with pytest.raises(MemorySystemError):
            MemoryDevice(name="x", read_latency_us=1.0,
                         bandwidth_bytes_per_us=1.0, io_parallelism=1,
                         write_bandwidth_bytes_per_us=0.0)


class TestSpillPager:
    def test_spill_then_unspill_fifo(self):
        pager = SpillPager(page_size=64, device=dram(), cache_pages=4)
        pager.spill(NS_MAILBOX, 100)
        pager.spill(NS_QUEUE, 50)
        pager.unspill(NS_MAILBOX, 60)
        pager.unspill(NS_MAILBOX, 40)
        pager.unspill(NS_QUEUE, 50)
        assert pager.bytes_spilled == 150
        assert pager.bytes_unspilled == 150

    def test_unspill_past_log_end_raises(self):
        pager = SpillPager(page_size=64, device=dram())
        pager.spill(NS_QUEUE, 10)
        with pytest.raises(MemorySystemError):
            pager.unspill(NS_QUEUE, 11)
        # namespaces are independent logs
        with pytest.raises(MemorySystemError):
            pager.unspill(NS_MAILBOX, 1)

    def test_drain_charges_writes_and_reads(self):
        dev = fusion_io()
        pager = SpillPager(page_size=4096, device=dev, cache_pages=2)
        pager.spill(NS_MAILBOX, 10_000)  # 3 pages of writes
        cost = pager.drain_epoch_us()
        assert cost == pytest.approx(dev.batch_write_us(3, 4096))
        # second drain with no activity is free
        assert pager.drain_epoch_us() == 0.0
        pager.unspill(NS_MAILBOX, 10_000)
        assert pager.drain_epoch_us() > 0.0  # read-back through the cache

    def test_zero_byte_ops_are_noops(self):
        pager = SpillPager(page_size=64, device=dram())
        pager.spill(NS_QUEUE, 0)
        pager.unspill(NS_QUEUE, 0)
        assert pager.bytes_spilled == 0
        assert pager.drain_epoch_us() == 0.0
