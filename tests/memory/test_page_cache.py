"""Tests for the user-space page cache."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.errors import MemorySystemError
from repro.memory.device import MemoryDevice
from repro.memory.page_cache import HIT_COST_US, PageCache


def _cache(capacity=4, page_size=64):
    dev = MemoryDevice("t", read_latency_us=100.0, bandwidth_bytes_per_us=1e6,
                       io_parallelism=8)
    return PageCache(capacity_pages=capacity, page_size=page_size, device=dev)


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        c = _cache()
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.hits == 1 and c.misses == 1

    def test_lru_eviction(self):
        c = _cache(capacity=2)
        c.access(0)
        c.access(1)
        c.access(2)  # evicts 0
        assert c.evictions == 1
        assert c.access(1) is True   # still resident
        assert c.access(0) is False  # was evicted

    def test_touch_refreshes_lru(self):
        c = _cache(capacity=2)
        c.access(0)
        c.access(1)
        c.access(0)  # 0 becomes MRU
        c.access(2)  # evicts 1, not 0
        assert c.access(0) is True
        assert c.access(1) is False

    def test_resident_bounded(self):
        c = _cache(capacity=3)
        for i in range(10):
            c.access(i)
        assert c.resident_pages == 3


class TestAccessRange:
    def test_page_span(self):
        c = _cache(capacity=10, page_size=64)
        c.access_range(0, 100)  # pages 0 and 1
        assert c.misses == 2

    def test_exact_boundary(self):
        c = _cache(capacity=10, page_size=64)
        c.access_range(0, 64)  # exactly page 0
        assert c.misses == 1

    def test_empty_range(self):
        c = _cache()
        c.access_range(10, 10)
        assert c.hits + c.misses == 0

    def test_namespaces_do_not_collide(self):
        c = _cache(capacity=10, page_size=64)
        c.access_range(0, 64, namespace=0)
        c.access_range(0, 64, namespace=1)
        assert c.misses == 2  # distinct pages despite same byte offsets


class TestEpochCharging:
    def test_epoch_resets(self):
        c = _cache()
        c.access(0)
        c.access(0)
        cost = c.drain_epoch_us()
        assert cost > 0
        assert c.drain_epoch_us() == 0.0  # drained

    def test_hit_cost(self):
        c = _cache()
        c.access(0)
        c.drain_epoch_us()
        c.access(0)  # pure hit epoch
        assert c.drain_epoch_us() == pytest.approx(HIT_COST_US)

    def test_concurrency_reduces_cost(self):
        c1, c2 = _cache(capacity=64), _cache(capacity=64)
        for i in range(16):
            c1.access(i)
            c2.access(i)
        async_cost = c1.drain_epoch_us()
        sync_cost = c2.drain_epoch_us(concurrency=1)
        assert sync_cost > 4 * async_cost

    def test_cumulative_stats_survive_drain(self):
        c = _cache()
        c.access(0)
        c.drain_epoch_us()
        assert c.misses == 1


class TestHitRate:
    def test_initial_one(self):
        assert _cache().hit_rate() == 1.0

    def test_ratio(self):
        c = _cache()
        c.access(0)
        c.access(0)
        c.access(0)
        assert c.hit_rate() == pytest.approx(2 / 3)

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_full_capacity_never_evicts(self, accesses):
        """A cache holding the whole working set only takes cold misses."""
        c = _cache(capacity=8)
        for page in accesses:
            c.access(page)
        assert c.evictions == 0
        assert c.misses == len(set(accesses))


class TestValidation:
    def test_zero_capacity(self):
        with pytest.raises(MemorySystemError):
            PageCache(capacity_pages=0, page_size=64, device=_cache().device)

    def test_tiny_page(self):
        with pytest.raises(MemorySystemError):
            PageCache(capacity_pages=4, page_size=4, device=_cache().device)


class TestAccessPages:
    """access_pages(ids) must be indistinguishable from touching each id
    with access() in sequence — counters, epoch counters and LRU order."""

    @staticmethod
    def _snapshot(c):
        return (c.hits, c.misses, c.evictions, c.epoch_hits, c.epoch_misses,
                list(c._lru))

    def _both(self, capacity, ids):
        import numpy as np

        seq, bat = _cache(capacity=capacity), _cache(capacity=capacity)
        for p in ids:
            seq.access(p)
        bat.access_pages(np.asarray(ids, dtype=np.int64))
        return self._snapshot(seq), self._snapshot(bat)

    def test_no_eviction_with_duplicates(self):
        a, b = self._both(10, [3, 1, 3, 2, 1, 3])
        assert a == b

    def test_empty_batch(self):
        import numpy as np

        c = _cache()
        c.access_pages(np.empty(0, dtype=np.int64))
        assert self._snapshot(c) == (0, 0, 0, 0, 0, [])

    def test_eviction_pressure_falls_back_exactly(self):
        # 6 distinct pages through a 3-page cache: the batch displaces its
        # own members mid-stream, so order-sensitive evictions must match.
        a, b = self._both(3, [0, 1, 2, 3, 0, 4, 1, 5, 0])
        assert a == b

    def test_warm_cache_batch(self):
        import numpy as np

        seq, bat = _cache(capacity=8), _cache(capacity=8)
        for c in (seq, bat):
            for p in (5, 6, 7):
                c.access(p)
        ids = [7, 0, 5, 0, 1]
        for p in ids:
            seq.access(p)
        bat.access_pages(np.asarray(ids, dtype=np.int64))
        assert self._snapshot(seq) == self._snapshot(bat)

    @given(st.integers(2, 8),
           st.lists(st.integers(0, 11), min_size=1, max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_random_streams_match_sequential(self, capacity, ids):
        a, b = self._both(capacity, ids)
        assert a == b


class RecordingPageCache(PageCache):
    """Records each drained epoch's (hits, misses) for the conservation
    property below."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.drained = []

    def drain_epoch_us(self, *, concurrency=None):
        self.drained.append((self.epoch_hits, self.epoch_misses))
        return super().drain_epoch_us(concurrency=concurrency)


class TestEpochConservation:
    """Every access lands in exactly one drained epoch: the per-tick
    ``epoch_hits + epoch_misses`` drained by the engine must sum to the
    cache's cumulative access total — including across warm-cache traversal
    restarts and crash-recovery replays, which must neither drop nor
    double-count an epoch."""

    def _graph(self):
        from repro.generators.rmat import rmat_edges
        from repro.graph.edge_list import EdgeList
        from repro.graph.distributed import DistributedGraph

        src, dst = rmat_edges(7, 16 << 7, seed=42)
        edges = (EdgeList.from_arrays(src, dst, 1 << 7)
                 .permuted(seed=43).simple_undirected())
        return DistributedGraph.build(edges, 8, num_ghosts=8)

    def _machine(self):
        from repro.runtime.costmodel import STORAGE_NVRAM, hyperion_dit

        return hyperion_dit(STORAGE_NVRAM, cache_bytes_per_rank=32 * 1024)

    def _caches(self, machine, p=8):
        return [
            RecordingPageCache(capacity_pages=machine.cache_pages_per_rank,
                               page_size=machine.page_size,
                               device=machine.device)
            for _ in range(p)
        ]

    @staticmethod
    def _assert_conserved(caches):
        for c in caches:
            drained = sum(h + m for h, m in c.drained)
            assert drained == c.hits + c.misses
            assert c.epoch_hits == 0 and c.epoch_misses == 0

    def test_sums_across_warm_restarts(self):
        from repro.algorithms.bfs import bfs

        g = self._graph()
        machine = self._machine()
        caches = self._caches(machine)
        for source in (0, 1, 2):
            bfs(g, source, machine=machine, page_caches=caches)
        assert any(c.drained for c in caches)
        self._assert_conserved(caches)

    def test_sums_across_crash_recovery(self):
        from repro.algorithms.bfs import bfs
        from repro.comm.faults import CrashEvent, FaultPlan

        g = self._graph()
        machine = self._machine()
        caches = self._caches(machine)
        plan = FaultPlan(seed=7, crashes=(CrashEvent(tick=6, rank=2),))
        res = bfs(g, 0, machine=machine, page_caches=caches, faults=plan)
        assert res.stats.recoveries == 1
        self._assert_conserved(caches)
