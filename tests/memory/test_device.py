"""Tests for NVRAM / DRAM device models."""

import pytest

from repro.errors import MemorySystemError
from repro.memory.device import MemoryDevice, dram, fusion_io, sata_ssd


class TestBatchRead:
    def test_zero_pages_free(self):
        assert fusion_io().batch_read_us(0, 4096) == 0.0

    def test_single_page(self):
        dev = MemoryDevice("d", read_latency_us=10.0, bandwidth_bytes_per_us=1000.0,
                           io_parallelism=8)
        assert dev.batch_read_us(1, 1000) == pytest.approx(10.0 + 1.0)

    def test_concurrency_amortises_latency(self):
        """The Section II-B claim: concurrent I/O hides NVRAM latency."""
        dev = MemoryDevice("d", read_latency_us=100.0, bandwidth_bytes_per_us=1e9,
                           io_parallelism=32)
        batched = dev.batch_read_us(32, 4096)
        sequential = dev.batch_read_us(32, 4096, concurrency=1)
        assert sequential == pytest.approx(32 * batched, rel=0.01)

    def test_concurrency_capped_by_device(self):
        dev = MemoryDevice("d", read_latency_us=10.0, bandwidth_bytes_per_us=1e9,
                           io_parallelism=4)
        assert dev.batch_read_us(8, 64, concurrency=100) == dev.batch_read_us(8, 64)

    def test_waves(self):
        dev = MemoryDevice("d", read_latency_us=10.0, bandwidth_bytes_per_us=1e12,
                           io_parallelism=4)
        # 9 pages at parallelism 4 -> 3 latency waves
        assert dev.batch_read_us(9, 1) == pytest.approx(30.0, abs=0.1)


class TestPresets:
    def test_ordering(self):
        """DRAM << Fusion-io << SATA SSD in random-read latency, matching
        Table II's performance ordering."""
        assert dram().read_latency_us < fusion_io().read_latency_us
        assert fusion_io().read_latency_us < sata_ssd().read_latency_us

    def test_enterprise_flash_beats_commodity(self):
        pages = 64
        assert fusion_io().batch_read_us(pages, 4096) < sata_ssd().batch_read_us(pages, 4096)


class TestValidation:
    def test_negative_latency(self):
        with pytest.raises(MemorySystemError):
            MemoryDevice("x", read_latency_us=-1, bandwidth_bytes_per_us=1, io_parallelism=1)

    def test_zero_bandwidth(self):
        with pytest.raises(MemorySystemError):
            MemoryDevice("x", read_latency_us=1, bandwidth_bytes_per_us=0, io_parallelism=1)

    def test_zero_parallelism(self):
        with pytest.raises(MemorySystemError):
            MemoryDevice("x", read_latency_us=1, bandwidth_bytes_per_us=1, io_parallelism=0)
