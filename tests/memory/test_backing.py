"""Tests for the paged CSR view."""

import numpy as np

from repro.graph.csr import CSR
from repro.memory.backing import PagedCSR
from repro.memory.device import MemoryDevice
from repro.memory.page_cache import PageCache


def _paged(page_size=64, capacity=128):
    src = np.repeat(np.arange(32, dtype=np.int64), 4)
    dst = (src * 7 + np.tile(np.arange(4), 32)) % 32
    csr = CSR.from_edges(src, dst, num_rows=32)
    dev = MemoryDevice("t", read_latency_us=50.0, bandwidth_bytes_per_us=1e6,
                       io_parallelism=8)
    cache = PageCache(capacity_pages=capacity, page_size=page_size, device=dev)
    return PagedCSR(csr, cache), csr, cache


class TestReadThrough:
    def test_neighbors_identical_to_plain(self):
        paged, csr, _ = _paged()
        for v in range(32):
            assert np.array_equal(paged.neighbors(v), csr.neighbors(v))

    def test_has_edge_identical(self):
        paged, csr, _ = _paged()
        for v in range(0, 32, 3):
            for w in range(0, 32, 5):
                assert paged.has_edge(v, w) == csr.has_edge(v, w)


class TestPageAccounting:
    def test_accesses_recorded(self):
        paged, _, cache = _paged()
        paged.neighbors(0)
        assert cache.hits + cache.misses > 0

    def test_locality_pays(self):
        """Consecutive-vertex reads share pages; scattered reads do not —
        the mechanism behind the Section V-A ordering optimisation."""
        seq, _, cache_seq = _paged(page_size=64, capacity=4)
        for v in range(32):
            seq.neighbors(v)
        scattered, _, cache_scat = _paged(page_size=64, capacity=4)
        order = [(v * 13) % 32 for v in range(32)] * 1  # pseudo-random walk
        for v in order:
            scattered.neighbors(v)
        assert cache_seq.misses <= cache_scat.misses

    def test_empty_row_touches_row_ptr_only(self):
        src = np.array([1, 1], dtype=np.int64)
        dst = np.array([0, 2], dtype=np.int64)
        csr = CSR.from_edges(src, dst, num_rows=3)
        dev = MemoryDevice("t", read_latency_us=1, bandwidth_bytes_per_us=1e6,
                           io_parallelism=1)
        cache = PageCache(capacity_pages=8, page_size=64, device=dev)
        paged = PagedCSR(csr, cache)
        paged.neighbors(0)  # degree 0
        assert cache.misses == 1  # just the row-pointer page

    def test_data_bytes(self):
        paged, csr, _ = _paged()
        assert paged.data_bytes() == csr.nbytes()
