"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import resolve_rng, spawn_rngs


def test_int_seed_is_deterministic():
    a = resolve_rng(123).random(8)
    b = resolve_rng(123).random(8)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    assert not np.array_equal(resolve_rng(1).random(8), resolve_rng(2).random(8))


def test_generator_passthrough():
    gen = np.random.default_rng(7)
    assert resolve_rng(gen) is gen


def test_none_gives_generator():
    assert isinstance(resolve_rng(None), np.random.Generator)


def test_spawn_count_and_independence():
    children = spawn_rngs(5, 4)
    assert len(children) == 4
    draws = [c.random(16) for c in children]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not np.array_equal(draws[i], draws[j])


def test_spawn_deterministic():
    a = [g.random(4) for g in spawn_rngs(9, 3)]
    b = [g.random(4) for g in spawn_rngs(9, 3)]
    for x, y in zip(a, b, strict=False):
        assert np.array_equal(x, y)


def test_spawn_zero():
    assert spawn_rngs(0, 0) == []


def test_spawn_negative_raises():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_spawn_from_generator():
    gen = np.random.default_rng(11)
    children = spawn_rngs(gen, 2)
    assert len(children) == 2
    assert not np.array_equal(children[0].random(8), children[1].random(8))
