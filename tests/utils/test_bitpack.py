"""Tests for locator bit-packing."""

from hypothesis import given
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.utils import bitpack


class TestScalarRoundTrip:
    def test_simple(self):
        loc = bitpack.pack(12345, 7, 9)
        assert bitpack.vertex_of(loc) == 12345
        assert bitpack.min_owner_of(loc) == 7
        assert bitpack.max_owner_of(loc) == 9
        assert bitpack.span_of(loc) == 2

    def test_zero(self):
        loc = bitpack.pack(0, 0, 0)
        assert loc == 0
        assert bitpack.vertex_of(loc) == 0

    def test_extremes(self):
        loc = bitpack.pack(bitpack.MAX_VERTEX, bitpack.MAX_OWNER, bitpack.MAX_OWNER)
        assert bitpack.vertex_of(loc) == bitpack.MAX_VERTEX
        assert bitpack.min_owner_of(loc) == bitpack.MAX_OWNER

    def test_span_clamped(self):
        # spans beyond the 8-bit field clamp rather than corrupt
        loc = bitpack.pack(5, 0, bitpack.MAX_SPAN + 100)
        assert bitpack.span_of(loc) == bitpack.MAX_SPAN
        assert bitpack.vertex_of(loc) == 5


class TestValidation:
    def test_negative_vertex(self):
        with pytest.raises(ValueError):
            bitpack.pack(-1, 0, 0)

    def test_vertex_too_big(self):
        with pytest.raises(ValueError):
            bitpack.pack(bitpack.MAX_VERTEX + 1, 0, 0)

    def test_owner_too_big(self):
        with pytest.raises(ValueError):
            bitpack.pack(0, bitpack.MAX_OWNER + 1, bitpack.MAX_OWNER + 1)

    def test_max_below_min(self):
        with pytest.raises(ValueError):
            bitpack.pack(0, 5, 4)


class TestVectorised:
    def test_arrays(self):
        v = np.array([0, 10, 999])
        lo = np.array([0, 1, 2])
        hi = np.array([0, 3, 2])
        packed = bitpack.pack(v, lo, hi)
        assert np.array_equal(bitpack.vertex_of(packed), v)
        assert np.array_equal(bitpack.min_owner_of(packed), lo)
        assert np.array_equal(bitpack.max_owner_of(packed), hi)

    @given(
        st.integers(min_value=0, max_value=bitpack.MAX_VERTEX),
        st.integers(min_value=0, max_value=bitpack.MAX_OWNER),
        st.integers(min_value=0, max_value=bitpack.MAX_SPAN),
    )
    def test_roundtrip_property(self, vertex, owner, span):
        max_owner = min(owner + span, bitpack.MAX_OWNER + bitpack.MAX_SPAN)
        loc = bitpack.pack(vertex, owner, owner + span)
        assert bitpack.vertex_of(loc) == vertex
        assert bitpack.min_owner_of(loc) == owner
        assert bitpack.max_owner_of(loc) == owner + span
        assert loc >= 0  # stays in the positive int64 range
        del max_owner
