"""Tests for statistics helpers."""

from hypothesis import given
from hypothesis import strategies as st
import numpy as np

from repro.utils.stats import describe, imbalance, log2_histogram


class TestImbalance:
    def test_balanced(self):
        assert imbalance([5, 5, 5, 5]) == 1.0

    def test_one_heavy(self):
        # one partition holds double its fair share
        assert imbalance([2, 1, 1, 0]) == 2.0

    def test_empty(self):
        assert imbalance([]) == 1.0

    def test_all_zero(self):
        assert imbalance([0, 0, 0]) == 1.0

    def test_single(self):
        assert imbalance([7]) == 1.0

    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=64))
    def test_at_least_one(self, counts):
        assert imbalance(counts) >= 1.0 - 1e-12

    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=64))
    def test_at_most_p(self, counts):
        # max/mean <= p when mean > 0
        assert imbalance(counts) <= len(counts) + 1e-9


class TestDescribe:
    def test_empty(self):
        s = describe([])
        assert s.count == 0 and s.total == 0.0

    def test_basic(self):
        s = describe([1, 2, 3, 4])
        assert s.count == 4
        assert s.total == 10.0
        assert s.mean == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.p50 == 2.5

    def test_str_contains_fields(self):
        assert "mean" in str(describe([1.0]))


class TestLog2Histogram:
    def test_zeros_bucket(self):
        assert log2_histogram(np.array([0, 0, 1]))[-1] == 2

    def test_powers(self):
        h = log2_histogram(np.array([1, 2, 3, 4, 7, 8]))
        assert h[0] == 1  # [1, 2)
        assert h[1] == 2  # [2, 4): 2, 3
        assert h[2] == 2  # [4, 8): 4, 7
        assert h[3] == 1  # [8, 16): 8

    def test_empty(self):
        assert log2_histogram(np.array([], dtype=np.int64)) == {}

    @given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=128))
    def test_total_preserved(self, values):
        h = log2_histogram(np.array(values, dtype=np.int64))
        assert sum(h.values()) == len(values)
