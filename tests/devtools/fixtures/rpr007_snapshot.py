"""RPR007 fixture: snapshot/restore symmetry."""


class ForgetsOnRestore:
    def __init__(self):
        self.frontier = []
        self.depth = 0

    def step(self):
        self.depth += 1
        self.frontier = [self.depth]

    def snapshot_state(self):  # expect: RPR007
        return {"frontier": list(self.frontier), "depth": self.depth}

    def restore_state(self, snap):
        self.frontier = list(snap["frontier"])


class RestoresFromThinAir:
    def __init__(self):
        self.cursor = 0

    def advance(self):
        self.cursor += 1

    def snapshot_state(self):
        return {}

    def restore_state(self, snap):  # expect: RPR007
        self.cursor = snap["cursor"]


class SnapshotOnly:
    def snapshot_state(self):  # expect: RPR007
        return {"x": 1}


class RoundTrips:
    """Clean: symmetric pair; the derived cache is reset, not carried."""

    def __init__(self):
        self.frontier = []
        self.cache = {}

    def step(self):
        self.frontier = [0]
        self.cache[0] = 1

    def snapshot_state(self):
        return {"frontier": list(self.frontier)}

    def restore_state(self, snap):
        self.frontier = list(snap["frontier"])
        self.cache = {}
