"""RPR001 fixture: every tagged line must be flagged."""

import random
from random import randint

import numpy as np
from numpy.random import default_rng


def bad_draws():
    a = random.random()  # expect: RPR001
    b = randint(0, 10)  # expect: RPR001
    c = np.random.rand(4)  # expect: RPR001
    d = np.random.default_rng()  # expect: RPR001
    e = default_rng()  # expect: RPR001
    f = random.Random()  # expect: RPR001
    g = random.SystemRandom()  # expect: RPR001
    return a, b, c, d, e, f, g


def good_draws():
    rng = np.random.default_rng(7)
    legacy = random.Random(3)
    return rng.integers(10), legacy.random()
