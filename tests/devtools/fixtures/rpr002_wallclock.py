"""RPR002 fixture: wall-clock reads outside benchmark code."""

import time
from datetime import datetime
from time import perf_counter


def stamps():
    t0 = time.time()  # expect: RPR002
    t1 = perf_counter()  # expect: RPR002
    t2 = time.monotonic_ns()  # expect: RPR002
    now = datetime.now()  # expect: RPR002
    return t0, t1, t2, now


def fine():
    return time.strftime("%Y")
