"""RPR003 fixture: unordered iteration feeding send/per-rank order."""


def direct_set(mailbox, targets, payload):
    for r in set(targets):  # expect: RPR003
        mailbox.send(r, 0, payload, 8)


def dict_view(network, buffers):
    for hop in buffers.keys():  # expect: RPR003
        network.send_packet(buffers[hop])


def tainted_name(queue, xs):
    pending = set(xs)
    for v in pending:  # expect: RPR003
        queue.push(v)


def set_algebra(mailbox, left, right, payload):
    members = set(left)
    for r in members | right:  # expect: RPR003
        mailbox.send(r, 0, payload, 8)


def comprehension(mailboxes, active):
    return [mailboxes[r] for r in set(active)]  # expect: RPR003


def sorted_is_fine(mailbox, targets, payload):
    for r in sorted(set(targets)):
        mailbox.send(r, 0, payload, 8)


def no_sink_is_fine(xs):
    total = 0
    for v in set(xs):
        total += v
    return total


def rebound_to_sorted_is_fine(queue, xs):
    pending = set(xs)
    pending = sorted(pending)
    for v in pending:
        queue.push(v)


def list_iteration_is_fine(mailbox, targets, payload):
    for r in list(targets):
        mailbox.send(r, 0, payload, 8)
