"""Suppression fixture: valid pragmas hide findings, invalid ones are RPR000."""

import random


def hidden_trailing():
    return random.random()  # repro-lint: disable=RPR001 -- fixture: trailing suppression


def hidden_standalone():
    # repro-lint: disable=RPR001 -- fixture: standalone pragma governs next line
    return random.random()


def reasonless_pragma_does_not_hide():
    return random.random()  # repro-lint: disable=RPR001


class BadVolatile:
    def __init__(self):
        # repro-lint: volatile
        self.cursor = 0

    def step(self):
        self.cursor += 1

    def snapshot_state(self):
        return {}

    def restore_state(self, snap):
        return None
