"""RPR005 fixture (the ``runtime`` path component puts it in scope)."""


class Drainer:
    def free_io(self, pager, n):
        pager.spill(1, n)  # expect: RPR005

    def charged_io(self, pager, costs, n):
        pager.spill(1, n)
        costs[0] += pager.drain_epoch_us()

    def free_cache_touch(self, cache):
        cache.access_range(0, 4096)  # expect: RPR005

    def machine_touch_is_fine(self, cache, machine):
        cache.access_pages([1, 2, 3])
        return machine.page_size
