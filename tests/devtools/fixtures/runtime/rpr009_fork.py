"""RPR009 fixture: fork-unsafe OS resources on simulation state."""

import threading

AUDIT_LOG = open("audit.log", "a")  # expect: RPR009


class TickGate:
    def __init__(self, trace_path):
        self.lock = threading.Lock()  # expect: RPR009
        self.trace = open(trace_path, "w")  # expect: RPR009

    def snapshot_state(self):
        return {}

    def restore_state(self, snap):
        return None


class SafeReader:
    """Clean: handles stay scoped to one call, nothing persists one."""

    def __init__(self, path):
        self.path = path

    def read_all(self):
        with open(self.path) as fh:
            return fh.read()
