"""RPR008 fixture: stats-counter declaration & family registration.

Self-contained mini ``TraversalStats`` plus exclusion tuples, so the
project rule can resolve everything from this one file.
"""

from dataclasses import dataclass


@dataclass
class TraversalStats:
    ticks: int = 0
    worker_respawns: int = 0
    worker_replays: int = 0  # expect: RPR008
    durable_checkpoints: int = 0


SUPERVISION_STATS_FIELDS = (  # expect: RPR008
    "worker_respawns",
    "worker_retired",
)

DURABILITY_STATS_FIELDS = (
    "durable_checkpoints",
)


def record_tick(stats):
    # Clean: both counters are declared fields.
    stats.ticks += 1
    stats.worker_respawns += 1


def record_phantom(stats):
    stats.phantom_counter += 1  # expect: RPR008
