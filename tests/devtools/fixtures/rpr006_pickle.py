"""RPR006 fixture: local-scope classes crossing pipes / pickle streams."""

from repro.core.visitor import Visitor


def make_bad_visitor(k):
    class LocalVisitor(Visitor):  # expect: RPR006
        def visit(self, vertex, state):
            return []

    return LocalVisitor(k)


def make_registered_visitor(k):
    # Clean: the k-core escape hatch re-homes the class at module level.
    class RegisteredVisitor(Visitor):
        def visit(self, vertex, state):
            return []

    RegisteredVisitor.__qualname__ = f"RegisteredVisitor_{k}"
    globals()[RegisteredVisitor.__name__] = RegisteredVisitor
    return RegisteredVisitor(k)


def make_piped_payload(mailbox):
    class Payload:  # expect: RPR006
        pass

    mailbox.push(Payload())
    return None


def make_plain_local_helper():
    # Clean: local class that never crosses a pipe or pickle stream.
    class Helper:
        pass

    return Helper()


class CheckpointedTable:
    """Pickle-reachable (checkpointed); callables on self must pickle."""

    def __init__(self):
        self.rows = []
        self.keyfn = lambda row: row[0]  # expect: RPR006

    def snapshot_state(self):
        return {"rows": list(self.rows)}

    def restore_state(self, snap):
        self.rows = list(snap["rows"])


class EphemeralTable:
    """Clean: not a visitor, not checkpointed — never crosses a pickle."""

    def __init__(self):
        self.keyfn = lambda row: row[0]
