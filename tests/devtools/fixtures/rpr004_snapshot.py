"""RPR004 fixture: snapshot/restore completeness."""


class Broken:
    def __init__(self):
        self.state = 0
        self.cursor = 0  # expect: RPR004
        self.wiring = object()
        # repro-lint: volatile -- fixture: scratch is recomputed every step
        self.scratch = 0

    def step(self):
        self.state += 1
        self.cursor += 1
        self.scratch = self.state + self.cursor

    def snapshot_state(self):
        return {"state": self.state}

    def restore_state(self, snap):
        self.state = snap["state"]


class ShortNames:
    def __init__(self):
        self.depth = 0  # expect: RPR004

    def advance(self):
        self.depth += 1

    def snapshot(self):
        return {}

    def restore(self, snap):
        return None


class NoSnapshotMethodsAnything:
    def __init__(self):
        self.anything = 0

    def step(self):
        self.anything += 1


class FullyCovered:
    def __init__(self):
        self.a = 0
        self.b = []

    def step(self):
        self.a += 1
        self.b.append(self.a)
        self.b = list(self.b)

    def snapshot_state(self):
        return {"a": self.a, "b": list(self.b)}

    def restore_state(self, snap):
        self.a = snap["a"]
        self.b = list(snap["b"])
