"""The repro-lint analyzer: exact (rule, line) findings on the fixtures,
suppression round-trips, CLI exit codes, and a clean shipped tree."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools import all_rules, lint_paths
from repro.devtools.cli import main as lint_main
from repro.devtools.suppressions import scan_pragmas
from repro.devtools.walker import DEFAULT_EXCLUDES

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).parents[2] / "src" / "repro"

#: Lint everything we're pointed at — fixtures live under tests/, which
#: the default excludes would skip.
NO_EXCLUDES = frozenset({"__pycache__"})


def lint_fixture(name: str, select: set[str] | None = None):
    path = FIXTURES / name
    violations, checked = lint_paths(
        [str(path)],
        rules=all_rules(frozenset(select) if select else None),
        excludes=NO_EXCLUDES,
    )
    assert checked == 1
    return violations


def expected_findings(name: str) -> set[tuple[str, int]]:
    """The ``# expect: RPR###`` markers in a fixture, as (rule, line)."""
    out = set()
    for lineno, line in enumerate(
        (FIXTURES / name).read_text().splitlines(), start=1
    ):
        if "# expect: " in line:
            out.add((line.split("# expect: ", 1)[1].strip(), lineno))
    assert out, f"fixture {name} has no expect markers"
    return out


@pytest.mark.parametrize(
    "fixture",
    [
        "rpr001_random.py",
        "rpr002_wallclock.py",
        "rpr003_order.py",
        "rpr004_snapshot.py",
        "runtime/rpr005_io.py",
        "rpr006_pickle.py",
        "rpr007_snapshot.py",
        "runtime/rpr008_stats.py",
        "runtime/rpr009_fork.py",
    ],
)
def test_fixture_findings_exact(fixture):
    got = {(v.rule, v.line) for v in lint_fixture(fixture)}
    assert got == expected_findings(fixture)


def test_rule_selection_narrows_findings():
    violations = lint_fixture("rpr001_random.py", select={"RPR002"})
    assert violations == []


def test_unknown_rule_code_rejected():
    with pytest.raises(ValueError, match="RPR999"):
        all_rules(frozenset({"RPR999"}))


# --------------------------------------------------------------------- #
# Suppressions
# --------------------------------------------------------------------- #
def _line_of(name: str, needle: str) -> int:
    for lineno, line in enumerate(
        (FIXTURES / name).read_text().splitlines(), start=1
    ):
        if needle in line:
            return lineno
    raise AssertionError(f"{needle!r} not in {name}")


def test_suppression_round_trip():
    violations = lint_fixture("suppressed.py")
    got = {(v.rule, v.line) for v in violations}
    # Valid trailing and standalone pragmas hide their RPR001 findings.
    assert ("RPR001", _line_of("suppressed.py", "hidden_trailing") + 1) not in got
    assert ("RPR001", _line_of("suppressed.py", "hidden_standalone") + 2) not in got
    # A reasonless disable is RPR000 *and* leaves the finding visible.
    bare = _line_of("suppressed.py", "reasonless_pragma_does_not_hide") + 1
    assert ("RPR000", bare) in got
    assert ("RPR001", bare) in got
    # A reasonless volatile is RPR000 and does not exempt the attribute.
    pragma = _line_of("suppressed.py", "# repro-lint: volatile")
    assert ("RPR000", pragma) in got
    assert ("RPR004", pragma + 1) in got


def test_volatile_with_reason_exempts(tmp_path):
    src = (
        "class C:\n"
        "    def __init__(self):\n"
        "        # repro-lint: volatile -- derived cache\n"
        "        self.cursor = 0\n"
        "    def step(self):\n"
        "        self.cursor += 1\n"
        "    def snapshot_state(self):\n"
        "        return {}\n"
        "    def restore_state(self, snap):\n"
        "        return None\n"
    )
    f = tmp_path / "vol.py"
    f.write_text(src)
    violations, _ = lint_paths([str(f)], rules=all_rules(), excludes=NO_EXCLUDES)
    assert violations == []


def test_malformed_pragma_is_meta_violation():
    table = scan_pragmas("x.py", ["x = 1  # repro-lint: disable=banana -- why"])
    assert [v.rule for v in table.errors] == ["RPR000"]
    assert not table.disabled


def test_syntax_error_reports_rpr000(tmp_path):
    f = tmp_path / "broken.py"
    f.write_text("def oops(:\n")
    violations, checked = lint_paths(
        [str(f)], rules=all_rules(), excludes=NO_EXCLUDES
    )
    assert checked == 1
    assert [v.rule for v in violations] == ["RPR000"]


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
def test_cli_json_format(capsys):
    code = lint_main([str(FIXTURES / "rpr001_random.py"),
                      "--include-excluded", "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["checked_files"] == 1
    assert payload["violation_count"] == len(payload["violations"]) > 0
    first = payload["violations"][0]
    assert {"path", "line", "col", "rule", "message"} <= set(first)


def test_cli_clean_tree_exits_zero(capsys):
    code = lint_main([str(REPO_SRC)])
    out = capsys.readouterr()
    assert code == 0, out.out
    assert "clean" in out.out


def test_cli_default_excludes_skip_fixtures(capsys):
    # Pointing at tests/devtools without --include-excluded finds nothing
    # to lint (the whole tree is excluded) and exits 2.
    code = lint_main([str(Path(__file__).parent)])
    assert code == 2
    assert "tests" in DEFAULT_EXCLUDES


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
                 "RPR006", "RPR007", "RPR008", "RPR009"):
        assert rule in out
    # Each rule advertises its scope (file vs project) and scoped dirs.
    assert "[file   ]" in out
    assert "[project]" in out
    assert "tree-wide" in out
    assert "runtime/, comm/" in out
    # The pragma spellings are part of the catalogue.
    assert "# repro-lint: disable=" in out
    assert "# repro-lint: volatile" in out


def test_all_rules_registered_without_explicit_imports():
    """Regression: importing *any* devtools module must observe the full
    registry — rule registration lives in the package ``__init__``, not
    in a lazy import inside ``all_rules()``.  A fresh interpreter that
    imports only ``repro.devtools.rules`` still gets RPR003/RPR006-009
    because the submodule import triggers the package ``__init__``."""
    import os
    import subprocess
    import sys

    probe = (
        "from repro.devtools.rules import RULE_REGISTRY\n"
        "expected = {f'RPR00{i}' for i in range(1, 10)}\n"
        "missing = expected - set(RULE_REGISTRY)\n"
        "raise SystemExit(f'missing: {sorted(missing)}' if missing else 0)\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).parents[2] / "src")
    proc = subprocess.run([sys.executable, "-c", probe],
                          env=env, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr


def test_repro_cli_lint_subcommand(capsys):
    from repro.cli import build_parser

    args = build_parser().parse_args(["lint", str(REPO_SRC)])
    assert args.func(args) == 0
    assert "clean" in capsys.readouterr().out
