"""The project-wide analysis layer: ProjectIndex resolution, the
RPR006-RPR009 rule pack (including seeded mutations of real tree files),
the incremental cache, the committed baseline and the SARIF output."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.devtools import all_rules, run_lint_tree
from repro.devtools.cache import LintCache
from repro.devtools.cli import main as lint_main
from repro.devtools.project import ProjectIndex, module_dotted
from repro.devtools.walker import FileContext

REPO_ROOT = Path(__file__).parents[2]
REPO_SRC = REPO_ROOT / "src" / "repro"
NO_EXCLUDES = frozenset({"__pycache__"})


def write(root: Path, rel: str, src: str) -> Path:
    p = root / rel
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(textwrap.dedent(src))
    return p


def lint_tree(root: Path, **kw):
    return run_lint_tree([str(root)], rules=all_rules(),
                         excludes=NO_EXCLUDES, **kw)


# --------------------------------------------------------------------- #
# ProjectIndex units
# --------------------------------------------------------------------- #
def test_module_dotted():
    assert module_dotted("src/repro/runtime/trace.py") == "repro.runtime.trace"
    assert module_dotted("src/repro/comm/__init__.py") == "repro.comm"
    assert module_dotted("elsewhere/mod.py").endswith("elsewhere.mod")


def _index_of(root: Path) -> ProjectIndex:
    contexts = [FileContext.parse(f, str(f))
                for f in sorted(root.rglob("*.py"))]
    return ProjectIndex.build(contexts)


def test_index_cross_module_resolution(tmp_path):
    write(tmp_path, "base.py", """\
        class Base:
            def snapshot_state(self):
                return {"count": self.count}

            def restore_state(self, snap):
                self.count = snap["count"]
        """)
    write(tmp_path, "sub.py", """\
        from base import Base


        class Sub(Base):
            pass
        """)
    index = _index_of(tmp_path)
    sub = index.resolve_class("Sub")
    assert sub is not None and sub.name == "Sub"
    assert index.is_subclass_of(sub, frozenset({"base.Base"}))
    hit = index.mro_method(sub, "snapshot_state")
    assert hit is not None and hit[0].name == "Base"
    chain = [c.name for c in index.mro_chain(sub)]
    assert chain == ["Sub", "Base"]


def test_index_tracks_local_classes_and_calls(tmp_path):
    write(tmp_path, "factory.py", """\
        def make(mailbox):
            class Payload:
                pass

            mailbox.push(Payload())
            return None
        """)
    index = _index_of(tmp_path)
    payload = index.resolve_class("Payload")
    assert payload is not None
    assert payload.enclosing_function is not None
    assert payload.enclosing_function.name == "make"
    (fn_key,) = [k for k in index.calls if k.endswith(".make")]
    assert "push" in index.calls[fn_key]


# --------------------------------------------------------------------- #
# RPR007 across modules + seeded mutations
# --------------------------------------------------------------------- #
BASE_SRC = """\
    class Base:
        def __init__(self):
            self.count = 0

        def bump(self):
            self.count += 1

        def snapshot_state(self):
            return {"count": self.count}

        def restore_state(self, snap):
            self.count = snap["count"]
    """


def test_rpr007_inherited_pair_cross_module(tmp_path):
    write(tmp_path, "base.py", BASE_SRC)
    write(tmp_path, "sub.py", """\
        from base import Base


        class Sub(Base):
            def __init__(self):
                super().__init__()
                self.extra = []

            def step(self):
                self.extra = [1]
        """)
    result = lint_tree(tmp_path)
    assert [(v.rule, Path(v.path).name) for v in result.violations] == [
        ("RPR007", "sub.py")]
    assert "self.extra" in result.violations[0].message


def test_rpr007_inherited_pair_volatile_pragma(tmp_path):
    write(tmp_path, "base.py", BASE_SRC)
    write(tmp_path, "sub.py", """\
        from base import Base


        class Sub(Base):
            def __init__(self):
                super().__init__()
                # repro-lint: volatile -- derived scratch, rebuilt on restore
                self.extra = []

            def step(self):
                self.extra = [1]
        """)
    assert lint_tree(tmp_path).violations == []


SYMMETRIC_SRC = """\
    class Engine:
        def __init__(self):
            self.count = 0
            self.frontier = []

        def step(self):
            self.count += 1
            self.frontier = [self.count]

        def snapshot_state(self):
            return {"count": self.count, "frontier": list(self.frontier)}

        def restore_state(self, snap):
            self.count = snap["count"]
            self.frontier = list(snap["frontier"])
    """


def test_seeded_mutation_deleted_restore_attr_fires(tmp_path):
    """Deleting one attr from restore_state must trip RPR007."""
    write(tmp_path, "engine.py", SYMMETRIC_SRC)
    assert lint_tree(tmp_path).violations == []
    mutated = SYMMETRIC_SRC.replace(
        '        self.frontier = list(snap["frontier"])\n', "")
    assert mutated != SYMMETRIC_SRC
    write(tmp_path, "engine.py", mutated)
    result = lint_tree(tmp_path)
    assert [v.rule for v in result.violations] == ["RPR007"]
    assert "self.frontier" in result.violations[0].message


# --------------------------------------------------------------------- #
# RPR006 on the real k-core escape hatch
# --------------------------------------------------------------------- #
def test_kcore_escape_hatch_clean_and_seeded_mutation_fires(tmp_path):
    src = (REPO_SRC / "algorithms" / "kcore.py").read_text()
    (tmp_path / "kcore.py").write_text(src)
    assert lint_tree(tmp_path).violations == []

    needle = "globals()[KCoreVisitor.__name__] = KCoreVisitor"
    assert needle in src
    (tmp_path / "kcore.py").write_text(src.replace(needle, "pass"))
    result = lint_tree(tmp_path)
    assert [v.rule for v in result.violations] == ["RPR006"]
    assert "KCoreVisitor" in result.violations[0].message


# --------------------------------------------------------------------- #
# RPR008 against the real TraversalStats
# --------------------------------------------------------------------- #
def test_seeded_unregistered_stats_counter_fires(tmp_path):
    trace_src = (REPO_SRC / "runtime" / "trace.py").read_text()
    p = tmp_path / "runtime" / "trace.py"
    p.parent.mkdir(parents=True)
    p.write_text(trace_src)
    assert lint_tree(tmp_path).violations == []

    write(tmp_path, "runtime/bump.py", """\
        def record(stats):
            stats.bogus_counter += 1
        """)
    result = lint_tree(tmp_path)
    assert [v.rule for v in result.violations] == ["RPR008"]
    assert "bogus_counter" in result.violations[0].message


def test_seeded_unregistered_family_field_fires(tmp_path):
    """Declaring a durable_* field without registering it must fire."""
    trace_src = (REPO_SRC / "runtime" / "trace.py").read_text()
    needle = "    durable_resumes: int = 0"
    assert needle in trace_src
    mutated = trace_src.replace(
        needle, needle + "\n    durable_phantom_epochs: int = 0")
    p = tmp_path / "runtime" / "trace.py"
    p.parent.mkdir(parents=True)
    p.write_text(mutated)
    result = lint_tree(tmp_path)
    assert [v.rule for v in result.violations] == ["RPR008"]
    assert "durable_phantom_epochs" in result.violations[0].message
    assert "DURABILITY_STATS_FIELDS" in result.violations[0].message


# --------------------------------------------------------------------- #
# Suppression round-trips for the project rules
# --------------------------------------------------------------------- #
def _rpr006_tree(root: Path, pragma: str) -> None:
    write(root, "factory.py", f"""\
        from repro.core.visitor import Visitor


        def make(k):
            class LocalVisitor(Visitor):{pragma}
                pass

            return LocalVisitor
        """)


def _rpr007_tree(root: Path, pragma: str) -> None:
    write(root, "engine.py", f"""\
        class Engine:
            def __init__(self):
                self.depth = 0

            def step(self):
                self.depth += 1

            def snapshot_state(self):{pragma}
                return {{"depth": self.depth}}

            def restore_state(self, snap):
                return None
        """)


def _rpr008_tree(root: Path, pragma: str) -> None:
    write(root, "runtime/trace.py", """\
        class TraversalStats:
            ticks: int = 0
        """)
    write(root, "runtime/bump.py", f"""\
        def record(stats):
            stats.phantom += 1{pragma}
        """)


def _rpr009_tree(root: Path, pragma: str) -> None:
    write(root, "runtime/gate.py", f"""\
        LOG = open("gate.log", "a"){pragma}
        """)


@pytest.mark.parametrize(
    "rule,builder",
    [
        ("RPR006", _rpr006_tree),
        ("RPR007", _rpr007_tree),
        ("RPR008", _rpr008_tree),
        ("RPR009", _rpr009_tree),
    ],
)
def test_project_rule_suppression_round_trip(tmp_path, rule, builder):
    # Unsuppressed: the violation fires.
    bare = tmp_path / "bare"
    builder(bare, "")
    assert rule in {v.rule for v in lint_tree(bare).violations}

    # A reasoned disable pragma hides exactly that finding.
    ok = tmp_path / "ok"
    builder(ok, f"  # repro-lint: disable={rule} -- test: sanctioned here")
    assert lint_tree(ok).violations == []

    # A reasonless pragma is RPR000 and the finding stays visible.
    bad = tmp_path / "bad"
    builder(bad, f"  # repro-lint: disable={rule}")
    rules_fired = {v.rule for v in lint_tree(bad).violations}
    assert {"RPR000", rule} <= rules_fired


# --------------------------------------------------------------------- #
# Incremental cache
# --------------------------------------------------------------------- #
def _violating_tree(root: Path) -> None:
    write(root, "dirty.py", """\
        import random


        def roll():
            return random.random()
        """)
    write(root, "clean.py", """\
        def double(x):
            return 2 * x
        """)


def test_cache_warm_run_parses_zero_files(tmp_path):
    proj = tmp_path / "proj"
    _violating_tree(proj)
    cache_dir = tmp_path / "cache"

    cold = lint_tree(proj, cache_dir=cache_dir)
    assert cold.cache_enabled and cold.parsed_files == 2
    assert cold.cache_hits == 0 and not cold.project_cache_hit

    warm = lint_tree(proj, cache_dir=cache_dir)
    assert warm.parsed_files == 0
    assert warm.cache_hits == 2 and warm.project_cache_hit
    assert warm.violations == cold.violations


def test_cache_invalidated_by_edit(tmp_path):
    proj = tmp_path / "proj"
    _violating_tree(proj)
    cache_dir = tmp_path / "cache"
    lint_tree(proj, cache_dir=cache_dir)

    (proj / "clean.py").write_text("def triple(x):\n    return 3 * x\n")
    third = lint_tree(proj, cache_dir=cache_dir)
    # The unchanged file's *analysis* is served from cache; the tree
    # digest changed, so the index (and hence parsing) runs again.
    assert third.cache_hits == 1
    assert not third.project_cache_hit
    assert {v.rule for v in third.violations} == {"RPR001"}


def test_cache_invalidated_by_rule_selection(tmp_path):
    cache_dir = tmp_path / "cache"
    cache = LintCache(cache_dir, ("RPR001",))
    cache.store_file("x.py", "digest", [])
    cache.save({"x.py"})

    same = LintCache(cache_dir, ("RPR001",))
    assert same.file_violations("x.py", "digest") == []
    other = LintCache(cache_dir, ("RPR001", "RPR002"))
    assert other.file_violations("x.py", "digest") is None


def test_cli_cached_reports_byte_identical(tmp_path, capsys):
    proj = tmp_path / "proj"
    _violating_tree(proj)
    cache_dir = tmp_path / "cache"
    argv = [str(proj), "--include-excluded",
            "--cache-dir", str(cache_dir), "--format", "json"]

    assert lint_main(argv) == 1
    first = json.loads(capsys.readouterr().out)
    assert lint_main(argv) == 1
    second = json.loads(capsys.readouterr().out)

    # The cache-hit counters are the only difference...
    assert first["cache"]["files_reparsed"] == 2
    assert second["cache"]["files_reparsed"] == 0
    assert second["cache"]["file_hits"] == 2
    assert second["cache"]["project_hit"] is True
    # ... the report core is byte-identical.
    first.pop("cache")
    second.pop("cache")
    assert json.dumps(first) == json.dumps(second)

    # Text mode keeps telemetry on stderr; stdout is identical too.
    argv_text = [str(proj), "--include-excluded", "--cache-dir", str(cache_dir)]
    assert lint_main(argv_text) == 1
    out_a = capsys.readouterr().out
    assert lint_main(argv_text) == 1
    out_b = capsys.readouterr().out
    assert out_a == out_b


# --------------------------------------------------------------------- #
# Baseline
# --------------------------------------------------------------------- #
def test_baseline_update_filter_and_stale(tmp_path):
    proj = tmp_path / "proj"
    _violating_tree(proj)
    bl = tmp_path / "lint-baseline.json"

    first = lint_tree(proj, baseline_path=bl, update_baseline=True)
    assert first.violations == [] and first.baselined == 1
    entries = json.loads(bl.read_text())["entries"]
    assert entries and "col" not in entries[0]

    # Steady state: still filtered, nothing stale.
    second = lint_tree(proj, baseline_path=bl)
    assert second.violations == [] and second.baselined == 1
    assert second.stale_baseline == []

    # A new violation is NOT absorbed by the old baseline.
    write(proj, "fresh.py", """\
        import random


        def fresh_roll():
            return random.random()
        """)
    third = lint_tree(proj, baseline_path=bl)
    assert [Path(v.path).name for v in third.violations] == ["fresh.py"]

    # Fixing the baselined file turns its entry stale (warn, don't gate).
    (proj / "dirty.py").write_text("def quiet():\n    return 0\n")
    (proj / "fresh.py").unlink()
    fourth = lint_tree(proj, baseline_path=bl)
    assert fourth.violations == [] and fourth.baselined == 0
    assert len(fourth.stale_baseline) == 1


def test_cli_stale_baseline_warns_on_stderr(tmp_path, capsys):
    proj = tmp_path / "proj"
    _violating_tree(proj)
    bl = tmp_path / "lint-baseline.json"
    assert lint_main([str(proj), "--include-excluded", "--no-cache",
                      "--baseline", str(bl), "--update-baseline"]) == 0
    capsys.readouterr()

    (proj / "dirty.py").write_text("def quiet():\n    return 0\n")
    assert lint_main([str(proj), "--include-excluded", "--no-cache",
                      "--baseline", str(bl)]) == 0
    err = capsys.readouterr().err
    assert "stale baseline" in err


def test_cli_update_baseline_requires_baseline(tmp_path):
    assert lint_main([str(tmp_path), "--update-baseline"]) == 2


def test_committed_baseline_has_no_runtime_or_comm_entries():
    """Policy: the parallel/durability trees may never be baselined —
    their invariants are exactly what RPR006-RPR009 exist to keep."""
    data = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
    for entry in data.get("entries", []):
        path = entry.get("path", "")
        assert not path.startswith(("src/repro/runtime/", "src/repro/comm/")), (
            f"baselined violation in a protected tree: {entry}")


# --------------------------------------------------------------------- #
# SARIF
# --------------------------------------------------------------------- #
def test_cli_sarif_output(tmp_path, capsys):
    proj = tmp_path / "proj"
    _violating_tree(proj)
    assert lint_main([str(proj), "--include-excluded", "--no-cache",
                      "--format", "sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert run["results"]
    result = run["results"][0]
    assert result["ruleId"] == "RPR001"
    loc = result["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"].endswith("dirty.py")
    assert loc["region"]["startLine"] >= 1
    assert result["ruleId"] in {r["id"] for r in run["tool"]["driver"]["rules"]}


def test_cli_output_file(tmp_path):
    proj = tmp_path / "proj"
    _violating_tree(proj)
    out = tmp_path / "lint.sarif"
    assert lint_main([str(proj), "--include-excluded", "--no-cache",
                      "--format", "sarif", "--output", str(out)]) == 1
    doc = json.loads(out.read_text())
    assert doc["runs"][0]["results"]
