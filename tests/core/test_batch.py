"""Unit tests for the SoA batch primitives (VisitorBatch,
BatchStateArrays.previsit, GhostArrayTable, concat_ranges)."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np

from repro.core.batch import (
    BatchStateArrays,
    GhostArrayTable,
    VisitorBatch,
    concat_ranges,
)


def _sequential_previsit(values, parents, idx, payloads, in_parents):
    """The object path's semantics, spelled out one visitor at a time."""
    mask = []
    for k, i in enumerate(idx):
        ok = payloads[k] < values[i]
        mask.append(ok)
        if ok:
            values[i] = payloads[k]
            if parents is not None:
                parents[i] = in_parents[k]
    return np.asarray(mask, dtype=bool)


class TestPrevisit:
    def _check(self, n_states, idx, payloads, with_parents=True):
        idx = np.asarray(idx, dtype=np.int64)
        payloads = np.asarray(payloads, dtype=np.float64)
        in_parents = np.arange(idx.size, dtype=np.int64) + 100
        values_a = np.full(n_states, np.inf)
        values_b = values_a.copy()
        parents_a = np.full(n_states, -1, dtype=np.int64) if with_parents else None
        parents_b = parents_a.copy() if with_parents else None
        ref = _sequential_previsit(values_a, parents_a, idx.tolist(),
                                   payloads.tolist(), in_parents.tolist())
        state = BatchStateArrays(values_b, parents_b)
        got = state.previsit(idx, payloads, in_parents if with_parents else None)
        assert np.array_equal(ref, got)
        assert np.array_equal(values_a, values_b)
        if with_parents:
            assert np.array_equal(parents_a, parents_b)

    def test_all_distinct(self):
        self._check(8, [0, 3, 5], [1.0, 2.0, 3.0])

    def test_single_visitor(self):
        self._check(4, [2], [7.0])

    def test_duplicate_first_wins_on_tie(self):
        # Two equal payloads for the same vertex: the first writes, the
        # second is dropped — exactly what back-to-back pre_visit calls do.
        self._check(4, [1, 1], [5.0, 5.0])

    def test_duplicate_improving_chain(self):
        self._check(4, [1, 1, 1], [5.0, 3.0, 4.0])

    def test_rejects_against_prior_state(self):
        values = np.array([2.0, np.inf])
        state = BatchStateArrays(values)
        got = state.previsit(np.array([0, 1]), np.array([3.0, 1.0]))
        assert got.tolist() == [False, True]
        assert values.tolist() == [2.0, 1.0]

    def test_empty_batch(self):
        state = BatchStateArrays(np.full(3, np.inf))
        assert state.previsit(np.empty(0, dtype=np.int64),
                              np.empty(0)).size == 0

    @given(st.integers(1, 6),
           st.lists(st.tuples(st.integers(0, 5), st.integers(0, 9)),
                    min_size=1, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_random_batches_match_sequential(self, n_states, pairs):
        idx = [i % n_states for i, _ in pairs]
        payloads = [float(p) for _, p in pairs]
        self._check(n_states, idx, payloads)


class TestVisitorBatch:
    def test_split_and_concat_roundtrip(self):
        b = VisitorBatch(np.arange(7), np.arange(7) * 2.0, np.arange(7) + 50)
        head, tail = b.split(3)
        assert len(head) == 3 and len(tail) == 4
        back = VisitorBatch.concat([head, tail])
        assert np.array_equal(back.vertices, b.vertices)
        assert np.array_equal(back.payloads, b.payloads)
        assert np.array_equal(back.parents, b.parents)

    def test_take_preserves_order(self):
        b = VisitorBatch(np.arange(5), np.arange(5, dtype=np.float64))
        sub = b.take(np.array([True, False, True, False, True]))
        assert sub.vertices.tolist() == [0, 2, 4]
        assert sub.parents is None


class TestGhostFilter:
    def test_non_ghosted_always_kept(self):
        table = GhostArrayTable(
            np.array([10, 20]), BatchStateArrays(np.full(2, np.inf))
        )
        keep, previsits, filtered = table.filter(
            np.array([1, 2, 3]), np.array([1.0, 1.0, 1.0])
        )
        assert keep.all() and previsits == 0 and filtered == 0

    def test_ghosted_filtered_on_second_arrival(self):
        table = GhostArrayTable(
            np.array([10]), BatchStateArrays(np.full(1, np.inf))
        )
        keep, previsits, filtered = table.filter(
            np.array([10, 10, 5]), np.array([3.0, 3.0, 1.0])
        )
        # first arrival at ghost 10 passes and records 3.0; the duplicate
        # is killed; vertex 5 is not ghosted here
        assert keep.tolist() == [True, False, True]
        assert previsits == 2 and filtered == 1
        assert table.filter_hits == 1 and table.filter_passes == 1


class TestConcatRanges:
    def test_matches_naive(self):
        starts = np.array([5, 0, 100])
        lengths = np.array([3, 0, 2])
        expect = np.concatenate(
            [np.arange(s, s + l) for s, l in zip(starts, lengths, strict=False)]
        )
        assert np.array_equal(concat_ranges(starts, lengths), expect)

    def test_all_empty(self):
        assert concat_ranges(np.array([1, 2]), np.array([0, 0])).size == 0
