"""The batch fast path's defining contract: bit-identical results and
traversal stats to the object path.

Every configuration axis the engine exposes is crossed here — routing
topology, DRAM vs NVRAM storage, cold vs warm page caches, multiple RMAT
seeds, fully-external state paging, oracle-mode termination — because the
equivalence argument (INTERNALS §7) has to hold along each of them:
identical per-tick counter deltas, identical packet streams, identical
page-cache hit/miss sequences, and therefore the identical simulated
clock, float for float.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bfs import BFSAlgorithm, bfs
from repro.algorithms.connected_components import connected_components
from repro.algorithms.sssp import sssp
from repro.bench.harness import build_rmat_graph, make_page_caches, pick_bfs_source
from repro.core.traversal import run_traversal
from repro.errors import TraversalError
from repro.runtime.costmodel import EngineConfig, hyperion_dit, laptop

SEEDS = [3, 11, 2024]


def _machine(storage: str):
    return laptop() if storage == "dram" else hyperion_dit("nvram")


def _stats_key(stats):
    """Everything the engine measures, including the exact float clock."""
    return (
        stats.ticks,
        stats.time_us,
        stats.termination_waves,
        tuple(
            (c.visits, c.previsits, c.pushes, c.ghost_filtered, c.edges_scanned,
             c.visitors_sent, c.visitors_received, c.packets_sent, c.bytes_sent,
             c.envelopes_forwarded, c.cache_hits, c.cache_misses)
            for c in stats.ranks
        ),
    )


def _graph(seed: int, partitions: int = 4):
    edges, graph = build_rmat_graph(
        8, num_partitions=partitions, num_ghosts=32,
        strategy="edge_list", seed=seed,
    )
    return edges, graph


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("storage", ["dram", "nvram"])
@pytest.mark.parametrize("topology,partitions", [("direct", 4), ("2d", 4), ("3d", 8)])
def test_bfs_equivalence(topology, partitions, storage, seed):
    edges, graph = _graph(seed, partitions)
    source = pick_bfs_source(edges, seed=seed)
    kw = dict(machine=_machine(storage), topology=topology)
    obj = bfs(graph, source, batch=False, **kw)
    bat = bfs(graph, source, batch=True, **kw)
    assert np.array_equal(obj.data.levels, bat.data.levels)
    assert np.array_equal(obj.data.parents, bat.data.parents)
    assert _stats_key(obj.stats) == _stats_key(bat.stats)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("storage", ["dram", "nvram"])
def test_sssp_equivalence(storage, seed):
    edges, graph = _graph(seed)
    source = pick_bfs_source(edges, seed=seed)
    kw = dict(machine=_machine(storage), topology="2d")
    obj = sssp(graph, source, batch=False, **kw)
    bat = sssp(graph, source, batch=True, **kw)
    assert np.array_equal(obj.data.distances, bat.data.distances)
    assert np.array_equal(obj.data.parents, bat.data.parents)
    assert _stats_key(obj.stats) == _stats_key(bat.stats)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("storage", ["dram", "nvram"])
def test_cc_equivalence(storage, seed):
    _, graph = _graph(seed)
    kw = dict(machine=_machine(storage), topology="direct")
    obj = connected_components(graph, batch=False, **kw)
    bat = connected_components(graph, batch=True, **kw)
    assert np.array_equal(obj.data.labels, bat.data.labels)
    assert _stats_key(obj.stats) == _stats_key(bat.stats)


@pytest.mark.parametrize("seed", SEEDS)
def test_warm_cache_equivalence(seed):
    """Both paths must agree run after run over a shared (warming) cache —
    the Graph500 repeated-search pattern."""
    edges, graph = _graph(seed)
    source = pick_bfs_source(edges, seed=seed)
    machine = _machine("nvram")
    caches_obj = make_page_caches(machine, graph.num_partitions)
    caches_bat = make_page_caches(machine, graph.num_partitions)
    for _ in range(3):  # cold, then twice warm
        obj = bfs(graph, source, machine=machine, page_caches=caches_obj, batch=False)
        bat = bfs(graph, source, machine=machine, page_caches=caches_bat, batch=True)
        assert np.array_equal(obj.data.levels, bat.data.levels)
        assert _stats_key(obj.stats) == _stats_key(bat.stats)
    for co, cb in zip(caches_obj, caches_bat, strict=False):
        assert (co.hits, co.misses, co.evictions) == (cb.hits, cb.misses, cb.evictions)
        assert list(co._lru) == list(cb._lru)


def test_fully_external_equivalence():
    """page_vertex_state=True routes state reads through the cache; the
    batch path must meter the same state pages in the same order."""
    edges, graph = _graph(11)
    source = pick_bfs_source(edges, seed=11)
    machine = _machine("nvram")
    obj = bfs(graph, source, machine=machine,
              config=EngineConfig(page_vertex_state=True))
    bat = bfs(graph, source, machine=machine,
              config=EngineConfig(page_vertex_state=True, batch=True))
    assert np.array_equal(obj.data.levels, bat.data.levels)
    assert _stats_key(obj.stats) == _stats_key(bat.stats)


def test_oracle_and_arrival_order_equivalence():
    """Detector off + arrival-order ties exercises the non-default
    scheduling paths."""
    edges, graph = _graph(3)
    source = pick_bfs_source(edges, seed=3)
    cfg = dict(use_termination_detector=False, locality_ordering=False)
    obj = bfs(graph, source, config=EngineConfig(**cfg))
    bat = bfs(graph, source, config=EngineConfig(batch=True, **cfg))
    assert np.array_equal(obj.data.levels, bat.data.levels)
    assert np.array_equal(obj.data.parents, bat.data.parents)
    assert _stats_key(obj.stats) == _stats_key(bat.stats)


def test_batch_requires_supporting_algorithm():
    # Every shipped algorithm now supports batch; an object-only algorithm
    # (no supports_batch) must still be rejected loudly.
    class ObjectOnly(BFSAlgorithm):
        supports_batch = False

    _, graph = _graph(3)
    with pytest.raises(TraversalError, match="batch"):
        run_traversal(graph, ObjectOnly(0), batch=True)


def test_batch_kwarg_overrides_config():
    """run_traversal(batch=...) must win over the config's flag."""
    edges, graph = _graph(3)
    source = pick_bfs_source(edges, seed=3)
    res = run_traversal(graph, BFSAlgorithm(source),
                        config=EngineConfig(batch=False), batch=True)
    obj = bfs(graph, source)
    assert np.array_equal(res.data.levels, obj.data.levels)
