"""Tests for Algorithm 1's per-rank visitor queue semantics.

A minimal *recording* algorithm drives the queue so the replica-forwarding
and ghost-filter behaviour can be observed directly, without any real graph
algorithm in the way.
"""

import numpy as np
import pytest

from repro.core.traversal import run_traversal
from repro.core.visitor import ROLE_GHOST, ROLE_MASTER, AsyncAlgorithm, Visitor
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.runtime.costmodel import EngineConfig


class RecordingState:
    __slots__ = ("seen", "role")

    def __init__(self, role):
        self.seen = 0
        self.role = role


class TouchVisitor(Visitor):
    """Accept-once visitor: pre_visit passes only the first time."""

    __slots__ = ()

    def pre_visit(self, state):
        state.seen += 1
        return state.seen == 1

    def visit(self, ctx):
        pass


class TouchAll(AsyncAlgorithm):
    """Sends one visitor to every vertex; records which copies saw it."""

    name = "touch-all"
    uses_ghosts = False
    visitor_bytes = 8

    def make_state(self, vertex, degree, role):
        return RecordingState(role)

    def initial_visitors(self, graph, rank):
        for v in graph.masters_on(rank):
            yield TouchVisitor(int(v))

    def finalize(self, graph, states_per_rank):
        return states_per_rank


@pytest.fixture
def hub_graph():
    """Star: hub 0 with 16 leaves, 4 partitions -> hub's list is split."""
    el = EdgeList.from_pairs([(0, i) for i in range(1, 17)], 17).simple_undirected()
    return DistributedGraph.build(el, 4)


class TestReplicaForwarding:
    def test_split_vertex_reaches_all_replicas(self, hub_graph):
        """A visitor accepted at the master is forwarded along the whole
        replica chain (Algorithm 1, check_mailbox)."""
        result = run_traversal(hub_graph, TouchAll())
        states = result.data
        hub = 0
        assert hub_graph.is_split(hub)
        for rank in hub_graph.replica_ranks(hub):
            lo = hub_graph.partitions[rank].state_lo
            assert states[rank][hub - lo].seen == 1

    def test_rejected_visitor_not_forwarded(self, hub_graph):
        """pre_visit returning false stops the chain (and the local queue)."""

        class RejectVisitor(Visitor):
            __slots__ = ()

            def pre_visit(self, state):
                state.seen += 1
                return False

            def visit(self, ctx):  # pragma: no cover - must not run
                raise AssertionError("visit must not run after pre_visit False")

        class RejectAll(TouchAll):
            name = "reject-all"

            def initial_visitors(self, graph, rank):
                if rank == 0:
                    yield RejectVisitor(0)

        result = run_traversal(hub_graph, RejectAll())
        states = result.data
        hub = 0
        master = hub_graph.min_owner(hub)
        lo = hub_graph.partitions[master].state_lo
        assert states[master][hub - lo].seen == 1
        # replicas never heard about it
        for rank in list(hub_graph.replica_ranks(hub))[1:]:
            plo = hub_graph.partitions[rank].state_lo
            assert states[rank][hub - plo].seen == 0

    def test_nonsplit_vertex_single_copy(self, hub_graph):
        result = run_traversal(hub_graph, TouchAll())
        states = result.data
        for v in range(1, 17):
            if hub_graph.is_split(v):
                continue
            copies = 0
            for rank in range(4):
                part = hub_graph.partitions[rank]
                if part.holds_vertex(v) and states[rank][v - part.state_lo].seen:
                    copies += 1
            assert copies == 1


class TestStateRoles:
    def test_master_and_replica_roles_assigned(self, hub_graph):
        result = run_traversal(hub_graph, TouchAll())
        states = result.data
        hub = 0
        chain = list(hub_graph.replica_ranks(hub))
        master_rank = chain[0]
        lo = hub_graph.partitions[master_rank].state_lo
        assert states[master_rank][hub - lo].role == ROLE_MASTER
        for rank in chain[1:]:
            plo = hub_graph.partitions[rank].state_lo
            assert states[rank][hub - plo].role == "replica"


class TestGhostFiltering:
    class CountingGhostAlgorithm(TouchAll):
        """Every rank pushes a visitor at the remote hub; ghosts filter the
        duplicates locally."""

        name = "ghost-count"
        uses_ghosts = True

        def initial_visitors(self, graph, rank):
            # all ranks bombard vertex 0 (the hub) with 5 visitors each
            for _ in range(5):
                yield TouchVisitor(0)

    def test_ghosts_reduce_sends(self):
        el = EdgeList.from_pairs([(0, i) for i in range(1, 17)], 17).simple_undirected()
        with_ghosts = DistributedGraph.build(el, 4, num_ghosts=4)
        without = DistributedGraph.build(el, 4, num_ghosts=0)
        algo = self.CountingGhostAlgorithm()
        r_with = run_traversal(with_ghosts, algo)
        r_without = run_traversal(without, algo)
        assert r_with.stats.total_ghost_filtered > 0
        assert (
            r_with.stats.total_visitors_sent < r_without.stats.total_visitors_sent
        )

    def test_ghost_role_state_created(self):
        el = EdgeList.from_pairs([(0, i) for i in range(1, 17)], 17).simple_undirected()
        g = DistributedGraph.build(el, 4, num_ghosts=4)
        roles = []

        class RoleSpy(TouchAll):
            uses_ghosts = True

            def make_state(self, vertex, degree, role):
                roles.append(role)
                return RecordingState(role)

        run_traversal(g, RoleSpy())
        assert ROLE_GHOST in roles


class TestLocalityOrdering:
    def test_equal_priority_orders_by_vertex(self):
        """Section V-A: equal-priority visitors pop in vertex-id order."""
        el = EdgeList.from_pairs([(0, 1), (1, 2), (2, 0)], 3).simple_undirected()
        g = DistributedGraph.build(el, 1)
        order = []

        class OrderSpyVisitor(Visitor):
            __slots__ = ()

            def visit(self, ctx):
                order.append(self.vertex)

        class OrderSpy(AsyncAlgorithm):
            name = "order-spy"
            visitor_bytes = 8

            def make_state(self, vertex, degree, role):
                return RecordingState(role)

            def initial_visitors(self, graph, rank):
                # pushed in descending order; heap must pop ascending
                for v in (2, 0, 1):
                    yield OrderSpyVisitor(v)

            def finalize(self, graph, states_per_rank):
                return None

        run_traversal(g, OrderSpy(), config=EngineConfig(locality_ordering=True))
        assert order == [0, 1, 2]

    def test_arrival_order_without_locality(self):
        el = EdgeList.from_pairs([(0, 1), (1, 2), (2, 0)], 3).simple_undirected()
        g = DistributedGraph.build(el, 1)
        order = []

        class OrderSpyVisitor(Visitor):
            __slots__ = ()

            def visit(self, ctx):
                order.append(self.vertex)

        class OrderSpy(AsyncAlgorithm):
            name = "order-spy"
            visitor_bytes = 8

            def make_state(self, vertex, degree, role):
                return RecordingState(role)

            def initial_visitors(self, graph, rank):
                for v in (2, 0, 1):
                    yield OrderSpyVisitor(v)

            def finalize(self, graph, states_per_rank):
                return None

        run_traversal(g, OrderSpy(), config=EngineConfig(locality_ordering=False))
        assert order == [2, 0, 1]


class TestCounters:
    def test_pushes_and_visits_counted(self, hub_graph):
        result = run_traversal(hub_graph, TouchAll())
        stats = result.stats
        assert stats.total_pushes == 17          # one initial push per vertex
        # every push pre_visits once at the master; split hub adds replicas
        assert stats.total_previsits >= 17
        assert stats.total_visits >= 17


class TestFullyExternalStatePaging:
    def test_state_access_paged_and_correct(self, rmat_small):
        """Fully-external mode charges page touches for vertex state without
        changing any result."""
        import numpy as np

        from repro.algorithms.bfs import bfs
        from repro.reference.bfs import bfs_levels
        from repro.runtime.costmodel import EngineConfig, hyperion_dit

        g = DistributedGraph.build(rmat_small, 4)
        machine = hyperion_dit("nvram", cache_bytes_per_rank=16 * 1024,
                               page_size=256)
        s = int(rmat_small.src[0])
        semi = bfs(g, s, machine=machine)
        full = bfs(g, s, machine=machine,
                   config=EngineConfig(page_vertex_state=True))
        assert np.array_equal(full.data.levels, bfs_levels(rmat_small, s))
        assert np.array_equal(full.data.levels, semi.data.levels)
        # fully-external performs strictly more page accesses
        touches = lambda r: r.stats.total_cache_hits + r.stats.total_cache_misses
        assert touches(full) > touches(semi)

    def test_flag_ignored_on_dram(self, rmat_small):
        from repro.algorithms.bfs import bfs
        from repro.runtime.costmodel import EngineConfig

        g = DistributedGraph.build(rmat_small, 4)
        r = bfs(g, 0, config=EngineConfig(page_vertex_state=True))
        assert r.stats.total_cache_misses == 0
