"""Unit tests for the PR-5 batch kernels: the bulk CSR membership /
suffix-expansion primitives, within-batch arrival indexing, multi-payload
``VisitorBatch`` columns, and the counting state-array blocks' sequential
equivalence to the object path's one-at-a-time ``pre_visit``."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np

from repro.algorithms.kcore import KCoreState, KCoreStateArrays, make_kcore_visitor
from repro.algorithms.pagerank import PageRankStateArrays
from repro.core.batch import VisitorBatch, occurrence_counts
from repro.graph.csr import CSR

edge_lists = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)), min_size=0, max_size=60
)


def _csr(pairs, num_rows=13):
    src = np.array([p[0] for p in pairs], dtype=np.int64)
    dst = np.array([p[1] for p in pairs], dtype=np.int64)
    return CSR.from_edges(src, dst, num_rows=num_rows)


class TestBulkCSRKernels:
    @given(edge_lists, st.lists(st.tuples(st.integers(0, 12), st.integers(0, 14)),
                                min_size=1, max_size=30))
    @settings(max_examples=150, deadline=None)
    def test_has_edges_matches_membership(self, pairs, queries):
        csr = _csr(pairs)
        edge_set = set(pairs)
        sources = np.array([q[0] for q in queries], dtype=np.int64)
        targets = np.array([q[1] for q in queries], dtype=np.int64)
        got = csr.has_edges(sources, targets)
        expect = [(s, t) in edge_set for s, t in queries]
        assert got.tolist() == expect

    @given(edge_lists, st.lists(st.tuples(st.integers(0, 12), st.integers(-1, 14)),
                                min_size=1, max_size=30))
    @settings(max_examples=150, deadline=None)
    def test_row_suffix_above_matches_scan(self, pairs, queries):
        csr = _csr(pairs)
        sources = np.array([q[0] for q in queries], dtype=np.int64)
        bounds = np.array([q[1] for q in queries], dtype=np.int64)
        starts, lens = csr.row_suffix_above(sources, bounds)
        for (s, b), start, length in zip(queries, starts, lens, strict=False):
            expect = [w for w in csr.neighbors(s).tolist() if w > b]
            got = csr.cols[start:start + length].tolist()
            assert got == expect

    def test_has_edges_empty_rows(self):
        csr = _csr([(0, 1)])
        got = csr.has_edges(np.array([5, 0]), np.array([1, 1]))
        assert got.tolist() == [False, True]

    def test_scalar_has_edge_delegates_to_bulk(self):
        # The object path's closing-edge check rides the same kernel.
        csr = _csr([(0, 3), (0, 7)])
        assert csr.has_edge(0, 3) and not csr.has_edge(0, 5)


class TestOccurrenceCounts:
    @given(st.lists(st.integers(0, 5), min_size=0, max_size=50))
    @settings(max_examples=150, deadline=None)
    def test_matches_naive(self, values):
        arr = np.asarray(values, dtype=np.int64)
        got = occurrence_counts(arr)
        expect = [values[:i].count(v) for i, v in enumerate(values)]
        assert got.tolist() == expect


class TestVisitorBatchExtras:
    def _batch(self):
        return VisitorBatch(
            np.arange(7), np.arange(7) * 2, None,
            (np.arange(7) + 100, np.arange(7) - 50),
        )

    def test_take_slice_split_concat_keep_columns_aligned(self):
        b = self._batch()
        sub = b.take(np.array([True, False, True, True, False, True, True]))
        assert sub.extras[0].tolist() == [100, 102, 103, 105, 106]
        assert sub.extras[1].tolist() == [-50, -48, -47, -45, -44]
        head, tail = b.split(4)
        back = VisitorBatch.concat([head, tail])
        for j in range(2):
            assert np.array_equal(back.extras[j], b.extras[j])
        assert back.parents is None
        window = b.slice(2, 5)
        assert window.extras[0].tolist() == [102, 103, 104]


def _kcore_sequential(k, kcores, idx):
    """Reference: the object path's counting pre_visit, one arrival at a
    time, against scalar KCoreState blocks."""
    states = [KCoreState(c) for c in kcores]
    visitor = make_kcore_visitor(k)(0)
    return [visitor.pre_visit(states[i]) for i in idx], states


class TestKCoreStateArrays:
    @given(st.integers(1, 4),
           st.lists(st.integers(0, 3), min_size=1, max_size=30),
           st.lists(st.integers(1, 6), min_size=4, max_size=4))
    @settings(max_examples=200, deadline=None)
    def test_matches_sequential_previsit(self, k, idx, degrees):
        kcores = [max(d, k) for d in degrees]  # live invariant: kcore >= k
        expect_mask, states = _kcore_sequential(k, kcores, idx)
        arrays = KCoreStateArrays(k, np.asarray(kcores, dtype=np.int64))
        batch = VisitorBatch(np.asarray(idx), np.zeros(len(idx), dtype=np.int64))
        got = arrays.previsit_batch(np.asarray(idx, dtype=np.int64), batch)
        assert got.tolist() == expect_mask
        assert arrays.alive.tolist() == [s.alive for s in states]
        assert arrays.kcore.tolist() == [s.kcore for s in states]

    def test_snapshot_restore_roundtrip(self):
        arrays = KCoreStateArrays(2, np.array([3, 2, 5], dtype=np.int64))
        snap = arrays.snapshot()
        batch = VisitorBatch(np.array([1, 1]), np.zeros(2, dtype=np.int64))
        arrays.previsit_batch(np.array([1, 1]), batch)
        assert not arrays.alive[1]
        arrays.restore(snap)
        assert arrays.alive.tolist() == [True, True, True]
        assert arrays.kcore.tolist() == [3, 2, 5]


class TestPageRankStateArrays:
    @given(st.lists(st.tuples(st.integers(0, 3), st.floats(0.0, 2.0, width=32)),
                    min_size=1, max_size=30),
           st.booleans())
    @settings(max_examples=200, deadline=None)
    def test_matches_sequential_previsit(self, arrivals, gated):
        threshold = 0.5
        idx = np.array([a[0] for a in arrivals], dtype=np.int64)
        amounts = np.array([a[1] for a in arrivals], dtype=np.float64)
        # Reference: accumulate one arrival at a time with Python floats
        # (IEEE doubles, so bit-identical to the object path).
        residual = [0.0] * 4
        expect = []
        for i, a in zip(idx.tolist(), amounts.tolist(), strict=False):
            residual[i] += a
            expect.append((not gated) or residual[i] >= threshold)
        arrays = PageRankStateArrays(np.full(4, gated), threshold)
        batch = VisitorBatch(idx, amounts)
        got = arrays.previsit_batch(idx, batch)
        assert got.tolist() == expect
        assert arrays.residual.tolist() == residual  # exact float equality

    def test_snapshot_restore_roundtrip(self):
        arrays = PageRankStateArrays(np.array([False, True]), 0.5)
        snap = arrays.snapshot()
        batch = VisitorBatch(np.array([0]), np.array([1.0]))
        arrays.previsit_batch(np.array([0]), batch)
        assert arrays.residual[0] == 1.0
        arrays.restore(snap)
        assert arrays.residual.tolist() == [0.0, 0.0]
