"""Tests for the run_traversal entry point and TraversalResult."""

import pytest

from repro.algorithms.bfs import BFSAlgorithm
from repro.core.traversal import run_traversal
from repro.errors import TraversalError
from repro.graph.distributed import DistributedGraph
from repro.memory.device import fusion_io
from repro.memory.page_cache import PageCache
from repro.runtime.costmodel import hyperion_dit, laptop


class TestDefaults:
    def test_default_machine_is_laptop(self, rmat_small, rmat_small_graph):
        r = run_traversal(rmat_small_graph, BFSAlgorithm(0))
        assert r.stats.machine == "laptop"
        assert r.stats.topology == "direct"

    def test_time_property(self, rmat_small_graph):
        r = run_traversal(rmat_small_graph, BFSAlgorithm(0))
        assert r.time_us == r.stats.time_us
        assert r.time_us > 0

    def test_result_is_frozen(self, rmat_small_graph):
        r = run_traversal(rmat_small_graph, BFSAlgorithm(0))
        with pytest.raises(AttributeError):
            r.data = None


class TestPageCachePlumbing:
    def test_wrong_cache_count_rejected(self, rmat_small):
        g = DistributedGraph.build(rmat_small, 4)
        machine = hyperion_dit("nvram")
        caches = [
            PageCache(capacity_pages=4, page_size=256, device=fusion_io())
            for _ in range(2)  # wrong: graph has 4 ranks
        ]
        with pytest.raises(TraversalError):
            run_traversal(g, BFSAlgorithm(0), machine=machine, page_caches=caches)

    def test_caches_ignored_on_dram(self, rmat_small):
        g = DistributedGraph.build(rmat_small, 4)
        caches = [
            PageCache(capacity_pages=4, page_size=256, device=fusion_io())
            for _ in range(4)
        ]
        r = run_traversal(g, BFSAlgorithm(0), machine=laptop(), page_caches=caches)
        assert all(c.hits + c.misses == 0 for c in caches)
        assert r.stats.total_cache_misses == 0

    def test_provided_caches_used(self, rmat_small):
        g = DistributedGraph.build(rmat_small, 4)
        machine = hyperion_dit("nvram", cache_bytes_per_rank=8192, page_size=256)
        caches = [
            PageCache(
                capacity_pages=machine.cache_pages_per_rank,
                page_size=machine.page_size,
                device=machine.device,
            )
            for _ in range(4)
        ]
        run_traversal(g, BFSAlgorithm(0), machine=machine, page_caches=caches)
        assert sum(c.misses for c in caches) > 0


class TestStatsIdentity:
    def test_metadata(self, rmat_small, rmat_small_graph):
        r = run_traversal(rmat_small_graph, BFSAlgorithm(0), topology="2d")
        s = r.stats
        assert s.algorithm == "bfs"
        assert s.num_ranks == rmat_small_graph.num_partitions
        assert s.num_vertices == rmat_small.num_vertices
        assert s.num_edges == rmat_small.num_edges
        assert len(s.ranks) == s.num_ranks

    def test_detector_flag_recorded(self, rmat_small_graph):
        from repro.runtime.costmodel import EngineConfig

        with_det = run_traversal(rmat_small_graph, BFSAlgorithm(0))
        without = run_traversal(
            rmat_small_graph, BFSAlgorithm(0),
            config=EngineConfig(use_termination_detector=False),
        )
        assert with_det.stats.used_detector
        assert not without.stats.used_detector
        assert without.stats.termination_waves == 0
