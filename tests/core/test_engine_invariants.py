"""Engine-level invariants, property-tested over random graphs.

These check conservation laws of the distributed execution itself — the
kind of invariants that hold regardless of which algorithm runs:

* message conservation: at quiescence, every visitor sent was received;
* ghost filtering only ever removes messages, never results;
* replica copies of monotonic-state algorithms converge to the master;
* the simulated clock is invariant to the termination mechanism.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np

from repro.algorithms.bfs import BFSAlgorithm, bfs
from repro.algorithms.kcore import kcore
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.runtime.costmodel import EngineConfig
from repro.runtime.costmodel import laptop
from repro.runtime.engine import SimulationEngine


def graphs(max_n=14, min_edges=1, max_m=60):
    return st.lists(
        st.tuples(st.integers(0, max_n - 1), st.integers(0, max_n - 1)),
        min_size=min_edges,
        max_size=max_m,
    ).map(lambda pairs: EdgeList.from_pairs(pairs, num_vertices=max_n).simple_undirected())


@settings(max_examples=25, deadline=None)
@given(edges=graphs(), p=st.integers(1, 4), source=st.integers(0, 13))
def test_message_conservation(edges, p, source):
    """At quiescence, global visitors_sent == visitors_received."""
    if edges.num_edges < p:
        return
    graph = DistributedGraph.build(edges, p, num_ghosts=2)
    result = bfs(graph, source)
    sent = sum(r.visitors_sent for r in result.stats.ranks)
    received = sum(r.visitors_received for r in result.stats.ranks)
    assert sent == received


@settings(max_examples=20, deadline=None)
@given(edges=graphs(), p=st.integers(1, 4), source=st.integers(0, 13))
def test_ghosts_only_remove_messages(edges, p, source):
    """Ghost filtering reduces (never increases) network traffic and never
    changes the answer."""
    if edges.num_edges < p:
        return
    bare = DistributedGraph.build(edges, p, num_ghosts=0)
    ghosted = DistributedGraph.build(edges, p, num_ghosts=4)
    r_bare = bfs(bare, source)
    r_ghost = bfs(ghosted, source)
    assert np.array_equal(r_bare.data.levels, r_ghost.data.levels)
    assert (
        r_ghost.stats.total_visitors_sent <= r_bare.stats.total_visitors_sent
    )


@settings(max_examples=20, deadline=None)
@given(edges=graphs(), p=st.integers(2, 4), source=st.integers(0, 13))
def test_replica_convergence(edges, p, source):
    """After a BFS completes, every replica copy of a split vertex holds
    the same level as the master copy ("the replicas are kept loosely
    consistent") — at quiescence, exactly consistent."""
    if edges.num_edges < p:
        return
    graph = DistributedGraph.build(edges, p)
    engine = SimulationEngine(graph, BFSAlgorithm(source), laptop())
    states_per_rank, _ = engine.run()
    for v in map(int, np.flatnonzero(graph.min_owners < graph.max_owners)):
        chain = list(graph.replica_ranks(v))
        master_state = states_per_rank[chain[0]][v - graph.partitions[chain[0]].state_lo]
        for rank in chain[1:]:
            replica = states_per_rank[rank][v - graph.partitions[rank].state_lo]
            assert replica.length == master_state.length


@settings(max_examples=15, deadline=None)
@given(edges=graphs(), p=st.integers(1, 4), source=st.integers(0, 13))
def test_termination_mechanism_does_not_change_result(edges, p, source):
    if edges.num_edges < p:
        return
    graph = DistributedGraph.build(edges, p)
    with_detector = bfs(graph, source, config=EngineConfig(use_termination_detector=True))
    oracle = bfs(graph, source, config=EngineConfig(use_termination_detector=False))
    assert np.array_equal(with_detector.data.levels, oracle.data.levels)
    # identical algorithmic work, only control traffic differs
    assert with_detector.stats.total_visits == oracle.stats.total_visits


@settings(max_examples=15, deadline=None)
@given(
    edges=graphs(), p=st.integers(1, 4),
    budget=st.sampled_from([1, 3, 64]),
    agg=st.sampled_from([1, 4, 32]),
    k=st.integers(1, 4),
)
def test_schedule_independence_kcore(edges, p, budget, agg, k):
    """K-core's fixed point is schedule-independent: any visitor budget and
    aggregation size yields the same membership."""
    if edges.num_edges < p:
        return
    graph = DistributedGraph.build(edges, p)
    base = kcore(graph, k).data.alive
    varied = kcore(
        graph, k, config=EngineConfig(visitor_budget=budget, aggregation_size=agg)
    ).data.alive
    assert np.array_equal(base, varied)


@settings(max_examples=10, deadline=None)
@given(edges=graphs(min_edges=4), source=st.integers(0, 13))
def test_topology_independence(edges, source):
    """The routing topology changes timing, never results."""
    if edges.num_edges < 4:  # self loops may have been dropped
        return
    graph = DistributedGraph.build(edges, 4, num_ghosts=2)
    results = [
        bfs(graph, source, topology=name).data.levels
        for name in ("direct", "2d", "hypercube")
    ]
    assert np.array_equal(results[0], results[1])
    assert np.array_equal(results[0], results[2])
