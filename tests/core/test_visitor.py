"""Tests for the visitor base class and AsyncAlgorithm helpers."""


from repro.core.visitor import (
    ROLE_GHOST,
    ROLE_MASTER,
    ROLE_REPLICA,
    AsyncAlgorithm,
    Visitor,
)
from repro.graph.distributed import DistributedGraph


class TestVisitorDefaults:
    def test_accepts_everything(self):
        v = Visitor(3)
        assert v.vertex == 3
        assert v.pre_visit(object()) is True
        assert v.priority == 0

    def test_visit_is_noop(self):
        Visitor(0).visit(None)  # must not raise

    def test_slots_no_dict(self):
        v = Visitor(0)
        assert not hasattr(v, "__dict__")


class TestRoles:
    def test_distinct(self):
        assert len({ROLE_MASTER, ROLE_REPLICA, ROLE_GHOST}) == 3


class _Recorder(AsyncAlgorithm):
    name = "recorder"

    def make_state(self, vertex, degree, role):
        return (vertex, degree, role)

    def initial_visitors(self, graph, rank):
        return []

    def finalize(self, graph, states_per_rank):
        return states_per_rank


class TestMasterStates:
    def test_iterates_each_vertex_once(self, figure3_edges):
        graph = DistributedGraph.build(figure3_edges, 4)
        algo = _Recorder()
        states_per_rank = [
            [algo.make_state(v, graph.degree(v),
                             ROLE_MASTER if graph.min_owner(v) == r else ROLE_REPLICA)
             for v in range(p.state_lo, p.state_hi + 1)]
            for r, p in enumerate(graph.partitions)
        ]
        seen = sorted(v for v, _ in algo.master_states(graph, states_per_rank))
        assert seen == list(range(8))

    def test_yields_master_copies(self, figure3_edges):
        graph = DistributedGraph.build(figure3_edges, 4)
        algo = _Recorder()
        states_per_rank = [
            [algo.make_state(v, graph.degree(v),
                             ROLE_MASTER if graph.min_owner(v) == r else ROLE_REPLICA)
             for v in range(p.state_lo, p.state_hi + 1)]
            for r, p in enumerate(graph.partitions)
        ]
        for v, state in algo.master_states(graph, states_per_rank):
            assert state[0] == v
            assert state[2] == ROLE_MASTER
