"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestGenerate:
    def test_rmat(self, tmp_path, capsys):
        out = tmp_path / "g.npz"
        rc = main(["generate", "rmat", "--scale", "7", "-o", str(out)])
        assert rc == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_pa_simple(self, tmp_path):
        out = tmp_path / "pa.npz"
        rc = main(["generate", "pa", "--vertices", "100", "--attach", "3",
                   "--simple", "-o", str(out)])
        assert rc == 0
        from repro.graph.io import load_binary_edges

        edges = load_binary_edges(out)
        assert edges.num_vertices == 100

    def test_sw(self, tmp_path):
        out = tmp_path / "sw.npz"
        rc = main(["generate", "sw", "--vertices", "64", "--degree", "4",
                   "--rewire", "0.1", "-o", str(out)])
        assert rc == 0


class TestAlgorithms:
    def test_bfs_generated(self, capsys):
        rc = main(["bfs", "--scale", "7", "-p", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MTEPS" in out and "reached" in out

    def test_bfs_from_file(self, tmp_path, capsys):
        out = tmp_path / "g.npz"
        main(["generate", "rmat", "--scale", "7", "--simple", "-o", str(out)])
        capsys.readouterr()
        rc = main(["bfs", "--graph", str(out), "-p", "4", "--topology", "2d"])
        assert rc == 0
        assert "MTEPS" in capsys.readouterr().out

    def test_kcore(self, capsys):
        rc = main(["kcore", "--scale", "7", "-p", "4", "-k", "3"])
        assert rc == 0
        assert "3-core" in capsys.readouterr().out

    def test_triangles_exact(self, capsys):
        rc = main(["triangles", "--scale", "6", "-p", "2"])
        assert rc == 0
        assert "triangles:" in capsys.readouterr().out

    def test_triangles_approximate(self, capsys):
        rc = main(["triangles", "--scale", "7", "-p", "4", "--approximate",
                   "--samples", "500"])
        assert rc == 0
        assert "estimated triangles" in capsys.readouterr().out

    def test_machine_choice(self, capsys):
        rc = main(["bfs", "--scale", "7", "-p", "4", "--machine", "bgp"])
        assert rc == 0


class TestFaultFlags:
    def test_bfs_with_faults(self, capsys):
        rc = main(["bfs", "--scale", "7", "-p", "4",
                   "--faults", "seed=7,drop=0.02,dup=0.01,delay=0.03"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "faults seed=7" in out  # summary line reports the chaos

    def test_bfs_faults_match_fault_free(self, capsys):
        rc = main(["bfs", "--scale", "7", "-p", "4", "--reliable"])
        assert rc == 0
        clean = capsys.readouterr().out
        rc = main(["bfs", "--scale", "7", "-p", "4",
                   "--faults", "seed=3,drop=0.05"])
        assert rc == 0
        faulty = capsys.readouterr().out
        # reached/depth are bit-identical under faults; only the simulated
        # time (and therefore MTEPS) is allowed to differ
        def result_part(out):
            line = next(l for l in out.splitlines() if "reached" in l)
            return line.split(" MTEPS")[0].rsplit(",", 1)[0]

        assert result_part(clean) == result_part(faulty)

    def test_bfs_with_crash(self, capsys):
        rc = main(["bfs", "--scale", "7", "-p", "4",
                   "--faults", "seed=7,drop=0.02,crash=5:1",
                   "--checkpoint-interval", "4"])
        assert rc == 0
        assert "recoveries" in capsys.readouterr().out

    def test_kcore_with_faults(self, capsys):
        rc = main(["kcore", "--scale", "7", "-p", "4", "-k", "3",
                   "--faults", "seed=2,drop=0.03"])
        assert rc == 0
        assert "3-core" in capsys.readouterr().out

    def test_bad_fault_spec_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["bfs", "--scale", "7", "-p", "4", "--faults", "bogus=1"])

    def test_bfs_batch_flag(self, capsys):
        rc = main(["bfs", "--scale", "7", "-p", "4", "--batch"])
        assert rc == 0
        assert "MTEPS" in capsys.readouterr().out


class TestExperiment:
    def test_unknown_name(self, capsys):
        rc = main(["experiment", "nonexistent"])
        assert rc == 2
        assert "choose from" in capsys.readouterr().err

    def test_ambiguous_prefix(self, capsys):
        rc = main(["experiment", "fig"])
        assert rc == 2

    def test_runs_small_experiment(self, capsys):
        rc = main(["experiment", "fig01"])
        assert rc == 0
        assert "Figure 1" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_help_lists_commands(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for cmd in ("generate", "bfs", "kcore", "triangles", "experiment"):
            assert cmd in out


class TestGraph500Command:
    def test_runs_and_reports(self, capsys):
        rc = main(["graph500", "--scale", "7", "-p", "4", "--searches", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "harmonic mean" in out and "validated=True" in out

    def test_hypercube_topology(self, capsys):
        rc = main(["bfs", "--scale", "7", "-p", "4", "--topology", "hypercube"])
        assert rc == 0


class TestPageRankCommand:
    def test_runs(self, capsys):
        rc = main(["pagerank", "--scale", "7", "-p", "4", "--top", "3",
                   "--threshold", "1e-3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "top vertices" in out

    def test_sssp_kernel_via_graph500(self, capsys):
        rc = main(["graph500", "--scale", "7", "-p", "4", "--searches", "2",
                   "--kernel", "sssp"])
        assert rc == 0
        assert "validated=True" in capsys.readouterr().out


class TestExperimentCsvExport:
    def test_csv_written(self, tmp_path, capsys):
        out = tmp_path / "fig01.csv"
        rc = main(["experiment", "fig01", "--csv", str(out)])
        assert rc == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out


class TestProfile:
    def test_profile_bfs_smoke(self, capsys):
        rc = main(["profile", "bfs", "--scale", "7", "-p", "4", "--top", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hottest" in out  # profile table present
        assert "visits" in out   # traversal summary present

    def test_profile_cc_batch(self, capsys):
        rc = main(["profile", "cc", "--scale", "7", "-p", "4", "--batch",
                   "--top", "5"])
        assert rc == 0
        assert "hottest" in capsys.readouterr().out
