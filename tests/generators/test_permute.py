"""Tests for label permutation."""

import numpy as np
import pytest

from repro.generators.permute import permute_labels


def test_degree_multiset_preserved():
    src = np.array([0, 0, 1, 2, 3])
    dst = np.array([1, 2, 2, 3, 0])
    new_src, new_dst = permute_labels(src, dst, 4, seed=0)
    old_deg = np.sort(np.bincount(src, minlength=4) + np.bincount(dst, minlength=4))
    new_deg = np.sort(
        np.bincount(new_src, minlength=4) + np.bincount(new_dst, minlength=4)
    )
    assert np.array_equal(old_deg, new_deg)


def test_permutation_returned_and_consistent():
    src = np.array([0, 1, 2])
    dst = np.array([1, 2, 0])
    new_src, new_dst, perm = permute_labels(src, dst, 3, seed=1, return_permutation=True)
    assert np.array_equal(new_src, perm[src])
    assert np.array_equal(new_dst, perm[dst])
    assert np.array_equal(np.sort(perm), np.arange(3))


def test_deterministic():
    src = np.arange(10) % 5
    dst = (np.arange(10) + 1) % 5
    a = permute_labels(src, dst, 5, seed=9)
    b = permute_labels(src, dst, 5, seed=9)
    assert np.array_equal(a[0], b[0])


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        permute_labels(np.array([5]), np.array([0]), 3)


def test_negative_vertices_rejected():
    with pytest.raises(ValueError):
        permute_labels(np.array([0]), np.array([0]), -1)


def test_empty():
    src, dst = permute_labels(np.array([], dtype=np.int64), np.array([], dtype=np.int64), 4, seed=0)
    assert src.size == 0
