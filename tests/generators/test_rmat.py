"""Tests for the Graph500 RMAT generator."""

import numpy as np
import pytest

from repro.generators.graph500 import RMAT_A, RMAT_B, RMAT_C, RMAT_D
from repro.generators.rmat import rmat_edge_chunks, rmat_edges


class TestBasics:
    def test_shapes_and_range(self):
        src, dst = rmat_edges(8, 1000, seed=0)
        assert src.shape == dst.shape == (1000,)
        assert src.dtype == np.int64 and dst.dtype == np.int64
        assert src.min() >= 0 and src.max() < 256
        assert dst.min() >= 0 and dst.max() < 256

    def test_deterministic(self):
        a = rmat_edges(10, 5000, seed=77)
        b = rmat_edges(10, 5000, seed=77)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_seeds_differ(self):
        a = rmat_edges(10, 5000, seed=1)
        b = rmat_edges(10, 5000, seed=2)
        assert not np.array_equal(a[0], b[0])

    def test_zero_edges(self):
        src, dst = rmat_edges(5, 0, seed=0)
        assert src.size == 0 and dst.size == 0

    def test_graph500_params_sum_to_one(self):
        assert abs(RMAT_A + RMAT_B + RMAT_C + RMAT_D - 1.0) < 1e-12


class TestValidation:
    def test_bad_scale(self):
        with pytest.raises(ValueError):
            rmat_edges(0, 10)

    def test_negative_edges(self):
        with pytest.raises(ValueError):
            rmat_edges(4, -1)

    def test_bad_probabilities(self):
        with pytest.raises(ValueError):
            rmat_edges(4, 10, a=0.5, b=0.5, c=0.5, d=0.5)


class TestChunking:
    def test_chunked_stream_deterministic(self):
        a = list(rmat_edge_chunks(9, 3000, seed=5, chunk_size=700))
        b = list(rmat_edge_chunks(9, 3000, seed=5, chunk_size=700))
        for (s1, d1), (s2, d2) in zip(a, b, strict=False):
            assert np.array_equal(s1, s2) and np.array_equal(d1, d2)

    def test_chunked_total_and_range(self):
        chunks = list(rmat_edge_chunks(9, 3000, seed=5, chunk_size=700))
        total = sum(s.size for s, _ in chunks)
        assert total == 3000
        assert all(s.max() < 512 and t.max() < 512 for s, t in chunks)

    def test_single_chunk_matches_rmat_edges(self):
        full = rmat_edges(9, 3000, seed=5)
        (chunk,) = list(rmat_edge_chunks(9, 3000, seed=5, chunk_size=3000))
        assert np.array_equal(chunk[0], full[0]) and np.array_equal(chunk[1], full[1])

    def test_chunk_sizes(self):
        chunks = list(rmat_edge_chunks(6, 1000, seed=0, chunk_size=300))
        sizes = [s.size for s, _ in chunks]
        assert sizes == [300, 300, 300, 100]


class TestScaleFreeShape:
    """Statistical sanity: the Graph500 initiator produces a skewed
    degree distribution with hubs, unlike a uniform random graph."""

    def test_skewed_degrees(self):
        scale = 12
        src, dst = rmat_edges(scale, 16 << scale, seed=3)
        degrees = np.bincount(src, minlength=1 << scale) + np.bincount(
            dst, minlength=1 << scale
        )
        mean = degrees.mean()
        assert degrees.max() > 10 * mean  # a genuine hub exists
        # majority of vertices below the mean (power-law mass concentration)
        assert np.count_nonzero(degrees < mean) > degrees.size * 0.5

    def test_uniform_initiator_is_not_skewed(self):
        scale = 12
        src, dst = rmat_edges(scale, 16 << scale, a=0.25, b=0.25, c=0.25, d=0.25, seed=3)
        degrees = np.bincount(src, minlength=1 << scale) + np.bincount(
            dst, minlength=1 << scale
        )
        assert degrees.max() < 5 * degrees.mean()

    def test_hub_grows_with_scale(self):
        maxima = []
        for scale in (10, 12, 14):
            src, dst = rmat_edges(scale, 16 << scale, seed=9)
            deg = np.bincount(src, minlength=1 << scale)
            maxima.append(int(deg.max()))
        assert maxima[0] < maxima[1] < maxima[2]
