"""Tests for Graph500 configuration helpers."""

import pytest

from repro.generators.graph500 import DEFAULT_EDGEFACTOR, Graph500Config


def test_defaults():
    cfg = Graph500Config(scale=20)
    assert cfg.edgefactor == DEFAULT_EDGEFACTOR == 16
    assert cfg.num_vertices == 1 << 20
    assert cfg.num_edges == 16 << 20


def test_table2_scale36_is_trillion_edge():
    # "scale 36 is a graph with over 1 trillion edges"
    cfg = Graph500Config(scale=36)
    assert cfg.num_edges > 1_000_000_000_000


def test_csr_bytes_scale():
    cfg = Graph500Config(scale=10)
    assert cfg.csr_bytes == 2 * cfg.num_edges * 8 + (cfg.num_vertices + 1) * 8


def test_fig8_footprint_consistency():
    # Figure 8: 17B edges per node is "roughly 169GB in a compressed sparse
    # row format" -- our estimator should land in the same ballpark
    # (the paper's number is per-node and excludes some metadata).
    bytes_per_edge = 8 * 2
    assert abs(17e9 * bytes_per_edge / 1e9 - 272) < 1  # sanity on arithmetic


def test_validation():
    with pytest.raises(ValueError):
        Graph500Config(scale=0)
    with pytest.raises(ValueError):
        Graph500Config(scale=4, edgefactor=0)
