"""Tests for the small-world (Watts–Strogatz) generator."""

import numpy as np
import pytest

from repro.generators.small_world import small_world_edges
from repro.graph.edge_list import EdgeList
from repro.reference.bfs import bfs_levels
from repro.types import UNREACHED


class TestLattice:
    def test_edge_count(self):
        src, dst = small_world_edges(100, 6, seed=0)
        assert src.size == 100 * 3

    def test_zero_rewire_is_ring(self):
        src, dst = small_world_edges(10, 2, rewire_probability=0.0)
        assert np.array_equal(src, np.arange(10))
        assert np.array_equal(dst, (np.arange(10) + 1) % 10)

    def test_uniform_degree_at_zero_rewire(self):
        src, dst = small_world_edges(64, 8, rewire_probability=0.0)
        deg = np.bincount(src, minlength=64) + np.bincount(dst, minlength=64)
        assert np.all(deg == 8)

    def test_deterministic(self):
        a = small_world_edges(128, 4, rewire_probability=0.3, seed=5)
        b = small_world_edges(128, 4, rewire_probability=0.3, seed=5)
        assert np.array_equal(a[1], b[1])


class TestDiameterControl:
    """The Figure 10 mechanism: less rewiring -> larger diameter."""

    @staticmethod
    def _bfs_depth(n, degree, rewire, seed=0):
        src, dst = small_world_edges(n, degree, rewire_probability=rewire, seed=seed)
        edges = EdgeList.from_arrays(src, dst, n).simple_undirected()
        levels = bfs_levels(edges, 0)
        return int(levels[levels != UNREACHED].max())

    def test_rewire_reduces_depth(self):
        deep = self._bfs_depth(1024, 4, 0.0)
        mid = self._bfs_depth(1024, 4, 0.1)
        shallow = self._bfs_depth(1024, 4, 1.0)
        assert deep > mid > shallow

    def test_ring_depth_exact(self):
        # ring lattice with degree 2: depth from 0 is n // 2
        assert self._bfs_depth(64, 2, 0.0) == 32


class TestValidation:
    def test_odd_degree(self):
        with pytest.raises(ValueError):
            small_world_edges(10, 3)

    def test_degree_too_large(self):
        with pytest.raises(ValueError):
            small_world_edges(4, 4)

    def test_bad_rewire(self):
        with pytest.raises(ValueError):
            small_world_edges(10, 2, rewire_probability=-0.1)
