"""Tests for the preferential-attachment generator."""

import numpy as np
import pytest

from repro.generators.preferential_attachment import preferential_attachment_edges


class TestStructure:
    def test_edge_count(self):
        m = 4
        n = 100
        src, dst = preferential_attachment_edges(n, m, seed=0)
        clique = (m + 1) * m // 2
        assert src.size == clique + (n - m - 1) * m

    def test_range(self):
        src, dst = preferential_attachment_edges(200, 3, seed=1)
        assert src.min() >= 0 and max(src.max(), dst.max()) < 200

    def test_deterministic(self):
        a = preferential_attachment_edges(300, 5, seed=4)
        b = preferential_attachment_edges(300, 5, seed=4)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_targets_precede_sources(self):
        # growth edges always attach to already-existing vertices
        src, dst = preferential_attachment_edges(500, 2, seed=2)
        growth = src >= 3  # past the seed clique
        assert np.all(dst[growth] < src[growth])


class TestHubStructure:
    def test_pa_has_hubs(self):
        src, dst = preferential_attachment_edges(4096, 8, seed=7)
        deg = np.bincount(src, minlength=4096) + np.bincount(dst, minlength=4096)
        assert deg.max() > 8 * deg.mean()

    def test_rewire_shrinks_hubs(self):
        """The Figure 11 mechanism: rewiring toward random shrinks the max
        degree monotonically (statistically, with fixed seed)."""
        maxima = []
        for rewire in (0.0, 0.5, 1.0):
            src, dst = preferential_attachment_edges(
                4096, 8, rewire_probability=rewire, seed=7
            )
            deg = np.bincount(src, minlength=4096) + np.bincount(dst, minlength=4096)
            maxima.append(int(deg.max()))
        assert maxima[0] > maxima[1] > maxima[2]

    def test_full_rewire_near_uniform(self):
        src, dst = preferential_attachment_edges(4096, 8, rewire_probability=1.0, seed=3)
        deg_in = np.bincount(dst, minlength=4096)
        assert deg_in.max() < 6 * max(deg_in.mean(), 1)


class TestValidation:
    def test_m_zero(self):
        with pytest.raises(ValueError):
            preferential_attachment_edges(10, 0)

    def test_too_few_vertices(self):
        with pytest.raises(ValueError):
            preferential_attachment_edges(3, 3)

    def test_bad_rewire(self):
        with pytest.raises(ValueError):
            preferential_attachment_edges(10, 2, rewire_probability=1.5)
