"""Tests for asynchronous K-Core decomposition (Algorithms 4 and 5)."""

from hypothesis import given, settings
from hypothesis import strategies as st
import networkx as nx
import numpy as np
import pytest

from repro.algorithms.kcore import KCoreAlgorithm, kcore
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.reference.kcore import kcore_members


class TestSmallGraphs:
    def test_path_has_no_2core(self, path_graph):
        g = DistributedGraph.build(path_graph, 2)
        r = kcore(g, 2)
        assert r.data.core_size == 0

    def test_triangle_is_2core(self, triangle_graph):
        g = DistributedGraph.build(triangle_graph, 2)
        r = kcore(g, 2)
        assert r.data.core_size == 5  # both triangles survive

    def test_clique_survives_its_degree(self):
        n = 6
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        el = EdgeList.from_pairs(pairs, n).simple_undirected()
        g = DistributedGraph.build(el, 3)
        assert kcore(g, n - 1).data.core_size == n
        assert kcore(g, n).data.core_size == 0

    def test_clique_with_pendant(self):
        """A pendant vertex peels off without destroying the clique — the
        cascade must stop at the clique boundary."""
        pairs = [(i, j) for i in range(4) for j in range(i + 1, 4)] + [(0, 4)]
        el = EdgeList.from_pairs(pairs, 5).simple_undirected()
        g = DistributedGraph.build(el, 2)
        r = kcore(g, 3)
        assert list(r.data.members()) == [0, 1, 2, 3]

    def test_cascade(self):
        """Removing one low-degree vertex triggers recursive removals."""
        # chain of diamonds that unravels entirely for k=2 once the tail goes
        pairs = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]
        el = EdgeList.from_pairs(pairs, 5).simple_undirected()
        g = DistributedGraph.build(el, 2)
        r = kcore(g, 2)
        assert set(r.data.members()) == {0, 1, 2}

    def test_star_k2_empty(self, star_graph):
        g = DistributedGraph.build(star_graph, 4)
        assert kcore(g, 2).data.core_size == 0


class TestSplitHubs:
    def test_hub_split_across_partitions(self):
        """The hair-trigger replica mechanism: a split hub must still peel
        correctly and notify every neighbour exactly once."""
        # hub 0 connected to 16 leaves; leaves pairwise chained so k=2
        pairs = [(0, i) for i in range(1, 17)]
        pairs += [(i, i + 1) for i in range(1, 16)]
        el = EdgeList.from_pairs(pairs, 17).simple_undirected()
        split_seen = False
        for p in (2, 4, 8):
            g = DistributedGraph.build(el, p)
            split_seen = split_seen or g.is_split(0)
            got = kcore(g, 3).data.alive
            ref = kcore_members(el, 3)
            assert np.array_equal(got, ref), f"p={p}"
        # at the finer partitionings the hub's adjacency really was split
        assert split_seen


class TestAgainstReference:
    @pytest.mark.parametrize("p", [1, 3, 8, 16])
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_rmat(self, rmat_small, p, k):
        g = DistributedGraph.build(rmat_small, p)
        got = kcore(g, k).data.alive
        assert np.array_equal(got, kcore_members(rmat_small, k))

    def test_against_networkx(self, rmat_small):
        g = DistributedGraph.build(rmat_small, 8)
        nxg = nx.Graph(list(zip(rmat_small.src.tolist(), rmat_small.dst.tolist(), strict=False)))
        nxg.add_nodes_from(range(rmat_small.num_vertices))
        core = nx.core_number(nxg)
        for k in (2, 4):
            got = kcore(g, k).data.alive
            expected = np.array(
                [core.get(v, 0) >= k for v in range(rmat_small.num_vertices)]
            )
            assert np.array_equal(got, expected)


class TestValidation:
    def test_k_zero(self):
        with pytest.raises(ValueError):
            KCoreAlgorithm(0)


@settings(max_examples=25, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 13), st.integers(0, 13)), min_size=2, max_size=70
    ),
    p=st.integers(min_value=1, max_value=4),
    k=st.integers(min_value=1, max_value=5),
)
def test_kcore_matches_reference_property(pairs, p, k):
    """Property: arbitrary undirected graphs, any partitioning, any k."""
    edges = EdgeList.from_pairs(pairs, num_vertices=14).simple_undirected()
    if edges.num_edges < p:
        return
    g = DistributedGraph.build(edges, p)
    got = kcore(g, k).data.alive
    assert np.array_equal(got, kcore_members(edges, k))
