"""Tests for the level-synchronous (BSP) BFS baseline."""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.bsp_bfs import bsp_bfs
from repro.bench.harness import build_sw_graph
from repro.graph.distributed import DistributedGraph
from repro.reference.bfs import bfs_levels
from repro.runtime.costmodel import bgp_intrepid


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 4, 8])
    def test_matches_reference(self, rmat_small, p):
        g = DistributedGraph.build(rmat_small, p)
        s = int(rmat_small.src[0])
        result = bsp_bfs(g, s)
        assert np.array_equal(result.levels, bfs_levels(rmat_small, s))

    def test_supersteps_equal_depth(self, rmat_small, rmat_small_graph):
        s = int(rmat_small.src[0])
        result = bsp_bfs(rmat_small_graph, s)
        # one superstep per level plus the final empty-frontier check round
        assert result.max_level <= result.num_supersteps <= result.max_level + 1

    def test_agrees_with_async(self, rmat_small, rmat_small_graph):
        s = int(rmat_small.src[1])
        sync = bsp_bfs(rmat_small_graph, s)
        async_result = bfs(rmat_small_graph, s)
        assert np.array_equal(sync.levels, async_result.data.levels)


class TestAsynchronyAblation:
    """The paper's core architectural claim, as a measurable comparison:
    per-level barriers hurt when the diameter is high."""

    def test_async_wins_on_high_diameter(self):
        edges, graph = build_sw_graph(
            2048, 4, rewire=0.005, num_partitions=16, num_ghosts=16, seed=4
        )
        machine = bgp_intrepid()
        s = 0
        sync = bsp_bfs(graph, s, machine=machine)
        # direct routing: single-hop messages, the latency-minimal config
        asy = bfs(graph, s, machine=machine, topology="direct")
        assert sync.max_level > 10  # genuinely deep
        # barrier-per-level makes BSP pay ~depth * barrier latency
        assert asy.stats.time_us < sync.time_us

    def test_async_advantage_grows_with_depth(self):
        """The deeper the graph, the more barriers BSP pays — the async
        advantage (time ratio) must widen from a shallow random graph to a
        near-ring lattice."""
        machine = bgp_intrepid()
        ratios = []
        for rewire in (1.0, 0.0):
            _, graph = build_sw_graph(
                2048, 4, rewire=rewire, num_partitions=16, num_ghosts=16, seed=4
            )
            sync = bsp_bfs(graph, 0, machine=machine)
            asy = bfs(graph, 0, machine=machine, topology="direct")
            ratios.append(sync.time_us / asy.stats.time_us)
        assert ratios[1] > ratios[0]

    def test_barrier_cost_scales_with_depth(self):
        machine = bgp_intrepid()
        shallow_edges, shallow = build_sw_graph(
            2048, 4, rewire=1.0, num_partitions=8, seed=4
        )
        deep_edges, deep = build_sw_graph(
            2048, 4, rewire=0.005, num_partitions=8, seed=4
        )
        t_shallow = bsp_bfs(shallow, 0, machine=machine)
        t_deep = bsp_bfs(deep, 0, machine=machine)
        assert t_deep.num_supersteps > t_shallow.num_supersteps
        assert t_deep.time_us > t_shallow.time_us
