"""Tests for asynchronous residual-push PageRank."""

import numpy as np
import pytest

from repro.algorithms.pagerank import PageRankAlgorithm, pagerank
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.reference.pagerank import pagerank_scores


class TestBasics:
    def test_scores_normalised(self, rmat_small, rmat_small_graph):
        r = pagerank(rmat_small_graph)
        assert r.data.scores.sum() == pytest.approx(1.0)
        assert np.all(r.data.scores >= 0)

    def test_symmetric_graph_uniform(self):
        """On a vertex-transitive graph (ring) every vertex scores 1/n."""
        n = 16
        el = EdgeList.from_pairs(
            [(i, (i + 1) % n) for i in range(n)], n
        ).simple_undirected()
        g = DistributedGraph.build(el, 4)
        r = pagerank(g, threshold=1e-6)
        assert np.allclose(r.data.scores, 1.0 / n, atol=1e-3)

    def test_hub_ranks_highest(self, star_graph):
        g = DistributedGraph.build(star_graph, 4)
        r = pagerank(g, threshold=1e-6)
        assert int(np.argmax(r.data.scores)) == 0

    def test_top_helper(self, star_graph):
        g = DistributedGraph.build(star_graph, 4)
        r = pagerank(g, threshold=1e-6)
        top = r.data.top(3)
        assert top[0][0] == 0
        assert len(top) == 3


class TestAgainstReference:
    @pytest.mark.parametrize("p", [1, 4, 8])
    def test_rmat(self, rmat_small, p):
        g = DistributedGraph.build(rmat_small, p)
        got = pagerank(g, threshold=1e-6).data.scores
        ref = pagerank_scores(rmat_small)
        # push PageRank approximates to the residual threshold
        assert np.abs(got - ref).max() < 5e-3
        # the top-10 sets agree
        assert set(np.argsort(got)[-10:]) == set(np.argsort(ref)[-10:])

    def test_tighter_threshold_closer(self, rmat_small):
        g = DistributedGraph.build(rmat_small, 4)
        ref = pagerank_scores(rmat_small)
        loose = pagerank(g, threshold=1e-3).data.scores
        tight = pagerank(g, threshold=1e-6).data.scores
        assert np.abs(tight - ref).sum() < np.abs(loose - ref).sum()

    def test_split_hub_partitioning_consistent(self, star_graph):
        """Scores agree across partition counts even when the hub's
        adjacency list is split (the always-forward replica discipline)."""
        ref = None
        for p in (1, 4, 8, 16):
            g = DistributedGraph.build(star_graph, min(p, star_graph.num_edges))
            scores = pagerank(g, threshold=1e-7).data.scores
            if ref is None:
                ref = scores
            else:
                assert np.allclose(scores, ref, atol=1e-4), f"p={p}"


class TestValidation:
    def test_bad_damping(self):
        with pytest.raises(ValueError):
            PageRankAlgorithm(damping=1.0)

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            PageRankAlgorithm(threshold=0.0)


class TestDangling:
    def test_dangling_vertex_absorbs(self):
        # directed: 0 -> 1, 1 has no out-edges
        el = EdgeList.from_pairs([(0, 1)], 2).sorted_by_source()
        g = DistributedGraph.build(el, 1)
        r = pagerank(g, threshold=1e-8)
        assert r.data.scores[1] > r.data.scores[0]
