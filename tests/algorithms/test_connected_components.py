"""Tests for asynchronous connected components (extension algorithm)."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.algorithms.connected_components import connected_components
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.reference.components import component_labels


class TestSmallGraphs:
    def test_single_component(self, path_graph):
        g = DistributedGraph.build(path_graph, 2)
        r = connected_components(g)
        assert r.data.num_components == 1
        assert np.all(r.data.labels == 0)

    def test_two_components(self):
        el = EdgeList.from_pairs([(0, 1), (2, 3)], 4).simple_undirected()
        g = DistributedGraph.build(el, 2)
        r = connected_components(g)
        assert r.data.num_components == 2
        assert list(r.data.labels) == [0, 0, 2, 2]

    def test_isolated_vertices_self_labeled(self):
        el = EdgeList.from_pairs([(0, 1)], 4).simple_undirected()
        g = DistributedGraph.build(el, 1)
        r = connected_components(g)
        assert list(r.data.labels) == [0, 0, 2, 3]
        assert r.data.component_sizes() == {0: 2, 2: 1, 3: 1}


class TestAgainstReference:
    @pytest.mark.parametrize("p", [1, 4, 8])
    def test_rmat(self, rmat_small, p):
        g = DistributedGraph.build(rmat_small, p, num_ghosts=8)
        got = connected_components(g).data.labels
        assert np.array_equal(got, component_labels(rmat_small))

    def test_ghosts_do_not_change_result(self, rmat_small):
        ref = component_labels(rmat_small)
        for ng in (0, 32):
            g = DistributedGraph.build(rmat_small, 8, num_ghosts=ng)
            assert np.array_equal(connected_components(g).data.labels, ref)


@settings(max_examples=25, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 13), st.integers(0, 13)), min_size=1, max_size=60
    ),
    p=st.integers(min_value=1, max_value=4),
)
def test_cc_matches_reference_property(pairs, p):
    edges = EdgeList.from_pairs(pairs, num_vertices=14).simple_undirected()
    if edges.num_edges < p:
        return
    g = DistributedGraph.build(edges, p, num_ghosts=2)
    got = connected_components(g).data.labels
    assert np.array_equal(got, component_labels(edges))
