"""Tests for wedge-sampling approximate triangle counting."""

import numpy as np
import pytest

from repro.algorithms.wedge_sampling import (
    sample_triangle_estimate,
    total_wedge_count,
)
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.reference.triangles import total_triangles


class TestWedgeCount:
    def test_triangle(self):
        # K3: each vertex has degree 2 -> 1 wedge each
        assert total_wedge_count(np.array([2, 2, 2])) == 3

    def test_star(self):
        # hub degree 4 -> C(4,2)=6 wedges; leaves contribute none
        assert total_wedge_count(np.array([4, 1, 1, 1, 1])) == 6

    def test_empty(self):
        assert total_wedge_count(np.array([], dtype=np.int64)) == 0


class TestEstimator:
    def test_clique_exact(self):
        """In a clique every wedge is closed, so the estimate is exact
        regardless of sampling noise."""
        n = 8
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        el = EdgeList.from_pairs(pairs, n).simple_undirected()
        g = DistributedGraph.build(el, 4)
        est = sample_triangle_estimate(g, samples=500, seed=0)
        assert est.closure_fraction == 1.0
        assert est.estimate == pytest.approx(total_triangles(el))

    def test_triangle_free_zero(self, star_graph):
        g = DistributedGraph.build(star_graph, 4)
        est = sample_triangle_estimate(g, samples=300, seed=0)
        assert est.closure_fraction == 0.0
        assert est.estimate == 0.0

    def test_no_wedges(self):
        el = EdgeList.from_pairs([(0, 1)], 2).simple_undirected()
        g = DistributedGraph.build(el, 1)
        est = sample_triangle_estimate(g, samples=100, seed=0)
        assert est.total_wedges == 0
        assert est.estimate == 0.0

    def test_estimate_within_error_bars(self, rmat_small, rmat_small_graph):
        exact = total_triangles(rmat_small)
        est = sample_triangle_estimate(rmat_small_graph, samples=20_000, seed=7)
        assert abs(est.estimate - exact) < 5 * max(est.std_error, exact * 0.02)

    def test_more_samples_tighter(self, rmat_small_graph):
        few = sample_triangle_estimate(rmat_small_graph, samples=500, seed=1)
        many = sample_triangle_estimate(rmat_small_graph, samples=20_000, seed=1)
        assert many.std_error < few.std_error

    def test_deterministic(self, rmat_small_graph):
        a = sample_triangle_estimate(rmat_small_graph, samples=1000, seed=3)
        b = sample_triangle_estimate(rmat_small_graph, samples=1000, seed=3)
        assert a.estimate == b.estimate

    def test_checks_distributed_across_ranks(self, rmat_small_graph):
        est = sample_triangle_estimate(rmat_small_graph, samples=2000, seed=2)
        assert est.checks_per_rank.sum() >= 2000  # one or more per sample
        assert np.count_nonzero(est.checks_per_rank) > 1

    def test_invalid_samples(self, rmat_small_graph):
        with pytest.raises(ValueError):
            sample_triangle_estimate(rmat_small_graph, samples=0)
