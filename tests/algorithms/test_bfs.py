"""Tests for asynchronous BFS (Algorithms 2 and 3)."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.algorithms.bfs import BFSAlgorithm, bfs
from repro.generators.small_world import small_world_edges
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.reference.bfs import bfs_levels
from repro.types import UNREACHED


class TestSmallGraphs:
    def test_path(self, path_graph):
        g = DistributedGraph.build(path_graph, 2)
        r = bfs(g, 0)
        assert list(r.data.levels) == [0, 1, 2, 3, 4]
        assert r.data.max_level == 4

    def test_triangle(self, triangle_graph):
        g = DistributedGraph.build(triangle_graph, 2)
        r = bfs(g, 0)
        assert list(r.data.levels) == [0, 1, 1, 2, 2]

    def test_star_from_hub(self, star_graph):
        g = DistributedGraph.build(star_graph, 4)
        r = bfs(g, 0)
        assert r.data.levels[0] == 0
        assert np.all(r.data.levels[1:] == 1)

    def test_star_from_leaf(self, star_graph):
        g = DistributedGraph.build(star_graph, 4)
        r = bfs(g, 5)
        assert r.data.levels[5] == 0
        assert r.data.levels[0] == 1
        assert r.data.levels[1] == 2

    def test_disconnected_unreached(self):
        el = EdgeList.from_pairs([(0, 1), (2, 3)], 5).simple_undirected()
        g = DistributedGraph.build(el, 2)
        r = bfs(g, 0)
        assert r.data.levels[0] == 0 and r.data.levels[1] == 1
        assert r.data.levels[2] == UNREACHED
        assert r.data.levels[4] == UNREACHED
        assert r.data.num_reached == 2


class TestParents:
    def test_parent_levels_consistent(self, rmat_small, rmat_small_graph):
        s = int(rmat_small.src[0])
        r = bfs(rmat_small_graph, s)
        levels, parents = r.data.levels, r.data.parents
        assert parents[s] == s  # source self-parent convention
        for v in range(rmat_small.num_vertices):
            if v == s or levels[v] == UNREACHED:
                continue
            p = int(parents[v])
            assert levels[p] == levels[v] - 1  # a valid BFS tree edge
            # the parent edge actually exists in the graph
            lo = np.searchsorted(rmat_small.src, p, "left")
            hi = np.searchsorted(rmat_small.src, p, "right")
            assert v in rmat_small.dst[lo:hi]


class TestAgainstReference:
    @pytest.mark.parametrize("p", [1, 2, 5, 8, 16])
    def test_rmat_all_partition_counts(self, rmat_small, p):
        g = DistributedGraph.build(rmat_small, p, num_ghosts=4)
        s = int(rmat_small.src[0])
        r = bfs(g, s)
        assert np.array_equal(r.data.levels, bfs_levels(rmat_small, s))

    @pytest.mark.parametrize("topology", ["direct", "2d", "3d"])
    def test_rmat_all_topologies(self, rmat_small, topology):
        g = DistributedGraph.build(rmat_small, 8, num_ghosts=4)
        s = int(rmat_small.src[1])
        r = bfs(g, s, topology=topology)
        assert np.array_equal(r.data.levels, bfs_levels(rmat_small, s))

    def test_ghosts_do_not_change_result(self, rmat_small):
        s = int(rmat_small.src[2])
        ref = bfs_levels(rmat_small, s)
        for ng in (0, 1, 16, 256):
            g = DistributedGraph.build(rmat_small, 8, num_ghosts=ng)
            assert np.array_equal(bfs(g, s).data.levels, ref)

    def test_1d_strategy(self, rmat_small):
        g = DistributedGraph.build(rmat_small, 8, strategy="1d")
        s = int(rmat_small.src[0])
        assert np.array_equal(bfs(g, s).data.levels, bfs_levels(rmat_small, s))

    def test_small_world(self):
        src, dst = small_world_edges(256, 4, rewire_probability=0.1, seed=3)
        edges = EdgeList.from_arrays(src, dst, 256).simple_undirected()
        g = DistributedGraph.build(edges, 8, num_ghosts=8)
        assert np.array_equal(bfs(g, 7).data.levels, bfs_levels(edges, 7))


class TestDirectedBFS:
    def test_directed_edges_respected(self):
        # 0 -> 1 -> 2 with no reverse edges: BFS from 2 reaches nothing else
        el = EdgeList.from_pairs([(0, 1), (1, 2)], 3).sorted_by_source()
        g = DistributedGraph.build(el, 1)
        r = bfs(g, 2)
        assert r.data.num_reached == 1


class TestValidation:
    def test_negative_source(self):
        with pytest.raises(ValueError):
            BFSAlgorithm(-1)


@settings(max_examples=25, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), min_size=2, max_size=80
    ),
    p=st.integers(min_value=1, max_value=4),
    source=st.integers(0, 15),
)
def test_bfs_matches_reference_property(pairs, p, source):
    """Property: on arbitrary undirected graphs, any partition count and
    ghost budget, async BFS levels equal the sequential reference."""
    edges = EdgeList.from_pairs(pairs, num_vertices=16).simple_undirected()
    if edges.num_edges < p:
        return
    g = DistributedGraph.build(edges, p, num_ghosts=2)
    got = bfs(g, source).data.levels
    assert np.array_equal(got, bfs_levels(edges, source))
