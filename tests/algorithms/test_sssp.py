"""Tests for asynchronous SSSP (extension algorithm)."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.sssp import SSSPAlgorithm, edge_weight, sssp
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.reference.sssp import sssp_distances
from repro.types import UNREACHED


class TestEdgeWeight:
    def test_symmetric(self):
        assert edge_weight(3, 9) == edge_weight(9, 3)

    def test_range(self):
        for u in range(20):
            for v in range(20):
                w = edge_weight(u, v, max_weight=7)
                assert 1 <= w <= 7

    def test_salt_changes_weights(self):
        weights_a = [edge_weight(0, v, salt=0) for v in range(50)]
        weights_b = [edge_weight(0, v, salt=1) for v in range(50)]
        assert weights_a != weights_b

    def test_deterministic(self):
        assert edge_weight(5, 6) == edge_weight(5, 6)


class TestSmallGraphs:
    def test_path_distances(self, path_graph):
        g = DistributedGraph.build(path_graph, 2)
        r = sssp(g, 0)
        ref = sssp_distances(path_graph, 0)
        assert np.allclose(r.data.distances, ref)

    def test_unit_weights_equal_bfs(self, rmat_small, rmat_small_graph):
        s = int(rmat_small.src[0])
        d = sssp(rmat_small_graph, s, unit_weights=True).data.distances
        levels = bfs(rmat_small_graph, s).data.levels
        reached = levels != UNREACHED
        assert np.array_equal(d[reached].astype(np.int64), levels[reached])
        assert np.all(np.isinf(d[~reached]))

    def test_unreachable_infinite(self):
        el = EdgeList.from_pairs([(0, 1), (2, 3)], 4).simple_undirected()
        g = DistributedGraph.build(el, 2)
        r = sssp(g, 0)
        assert np.isinf(r.data.distances[2])
        assert r.data.num_reached == 2


class TestAgainstReference:
    @pytest.mark.parametrize("p", [1, 4, 8])
    def test_rmat(self, rmat_small, p):
        g = DistributedGraph.build(rmat_small, p, num_ghosts=8)
        s = int(rmat_small.src[0])
        got = sssp(g, s, max_weight=8).data.distances
        ref = sssp_distances(rmat_small, s, max_weight=8)
        assert np.allclose(got, ref, equal_nan=True)

    def test_salt_consistency(self, rmat_small):
        g = DistributedGraph.build(rmat_small, 4)
        s = int(rmat_small.src[1])
        got = sssp(g, s, max_weight=5, salt=9).data.distances
        ref = sssp_distances(rmat_small, s, max_weight=5, salt=9)
        assert np.allclose(got, ref, equal_nan=True)


class TestValidation:
    def test_negative_source(self):
        with pytest.raises(ValueError):
            SSSPAlgorithm(-2)


@settings(max_examples=20, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 11)), min_size=2, max_size=50
    ),
    p=st.integers(min_value=1, max_value=3),
    source=st.integers(0, 11),
)
def test_sssp_matches_dijkstra_property(pairs, p, source):
    edges = EdgeList.from_pairs(pairs, num_vertices=12).simple_undirected()
    if edges.num_edges < p:
        return
    g = DistributedGraph.build(edges, p, num_ghosts=2)
    got = sssp(g, source, max_weight=4).data.distances
    ref = sssp_distances(edges, source, max_weight=4)
    assert np.allclose(got, ref, equal_nan=True)
