"""Tests for asynchronous triangle counting (Algorithms 6 and 7)."""

from hypothesis import given, settings
from hypothesis import strategies as st
import networkx as nx
import numpy as np
import pytest

from repro.algorithms.triangles import triangle_count
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.reference.triangles import total_triangles, triangles_per_max_vertex


class TestSmallGraphs:
    def test_single_triangle(self):
        el = EdgeList.from_pairs([(0, 1), (1, 2), (0, 2)], 3).simple_undirected()
        g = DistributedGraph.build(el, 2)
        r = triangle_count(g)
        assert r.data.total == 1
        # counted at the largest member
        assert list(r.data.per_vertex) == [0, 0, 1]

    def test_two_shared_triangles(self, triangle_graph):
        g = DistributedGraph.build(triangle_graph, 2)
        r = triangle_count(g)
        assert r.data.total == 2

    def test_path_no_triangles(self, path_graph):
        g = DistributedGraph.build(path_graph, 2)
        assert triangle_count(g).data.total == 0

    def test_star_no_triangles(self, star_graph):
        g = DistributedGraph.build(star_graph, 4)
        assert triangle_count(g).data.total == 0

    def test_k5_has_ten(self):
        pairs = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        el = EdgeList.from_pairs(pairs, 5).simple_undirected()
        g = DistributedGraph.build(el, 3)
        r = triangle_count(g)
        assert r.data.total == 10
        # vertex v is the max of C(v, 2) triangles in a clique
        assert list(r.data.per_vertex) == [0, 0, 1, 3, 6]


class TestSplitHubs:
    def test_triangles_through_split_hub(self):
        """Closing edges may live on any replica's slice; increments must
        land exactly once regardless of the partitioning."""
        # wheel: hub 0 + cycle 1..12; every spoke pair is a triangle
        n = 13
        pairs = [(0, i) for i in range(1, n)]
        pairs += [(i, i % (n - 1) + 1) for i in range(1, n)]
        el = EdgeList.from_pairs(pairs, n).simple_undirected()
        expected = total_triangles(el)
        for p in (1, 2, 4, 8):
            g = DistributedGraph.build(el, p)
            assert triangle_count(g).data.total == expected, f"p={p}"


class TestAgainstReference:
    @pytest.mark.parametrize("p", [1, 4, 8, 16])
    def test_rmat_total(self, rmat_small, p):
        g = DistributedGraph.build(rmat_small, p)
        assert triangle_count(g).data.total == total_triangles(rmat_small)

    def test_rmat_per_vertex(self, rmat_small):
        g = DistributedGraph.build(rmat_small, 8)
        got = triangle_count(g).data.per_vertex
        assert np.array_equal(got, triangles_per_max_vertex(rmat_small))

    def test_against_networkx(self, rmat_small):
        g = DistributedGraph.build(rmat_small, 8)
        nxg = nx.Graph(list(zip(rmat_small.src.tolist(), rmat_small.dst.tolist(), strict=False)))
        expected = sum(nx.triangles(nxg).values()) // 3
        assert triangle_count(g).data.total == expected


@settings(max_examples=25, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 11)), min_size=2, max_size=60
    ),
    p=st.integers(min_value=1, max_value=4),
)
def test_triangles_match_reference_property(pairs, p):
    edges = EdgeList.from_pairs(pairs, num_vertices=12).simple_undirected()
    if edges.num_edges < p:
        return
    g = DistributedGraph.build(edges, p)
    r = triangle_count(g)
    assert r.data.total == total_triangles(edges)
    assert np.array_equal(r.data.per_vertex, triangles_per_max_vertex(edges))
