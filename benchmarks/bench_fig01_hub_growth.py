"""Figure 1 — hub growth for Graph500 RMAT graphs.

Paper claim: at constant mean degree, the max-degree hub and the edge mass
above fixed degree thresholds all grow with graph scale.
"""


def test_fig01_hub_growth(run_experiment):
    from repro.bench.experiments import fig01_hub_growth

    rows = run_experiment(fig01_hub_growth)
    max_degrees = [r["max_degree"] for r in rows]
    assert max_degrees == sorted(max_degrees)
    assert max_degrees[-1] > max_degrees[0]

    for threshold_col in [c for c in rows[0] if c.startswith("edges_deg>=")]:
        series = [r[threshold_col] for r in rows]
        assert series[-1] > series[0], threshold_col

    mean_degrees = [r["mean_degree"] for r in rows]
    assert max(mean_degrees) - min(mean_degrees) < 1e-9
