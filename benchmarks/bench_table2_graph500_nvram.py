"""Table II — Graph500 results with NAND Flash across machine profiles.

Paper rows (MTEPS): Hyperion-DIT DRAM 1004 > Hyperion-DIT Fusion-io 609 >
Trestles SATA SSD 242 > Leviathan single-node 52, with the NVRAM rows
traversing 32x larger graphs.  Shape checked: the ordering of the four
configurations is reproduced.
"""


def test_table2_graph500_nvram(run_experiment):
    from repro.bench.experiments import table2_graph500_nvram

    rows = run_experiment(table2_graph500_nvram)
    assert len(rows) == 4
    mteps = [r["mteps"] for r in rows]
    # paper ordering: DRAM > Fusion-io > SATA SSD > single node
    assert mteps[0] > mteps[1] > mteps[2] > mteps[3]
    # the NVRAM rows really traverse the larger graph
    assert rows[1]["scale"] > rows[0]["scale"]
