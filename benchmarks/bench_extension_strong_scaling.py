"""Extension — strong scaling of BFS on a fixed graph.

The paper evaluates weak scaling; strong scaling is the natural companion
study.  Claims checked: adding ranks to a fixed graph keeps helping
(speedup grows monotonically) but with decaying parallel efficiency — the
latency floor of the wavefront's critical path caps strong scaling, which
is exactly why the paper weak-scales.
"""


def test_extension_strong_scaling(run_experiment):
    from repro.bench.experiments import extension_strong_scaling

    rows = run_experiment(extension_strong_scaling)
    speedups = [r["speedup"] for r in rows]
    efficiencies = [r["efficiency"] for r in rows]
    # more ranks never hurt on this size...
    assert speedups == sorted(speedups)
    assert speedups[-1] > 2.0
    # ...but efficiency decays: sublinear strong scaling
    assert efficiencies[-1] < efficiencies[0]
    assert efficiencies[-1] < 0.8
