"""Figure 5 — weak scaling of asynchronous BFS on the BG/P profile.

Paper claim: excellent weak scaling up to 131K cores — aggregate TEPS keeps
growing close to linearly as ranks and graph grow together.
"""


def test_fig05_bfs_weak_scaling(run_experiment):
    from repro.bench.experiments import fig05_bfs_weak_scaling

    rows = run_experiment(fig05_bfs_weak_scaling)
    teps = [r["teps"] for r in rows]
    ranks = [r["p"] for r in rows]
    # aggregate TEPS strictly grows with p
    assert teps == sorted(teps)
    # and grows meaningfully: each 4x rank step at least doubles TEPS
    for i in range(1, len(rows)):
        step = ranks[i] / ranks[i - 1]
        assert teps[i] / teps[i - 1] > step / 2
