"""Figure 13 — BFS improvement from ghost vertices vs ghost budget.

Paper claim: on 4096 BG/P cores, a single ghost per partition already gives
>12% improvement and 512 ghosts give 19.5%.  Shape checked: improvement is
positive from the first ghost, grows with the budget, and reaches double
digits at the largest budgets (magnitude is graph-dependent, as the paper
notes).
"""


def test_fig13_ghost_sweep(run_experiment):
    from repro.bench.experiments import fig13_ghost_sweep

    rows = run_experiment(fig13_ghost_sweep)
    by_ghosts = {r["ghosts"]: r for r in rows}
    budgets = sorted(by_ghosts)
    assert budgets[0] == 0

    # ghosts filter traffic from the first one onward
    assert by_ghosts[budgets[1]]["ghost_filtered"] > 0
    filtered = [by_ghosts[k]["ghost_filtered"] for k in budgets]
    assert filtered == sorted(filtered)

    # improvement grows with the budget and is double-digit at the top
    top = by_ghosts[budgets[-1]]["improvement_pct"]
    assert top > 10.0
    assert by_ghosts[budgets[-1]]["visitors_sent"] < by_ghosts[0]["visitors_sent"] * 0.7
