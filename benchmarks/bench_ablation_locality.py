"""Ablation — Section V-A locality ordering under NVRAM.

"To improve page-level locality, we order visitors by their vertex
identifier when the algorithm does not define an order."  Claim checked:
enabling the vertex-id tie-break yields a page-cache hit rate at least as
good as arrival-order, and no slower a traversal.
"""


def test_ablation_locality_ordering(run_experiment):
    from repro.bench.experiments import ablation_locality_ordering

    rows = run_experiment(ablation_locality_ordering)
    by_flag = {r["locality_ordering"]: r for r in rows}
    assert by_flag[True]["cache_hit_rate"] >= by_flag[False]["cache_hit_rate"]
    # ordering must not cost traversal time beyond scheduling noise
    assert by_flag[True]["time_us"] <= by_flag[False]["time_us"] * 1.10
