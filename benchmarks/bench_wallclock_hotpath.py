"""Wall-clock benchmark of the vectorized batch fast path.

Runs the same BFS traversal through the object path and the batch path,
checks the two produce identical results and traversal stats (the batch
path's defining contract), and reports the host wall-clock speedup.  Also
reports — never gates — the reliable-delivery transport's no-fault
overhead (host time, simulated time and protocol bytes vs the plain
fabric) and the bounded-mailbox ledger's no-pressure overhead (a cap
high enough that backpressure never engages, measuring pure flow-control
bookkeeping cost).

Usage::

    python benchmarks/bench_wallclock_hotpath.py             # full: scale 16, p=16
    python benchmarks/bench_wallclock_hotpath.py --smoke     # CI: scale 12, p=8
    python benchmarks/bench_wallclock_hotpath.py --smoke --check \
        --baseline BENCH_hotpath.json                        # regression gate

The JSON written next to the repo root (``BENCH_hotpath.json``) records the
measured speedup; ``--check`` fails (exit 1) when the current speedup falls
more than 25% below the baseline's, a machine-independent regression gate
(both paths run on the same host, so their *ratio* transfers between
machines in a way absolute seconds do not).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
import sys
import time

import numpy as np

from repro.algorithms.bfs import bfs
from repro.bench.harness import build_rmat_graph, pick_bfs_source
from repro.runtime.costmodel import laptop

#: Tolerated relative drop in speedup before --check fails.
REGRESSION_TOLERANCE = 0.25


def _stats_key(stats):
    return (
        stats.ticks,
        stats.time_us,
        stats.termination_waves,
        tuple(
            (c.visits, c.previsits, c.pushes, c.ghost_filtered, c.edges_scanned,
             c.visitors_sent, c.visitors_received, c.packets_sent, c.bytes_sent,
             c.envelopes_forwarded)
            for c in stats.ranks
        ),
    )


def run_benchmark(*, scale: int, partitions: int, ghosts: int, repeats: int,
                  seed: int = 2024) -> dict:
    """Time both paths on one RMAT BFS; returns the result record."""
    edges, graph = build_rmat_graph(
        scale, num_partitions=partitions, num_ghosts=ghosts,
        strategy="edge_list", seed=seed,
    )
    source = pick_bfs_source(edges, seed=seed)
    machine = laptop()

    results = {}
    timings = {}
    for label, batch in (("object", False), ("batch", True)):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            res = bfs(graph, source, machine=machine, batch=batch)
            best = min(best, time.perf_counter() - t0)
        results[label] = res
        timings[label] = best

    obj, bat = results["object"], results["batch"]
    stats_equal = _stats_key(obj.stats) == _stats_key(bat.stats)
    data_equal = (np.array_equal(obj.data.levels, bat.data.levels)
                  and np.array_equal(obj.data.parents, bat.data.parents))
    speedup = timings["object"] / timings["batch"]

    # Reliable-delivery no-fault tax, report-only (never gated): the same
    # traversal through the exactly-once transport, fault-free.
    best_rel = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        rel = bfs(graph, source, machine=machine, reliable=True)
        best_rel = min(best_rel, time.perf_counter() - t0)
    reliable = {
        "reliable_seconds": round(best_rel, 4),
        "reliable_host_overhead": round(best_rel / timings["object"], 3),
        "reliable_sim_overhead": round(
            rel.stats.time_us / obj.stats.time_us, 4
        ),
        "reliable_overhead_bytes": rel.stats.reliable_overhead_bytes,
        "reliable_ack_packets": rel.stats.ack_packets,
    }
    # Bounded-mailbox no-pressure tax, report-only (never gated): the same
    # traversal with a cap so generous the credit gate never fires — any
    # slowdown is pure flow-control bookkeeping (the byte ledger and the
    # idle spill pager), and simulated time must be bit-identical.
    best_cap = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        cap = bfs(graph, source, machine=machine, mailbox_cap=1 << 30)
        best_cap = min(best_cap, time.perf_counter() - t0)
    pressure = {
        "pressure_seconds": round(best_cap, 4),
        "pressure_host_overhead": round(best_cap / timings["object"], 3),
        "pressure_sim_overhead": round(
            cap.stats.time_us / obj.stats.time_us, 4
        ),
        "pressure_bp_stalls": cap.stats.total_bp_stalls,
    }
    return {
        **reliable,
        **pressure,
        "algorithm": "bfs",
        "machine": "laptop",
        "scale": scale,
        "partitions": partitions,
        "ghosts": ghosts,
        "source": source,
        "repeats": repeats,
        "object_seconds": round(timings["object"], 4),
        "batch_seconds": round(timings["batch"], 4),
        "speedup": round(speedup, 3),
        "stats_equal": stats_equal,
        "data_equal": data_equal,
        "visits": sum(c.visits for c in obj.stats.ranks),
        "ticks": obj.stats.ticks,
        "simulated_time_us": obj.stats.time_us,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small/fast configuration for CI (scale 12, p=8)")
    parser.add_argument("--check", action="store_true",
                        help="fail when speedup regresses >25%% vs --baseline")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON for --check (default: the "
                        "committed file matching this run's mode)")
    parser.add_argument("-o", "--output", default=None,
                        help="where to write the result JSON (default: the "
                        "mode's baseline file at the repo root; suppressed "
                        "in --check runs)")
    args = parser.parse_args(argv)
    root = Path(__file__).resolve().parent.parent
    default_json = root / ("BENCH_hotpath_smoke.json" if args.smoke
                           else "BENCH_hotpath.json")

    if args.smoke:
        record = run_benchmark(scale=12, partitions=8, ghosts=64, repeats=2)
    else:
        record = run_benchmark(scale=16, partitions=16, ghosts=256, repeats=3)
    record["mode"] = "smoke" if args.smoke else "full"

    print(f"object path: {record['object_seconds']:.3f}s   "
          f"batch path: {record['batch_seconds']:.3f}s   "
          f"speedup: {record['speedup']:.2f}x")
    print(f"reliable delivery (no faults, report-only): "
          f"{record['reliable_seconds']:.3f}s host "
          f"({record['reliable_host_overhead']:.2f}x object), "
          f"{record['reliable_sim_overhead']:.4f}x simulated time, "
          f"{record['reliable_overhead_bytes']} protocol bytes, "
          f"{record['reliable_ack_packets']} ack packets")
    print(f"bounded mailbox (no pressure, report-only): "
          f"{record['pressure_seconds']:.3f}s host "
          f"({record['pressure_host_overhead']:.2f}x object), "
          f"{record['pressure_sim_overhead']:.4f}x simulated time, "
          f"{record['pressure_bp_stalls']} backpressure stalls")
    if not (record["stats_equal"] and record["data_equal"]):
        print("FAIL: batch path diverged from the object path "
              f"(stats_equal={record['stats_equal']}, "
              f"data_equal={record['data_equal']})", file=sys.stderr)
        return 1

    if args.check:
        baseline = json.loads(Path(args.baseline or default_json).read_text())
        floor = baseline["speedup"] * (1.0 - REGRESSION_TOLERANCE)
        print(f"baseline speedup {baseline['speedup']:.2f}x "
              f"({baseline['mode']}), regression floor {floor:.2f}x")
        if record["speedup"] < floor:
            print(f"FAIL: speedup {record['speedup']:.2f}x regressed below "
                  f"{floor:.2f}x", file=sys.stderr)
            return 1
        print("OK: no wall-clock regression")
        return 0

    out = Path(args.output) if args.output else default_json
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
