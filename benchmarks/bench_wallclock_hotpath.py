"""Wall-clock benchmark of the vectorized batch fast path, per algorithm.

For every algorithm with a batch kernel (BFS, SSSP, CC, triangles, k-core,
PageRank) this runs the same traversal through the object path, the batch
path, and the batch path under the process-parallel executor
(``workers=N``), checks that all three produce identical results and
traversal stats (the batch path's and parallel executor's defining
contract), and reports the host wall-clock speedups.  The parallel leg
runs twice — once per IPC transport (the default shared-memory ring, then
the pickled pipe) — and records the ring's same-host win (``ring_vs_pipe``)
plus its telemetry (``ipc_frames``, ``ipc_bytes_pickled``,
``barrier_seconds``); a clean ring run that pickles any tick-barrier bytes
(``ring_zero_pickle`` false) fails the run like a divergence, because the
zero-pickle fast path leaked.  Also reports — never
gates — the reliable-delivery transport's no-fault overhead (host time,
simulated time and protocol bytes vs the plain fabric) and the
bounded-mailbox ledger's no-pressure overhead (a cap high enough that
backpressure never engages, measuring pure flow-control bookkeeping cost),
both measured on the BFS workload.  The parallel section also reports the
supervised mode's no-fault tax (``worker_restarts>0`` with no fault plan:
barrier deadlines + per-epoch restore-image shipping, INTERNALS §12) as
``supervised_overhead`` vs the plain parallel run.

Usage::

    python benchmarks/bench_wallclock_hotpath.py             # full: all algorithms
    python benchmarks/bench_wallclock_hotpath.py --smoke     # CI: bfs + triangles
    python benchmarks/bench_wallclock_hotpath.py --smoke --check \
        --baseline BENCH_hotpath.json                        # regression gate

Every timing is the min over ``--repeats`` runs (one uniform knob for all
algorithms and all three paths; the repeat count used is recorded in each
entry).  The JSON written next to the repo root (``BENCH_hotpath.json``)
records one record per algorithm; ``--check`` fails (exit 1) when any
algorithm's current object-vs-batch speedup falls more than 25% below its
baseline, a machine-independent regression gate (both paths run on the
same host, so their *ratio* transfers between machines in a way absolute
seconds do not).  The parallel columns (``parallel_seconds``,
``host_speedup`` vs the sequential batch path) are report-only — multi-core
scaling depends on the host's core count, recorded as ``host_cores`` — but
parallel *divergence* from the sequential stats or result arrays fails the
run in any mode: bit-identity is machine-independent.  Workload sizes
differ per algorithm because their visitor volumes differ by orders of
magnitude: triangle counting is O(sum of squared degrees) visitors, so it
runs scale 16 at edgefactor 1, and PageRank's residual push needs tens of
ticks per unit of threshold, so it runs a smaller graph.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path
import sys
import time

import numpy as np

from repro.algorithms.bfs import bfs
from repro.algorithms.connected_components import connected_components
from repro.algorithms.kcore import kcore
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp import sssp
from repro.algorithms.triangles import triangle_count
from repro.bench.harness import build_rmat_graph, pick_bfs_source
from repro.runtime.costmodel import laptop

#: Tolerated relative drop in speedup before --check fails.
REGRESSION_TOLERANCE = 0.25

#: Per-algorithm workload definitions.  ``graph`` keys feed
#: :func:`build_rmat_graph`; ``run(graph, source, machine, batch, **kw)``
#: must be deterministic; ``arrays(result)`` yields the output arrays to
#: compare.
WORKLOADS = {
    "bfs": dict(
        graph=dict(scale=16, edgefactor=16, num_partitions=16, num_ghosts=256),
        run=lambda g, s, m, b, **kw: bfs(g, s, machine=m, batch=b, **kw),
        arrays=lambda r: (r.data.levels, r.data.parents),
    ),
    "sssp": dict(
        graph=dict(scale=16, edgefactor=16, num_partitions=16, num_ghosts=256),
        run=lambda g, s, m, b, **kw: sssp(g, s, machine=m, batch=b, **kw),
        arrays=lambda r: (r.data.distances, r.data.parents),
    ),
    "cc": dict(
        graph=dict(scale=16, edgefactor=16, num_partitions=16, num_ghosts=256),
        run=lambda g, s, m, b, **kw: connected_components(
            g, machine=m, batch=b, **kw),
        arrays=lambda r: (r.data.labels,),
    ),
    "triangles": dict(
        # O(sum d^2) visitors: edgefactor 1 keeps scale 16 tractable.
        graph=dict(scale=16, edgefactor=1, num_partitions=16, num_ghosts=256),
        run=lambda g, s, m, b, **kw: triangle_count(g, machine=m, batch=b, **kw),
        arrays=lambda r: (r.data.per_vertex,),
    ),
    "kcore": dict(
        graph=dict(scale=16, edgefactor=16, num_partitions=16, num_ghosts=256),
        run=lambda g, s, m, b, **kw: kcore(g, 4, machine=m, batch=b, **kw),
        arrays=lambda r: (r.data.alive,),
    ),
    "pagerank": dict(
        # Residual push emits millions of visitors; a smaller graph keeps
        # the object path's run in tens of seconds.
        graph=dict(scale=10, edgefactor=16, num_partitions=8, num_ghosts=64),
        run=lambda g, s, m, b, **kw: pagerank(
            g, threshold=1e-3, machine=m, batch=b, **kw),
        arrays=lambda r: (r.data.scores,),
    ),
}

SMOKE_WORKLOADS = {
    "bfs": dict(
        graph=dict(scale=12, edgefactor=16, num_partitions=8, num_ghosts=64),
        run=WORKLOADS["bfs"]["run"],
        arrays=WORKLOADS["bfs"]["arrays"],
    ),
    "triangles": dict(
        graph=dict(scale=12, edgefactor=1, num_partitions=8, num_ghosts=64),
        run=WORKLOADS["triangles"]["run"],
        arrays=WORKLOADS["triangles"]["arrays"],
    ),
}


def _stats_key(stats):
    return (
        stats.ticks,
        stats.time_us,
        stats.termination_waves,
        tuple(
            (c.visits, c.previsits, c.pushes, c.ghost_filtered, c.edges_scanned,
             c.visitors_sent, c.visitors_received, c.packets_sent, c.bytes_sent,
             c.envelopes_forwarded)
            for c in stats.ranks
        ),
    )


def _best_of(repeats: int, thunk):
    """Min-of-N wall clock; returns (best_seconds, last_result)."""
    best = float("inf")
    res = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        res = thunk()
        best = min(best, time.perf_counter() - t0)
    return best, res


def run_algorithm(name: str, spec: dict, *, repeats: int, workers: int,
                  seed: int = 2024) -> dict:
    """Time all paths on one workload; returns the result record."""
    edges, graph = build_rmat_graph(
        spec["graph"]["scale"], edgefactor=spec["graph"]["edgefactor"],
        num_partitions=spec["graph"]["num_partitions"],
        num_ghosts=spec["graph"]["num_ghosts"],
        strategy="edge_list", seed=seed,
    )
    source = pick_bfs_source(edges, seed=seed)
    machine = laptop()
    run = spec["run"]

    obj_s, obj = _best_of(repeats, lambda: run(graph, source, machine, False))
    bat_s, bat = _best_of(repeats, lambda: run(graph, source, machine, True))

    stats_equal = _stats_key(obj.stats) == _stats_key(bat.stats)
    data_equal = all(
        np.array_equal(a, b)
        for a, b in zip(spec["arrays"](obj), spec["arrays"](bat), strict=False)
    )
    entry = {
        "algorithm": name,
        **{k: spec["graph"][k] for k in
           ("scale", "edgefactor", "num_partitions", "num_ghosts")},
        "source": source,
        "repeats": repeats,
        "object_seconds": round(obj_s, 4),
        "batch_seconds": round(bat_s, 4),
        "speedup": round(obj_s / bat_s, 3),
        "stats_equal": stats_equal,
        "data_equal": data_equal,
        "visits": sum(c.visits for c in obj.stats.ranks),
        "ticks": obj.stats.ticks,
        "simulated_time_us": obj.stats.time_us,
    }
    if workers > 1:
        par_s, par = _best_of(
            repeats, lambda: run(graph, source, machine, True, workers=workers)
        )
        entry["workers"] = workers
        entry["parallel_seconds"] = round(par_s, 4)
        # IPC transport columns (INTERNALS §14).  The default parallel leg
        # runs the shared-memory ring; a second leg re-runs it over the
        # pickled pipe so the ring's win is recorded as a same-host ratio
        # (``ring_vs_pipe``), which transfers between machines the way the
        # object/batch ratio does.  The zero-pickle contract gates below:
        # a clean ring run (no overflow spills) must move 0 pickled bytes
        # on tick barriers, or the fast path silently leaked.
        pipe_s, pipe = _best_of(
            repeats, lambda: run(graph, source, machine, True,
                                 workers=workers, ipc="pipe")
        )
        entry["ipc_transport"] = par.ipc["transport"]
        entry["ipc_frames"] = par.ipc["frames"]
        entry["ipc_frame_bytes"] = par.ipc["frame_bytes"]
        entry["ipc_bytes_pickled"] = par.ipc["bytes_pickled"]
        entry["ipc_tick_bytes_pickled"] = par.ipc["tick_bytes_pickled"]
        entry["ipc_ring_spills"] = par.ipc["ring_spills"]
        entry["barrier_seconds"] = par.ipc["barrier_seconds"]
        entry["pipe_seconds"] = round(pipe_s, 4)
        entry["pipe_tick_bytes_pickled"] = pipe.ipc["tick_bytes_pickled"]
        entry["pipe_barrier_seconds"] = pipe.ipc["barrier_seconds"]
        entry["ring_vs_pipe"] = round(pipe_s / par_s, 3)
        entry["ring_zero_pickle"] = (
            par.ipc["tick_bytes_pickled"] == 0 or par.ipc["ring_spills"] > 0
        )
        entry["pipe_equal"] = (
            _stats_key(par.stats) == _stats_key(pipe.stats)
            and all(
                np.array_equal(a, b)
                for a, b in zip(spec["arrays"](par), spec["arrays"](pipe), strict=False)
            )
        )
        # Host speedup of the parallel executor over the sequential batch
        # path (same kernel, fanned out).  Honest number for *this* host;
        # meaningless without host_cores alongside it — and meaningless
        # outright on a single-core host, where the fan-out cannot beat
        # the sequential path: record "n/a" there so neither --check nor a
        # reader ever compares it against a multi-core baseline.
        host_cores = os.cpu_count() or 1
        entry["host_speedup"] = (
            round(bat_s / par_s, 3) if host_cores >= 2 else "n/a"
        )
        entry["parallel_equal"] = (
            _stats_key(bat.stats) == _stats_key(par.stats)
            and all(
                np.array_equal(a, b)
                for a, b in zip(spec["arrays"](bat), spec["arrays"](par), strict=False)
            )
        )
        # Supervised mode with no faults injected: what the self-healing
        # machinery (barrier deadlines, per-epoch restore-image shipping)
        # costs when nothing ever fails.  Report-only, like the other
        # parallel columns, but divergence still fails the run.
        sup_s, sup = _best_of(
            repeats, lambda: run(graph, source, machine, True,
                                 workers=workers, worker_restarts=1)
        )
        entry["supervised_seconds"] = round(sup_s, 4)
        entry["supervised_overhead"] = round(sup_s / par_s, 3)
        entry["supervised_equal"] = (
            _stats_key(par.stats) == _stats_key(sup.stats)
            and all(
                np.array_equal(a, b)
                for a, b in zip(spec["arrays"](par), spec["arrays"](sup), strict=False)
            )
        )
    return entry


def run_overheads(spec: dict, *, repeats: int, seed: int = 2024) -> dict:
    """Report-only taxes measured on the BFS workload: the reliable
    transport's no-fault overhead and the bounded mailbox's no-pressure
    overhead (cap generous enough the credit gate never fires)."""
    edges, graph = build_rmat_graph(
        spec["graph"]["scale"], edgefactor=spec["graph"]["edgefactor"],
        num_partitions=spec["graph"]["num_partitions"],
        num_ghosts=spec["graph"]["num_ghosts"],
        strategy="edge_list", seed=seed,
    )
    source = pick_bfs_source(edges, seed=seed)
    machine = laptop()

    timings = {}
    runs = {}
    for label, kwargs in (
        ("object", {}),
        ("reliable", {"reliable": True}),
        ("pressure", {"mailbox_cap": 1 << 30}),
    ):
        timings[label], runs[label] = _best_of(
            repeats, lambda kwargs=kwargs: bfs(graph, source, machine=machine, **kwargs)
        )
    obj, rel, cap = runs["object"], runs["reliable"], runs["pressure"]
    return {
        "reliable_seconds": round(timings["reliable"], 4),
        "reliable_host_overhead": round(timings["reliable"] / timings["object"], 3),
        "reliable_sim_overhead": round(rel.stats.time_us / obj.stats.time_us, 4),
        "reliable_overhead_bytes": rel.stats.reliable_overhead_bytes,
        "reliable_ack_packets": rel.stats.ack_packets,
        "pressure_seconds": round(timings["pressure"], 4),
        "pressure_host_overhead": round(timings["pressure"] / timings["object"], 3),
        "pressure_sim_overhead": round(cap.stats.time_us / obj.stats.time_us, 4),
        "pressure_bp_stalls": cap.stats.total_bp_stalls,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small/fast configuration for CI (bfs + "
                        "triangles at scale 12, p=8)")
    parser.add_argument("--check", action="store_true",
                        help="fail when any algorithm's speedup regresses "
                        ">25%% vs --baseline")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON for --check (default: the "
                        "committed file matching this run's mode)")
    parser.add_argument("--algorithms", default=None,
                        help="comma-separated subset to run (default: all "
                        "in the mode's workload table)")
    parser.add_argument("--repeats", type=int, default=2, metavar="N",
                        help="timing repeats per path; every recorded "
                        "timing is the min over N runs (default 2)")
    parser.add_argument("--workers", type=int, default=8, metavar="N",
                        help="worker count for the parallel-executor "
                        "columns (default 8; 1 skips them)")
    parser.add_argument("-o", "--output", default=None,
                        help="where to write the result JSON (default: the "
                        "mode's baseline file at the repo root; suppressed "
                        "in --check runs)")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        print("--repeats must be >= 1", file=sys.stderr)
        return 2
    root = Path(__file__).resolve().parent.parent
    default_json = root / ("BENCH_hotpath_smoke.json" if args.smoke
                           else "BENCH_hotpath.json")

    workloads = SMOKE_WORKLOADS if args.smoke else WORKLOADS
    if args.algorithms:
        names = args.algorithms.split(",")
        unknown = sorted(set(names) - set(workloads))
        if unknown:
            print(f"unknown algorithms for this mode: {unknown}", file=sys.stderr)
            return 2
        workloads = {n: workloads[n] for n in names}

    record = {"mode": "smoke" if args.smoke else "full", "machine": "laptop",
              "host_cores": os.cpu_count(), "algorithms": {}}
    diverged = False
    for name, spec in workloads.items():
        entry = run_algorithm(name, spec, repeats=args.repeats,
                              workers=args.workers)
        record["algorithms"][name] = entry
        line = (f"{name:>10}: object {entry['object_seconds']:.3f}s   "
                f"batch {entry['batch_seconds']:.3f}s   "
                f"speedup {entry['speedup']:.2f}x")
        if "parallel_seconds" in entry:
            hs = entry["host_speedup"]
            hs_txt = (f"{hs:.2f}x batch" if isinstance(hs, float)
                      else "host_speedup n/a: host_cores < 2")
            line += (f"   parallel[{entry['workers']}w,"
                     f"{entry['ipc_transport']}] "
                     f"{entry['parallel_seconds']:.3f}s "
                     f"({hs_txt})   "
                     f"pipe {entry['pipe_seconds']:.3f}s "
                     f"(ring {entry['ring_vs_pipe']:.2f}x pipe, "
                     f"{entry['ipc_frames']} frames, "
                     f"{entry['ipc_tick_bytes_pickled']} tick B pickled)   "
                     f"supervised {entry['supervised_seconds']:.3f}s "
                     f"({entry['supervised_overhead']:.2f}x parallel)")
        print(line)
        if not (entry["stats_equal"] and entry["data_equal"]):
            print(f"FAIL: {name} batch path diverged from the object path "
                  f"(stats_equal={entry['stats_equal']}, "
                  f"data_equal={entry['data_equal']})", file=sys.stderr)
            diverged = True
        if not entry.get("parallel_equal", True):
            print(f"FAIL: {name} parallel executor diverged from the "
                  f"sequential batch path at workers={args.workers}",
                  file=sys.stderr)
            diverged = True
        if not entry.get("supervised_equal", True):
            print(f"FAIL: {name} supervised mode (no faults) diverged from "
                  f"the plain parallel run at workers={args.workers}",
                  file=sys.stderr)
            diverged = True
        if not entry.get("pipe_equal", True):
            print(f"FAIL: {name} pipe transport diverged from the ring "
                  f"transport at workers={args.workers}", file=sys.stderr)
            diverged = True
        if not entry.get("ring_zero_pickle", True):
            print(f"FAIL: {name} ring transport pickled "
                  f"{entry['ipc_tick_bytes_pickled']} tick bytes with no "
                  f"overflow spill — the zero-pickle fast path leaked",
                  file=sys.stderr)
            diverged = True
    if diverged:
        return 1

    overheads = run_overheads(workloads.get("bfs", WORKLOADS["bfs"]),
                              repeats=args.repeats)
    record.update(overheads)
    print(f"reliable delivery (no faults, report-only): "
          f"{overheads['reliable_seconds']:.3f}s host "
          f"({overheads['reliable_host_overhead']:.2f}x object), "
          f"{overheads['reliable_sim_overhead']:.4f}x simulated time, "
          f"{overheads['reliable_overhead_bytes']} protocol bytes, "
          f"{overheads['reliable_ack_packets']} ack packets")
    print(f"bounded mailbox (no pressure, report-only): "
          f"{overheads['pressure_seconds']:.3f}s host "
          f"({overheads['pressure_host_overhead']:.2f}x object), "
          f"{overheads['pressure_sim_overhead']:.4f}x simulated time, "
          f"{overheads['pressure_bp_stalls']} backpressure stalls")

    if args.check:
        baseline = json.loads(Path(args.baseline or default_json).read_text())
        failed = False
        # Only the object-vs-batch ratio gates: both legs run on this
        # host, so the ratio transfers between machines.  host_speedup
        # (parallel vs sequential) deliberately never gates — it depends
        # on the host's core count and is "n/a" on single-core runners.
        for name, base in baseline["algorithms"].items():
            entry = record["algorithms"].get(name)
            if entry is None:
                continue  # --algorithms subset
            floor = base["speedup"] * (1.0 - REGRESSION_TOLERANCE)
            print(f"{name}: baseline speedup {base['speedup']:.2f}x, "
                  f"regression floor {floor:.2f}x")
            if entry["speedup"] < floor:
                print(f"FAIL: {name} speedup {entry['speedup']:.2f}x "
                      f"regressed below {floor:.2f}x", file=sys.stderr)
                failed = True
        if failed:
            return 1
        print("OK: no wall-clock regression")
        return 0

    out = Path(args.output) if args.output else default_json
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
