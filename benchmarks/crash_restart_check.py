"""Host-crash restart gate: SIGKILLed runs resume bit-identically.

For a small RMAT graph, runs each traversal command as a subprocess with
durable epoch checkpoints enabled (``--durable``), SIGKILLs it at a seeded
tick (``--kill-at-tick``, firing right after that tick's barrier), then
restarts it with ``--resume`` and diffs the resumed run's full stats
JSON — every stats field outside the ``durable_*`` family, the per-run
order digest, and the result-array digests — against an uninterrupted
durable baseline.  Any divergence, a kill that never fired (the run ended
first), or a resume that re-ran from tick 0 fails the gate.

This is the executable form of the INTERNALS §13 invariant: host crashes
may cost wall-clock and disk, never results, logical counters or
simulated time.

The matrix is 3 algorithms x 3 kill ticks; one cell re-runs both the
killed and the resumed leg under ``--workers 4`` to cover the parallel
executor's epoch capture and resume protocol.

Usage::

    python benchmarks/crash_restart_check.py            # CI gate (exit 1 on diff)
    python benchmarks/crash_restart_check.py --scale 9  # bigger graph
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile

#: (algorithm, extra CLI args, kill ticks, the kill tick run at workers=4).
#: Kill ticks sit strictly inside each run's tick count at scale 8 / p=4
#: (bfs 15, kcore 11, pagerank ~1k) and deliberately include ticks both on
#: and off the epoch cadence (interval 4): an off-cadence kill proves the
#: resume replays the post-epoch ticks, not just reloads the barrier state.
CELLS = (
    ("bfs", ["bfs"], (5, 8, 13), 8),
    ("kcore", ["kcore", "-k", "3", "--batch"], (5, 6, 9), None),
    ("pagerank", ["pagerank", "--batch"], (50, 500, 1000), None),
)

DURABLE_INTERVAL = 4


def _run(cmd: list[str], **kw) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(root, "src"), env.get("PYTHONPATH")) if p
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *cmd],
        env=env, capture_output=True, text=True, **kw,
    )


def _stats_key(path: str) -> tuple[dict, dict]:
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    stats = {
        k: v for k, v in payload["stats"].items() if not k.startswith("durable_")
    }
    return stats, payload["arrays"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=8)
    parser.add_argument("-p", "--partitions", type=int, default=4)
    args = parser.parse_args(argv)

    problems: list[str] = []
    cells = 0
    with tempfile.TemporaryDirectory(prefix="crash_restart_") as tmp:
        graph_path = os.path.join(tmp, "graph.npz")
        out = _run(["generate", "rmat", "--scale", str(args.scale),
                    "--seed", "1", "--simple", "-o", graph_path])
        if out.returncode != 0:
            print(f"FAIL: graph generation rc={out.returncode}\n{out.stderr}",
                  file=sys.stderr)
            return 1

        common = ["--graph", graph_path, "-p", str(args.partitions),
                  "--ghosts", "64", "--seed", "1", "--record-digests",
                  "--durable-interval", str(DURABLE_INTERVAL)]

        for algo, cmd, kill_ticks, parallel_kill in CELLS:
            base_json = os.path.join(tmp, f"{algo}_base.json")
            base_dir = os.path.join(tmp, f"{algo}_base_dur")
            out = _run(cmd + common + ["--durable", base_dir,
                                       "--stats-json", base_json])
            if out.returncode != 0:
                problems.append(f"{algo}: baseline rc={out.returncode}: "
                                f"{out.stderr.strip()}")
                continue
            base = _stats_key(base_json)
            print(f"baseline: {algo} {base[0]['ticks']} ticks "
                  f"(scale {args.scale}, p={args.partitions})")

            for kill in kill_ticks:
                cells += 1
                workers = ["--workers", "4"] if kill == parallel_kill else []
                label = f"{algo} kill@{kill}" + (" w=4" if workers else "")
                dur = os.path.join(tmp, f"{algo}_kill{kill}_dur")
                killed = _run(cmd + common + workers + [
                    "--durable", dur, "--kill-at-tick", str(kill)])
                if killed.returncode != -signal.SIGKILL:
                    problems.append(
                        f"{label}: expected SIGKILL exit, rc={killed.returncode} "
                        f"(kill tick past the end of the run?)")
                    continue
                res_json = os.path.join(tmp, f"{algo}_kill{kill}.json")
                resumed = _run(cmd + common + workers + [
                    "--durable", dur, "--resume", "--stats-json", res_json])
                if resumed.returncode != 0:
                    problems.append(f"{label}: resume rc={resumed.returncode}: "
                                    f"{resumed.stderr.strip()}")
                    continue
                res_stats, res_arrays = _stats_key(res_json)
                with open(res_json, encoding="utf-8") as fh:
                    resume_tick = json.load(fh)["stats"]["durable_resume_tick"]
                if resume_tick <= 0:
                    problems.append(f"{label}: resumed from tick {resume_tick} "
                                    f"(no epoch was restored — dead gate)")
                diff = sorted(k for k in base[0] if base[0][k] != res_stats.get(k))
                if diff:
                    problems.append(f"{label}: stats diverged: {diff}")
                if res_arrays != base[1]:
                    problems.append(f"{label}: result arrays diverged")
                print(f"  {label}: resumed from tick {resume_tick}, "
                      f"{res_stats['ticks']} ticks, bit-identical="
                      f"{not diff and res_arrays == base[1]}")

    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    print(f"OK: {cells} SIGKILLed runs resumed bit-identically")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
