"""Ablation — routing topology (DESIGN.md §6).

Section III-B's trade-off: 2D/3D routing bounds the per-rank channel count
(direct: p-1, 2D: O(sqrt(p)), 3D: O(p^(1/3))) and increases the message
aggregation per channel ("2D routing increases the amount of message
aggregation possible by O(sqrt(p))"), at the price of extra hops and
forwarded traffic.  The channel counts are structural facts checked
exactly; the aggregation gain is checked as mean packet size.
"""


def test_ablation_routing(run_experiment):
    from repro.bench.experiments import ablation_routing

    rows = run_experiment(ablation_routing)
    by_name = {r["routing"]: r for r in rows}
    p = 64
    assert by_name["direct"]["max_channels"] == p - 1
    assert by_name["2d"]["max_channels"] == 14   # 8x8 grid: 7 + 7
    assert by_name["3d"]["max_channels"] == 9    # 4x4x4 grid: 3 + 3 + 3
    # concentrating traffic onto fewer channels fattens the packets
    def mean_packet_bytes(row):
        return row["bytes"] / row["packets"]

    assert mean_packet_bytes(by_name["2d"]) > mean_packet_bytes(by_name["direct"])
    assert mean_packet_bytes(by_name["3d"]) > mean_packet_bytes(by_name["direct"])
    # the price: multi-hop routing forwards traffic, so total wire bytes rise
    assert by_name["2d"]["bytes"] > by_name["direct"]["bytes"]
