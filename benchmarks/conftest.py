"""Benchmark configuration.

Every benchmark regenerates one paper figure/table through
:mod:`repro.bench.experiments` and asserts the paper's qualitative claim on
the result.  Experiments are deterministic simulations, so a single
round/iteration is both sufficient and desirable (pytest-benchmark is used
for wall-clock accounting of the harness itself, not for statistics over
the simulated numbers).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Run one experiment function under pytest-benchmark (one iteration)
    and echo its report so `pytest benchmarks/ --benchmark-only -s` prints
    every regenerated table."""

    def _run(fn, **kwargs):
        rows, report = benchmark.pedantic(
            lambda: fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
        )
        print("\n" + report + "\n")
        return rows

    return _run
