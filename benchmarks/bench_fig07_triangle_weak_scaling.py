"""Figure 7 — weak scaling of triangle counting on small-world graphs.

Paper claim: with uniform vertex degree (no hubs), triangle counting weak
scales; higher rewire probabilities stay in the same performance envelope.
"""

from collections import defaultdict


def test_fig07_triangle_weak_scaling(run_experiment):
    from repro.bench.experiments import fig07_triangle_weak_scaling

    rows = run_experiment(fig07_triangle_weak_scaling)
    by_rewire = defaultdict(list)
    for r in rows:
        by_rewire[r["rewire"]].append(r)
    for rewire, series in by_rewire.items():
        series.sort(key=lambda r: r["p"])
        p_growth = series[-1]["p"] / series[0]["p"]
        time_growth = series[-1]["time_us"] / series[0]["time_us"]
        assert time_growth < p_growth, f"rewire={rewire}"
    # rewiring destroys lattice triangles: 0% rewire counts the most
    zero = by_rewire[0.0][0]["triangles"]
    most = by_rewire[max(by_rewire)][0]["triangles"]
    assert zero > most
