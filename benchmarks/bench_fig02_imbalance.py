"""Figure 2 — weak scaling of partition imbalance, 1D vs 2D (vs edge list).

Paper claim: 1D imbalance grows with partition count; 2D block partitioning
keeps it low; (and the paper's own remedy, edge list partitioning, is exact
by construction).
"""


def test_fig02_partition_imbalance(run_experiment):
    from repro.bench.experiments import fig02_partition_imbalance

    rows = run_experiment(fig02_partition_imbalance)
    # 1D imbalance grows with p
    ones = [r["imbalance_1d"] for r in rows]
    assert ones[-1] > ones[0]
    # at the largest p, the ordering 1D > 2D > edge-list holds
    last = rows[-1]
    assert last["imbalance_1d"] > last["imbalance_2d"]
    assert last["imbalance_2d"] >= last["imbalance_edge_list"]
    # edge list partitioning is exactly balanced (up to m % p rounding)
    assert all(r["imbalance_edge_list"] < 1.01 for r in rows)
