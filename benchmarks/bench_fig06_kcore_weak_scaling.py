"""Figure 6 — weak scaling of k-core decomposition (k = 4, 16, 64).

Paper claim: "our techniques enable near linear weak scaling for computing
k-core" — time stays nearly flat while the graph grows with the ranks.
"""

from collections import defaultdict


def test_fig06_kcore_weak_scaling(run_experiment):
    from repro.bench.experiments import fig06_kcore_weak_scaling

    rows = run_experiment(fig06_kcore_weak_scaling)
    by_k = defaultdict(list)
    for r in rows:
        by_k[r["k"]].append(r)
    for k, series in by_k.items():
        series.sort(key=lambda r: r["p"])
        p_growth = series[-1]["p"] / series[0]["p"]
        time_growth = series[-1]["time_us"] / series[0]["time_us"]
        # weak scaling: time grows far slower than the total work (= p)
        assert time_growth < p_growth / 2, f"k={k}"
