"""Ablation — asynchronous visitor queue vs level-synchronous (BSP) BFS.

The paper's architectural claim ("our asynchronous approach mitigates the
effects of both distributed and external memory latency") isolated against
an optimised BSP baseline over the same distributed graph and cost model.
Claim checked: async wins on high-diameter graphs, and its advantage grows
with BFS depth (BSP pays a barrier + all-to-all per level).
"""


def test_ablation_async_vs_bsp(run_experiment):
    from repro.bench.experiments import ablation_async_vs_bsp

    rows = run_experiment(ablation_async_vs_bsp)  # sorted by depth
    ratios = [r["bsp_over_async"] for r in rows]
    depths = [r["depth"] for r in rows]
    assert depths[-1] > 4 * depths[0]  # the sweep covers a real depth range
    # on the deepest graph the asynchronous engine is clearly faster
    assert ratios[-1] > 1.2
    # and the advantage grows with depth across the sweep endpoints
    assert ratios[-1] > ratios[0]
