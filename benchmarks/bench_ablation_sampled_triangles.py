"""Ablation — exact vs wedge-sampled triangle counting (§VI-C extension).

"[The algorithm] can also be extended to use approximate sampling based
triangle counting methods."  Claim checked: the wedge-sampling estimator
converges toward the exact count as samples grow, at a tiny fraction of
the exact algorithm's work.
"""


def test_ablation_exact_vs_sampled_triangles(run_experiment):
    from repro.bench.experiments import ablation_exact_vs_sampled_triangles

    rows = run_experiment(ablation_exact_vs_sampled_triangles)
    exact = next(r for r in rows if r["method"] == "exact")
    sampled = [r for r in rows if r["method"] == "wedge-sample"]
    sampled.sort(key=lambda r: r["samples"])

    # the largest sample budget gets within 15% of the exact count
    assert sampled[-1]["rel_error_pct"] < 15.0
    # at a fraction of the exact visitor work
    assert sampled[-1]["visits_or_checks"] < exact["visits_or_checks"] / 2
