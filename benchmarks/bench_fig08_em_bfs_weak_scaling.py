"""Figure 8 — weak scaling of distributed *external memory* BFS.

Paper claim: with 17B edges per node on node-local NAND Flash, BFS keeps
scaling to a trillion-edge graph on 64 nodes — aggregate TEPS grows with
node count while the per-node NVRAM-resident data stays constant.
"""


def test_fig08_em_bfs_weak_scaling(run_experiment):
    from repro.bench.experiments import fig08_em_bfs_weak_scaling

    rows = run_experiment(fig08_em_bfs_weak_scaling)
    teps = [r["teps"] for r in rows]
    # aggregate TEPS keeps growing with node count
    assert teps == sorted(teps)
    assert teps[-1] > 2 * teps[0]
    # the graph really lives on flash: every configuration misses
    assert all(r["cache_hit_rate"] < 1.0 for r in rows)
