"""Seeded pressure gate: constrained runs must match unconstrained runs
bit-for-bit.

For a small RMAT graph, runs BFS and k-core under fixed-seed resource
pressure — tight mailbox caps with external-memory spill, a degraded
storage device injecting read errors / latency spikes / torn pages, and
4x straggler skew with work-stealing rebalance — and diffs every result
array and logical counter against the unconstrained baseline on the same
machine profile.  Any divergence, or a pressured run that was not
actually squeezed (zero backpressure stalls / storage retries /
straggler stall time), fails the gate.

This is the executable form of the INTERNALS §9 invariant: resource
pressure may change simulated time and I/O traffic, never results or
logical counts.

Usage::

    python benchmarks/pressure_check.py            # CI gate (exit 1 on any diff)
    python benchmarks/pressure_check.py --scale 9  # bigger graph, same checks
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.algorithms.bfs import bfs
from repro.algorithms.kcore import kcore
from repro.bench.harness import build_rmat_graph, pick_bfs_source
from repro.memory.faults import StorageFaultPlan
from repro.runtime.costmodel import STORAGE_NVRAM, EngineConfig, hyperion_dit
from repro.runtime.pressure import StragglerPlan

#: The fixed pressure seeds CI replays (never change lightly: the point is
#: a deterministic gate, not a statistical one).
PRESSURE_SEEDS = (5, 11, 29)

#: Tight visitor budget keeps queues deep enough that the caps engage.
CONFIG = EngineConfig(visitor_budget=8)
MAILBOX_CAP = 40
QUEUE_SPILL = 2
STRAGGLER_FACTOR = 4.0


def _storage_plan(seed: int) -> StorageFaultPlan:
    return StorageFaultPlan(
        seed=seed, read_error_rate=0.1, spike_rate=0.05, torn_rate=0.02,
        bandwidth_degradation=2.0, max_retries=8,
    )


def _straggler_plan(seed: int) -> StragglerPlan:
    return StragglerPlan(seed=seed, factor=STRAGGLER_FACTOR, fraction=0.25,
                         rebalance=0.5)


def _counters(stats) -> tuple:
    return (
        stats.ticks,
        stats.total_visits,
        stats.total_previsits,
        stats.total_packets,
        stats.total_bytes,
        stats.termination_waves,
        tuple(r.visits for r in stats.ranks),
        tuple(r.edges_scanned for r in stats.ranks),
        tuple(r.cache_misses for r in stats.ranks),
    )


def _check(label: str, pressured, baseline, arrays: dict,
           gates: dict) -> list[str]:
    problems = []
    for name, (got, want) in arrays.items():
        if not np.array_equal(got, want):
            problems.append(f"{label}: {name} diverged "
                            f"({int(np.count_nonzero(got != want))} entries)")
    if _counters(pressured.stats) != _counters(baseline.stats):
        problems.append(f"{label}: logical counters diverged")
    for gate, engaged in gates.items():
        if not engaged:
            problems.append(f"{label}: {gate} never engaged (dead gate)")
    if pressured.stats.time_us <= baseline.stats.time_us:
        problems.append(f"{label}: pressure cost no simulated time")
    return problems


def _gates(kind: str, stats) -> dict:
    gates = {}
    if "caps" in kind:
        gates["backpressure"] = stats.total_bp_stalls > 0
        gates["mailbox spill"] = stats.total_bp_spilled_bytes > 0
        gates["queue spill"] = any(r.queue_spilled > 0 for r in stats.ranks)
        gates["spill I/O cost"] = stats.spill_io_us > 0
    if "storage" in kind:
        faults = (stats.storage_retries + stats.storage_spikes
                  + stats.torn_pages)
        gates["storage faults"] = faults > 0
        gates["storage fault cost"] = stats.storage_fault_us > 0
        gates["bounded retries"] = stats.storage_errors == 0
    if "straggler" in kind:
        gates["straggler stall"] = stats.straggler_stall_us > 0
        gates["rebalance"] = stats.rebalanced_us > 0
        gates["slowdown factor"] = stats.max_slowdown == STRAGGLER_FACTOR
    return gates


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=8)
    parser.add_argument("-p", "--partitions", type=int, default=8)
    parser.add_argument("-k", type=int, default=3, help="k-core k")
    args = parser.parse_args(argv)

    edges, graph = build_rmat_graph(
        args.scale, num_partitions=args.partitions, num_ghosts=8, seed=17
    )
    source = pick_bfs_source(edges, seed=17)
    nvram = hyperion_dit(STORAGE_NVRAM, cache_bytes_per_rank=32 * 1024)

    algorithms = {
        "bfs": lambda **kw: bfs(graph, source, config=CONFIG, **kw),
        "kcore": lambda **kw: kcore(graph, args.k, config=CONFIG, **kw),
    }
    result_arrays = {
        "bfs": lambda r: {"levels": r.data.levels, "parents": r.data.parents},
        "kcore": lambda r: {"alive": r.data.alive},
    }

    baselines = {
        name: {"dram": run(), "nvram": run(machine=nvram)}
        for name, run in algorithms.items()
    }
    for name, base in baselines.items():
        print(f"baselines: {name} {base['dram'].stats.ticks} ticks "
              f"(scale {args.scale}, p={args.partitions})")

    problems: list[str] = []
    runs = 0
    for seed in PRESSURE_SEEDS:
        scenarios = [
            ("caps", "dram",
             dict(mailbox_cap=MAILBOX_CAP, queue_spill=QUEUE_SPILL)),
            ("storage", "nvram",
             dict(machine=nvram, storage_faults=_storage_plan(seed))),
            ("straggler", "dram",
             dict(stragglers=_straggler_plan(seed))),
            ("caps+storage+straggler", "nvram",
             dict(machine=nvram, mailbox_cap=MAILBOX_CAP,
                  queue_spill=QUEUE_SPILL,
                  storage_faults=_storage_plan(seed),
                  stragglers=_straggler_plan(seed))),
        ]
        for kind, base_key, kwargs in scenarios:
            for name, run in algorithms.items():
                label = f"{name} seed={seed} {kind}"
                base = baselines[name][base_key]
                pressured = run(**kwargs)
                runs += 1
                arrays = {
                    key: (got, result_arrays[name](base)[key])
                    for key, got in result_arrays[name](pressured).items()
                }
                problems += _check(label, pressured, base, arrays,
                                   _gates(kind, pressured.stats))
            st = pressured.stats
            print(f"  seed={seed} {kind}: "
                  f"{st.total_bp_stalls} bp stalls / "
                  f"{st.storage_retries} retries / "
                  f"{st.storage_spikes} spikes / "
                  f"{st.torn_pages} torn / "
                  f"{st.straggler_stall_us:.0f}us straggler stall")

    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    print(f"OK: {runs} pressured runs bit-identical to baselines")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
