"""Figure 9 — NVRAM data scaling at fixed compute (the 39% headline).

Paper claim: "at 2^36, which is 32x larger data than DRAM-only, the NVRAM
performance is only 39% slower than DRAM graph storage."  The shape checked
here: degradation at 32x is *moderate* — the traversal loses well under
(and nowhere near proportionally to) the 32x data growth — and the page
cache hit rate falls as data outgrows the fixed DRAM.
"""


def test_fig09_nvram_data_scaling(run_experiment):
    from repro.bench.experiments import fig09_nvram_data_scaling

    rows = run_experiment(fig09_nvram_data_scaling)
    dram = next(r for r in rows if r["storage"] == "dram")
    nvram = [r for r in rows if r["storage"] == "nvram"]
    biggest = max(nvram, key=lambda r: r["factor"])
    assert biggest["factor"] == 32

    degradation = 1.0 - biggest["teps"] / dram["teps"]
    # moderate, like the paper's 39%: clearly nonzero, clearly not collapse
    assert 0.10 < degradation < 0.75, f"degradation={degradation:.2f}"

    # hit rate declines as data outgrows the fixed cache
    small = next(r for r in nvram if r["factor"] == 1)
    assert biggest["cache_hit_rate"] < small["cache_hit_rate"]
