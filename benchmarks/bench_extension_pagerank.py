"""Extension — asynchronous PageRank convergence.

The residual-push formulation runs on the paper's framework unchanged (an
accumulating-state algorithm like k-core).  Claims checked: tightening the
residual threshold monotonically reduces L1 error against power-iteration
PageRank, at monotonically growing visitor cost.
"""


def test_extension_pagerank_convergence(run_experiment):
    from repro.bench.experiments import extension_pagerank_convergence

    rows = run_experiment(extension_pagerank_convergence)
    rows.sort(key=lambda r: -r["threshold"])
    errors = [r["l1_error"] for r in rows]
    visits = [r["visits"] for r in rows]
    assert all(errors[i] > errors[i + 1] for i in range(len(errors) - 1))
    assert all(visits[i] < visits[i + 1] for i in range(len(visits) - 1))
    # the tightest threshold is genuinely accurate
    assert errors[-1] < 0.02
