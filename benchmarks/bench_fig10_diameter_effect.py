"""Figure 10 — effect of graph diameter on BFS performance.

Paper claim: at fixed size and fixed compute, lowering the small-world
rewire probability raises the BFS depth, and BFS performance (TEPS) falls
monotonically with depth.
"""


def test_fig10_diameter_effect(run_experiment):
    from repro.bench.experiments import fig10_diameter_effect

    rows = run_experiment(fig10_diameter_effect)  # sorted by max_level
    depths = [r["max_level"] for r in rows]
    teps = [r["teps"] for r in rows]
    assert depths == sorted(depths)
    assert depths[-1] > 2 * depths[0]  # the sweep really moved the diameter
    # deeper BFS -> lower TEPS (decreasing trend; adjacent points may jitter)
    assert all(teps[i + 1] <= teps[i] * 1.05 for i in range(len(teps) - 1))
    assert teps[0] > 1.25 * teps[-1]
