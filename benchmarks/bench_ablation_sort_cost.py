"""Ablation — the one-off global edge sort vs a single BFS traversal.

Edge list partitioning's extra requirement ("the edge list is first sorted
by the edges' source vertex ... not an onerous requirement" — §III-A1),
quantified with the simulated distributed sample sort.  Claim checked: the
sort costs less than a handful of traversals, so it amortises immediately.
"""


def test_ablation_sort_cost(run_experiment):
    from repro.bench.experiments import ablation_sort_cost

    rows = run_experiment(ablation_sort_cost)
    for r in rows:
        # "not onerous": under 3 traversal-equivalents at every scale
        assert r["sort_over_bfs"] < 3.0, r
        # sample sort's buckets are usably balanced
        assert r["bucket_imbalance"] < 4.0, r
