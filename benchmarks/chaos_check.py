"""Seeded chaos gate: faulty runs must match fault-free runs bit-for-bit.

For a small RMAT graph, runs BFS and k-core under several fixed-seed fault
plans — packet drops, duplications, delays, and a rank crash with
checkpoint/replay recovery — and diffs every result array and logical
counter against the fault-free baseline on the same reliable transport.
Any divergence, or a chaos run that was not actually perturbed (zero
drops / retransmits / recoveries), fails the gate.

This is the executable form of the INTERNALS §8 invariant: faults may
change simulated time and wire traffic, never results or logical counts.

``--worker-chaos`` switches the gate to *host*-level failures: SIGKILLed,
hung, and mid-phase-exiting worker processes under the self-healing pool
(INTERNALS §12), plus restart-budget-exhausted degradation.  Every
supervised ``workers=4`` run must match the unfailed sequential run on
results and every stats field outside ``SUPERVISION_STATS_FIELDS``, and
every cell must actually have failed (crash/respawn/degrade counters
non-zero — a dead gate fails too).

Usage::

    python benchmarks/chaos_check.py                # CI gate (exit 1 on any diff)
    python benchmarks/chaos_check.py --scale 10     # bigger graph, same checks
    python benchmarks/chaos_check.py --worker-chaos # worker-failure gate
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

import numpy as np

from repro.algorithms.bfs import bfs
from repro.algorithms.kcore import kcore
from repro.algorithms.pagerank import pagerank
from repro.bench.harness import build_rmat_graph, pick_bfs_source
from repro.comm.faults import CrashEvent, FaultPlan, WorkerFaultPlan
from repro.runtime.trace import SUPERVISION_STATS_FIELDS

#: The fixed chaos seeds CI replays (never change lightly: the point is a
#: deterministic gate, not a statistical one).
CHAOS_SEEDS = (3, 7, 23)
CRASH = CrashEvent(tick=5, rank=2)


def _plans(seed: int) -> list[tuple[str, FaultPlan]]:
    return [
        (
            f"seed={seed} noise",
            FaultPlan(seed=seed, drop_rate=0.03, duplicate_rate=0.02,
                      delay_rate=0.05, max_delay=3),
        ),
        (
            f"seed={seed} crash",
            FaultPlan(seed=seed, drop_rate=0.03, duplicate_rate=0.02,
                      crashes=(CRASH,)),
        ),
    ]


def _counters(stats) -> tuple:
    return (
        stats.ticks,
        stats.total_visits,
        stats.total_previsits,
        stats.termination_waves,
        tuple(r.visits for r in stats.ranks),
        tuple(r.edges_scanned for r in stats.ranks),
    )


def _check(label: str, faulty, baseline, arrays: dict, expect_crash: bool) -> list[str]:
    problems = []
    for name, (got, want) in arrays.items():
        if not np.array_equal(got, want):
            problems.append(f"{label}: {name} diverged "
                            f"({int(np.count_nonzero(got != want))} entries)")
    if _counters(faulty.stats) != _counters(baseline.stats):
        problems.append(f"{label}: logical counters diverged")
    if faulty.stats.packets_dropped == 0:
        problems.append(f"{label}: fault plan injected no drops (dead gate)")
    if faulty.stats.retransmitted_packets == 0:
        problems.append(f"{label}: no retransmissions (dead gate)")
    if expect_crash and faulty.stats.recoveries != 1:
        problems.append(f"{label}: expected 1 recovery, "
                        f"saw {faulty.stats.recoveries}")
    return problems


#: The worker-failure matrix ``--worker-chaos`` replays: spec, extra kwargs,
#: and which supervision counter proves the cell actually engaged.
WORKER_SCENARIOS = (
    ("kill", "seed=7,kill=4:1", dict(worker_restarts=2), "worker_respawns"),
    ("hang", "seed=7,hang=4:2",
     dict(worker_restarts=2, worker_barrier_timeout=2.0), "worker_hangs"),
    ("exita", "seed=7,exita=3:0", dict(worker_restarts=2), "worker_respawns"),
    ("degrade", "seed=7,kill=4:1,forkfail=9",
     dict(worker_restarts=2), "degraded_ranks"),
)

WORKER_RUNNERS = (
    ("bfs", lambda g, src, **kw: bfs(g, src, **kw),
     lambda r: {"levels": r.data.levels, "parents": r.data.parents}),
    ("kcore", lambda g, src, **kw: kcore(g, 3, **kw),
     lambda r: {"alive": r.data.alive}),
    ("pagerank", lambda g, src, **kw: pagerank(g, **kw),
     lambda r: {"scores": r.data.scores}),
)


def _full_stats_key(stats) -> tuple:
    """Every stats field except the supervisor's own activity counters."""
    ranks = tuple(tuple(sorted(dataclasses.asdict(r).items()))
                  for r in stats.ranks)
    top = tuple(sorted(
        (k, v) for k, v in dataclasses.asdict(stats).items()
        if k not in ("ranks", "timeline")
        and k not in SUPERVISION_STATS_FIELDS
    ))
    return top, ranks


def worker_chaos(args) -> int:
    """Gate: supervised runs through host worker failures stay
    bit-identical to the unfailed sequential run."""
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        print("SKIP: worker chaos requires the fork start method")
        return 0

    edges, graph = build_rmat_graph(
        args.scale, num_partitions=4, num_ghosts=32, seed=2024
    )
    source = pick_bfs_source(edges, seed=17)
    problems: list[str] = []
    cells = 0
    for algo, run, extract in WORKER_RUNNERS:
        base = run(graph, source, batch=True)
        print(f"baseline: {algo} {base.stats.ticks} ticks "
              f"(scale {args.scale}, p=4, workers=1)")
        for name, spec, kw, engaged in WORKER_SCENARIOS:
            cells += 1
            label = f"{algo} {name}"
            try:
                sup = run(graph, source, batch=True, workers=4,
                          worker_faults=WorkerFaultPlan.from_spec(spec), **kw)
            except Exception as exc:  # a healed run must never raise
                problems.append(f"{label}: raised {exc!r}")
                continue
            for field, want in extract(base).items():
                got = extract(sup)[field]
                if not np.array_equal(got, want):
                    problems.append(
                        f"{label}: {field} diverged "
                        f"({int(np.count_nonzero(got != want))} entries)")
            if _full_stats_key(sup.stats) != _full_stats_key(base.stats):
                problems.append(f"{label}: stats diverged through the failure")
            if sup.stats.worker_crashes == 0:
                problems.append(f"{label}: no worker ever failed (dead gate)")
            if getattr(sup.stats, engaged) == 0:
                problems.append(f"{label}: {engaged} == 0 (cell not engaged)")
            print(f"  {label}: {sup.stats.worker_crashes} failures "
                  f"({sup.stats.worker_hangs} hung), "
                  f"{sup.stats.worker_respawns} respawns, "
                  f"{sup.stats.worker_replayed_ticks} ticks replayed, "
                  f"{sup.stats.degraded_ranks} ranks degraded")

    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    print(f"OK: {cells} supervised chaos runs bit-identical to baselines")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=8)
    parser.add_argument("-p", "--partitions", type=int, default=8)
    parser.add_argument("-k", type=int, default=3, help="k-core k")
    parser.add_argument(
        "--worker-chaos", action="store_true",
        help="gate host worker failures (SIGKILL/hang/exit/degrade at "
             "workers=4) instead of simulated transport faults")
    args = parser.parse_args(argv)

    if args.worker_chaos:
        return worker_chaos(args)

    edges, graph = build_rmat_graph(
        args.scale, num_partitions=args.partitions, num_ghosts=8, seed=17
    )
    source = pick_bfs_source(edges, seed=17)

    base_bfs = bfs(graph, source, reliable=True)
    base_kcore = kcore(graph, args.k, reliable=True)
    print(f"baselines: bfs {base_bfs.stats.ticks} ticks, "
          f"kcore {base_kcore.stats.ticks} ticks "
          f"(scale {args.scale}, p={args.partitions})")

    problems: list[str] = []
    for seed in CHAOS_SEEDS:
        for label, plan in _plans(seed):
            fb = bfs(graph, source, faults=plan)
            problems += _check(
                f"bfs {label}", fb, base_bfs,
                {"levels": (fb.data.levels, base_bfs.data.levels),
                 "parents": (fb.data.parents, base_bfs.data.parents)},
                expect_crash=plan.has_crashes,
            )
            fk = kcore(graph, args.k, faults=plan)
            problems += _check(
                f"kcore {label}", fk, base_kcore,
                {"alive": (fk.data.alive, base_kcore.data.alive)},
                expect_crash=plan.has_crashes,
            )
            # The same plan through the batch kernels: counter-mutating
            # pre-visits + checkpoint/replay of the array-backed state.
            fkb = kcore(graph, args.k, faults=plan, batch=True)
            problems += _check(
                f"kcore-batch {label}", fkb, base_kcore,
                {"alive": (fkb.data.alive, base_kcore.data.alive)},
                expect_crash=plan.has_crashes,
            )
            print(f"  {label}: bfs {fb.stats.packets_dropped} dropped / "
                  f"{fb.stats.retransmitted_packets} retransmits / "
                  f"{fb.stats.recoveries} recoveries; "
                  f"kcore {fk.stats.packets_dropped} dropped / "
                  f"{fk.stats.retransmitted_packets} retransmits / "
                  f"{fk.stats.recoveries} recoveries")

    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    print(f"OK: {len(CHAOS_SEEDS) * 6} chaos runs bit-identical to baselines")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
