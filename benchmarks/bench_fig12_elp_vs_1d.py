"""Figure 12 — edge list partitioning vs 1D partitioning.

Paper claims: (1) 1D's data imbalance blows up per-partition memory ("the
graph sizes in the experiments were reduced to prevent 1D from running out
of memory") and grows with p; (2) edge-list weak scaling is almost linear
while 1D suffers slowdowns from the imbalance.
"""

from collections import defaultdict


def test_fig12_elp_vs_1d(run_experiment):
    from repro.bench.experiments import fig12_elp_vs_1d

    rows = run_experiment(fig12_elp_vs_1d)
    by_strategy = defaultdict(dict)
    for r in rows:
        by_strategy[r["strategy"]][r["p"]] = r
    ps = sorted(by_strategy["edge_list"])
    largest = ps[-1]

    # (1) memory: edge-list partitions stay at their fair share; 1D's
    # worst partition grows well beyond it as p grows
    el_imb = by_strategy["edge_list"][largest]["edge_imbalance"]
    od_imb = by_strategy["1d"][largest]["edge_imbalance"]
    assert el_imb < 1.01
    assert od_imb > 1.3
    # 1D imbalance worsens with p
    assert (
        by_strategy["1d"][largest]["edge_imbalance"]
        > by_strategy["1d"][ps[0]]["edge_imbalance"]
    )

    # (2) performance at scale: edge list partitioning is faster
    assert (
        by_strategy["edge_list"][largest]["teps"]
        > by_strategy["1d"][largest]["teps"]
    )
