"""Figure 11 — effect of maximum vertex degree on triangle counting.

Paper claim: at fixed size and compute, lowering the PA rewire probability
grows the maximum hub degree, and triangle-counting time grows with it
(the d_max^out factor of the Section VI-D3 bound).
"""


def test_fig11_degree_effect(run_experiment):
    from repro.bench.experiments import fig11_degree_effect

    rows = run_experiment(fig11_degree_effect)  # sorted by max_degree
    degrees = [r["max_degree"] for r in rows]
    times = [r["time_us"] for r in rows]
    assert degrees == sorted(degrees)
    assert degrees[-1] > 3 * degrees[0]  # the sweep really moved the hub
    # the biggest-hub configuration is clearly the slowest
    assert times[-1] == max(times)
    assert times[-1] > 1.5 * times[0]
