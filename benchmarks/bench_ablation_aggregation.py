"""Ablation — mailbox aggregation buffer size.

Message aggregation is what the routed mailbox exists to enable; with no
aggregation (size 1), every visitor pays full packet overhead.  Claim
checked: packet count falls monotonically with the buffer size, and the
no-aggregation configuration is the slowest.
"""


def test_ablation_aggregation(run_experiment):
    from repro.bench.experiments import ablation_aggregation

    rows = run_experiment(ablation_aggregation)
    rows.sort(key=lambda r: r["aggregation_size"])
    packets = [r["packets"] for r in rows]
    assert all(packets[i] >= packets[i + 1] for i in range(len(packets) - 1))
    times = {r["aggregation_size"]: r["time_us"] for r in rows}
    assert times[1] == max(times.values())
