"""Ablation — NVRAM I/O concurrency (Section II-B's motivation).

"High levels of concurrent I/O are required to achieve optimal performance
from NVRAM devices; this is the underlying motivation for designing highly
concurrent asynchronous graph traversals."  Claim checked: restricting the
outstanding reads per tick to 1 (a synchronous traversal) is dramatically
slower than the asynchronous batched configuration.
"""


def test_ablation_io_concurrency(run_experiment):
    from repro.bench.experiments import ablation_io_concurrency

    rows = run_experiment(ablation_io_concurrency)
    rows.sort(key=lambda r: r["io_concurrency"])
    times = [r["time_us"] for r in rows]
    # time falls monotonically as concurrency rises
    assert all(times[i] >= times[i + 1] for i in range(len(times) - 1))
    # synchronous I/O (concurrency 1) is far slower than full concurrency
    assert times[0] > 3.0 * times[-1]
