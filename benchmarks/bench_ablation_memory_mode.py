"""Ablation — semi-external (the paper's design) vs fully-external memory.

Section VIII-A argues for keeping the O(V/p) vertex state resident while
edges live on flash ("semi-external memory where the vertex set is stored
in-memory and the edge set is stored in external memory").  Claim checked:
paging the vertex state as well (fully-external) is slower — every
pre_visit becomes a random page touch competing with the CSR for the same
per-rank cache — while the traversal's answers are unchanged.
"""


def test_ablation_semi_vs_full_external(run_experiment):
    from repro.bench.experiments import ablation_semi_vs_full_external

    rows = run_experiment(ablation_semi_vs_full_external)
    by_mode = {r["memory_mode"]: r for r in rows}
    semi = by_mode["semi-external"]
    full = by_mode["fully-external"]
    assert semi["time_us"] < full["time_us"]
    assert semi["teps"] > full["teps"]
    # both modes produce validated traversals (the harness validates)
    assert semi["validated"] and full["validated"]
