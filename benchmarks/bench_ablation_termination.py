"""Ablation — quiescence detection overhead.

The counting detector (Algorithm 1's global_empty) runs concurrent
reduction waves through the same network as visitors.  Claim checked: its
cost versus an omniscient oracle is bounded — detection adds ticks and
control packets but only a modest share of total time ("to check for
non-termination is an asynchronous event, and only becomes synchronous
after the visitor queues are already empty").
"""


def test_ablation_termination(run_experiment):
    from repro.bench.experiments import ablation_termination

    rows = run_experiment(ablation_termination)
    by_mode = {r["termination"]: r for r in rows}
    det = by_mode["counting-detector"]
    oracle = by_mode["oracle"]
    assert det["ticks"] >= oracle["ticks"]
    assert det["packets"] >= oracle["packets"]
    # overhead is real but bounded: well under 3x the oracle's time
    assert det["time_us"] < 3.0 * oracle["time_us"]
