"""Analysis utilities: hub growth, round bounds, TEPS, validation,
communication density."""

from repro.analysis.communication import CommunicationProfile, communication_profile
from repro.analysis.degree import (
    degree_histogram_report,
    fit_power_law,
    tail_heaviness,
)
from repro.analysis.hubs import HubStats, hub_growth_curve, hub_stats
from repro.analysis.rounds import (
    bfs_round_bound,
    kcore_round_bound,
    triangle_round_bound,
)
from repro.analysis.teps import bfs_traversed_edges, gteps, mteps, teps
from repro.analysis.validate import ValidationReport, validate_bfs

__all__ = [
    "HubStats",
    "hub_stats",
    "hub_growth_curve",
    "bfs_round_bound",
    "kcore_round_bound",
    "triangle_round_bound",
    "teps",
    "mteps",
    "gteps",
    "bfs_traversed_edges",
    "validate_bfs",
    "ValidationReport",
    "communication_profile",
    "CommunicationProfile",
    "fit_power_law",
    "tail_heaviness",
    "degree_histogram_report",
]
