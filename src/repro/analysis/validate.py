"""Graph500-style BFS output validation.

The Graph500 benchmark does not trust a submitted traversal: it validates
the returned parent array against the input edge list.  This module
implements the same checks for the framework's BFS results, so the harness
can stamp every TEPS row as *validated*:

1. the source's parent is itself and its level is 0;
2. every reached non-source vertex has a reached parent whose level is
   exactly one smaller (the tree edges respect BFS levels);
3. every claimed tree edge ``(parent[v], v)`` exists in the graph;
4. every graph edge spans at most one level (no edge is "skipped" — both
   endpoints reached implies ``|level[u] - level[v]| <= 1``);
5. reachability is exact: an edge from a reached vertex never leads to an
   unreached vertex (undirected inputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.edge_list import EdgeList
from repro.types import UNREACHED


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one BFS validation."""

    valid: bool
    errors: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.valid


def validate_bfs(
    edges: EdgeList,
    source: int,
    levels: np.ndarray,
    parents: np.ndarray,
    *,
    undirected: bool = True,
    max_errors: int = 5,
) -> ValidationReport:
    """Run the five Graph500-style checks; returns the first few failures."""
    errors: list[str] = []

    def fail(msg: str) -> bool:
        errors.append(msg)
        return len(errors) >= max_errors

    reached = levels != UNREACHED

    # 1. the source
    if levels[source] != 0:
        fail(f"source {source} has level {levels[source]}, expected 0")
    if parents[source] != source:
        fail(f"source {source} has parent {parents[source]}, expected itself")

    # 2 & 3. tree edges: level step and existence
    src_sorted = edges.src
    tree_vertices = np.flatnonzero(reached)
    for v in tree_vertices:
        v = int(v)
        if v == source:
            continue
        p = int(parents[v])
        if p < 0 or not reached[p]:
            if fail(f"vertex {v} reached but parent {p} is not"):
                break
            continue
        if levels[p] != levels[v] - 1:
            if fail(f"tree edge {p}->{v} spans levels {levels[p]}->{levels[v]}"):
                break
            continue
        lo = np.searchsorted(src_sorted, p, side="left")
        hi = np.searchsorted(src_sorted, p, side="right")
        if v not in edges.dst[lo:hi]:
            if fail(f"claimed tree edge ({p}, {v}) does not exist"):
                break

    # 4 & 5. every edge spans <= 1 level; no reached->unreached edges
    if len(errors) < max_errors:
        u_levels = levels[edges.src]
        v_levels = levels[edges.dst]
        both = (u_levels != UNREACHED) & (v_levels != UNREACHED)
        spans = np.abs(u_levels[both] - v_levels[both])
        if np.any(spans > 1):
            idx = int(np.flatnonzero(both)[np.argmax(spans > 1)])
            fail(
                f"edge ({int(edges.src[idx])}, {int(edges.dst[idx])}) spans "
                f"{int(spans.max())} levels"
            )
        if undirected:
            half = (u_levels != UNREACHED) & (v_levels == UNREACHED)
            if np.any(half):
                idx = int(np.argmax(half))
                fail(
                    f"edge ({int(edges.src[idx])}, {int(edges.dst[idx])}) "
                    "leaves the reached set — BFS missed a vertex"
                )

    return ValidationReport(valid=not errors, errors=errors)
