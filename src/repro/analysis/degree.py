"""Degree-distribution analysis for scale-free graphs.

"Many real-world graphs can be classified as scale-free, where vertex
degree follows a scale-free power-law distribution" (§II-A).  This module
quantifies that: log-binned degree histograms for reporting, and the
standard Clauset–Shalizi–Newman discrete MLE for the power-law exponent
``alpha`` (``P(deg = d) ∝ d^-alpha`` for ``d >= d_min``), so tests can
assert that the preferential-attachment generator really produces
``alpha ≈ 3`` and that rewiring destroys the tail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.stats import log2_histogram


@dataclass(frozen=True)
class PowerLawFit:
    """MLE power-law fit of a degree tail."""

    alpha: float
    d_min: int
    tail_size: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"alpha={self.alpha:.2f} (d >= {self.d_min}, n={self.tail_size})"


def fit_power_law(degrees: np.ndarray, *, d_min: int = 4) -> PowerLawFit:
    """Continuous-approximation MLE for the power-law exponent.

    ``alpha = 1 + n / sum(ln(d / (d_min - 0.5)))`` over the tail
    ``d >= d_min`` (Clauset, Shalizi & Newman 2009, eq. 3.7 discrete
    approximation).  Raises ``ValueError`` when the tail is empty.
    """
    if d_min < 2:
        raise ValueError(f"d_min must be >= 2, got {d_min}")
    tail = np.asarray(degrees, dtype=np.float64)
    tail = tail[tail >= d_min]
    if tail.size == 0:
        raise ValueError(f"no vertices with degree >= {d_min}")
    alpha = 1.0 + tail.size / np.log(tail / (d_min - 0.5)).sum()
    return PowerLawFit(alpha=float(alpha), d_min=d_min, tail_size=int(tail.size))


def degree_histogram_report(degrees: np.ndarray) -> str:
    """Log-binned degree histogram as an aligned text block."""
    hist = log2_histogram(np.asarray(degrees))
    if not hist:
        return "(empty degree distribution)"
    lines = ["degree-range        vertices"]
    for bucket in sorted(hist):
        if bucket == -1:
            label = "0"
        else:
            label = f"[{1 << bucket}, {1 << (bucket + 1)})"
        lines.append(f"{label:<18}  {hist[bucket]:>8}")
    return "\n".join(lines)


def tail_heaviness(degrees: np.ndarray) -> float:
    """Fraction of all edge endpoints held by the top 1% of vertices — a
    scale-free graph concentrates a large share there, a uniform-degree
    graph about 1%."""
    d = np.sort(np.asarray(degrees, dtype=np.float64))[::-1]
    if d.size == 0 or d.sum() == 0:
        return 0.0
    top = max(1, d.size // 100)
    return float(d[:top].sum() / d.sum())
