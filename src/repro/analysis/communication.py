"""Communication-density analysis (Section III-B).

"When the parallel partitioned graph contains Ω(|E|^α) cut edges, a
polynomial number of graph edges will require communication between
processors.  Additionally, dense communication occurs when Ω(p^(α+1))
pairs of processors share cut edges, in the worst case creating all-to-all
communication."

These functions measure exactly those two quantities for a partitioned
graph — the numbers that motivate the routed mailbox — plus the density of
the processor-pair communication matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.distributed import DistributedGraph


@dataclass(frozen=True)
class CommunicationProfile:
    """Static communication structure of one partitioned graph."""

    num_partitions: int
    #: edges whose target's master lives on a different rank than the edge.
    cut_edges: int
    total_edges: int
    #: ordered (sender, receiver) rank pairs that share at least one cut edge.
    communicating_pairs: int
    #: communicating_pairs / (p * (p - 1)): 1.0 == all-to-all.
    pair_density: float
    #: per-receiver cut-edge counts (hotspot structure ghosts address).
    in_cut_per_rank: np.ndarray

    @property
    def cut_fraction(self) -> float:
        """Fraction of edges crossing partition boundaries."""
        return self.cut_edges / self.total_edges if self.total_edges else 0.0


def communication_profile(graph: DistributedGraph) -> CommunicationProfile:
    """Measure cut edges and communicating pairs of a partitioned graph.

    An edge stored on rank ``r`` with target ``v`` induces communication
    ``r -> min_owner(v)`` whenever those ranks differ (the visitor created
    for ``v`` must cross the network); this mirrors what the visitor queue
    actually sends.
    """
    p = graph.num_partitions
    pair_matrix = np.zeros((p, p), dtype=np.int64)
    edges = graph.edges
    min_owners = graph.min_owners
    cut = 0
    for rank, part in enumerate(graph.partitions):
        targets = edges.dst[part.edge_lo : part.edge_hi]
        owners = min_owners[targets]
        counts = np.bincount(owners, minlength=p)
        counts_off = counts.copy()
        counts_off[rank] = 0
        cut += int(counts_off.sum())
        pair_matrix[rank] += counts_off
    communicating = int(np.count_nonzero(pair_matrix))
    density = communicating / (p * (p - 1)) if p > 1 else 0.0
    return CommunicationProfile(
        num_partitions=p,
        cut_edges=cut,
        total_edges=graph.num_edges,
        communicating_pairs=communicating,
        pair_density=density,
        in_cut_per_rank=pair_matrix.sum(axis=0),
    )
