"""Asymptotic analysis framework (Section VI-D).

Upper bounds on the number of *parallel rounds* of the idealised execution
model: synchronized rounds, one visitor per processor per round, a single
contention-free shared queue, instantaneous transmission, one visitor per
vertex per round.

The bounds (Theta / big-O up to constants; these helpers return the bound
expression's value with unit constants so tests can check measured rounds
are within a constant factor):

* BFS without ghosts:      ``D + |E|/p + d_max_in``
* BFS with ghosts:         ``D + |E|/p + p``       (ghosts cut the hub term)
* K-Core:                  ``D + |E|/p + d_max_in`` (no ghosts allowed)
* Triangle counting:       ``|E| * d_max_out / p + d_max_in``
"""

from __future__ import annotations


def bfs_round_bound(
    diameter: int, num_edges: int, num_processors: int, max_in_degree: int,
    *, with_ghosts: bool = False,
) -> float:
    """Parallel-round bound for asynchronous BFS (Section VI-D1)."""
    _check(num_edges, num_processors)
    hub_term = num_processors if with_ghosts else max_in_degree
    return diameter + num_edges / num_processors + hub_term


def kcore_round_bound(
    diameter: int, num_edges: int, num_processors: int, max_in_degree: int
) -> float:
    """Parallel-round bound for asynchronous k-core (Section VI-D2); k-core
    cannot use ghosts, so the hub term is always ``d_max_in``."""
    _check(num_edges, num_processors)
    return diameter + num_edges / num_processors + max_in_degree


def triangle_round_bound(
    num_edges: int, num_processors: int, max_out_degree: int, max_in_degree: int
) -> float:
    """Parallel-round bound for triangle counting (Section VI-D3)."""
    _check(num_edges, num_processors)
    return num_edges * max_out_degree / num_processors + max_in_degree


def _check(num_edges: int, num_processors: int) -> None:
    if num_processors < 1:
        raise ValueError(f"need at least one processor, got {num_processors}")
    if num_edges < 0:
        raise ValueError(f"negative edge count {num_edges}")
