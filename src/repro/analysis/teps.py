"""TEPS (Traversed Edges Per Second) accounting, Graph500 conventions.

Graph500 defines ``TEPS = m / t`` where ``m`` is the number of *input*
(undirected) edges within the traversed component and ``t`` the BFS time.
The simulated clock provides ``t``; ``m`` is recomputed from the BFS output
against the input edge list, exactly as the benchmark's validator does.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edge_list import EdgeList
from repro.types import UNREACHED


def bfs_traversed_edges(edges: EdgeList, levels: np.ndarray, *, undirected: bool = True) -> int:
    """Edges counted as traversed by a BFS with the given level array.

    An edge counts when its source was reached.  For a symmetrized
    (undirected) edge list each undirected edge appears twice, so the count
    is halved.
    """
    reached = levels != UNREACHED
    m = int(np.count_nonzero(reached[edges.src]))
    return m // 2 if undirected else m


def teps(traversed_edges: int, time_us: float) -> float:
    """Traversed edges per second from a microsecond duration."""
    if time_us <= 0:
        raise ValueError(f"non-positive traversal time {time_us}")
    return traversed_edges / (time_us * 1e-6)


def mteps(traversed_edges: int, time_us: float) -> float:
    """Millions of traversed edges per second (Table II's unit)."""
    return teps(traversed_edges, time_us) / 1e6


def gteps(traversed_edges: int, time_us: float) -> float:
    """Billions of traversed edges per second (Figure 5's unit)."""
    return teps(traversed_edges, time_us) / 1e9
