"""Hub-growth statistics (Figure 1).

"While the average degree is held constant at 16, the number of edges
belonging to hubs of degree greater than 1,000 or 10,000 continue to grow
as graph size increases.  The max degree hub also continues to grow, and by
the graph size of 2^30 vertices, the max degree hub has already crossed
10 Million edges."

Degrees are accumulated from streamed generator chunks, so the curve can be
computed for graphs whose full edge list would not fit in memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.generators.graph500 import DEFAULT_EDGEFACTOR
from repro.generators.rmat import rmat_edge_chunks
from repro.types import VID_DTYPE


@dataclass(frozen=True)
class HubStats:
    """Edge mass held by hubs of one graph."""

    num_vertices: int
    num_edges: int
    max_degree: int
    #: threshold -> total edges belonging to vertices with degree >= threshold.
    edges_at_threshold: dict[int, int]

    def edges_of_max_degree_vertex(self) -> int:
        """Edge count of the single largest hub (Figure 1's MaxDegree series)."""
        return self.max_degree


def hub_stats(degrees: np.ndarray, thresholds: tuple[int, ...] = (1_000, 10_000)) -> HubStats:
    """Summarise hub structure from a per-vertex degree array."""
    degrees = np.asarray(degrees, dtype=VID_DTYPE)
    total = int(degrees.sum())
    return HubStats(
        num_vertices=int(degrees.size),
        num_edges=total,
        max_degree=int(degrees.max(initial=0)),
        edges_at_threshold={
            int(t): int(degrees[degrees >= t].sum()) for t in thresholds
        },
    )


def rmat_degree_counts(scale: int, edgefactor: int = DEFAULT_EDGEFACTOR, *,
                       seed: int | None = 0, chunk_size: int = 1 << 20) -> np.ndarray:
    """Total (out + in) degree of every vertex of a streamed RMAT instance."""
    n = 1 << scale
    degrees = np.zeros(n, dtype=VID_DTYPE)
    for src, dst in rmat_edge_chunks(scale, edgefactor << scale, seed=seed,
                                     chunk_size=chunk_size):
        degrees += np.bincount(src, minlength=n)
        degrees += np.bincount(dst, minlength=n)
    return degrees


def hub_growth_curve(
    scales: tuple[int, ...],
    *,
    edgefactor: int = DEFAULT_EDGEFACTOR,
    thresholds: tuple[int, ...] = (1_000, 10_000),
    seed: int | None = 0,
) -> list[HubStats]:
    """The Figure 1 curve: hub stats for RMAT graphs of increasing scale.

    The paper plots scales 22-30 with thresholds 1,000 / 10,000; at
    reproduction scale callers pass smaller scales with proportionally
    smaller thresholds (see EXPERIMENTS.md).
    """
    out = []
    for scale in scales:
        degrees = rmat_degree_counts(scale, edgefactor, seed=seed)
        out.append(hub_stats(degrees, thresholds))
    return out
