"""Deterministic store-and-forward network fabric.

Packets flushed during tick ``t`` become available at their next-hop rank
at tick ``t + 1`` — one simulation tick per network hop.  The engine maps
tick count to simulated time via the machine model's hop latency, so a 2D
route costs two hops of latency but buys larger aggregated packets, exactly
the trade-off Section III-B describes.
"""

from __future__ import annotations

from repro.comm.message import KIND_VISITOR, Packet
from repro.errors import CommunicationError


class Network:
    """In-flight packet store shared by all mailboxes of one traversal."""

    def __init__(self, num_ranks: int) -> None:
        if num_ranks < 1:
            raise CommunicationError(f"need at least 1 rank, got {num_ranks}")
        self.num_ranks = num_ranks
        self._sent_this_tick: list[Packet] = []
        #: Cumulative fabric statistics.
        self.total_packets = 0
        self.total_bytes = 0

    def send_packet(self, packet: Packet) -> None:
        """Inject a packet; it arrives at ``packet.hop_dest`` next tick."""
        if not 0 <= packet.hop_dest < self.num_ranks:
            raise CommunicationError(f"packet addressed to invalid rank {packet.hop_dest}")
        self._sent_this_tick.append(packet)
        self.total_packets += 1
        self.total_bytes += packet.wire_bytes

    def advance(self) -> list[list[Packet]]:
        """Move the tick boundary: deliver everything sent last tick.

        Returns per-rank packet lists (index = rank); one call per tick, so
        every hop costs exactly one tick of latency.
        """
        arrivals: list[list[Packet]] = [[] for _ in range(self.num_ranks)]
        for pkt in self._sent_this_tick:
            arrivals[pkt.hop_dest].append(pkt)
        self._sent_this_tick = []
        return arrivals

    def packets_in_flight(self) -> int:
        """Packets sent but not yet handed to a mailbox."""
        return len(self._sent_this_tick)

    def visitor_envelopes_in_flight(self) -> int:
        """Logical visitor messages inside in-flight packets (quiescence
        cross-checks; control traffic is excluded)."""
        return sum(
            env.count
            for pkt in self._sent_this_tick
            for env in pkt.envelopes
            if env.kind == KIND_VISITOR
        )

    def idle(self) -> bool:
        """True when no packet is anywhere in the fabric."""
        return self.packets_in_flight() == 0

    # -- durable checkpoints ------------------------------------------- #
    def snapshot_full(self) -> dict:
        """Whole-fabric state image for durable checkpoints.

        Unlike the per-rank recovery snapshots, this captures everything a
        host restart needs in one object so packet identity inside the
        image survives a single pickle round-trip."""
        return {
            "sent": list(self._sent_this_tick),
            "total_packets": self.total_packets,
            "total_bytes": self.total_bytes,
        }

    def restore_full(self, snap: dict) -> None:
        """Reinstall a :meth:`snapshot_full` image."""
        self._sent_this_tick = list(snap["sent"])
        self.total_packets = snap["total_packets"]
        self.total_bytes = snap["total_bytes"]
