"""Simulated communication substrate.

Implements the paper's *routed mailbox* (Section III-B): point-to-point
message envelopes, aggregation buffers, synthetic 2D / 3D routing
topologies that bound the number of communicating channels per rank, and
the counting-based quiescence detector behind ``global_empty()``
(Section V, citing Mattern).

Everything moves through :class:`repro.comm.network.Network`, a
deterministic store-and-forward fabric advanced one hop per simulation
tick by the engine.
"""

from repro.comm.mailbox import Mailbox
from repro.comm.message import KIND_CONTROL, KIND_VISITOR, Envelope
from repro.comm.network import Network
from repro.comm.routing import (
    DirectTopology,
    Grid2DTopology,
    Grid3DTopology,
    HypercubeTopology,
    make_topology,
)
from repro.comm.termination import QuiescenceDetector

__all__ = [
    "Envelope",
    "KIND_VISITOR",
    "KIND_CONTROL",
    "Network",
    "Mailbox",
    "DirectTopology",
    "Grid2DTopology",
    "Grid3DTopology",
    "HypercubeTopology",
    "make_topology",
    "QuiescenceDetector",
]
