"""Reliable, exactly-once packet delivery over a faulty fabric.

:class:`ReliableTransport` presents the same interface as
:class:`~repro.comm.network.Network` (mailboxes and the engine cannot tell
them apart) but runs a link-level reliability protocol over a fabric that
may drop, duplicate and delay transmissions and whose ranks may crash:

* every data packet carries a per-``(src, hop_dest)`` **sequence number**;
* receivers **deduplicate** (a seq at or below the cumulative watermark, or
  already buffered, is discarded) and **release in order** — the visitor
  and control streams each mailbox observes are exactly-once, per-channel
  FIFO;
* receivers send **cumulative acks**, piggybacked on reverse-direction data
  packets when one is departing the same round, as standalone ack packets
  otherwise;
* senders keep unacked packets and **retransmit on timeout** with
  exponential backoff in fabric rounds (simulated time).

Tick transparency
-----------------
The engine calls :meth:`advance` once per logical tick, exactly as it calls
``Network.advance``.  Internally the transport spins *fabric rounds* (one
round = one hop time) until every data packet of the tick is released at
its destination; faults therefore stretch the tick's simulated latency and
add retransmission wire traffic, but the *logical delivery schedule* — which
envelopes each rank processes on which tick, and in which order — is
identical to the fault-free run.  That schedule preservation is what makes
the fault-equivalence guarantee exact (bit-identical vertex states and
visit counts) rather than statistical; see INTERNALS §8.

Released packets are handed to mailboxes in canonical ``(src, seq)`` order,
a deterministic order reproducible across crash recovery (unlike raw
injection order, which a replayed rank cannot reconstruct).

Rank crashes are orchestrated here (the fault plan names the tick), while
state restoration itself lives in :mod:`repro.runtime.recovery`: the
transport wipes the crashed rank's endpoint state, waits out the down time,
then asks the recovery manager to restore the last epoch checkpoint and
replay the delivery log.  Replayed sends are assigned their original
sequence numbers and skipped when the receiver's watermark shows them
already delivered — the restart handshake of real reliable transports,
charged a flat resync cost instead of a simulated round trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comm.faults import FaultInjector, FaultPlan
from repro.comm.message import (
    ACK_PACKET_BYTES,
    KIND_VISITOR,
    RELIABLE_HEADER_BYTES,
    Packet,
)
from repro.errors import CommunicationError


@dataclass
class TransportReport:
    """Per-``advance`` accounting the engine folds into costs and stats."""

    num_ranks: int
    #: fabric rounds this tick took (1 for a fault-free tick with traffic).
    rounds: int = 0
    #: hop-times from first send to last data release (the tick's latency).
    data_latency: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    duplicates_discarded: int = 0
    #: data injections deferred a round because the per-channel in-flight
    #: window was full (bounded-transport flow control).
    window_stalls: int = 0
    lost_to_down: int = 0
    replay_skipped: int = 0
    replay_resent: int = 0
    replayed_ticks: int = 0
    retrans_packets: list[int] = field(default_factory=list)
    retrans_bytes: list[int] = field(default_factory=list)
    ack_packets: list[int] = field(default_factory=list)
    overhead_bytes: list[int] = field(default_factory=list)
    recovery_us: list[float] = field(default_factory=list)
    crashed: list[int] = field(default_factory=list)
    recovered: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        p = self.num_ranks
        self.retrans_packets = [0] * p
        self.retrans_bytes = [0] * p
        self.ack_packets = [0] * p
        self.overhead_bytes = [0] * p
        self.recovery_us = [0.0] * p


class ReliableTransport:
    """Drop-in :class:`Network` replacement with reliable delivery.

    ``recovery`` (a :class:`~repro.runtime.recovery.RecoveryManager`) must
    be attached before the first tick when the fault plan contains crashes.
    """

    def __init__(
        self,
        num_ranks: int,
        plan: FaultPlan | None = None,
        *,
        retransmit_timeout: int = 4,
        max_attempts: int = 16,
        backoff_cap: int = 64,
        max_rounds_per_tick: int = 100_000,
        channel_window: int | None = None,
    ) -> None:
        if num_ranks < 1:
            raise CommunicationError(f"need at least 1 rank, got {num_ranks}")
        if channel_window is not None and channel_window < 1:
            raise CommunicationError(
                f"channel_window must be >= 1, got {channel_window}"
            )
        if retransmit_timeout < 3:
            # data hop + ack hop + one round of slack: anything shorter
            # retransmits spuriously on a healthy fabric.
            raise CommunicationError(
                f"retransmit_timeout must be >= 3 rounds, got {retransmit_timeout}"
            )
        self.num_ranks = num_ranks
        self.plan = plan
        self.injector = FaultInjector(plan) if plan is not None and plan.any_faults else None
        self.recovery = None  # attached by the engine when checkpointing is on
        self.timeout0 = retransmit_timeout
        self.max_attempts = max_attempts
        self.backoff_cap = backoff_cap
        self.max_rounds = max_rounds_per_tick
        #: Max unacked data packets per (src, dst) channel; further
        #: injections wait in the queue until acks free window slots.
        #: Flow control only: per-channel FIFO release order is unchanged,
        #: so the logical delivery schedule stays identical.
        self.channel_window = channel_window

        #: Cumulative fabric statistics (wire truth: every transmission,
        #: retransmissions, duplicates and acks included).
        self.total_packets = 0
        self.total_bytes = 0

        self._tick = 0
        self._round = 0
        # channel state, keyed (src, dst)
        self._next_seq: dict[tuple[int, int], int] = {}
        self._recv_next: dict[tuple[int, int], int] = {}
        self._recv_buffer: dict[tuple[int, int], dict[int, Packet]] = {}
        # sender retransmission state: (src, dst) -> {seq: [pkt, attempts, due]}
        self._unacked: dict[tuple[int, int], dict[int, list]] = {}
        # receivers owing a cumulative ack: (src, dst) -> ack value
        self._need_ack: dict[tuple[int, int], int] = {}
        # transmissions awaiting injection / copies on the wire
        self._queued: list[tuple[int, Packet]] = []
        self._in_flight: list[tuple[int, Packet]] = []
        # logical data packets not yet released to their destination mailbox
        self._live: dict[tuple[int, int, int], Packet] = {}
        # crash state
        self._down: set[int] = set()
        self._restore_due: dict[int, int] = {}
        self._replaying: int | None = None
        self._report = TransportReport(num_ranks)

    # ------------------------------------------------------------------ #
    # Network interface
    # ------------------------------------------------------------------ #
    def send_packet(self, packet: Packet) -> None:
        """Stamp a sequence number and queue the packet for the next tick's
        delivery phase (or skip it, during replay, when the receiver's
        watermark shows it was already delivered)."""
        if not 0 <= packet.hop_dest < self.num_ranks:
            raise CommunicationError(
                f"packet addressed to invalid rank {packet.hop_dest}"
            )
        s, d = packet.src, packet.hop_dest
        ch = (s, d)
        seq = self._next_seq.get(ch, 0)
        self._next_seq[ch] = seq + 1
        packet.seq = seq
        if self._replaying is not None and s == self._replaying:
            if seq < self._recv_next.get(ch, 0):
                self._report.replay_skipped += 1
                return
            self._report.replay_resent += 1
        self._queued.append((self._round + 1, packet))
        self._live[(s, d, seq)] = packet

    def advance(self) -> list[list[Packet]]:
        """Run one logical tick's delivery phase to completion.

        Spins fabric rounds — injecting queued transmissions, delivering
        in-flight copies, emitting acks, retransmitting on timeout, and
        crashing / restoring ranks per the fault plan — until every data
        packet is released, then returns per-rank packet lists in canonical
        ``(src, seq)`` order.  :meth:`take_report` describes what it cost.
        """
        self._tick += 1
        rep = self._report = TransportReport(self.num_ranks)
        if self.plan is not None:
            for ev in self.plan.crashes_at(self._tick):
                self._crash(ev)
        released: list[list[Packet]] = [[] for _ in range(self.num_ranks)]
        start = self._round
        last_release = start
        while True:
            if not self._live and not self._restore_due:
                if self._round > start:
                    break
                if not (
                    self._queued
                    or self._in_flight
                    or self._need_ack
                    or any(self._unacked.values())
                ):
                    break
            if self._round - start >= self.max_rounds:
                raise CommunicationError(
                    f"reliable transport could not complete tick {self._tick} "
                    f"within {self.max_rounds} fabric rounds "
                    f"({len(self._live)} packets undelivered)"
                )
            self._round += 1
            now = self._round
            rep.rounds += 1
            # 1. restarts due this round
            for r in sorted(r for r, due in self._restore_due.items() if due <= now):
                del self._restore_due[r]
                self._down.discard(r)
                self._restore(r)
            # 2. deliver in-flight copies
            arriving = [item for item in self._in_flight if item[0] <= now]
            if arriving:
                self._in_flight = [item for item in self._in_flight if item[0] > now]
                for _, pkt in arriving:
                    if self._receive_copy(pkt, released):
                        last_release = now
            # 3. send phase: acks, queued transmissions, due retransmits
            self._send_phase(now)
        rep.data_latency = max(0, last_release - start)
        for r in range(self.num_ranks):
            released[r].sort(key=lambda p: (p.src, p.seq))
        return released

    def packets_in_flight(self) -> int:
        """Logical data packets sent but not yet released to a mailbox."""
        return len(self._live)

    def visitor_envelopes_in_flight(self) -> int:
        """Logical visitor messages inside unreleased data packets (wire
        copies and retransmissions of already-released packets excluded)."""
        return sum(
            env.count
            for pkt in self._live.values()
            for env in pkt.envelopes
            if env.kind == KIND_VISITOR
        )

    def idle(self) -> bool:
        """True when nothing — data, acks or retransmission state — remains
        anywhere in the transport."""
        return not (
            self._live
            or self._queued
            or self._in_flight
            or self._need_ack
            or self._restore_due
            or any(self._unacked.values())
        )

    # ------------------------------------------------------------------ #
    def take_report(self) -> TransportReport:
        """The accounting of the most recent :meth:`advance`."""
        return self._report

    # ------------------------------------------------------------------ #
    # protocol internals
    # ------------------------------------------------------------------ #
    def _transmit(self, pkt: Packet, now: int, *, count_overhead: bool) -> None:
        """Put one wire copy of a data packet on the fabric (fault draws
        apply).  ``count_overhead=False`` for retransmissions, whose full
        wire cost (payload + header) is already in ``retrans_bytes``."""
        rep = self._report
        self.total_packets += 1
        self.total_bytes += pkt.wire_bytes + RELIABLE_HEADER_BYTES
        if count_overhead:
            rep.overhead_bytes[pkt.src] += RELIABLE_HEADER_BYTES
        decision = self.injector.decide() if self.injector is not None else None
        if decision is not None and decision.dropped:
            rep.dropped += 1
            return
        delay = 0
        if decision is not None:
            if decision.delay:
                rep.delayed += 1
                delay = decision.delay
            if decision.duplicated:
                rep.duplicated += 1
                self.total_packets += 1
                self.total_bytes += pkt.wire_bytes + RELIABLE_HEADER_BYTES
                self._in_flight.append((now + 1 + decision.dup_delay, pkt))
        self._in_flight.append((now + 1 + delay, pkt))

    def _send_phase(self, now: int) -> None:
        rep = self._report
        due = [item for item in self._queued if item[0] <= now]
        if due:
            self._queued = [item for item in self._queued if item[0] > now]
        if self.channel_window is not None and due:
            # credit gate: injections beyond the per-channel window wait a
            # round for acks to free slots (relative order preserved)
            inject: list = []
            injected_now: dict[tuple[int, int], int] = {}
            for item in due:
                pkt = item[1]
                ch = (pkt.src, pkt.hop_dest)
                outstanding = (len(self._unacked.get(ch, ()))
                               + injected_now.get(ch, 0))
                if outstanding < self.channel_window:
                    inject.append(item)
                    injected_now[ch] = injected_now.get(ch, 0) + 1
                else:
                    rep.window_stalls += 1
                    self._queued.append((now + 1, pkt))
            due = inject
        # piggyback owed acks onto departing reverse-direction data
        for _, pkt in due:
            owed = (pkt.hop_dest, pkt.src)  # channel whose receiver is pkt.src
            if owed in self._need_ack:
                pkt.ack = self._need_ack.pop(owed)
        # standalone acks for whatever could not piggyback
        if self._need_ack:
            for (s, d) in sorted(self._need_ack):
                value = self._need_ack[(s, d)]
                if d in self._down or value < 0:
                    continue
                ack = Packet(src=d, hop_dest=s, envelopes=[], ack=value)
                rep.ack_packets[d] += 1
                self.total_packets += 1
                self.total_bytes += ACK_PACKET_BYTES
                rep.overhead_bytes[d] += ACK_PACKET_BYTES
                self._transmit_raw(ack, now)
            self._need_ack.clear()
        # inject queued data
        for _, pkt in due:
            ch = (pkt.src, pkt.hop_dest)
            self._unacked.setdefault(ch, {})[pkt.seq] = [pkt, 0, now + self.timeout0]
            self._transmit(pkt, now, count_overhead=True)
        # timeout-driven retransmissions (exponential backoff)
        for ch in sorted(self._unacked):
            pending = self._unacked[ch]
            src = ch[0]
            if src in self._down:
                continue
            for seq in sorted(pending):
                entry = pending[seq]
                if entry[2] > now:
                    continue
                entry[1] += 1
                if entry[1] > self.max_attempts:
                    raise CommunicationError(
                        f"packet {ch}#{seq} exceeded {self.max_attempts} "
                        f"retransmission attempts; fabric unrecoverable"
                    )
                entry[2] = now + min(self.timeout0 << entry[1], self.backoff_cap)
                rep.retrans_packets[src] += 1
                rep.retrans_bytes[src] += entry[0].wire_bytes + RELIABLE_HEADER_BYTES
                self._transmit(entry[0], now, count_overhead=False)

    def _transmit_raw(self, pkt: Packet, now: int) -> None:
        """Transmit an ack copy (fault draws apply, no retransmission —
        cumulative acks are naturally re-sent on the next reception)."""
        decision = self.injector.decide() if self.injector is not None else None
        if decision is not None and decision.dropped:
            self._report.dropped += 1
            return
        delay = decision.delay if decision is not None else 0
        if decision is not None and decision.delay:
            self._report.delayed += 1
        if decision is not None and decision.duplicated:
            self._report.duplicated += 1
            self.total_packets += 1
            self.total_bytes += ACK_PACKET_BYTES
            self._in_flight.append((now + 1 + decision.dup_delay, pkt))
        self._in_flight.append((now + 1 + delay, pkt))

    def _receive_copy(self, pkt: Packet, released: list[list[Packet]]) -> bool:
        """Process one arriving wire copy; True when data was released."""
        rep = self._report
        d = pkt.hop_dest
        if d in self._down:
            rep.lost_to_down += 1
            return False
        s = pkt.src
        if pkt.ack >= 0:
            # ack for the reverse channel (d -> s): prune the sender side
            pending = self._unacked.get((d, s))
            if pending:
                for seq in [q for q in pending if q <= pkt.ack]:
                    del pending[seq]
        if pkt.seq < 0:
            return False  # pure ack
        ch = (s, d)
        nxt = self._recv_next.get(ch, 0)
        buf = self._recv_buffer.setdefault(ch, {})
        if pkt.seq < nxt or pkt.seq in buf:
            rep.duplicates_discarded += 1
            self._need_ack[ch] = nxt - 1  # re-ack so the sender stops
            return False
        buf[pkt.seq] = pkt
        got = False
        while nxt in buf:
            out = buf.pop(nxt)
            released[d].append(out)
            self._live.pop((s, d, nxt), None)
            nxt += 1
            got = True
        self._recv_next[ch] = nxt
        self._need_ack[ch] = nxt - 1
        return got

    # ------------------------------------------------------------------ #
    # crash / recovery orchestration
    # ------------------------------------------------------------------ #
    def _crash(self, ev) -> None:
        r = ev.rank
        if not 0 <= r < self.num_ranks:
            raise CommunicationError(f"fault plan crashes invalid rank {r}")
        if self.recovery is None:
            raise CommunicationError(
                "fault plan contains rank crashes but no recovery manager is "
                "attached (enable checkpointing: EngineConfig.checkpoint_interval)"
            )
        self._report.crashed.append(r)
        self._down.add(r)
        self._restore_due[r] = self._round + ev.down_rounds
        # the crashed rank's NIC state dies with it
        self._queued = [(due, p) for (due, p) in self._queued if p.src != r]
        for key in [k for k in self._unacked if k[0] == r]:
            del self._unacked[key]
        for key in [k for k in self._next_seq if k[0] == r]:
            del self._next_seq[key]
        for key in [k for k in self._recv_next if k[1] == r]:
            del self._recv_next[key]
        for key in [k for k in self._recv_buffer if k[1] == r]:
            del self._recv_buffer[key]
        for key in [k for k in self._need_ack if k[1] == r]:
            del self._need_ack[key]

    def _restore(self, r: int) -> None:
        rep = self._report
        rep.recovered.append(r)
        self._replaying = r
        try:
            cost_us, replayed = self.recovery.restore_and_replay(r, self._tick)
        finally:
            self._replaying = None
        rep.recovery_us[r] += cost_us
        rep.replayed_ticks += replayed

    # --- hooks used by the recovery manager --------------------------- #
    def snapshot_rank(self, r: int) -> dict:
        """Channel state owned by rank ``r`` (checkpointed each epoch)."""
        return {
            "next_seq": {k[1]: v for k, v in self._next_seq.items() if k[0] == r},
            "recv_next": {k[0]: v for k, v in self._recv_next.items() if k[1] == r},
            "queued": [pkt for _, pkt in self._queued if pkt.src == r],
        }

    def restore_rank(self, r: int, snap: dict) -> None:
        """Reinstall ``r``'s epoch channel state and re-queue its
        checkpointed-but-undelivered outgoing packets (watermark-filtered,
        the restart handshake)."""
        for d, v in snap["next_seq"].items():
            self._next_seq[(r, d)] = v
        for s, v in snap["recv_next"].items():
            self._recv_next[(s, r)] = v
        for pkt in snap["queued"]:
            if pkt.seq >= self._recv_next.get((r, pkt.hop_dest), 0):
                self._queued.append((self._round, pkt))
                self._live[(r, pkt.hop_dest, pkt.seq)] = pkt
            else:
                self._report.replay_skipped += 1

    # --- durable checkpoints ------------------------------------------ #
    def snapshot_full(self) -> dict:
        """Whole-transport state image for durable checkpoints.

        Captured (and later restored) as *one* object so that a data packet
        referenced from several structures at once (``_queued``, ``_live``,
        ``_unacked``, ``_in_flight``) keeps a single identity through the
        pickle round-trip, exactly as it would in a live process.  Sets are
        stored as sorted lists so the on-disk bytes are independent of the
        writer's hash seed."""
        return {
            "tick": self._tick,
            "round": self._round,
            "total_packets": self.total_packets,
            "total_bytes": self.total_bytes,
            "next_seq": dict(self._next_seq),
            "recv_next": dict(self._recv_next),
            "recv_buffer": {ch: dict(buf) for ch, buf in sorted(self._recv_buffer.items())},
            "unacked": {
                ch: {seq: list(entry) for seq, entry in sorted(pending.items())}
                for ch, pending in sorted(self._unacked.items())
            },
            "need_ack": dict(self._need_ack),
            "queued": list(self._queued),
            "in_flight": list(self._in_flight),
            "live": dict(self._live),
            "down": sorted(self._down),
            "restore_due": dict(self._restore_due),
            "injector": (
                self.injector.snapshot_state() if self.injector is not None else None
            ),
        }

    def restore_full(self, snap: dict) -> None:
        """Reinstall a :meth:`snapshot_full` image (same plan/topology)."""
        self._tick = snap["tick"]
        self._round = snap["round"]
        self.total_packets = snap["total_packets"]
        self.total_bytes = snap["total_bytes"]
        self._next_seq = dict(snap["next_seq"])
        self._recv_next = dict(snap["recv_next"])
        self._recv_buffer = {ch: dict(buf) for ch, buf in snap["recv_buffer"].items()}
        self._unacked = {
            ch: {seq: list(entry) for seq, entry in pending.items()}
            for ch, pending in snap["unacked"].items()
        }
        self._need_ack = dict(snap["need_ack"])
        self._queued = list(snap["queued"])
        self._in_flight = list(snap["in_flight"])
        self._live = dict(snap["live"])
        self._down = set(snap["down"])
        self._restore_due = dict(snap["restore_due"])
        self._replaying = None
        self._report = TransportReport(self.num_ranks)
        if snap["injector"] is not None and self.injector is not None:
            self.injector.restore_state(snap["injector"])

    def note_replayed_delivery(self, r: int, pkt: Packet) -> None:
        """Advance ``r``'s receive watermark over a replayed delivery."""
        ch = (pkt.src, r)
        nxt = self._recv_next.get(ch, 0)
        if pkt.seq >= nxt:
            self._recv_next[ch] = pkt.seq + 1
