"""Asynchronous tree reductions for post-traversal aggregation.

Algorithm 7's last step is ``global_count = all_reduce(local_count, SUM)``.
During a traversal all coordination happens through visitor counting; the
final reduction is a one-shot collective, so it is modelled as a binomial
tree whose per-level cost (packet overhead + hop latency) is charged to the
result's simulated time rather than being run tick-by-tick.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce as _functools_reduce
from math import ceil, log2
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class ReduceOutcome:
    """Result and accounting of a simulated tree all-reduce."""

    value: object
    time_us: float
    messages: int
    levels: int


def tree_allreduce(
    values: Sequence[T],
    op: Callable[[T, T], T],
    *,
    packet_overhead_us: float = 0.0,
    hop_latency_us: float = 0.0,
    value_bytes: int = 8,
    byte_us: float = 0.0,
) -> ReduceOutcome:
    """Combine per-rank ``values`` with ``op`` over a binomial tree.

    Reduce-to-root takes ``ceil(log2 p)`` levels; the broadcast back doubles
    them (all-reduce).  ``op`` must be associative; evaluation order is the
    deterministic binomial-tree order, so non-commutative ops are combined
    child-before-parent by rank id.
    """
    p = len(values)
    if p == 0:
        raise ValueError("tree_allreduce needs at least one value")
    combined = _functools_reduce(op, list(values))
    levels = ceil(log2(p)) if p > 1 else 0
    per_level = packet_overhead_us + hop_latency_us + value_bytes * byte_us
    messages = 2 * (p - 1)  # up the tree, then back down
    return ReduceOutcome(
        value=combined,
        time_us=2 * levels * per_level,
        messages=messages,
        levels=levels,
    )
