"""Deterministic fault injection for the simulated network fabric.

A :class:`FaultPlan` is an immutable, seed-driven description of how the
fabric misbehaves: per-transmission packet drop / duplication / delay
probabilities, plus whole-rank crash events pinned to specific logical
ticks.  The plan is *data*; the :class:`FaultInjector` is the runtime that
draws from one :mod:`repro.utils.rng` stream in a fixed per-transmission
pattern, so the same seed always produces the same fault sequence on the
same workload — which is what makes chaos runs replayable bit-for-bit and
lets the fault-equivalence suite diff faulty runs against fault-free ones.

Faults apply to every wire *transmission* (first sends, retransmissions,
acks alike); the reliable-delivery layer (:mod:`repro.comm.reliable`) is
what turns the resulting lossy, duplicating fabric back into exactly-once
in-order logical delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.utils.rng import resolve_rng


@dataclass(frozen=True)
class CrashEvent:
    """One rank failure: ``rank`` dies at the start of logical tick
    ``tick``'s delivery phase, stays down for ``down_rounds`` fabric
    rounds, then restarts (restoring its last checkpoint and replaying
    its delivery log — see :mod:`repro.runtime.recovery`)."""

    tick: int
    rank: int
    down_rounds: int = 4

    def __post_init__(self) -> None:
        if self.tick < 1:
            raise ConfigurationError(f"crash tick must be >= 1, got {self.tick}")
        if self.rank < 0:
            raise ConfigurationError(f"crash rank must be >= 0, got {self.rank}")
        if self.down_rounds < 1:
            raise ConfigurationError(
                f"down_rounds must be >= 1, got {self.down_rounds}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of fabric misbehaviour.

    ``drop_rate`` / ``duplicate_rate`` / ``delay_rate`` are independent
    per-transmission probabilities; a delayed transmission arrives
    ``1..max_delay`` fabric rounds late.  ``crashes`` is a tuple of
    :class:`CrashEvent`.  A plan with all rates zero and no crashes is a
    valid no-op (useful for measuring the reliable layer's no-fault tax).
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay: int = 3
    crashes: tuple[CrashEvent, ...] = field(default=())

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1), got {rate}")
        if self.max_delay < 1:
            raise ConfigurationError(f"max_delay must be >= 1, got {self.max_delay}")
        # normalise list -> tuple so the plan stays hashable/frozen
        if not isinstance(self.crashes, tuple):
            object.__setattr__(self, "crashes", tuple(self.crashes))

    # ------------------------------------------------------------------ #
    @property
    def any_faults(self) -> bool:
        """True when the plan can actually perturb a run."""
        return bool(
            self.drop_rate or self.duplicate_rate or self.delay_rate or self.crashes
        )

    @property
    def has_crashes(self) -> bool:
        return bool(self.crashes)

    def crashes_at(self, tick: int) -> list[CrashEvent]:
        """Crash events scheduled for logical tick ``tick``."""
        return [ev for ev in self.crashes if ev.tick == tick]

    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse the CLI fault spec mini-language.

        ``SPEC`` is a comma-separated ``key=value`` list::

            seed=7,drop=0.02,dup=0.01,delay=0.05,maxdelay=3,crash=40:2:6

        ``crash`` takes ``tick:rank[:down_rounds]`` and may be repeated by
        joining events with ``+`` (``crash=40:2+90:1:8``).
        """
        kwargs: dict = {}
        crashes: list[CrashEvent] = []
        aliases = {
            "seed": ("seed", int),
            "drop": ("drop_rate", float),
            "dup": ("duplicate_rate", float),
            "delay": ("delay_rate", float),
            "maxdelay": ("max_delay", int),
        }
        for item in filter(None, (s.strip() for s in spec.split(","))):
            if "=" not in item:
                raise ConfigurationError(
                    f"fault spec item {item!r} is not key=value"
                )
            key, _, value = item.partition("=")
            key = key.strip().lower()
            if key == "crash":
                for ev in value.split("+"):
                    parts = ev.split(":")
                    if len(parts) not in (2, 3):
                        raise ConfigurationError(
                            f"crash event {ev!r} is not tick:rank[:down_rounds]"
                        )
                    try:
                        nums = [int(x) for x in parts]
                    except ValueError:
                        raise ConfigurationError(
                            f"crash event {ev!r} has non-integer fields"
                        ) from None
                    crashes.append(CrashEvent(*nums))
            elif key in aliases:
                name, conv = aliases[key]
                try:
                    kwargs[name] = conv(value)
                except ValueError:
                    raise ConfigurationError(
                        f"fault spec {key}={value!r} is not a {conv.__name__}"
                    ) from None
            else:
                raise ConfigurationError(
                    f"unknown fault spec key {key!r} "
                    f"(known: {', '.join(sorted(aliases))}, crash)"
                )
        return cls(crashes=tuple(crashes), **kwargs)


#: Worker-fault kinds understood by the supervisor / worker protocol.
WORKER_FAULT_KINDS = ("kill", "hang", "exita")


@dataclass(frozen=True)
class WorkerFaultEvent:
    """One injected worker-process failure: the worker owning ``rank``
    misbehaves when it receives the barrier command for logical tick
    ``tick``.

    ``kind`` selects the failure mode: ``"kill"`` — SIGKILL itself on
    command receipt (no cleanup, pipe EOF); ``"hang"`` — finish the
    tick's work but sleep forever instead of reporting at the barrier
    (detected by the deadline, force-killed); ``"exita"`` — hard-exit
    midway through phase A, after the first owned rank's tick (partial
    state mutations, no reply).
    """

    tick: int
    rank: int
    kind: str = "kill"

    def __post_init__(self) -> None:
        if self.tick < 1:
            raise ConfigurationError(
                f"worker fault tick must be >= 1, got {self.tick}"
            )
        if self.rank < 0:
            raise ConfigurationError(
                f"worker fault rank must be >= 0, got {self.rank}"
            )
        if self.kind not in WORKER_FAULT_KINDS:
            raise ConfigurationError(
                f"worker fault kind must be one of {WORKER_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Seeded description of worker-process failures for the parallel
    executor's supervision layer (:mod:`repro.runtime.parallel`).

    Unlike :class:`FaultPlan` this perturbs the *host* processes running
    the simulation, not the simulated fabric: the supervisor injects each
    event into the worker owning the event's rank, detects the failure at
    the barrier, and recovers via respawn-and-replay (or degrades to
    parent-side execution when the restart budget runs out).  ``seed``
    drives only the host-side retry backoff jitter; results stay
    bit-identical to the unfailed run by construction.  ``fork_failures``
    makes the first N respawn attempts fail at fork time, exercising the
    degradation path.
    """

    seed: int = 0
    events: tuple[WorkerFaultEvent, ...] = field(default=())
    fork_failures: int = 0

    def __post_init__(self) -> None:
        if self.fork_failures < 0:
            raise ConfigurationError(
                f"fork_failures must be >= 0, got {self.fork_failures}"
            )
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))

    # ------------------------------------------------------------------ #
    @property
    def any_faults(self) -> bool:
        """True when the plan can actually perturb a run."""
        return bool(self.events) or self.fork_failures > 0

    def events_at(self, tick: int) -> list[WorkerFaultEvent]:
        """Worker-fault events scheduled for logical tick ``tick``."""
        return [ev for ev in self.events if ev.tick == tick]

    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec: str) -> "WorkerFaultPlan":
        """Parse the CLI worker-fault spec mini-language.

        ``SPEC`` is a comma-separated ``key=value`` list::

            seed=7,kill=4:1,hang=9:0,exita=6:3,forkfail=2

        ``kill`` / ``hang`` / ``exita`` take ``tick:rank`` and may be
        repeated by joining events with ``+`` (``kill=4:1+9:3``);
        ``forkfail=N`` fails the first N respawn forks.
        """
        kwargs: dict = {}
        events: list[WorkerFaultEvent] = []
        for item in filter(None, (s.strip() for s in spec.split(","))):
            if "=" not in item:
                raise ConfigurationError(
                    f"worker fault spec item {item!r} is not key=value"
                )
            key, _, value = item.partition("=")
            key = key.strip().lower()
            if key in WORKER_FAULT_KINDS:
                for ev in value.split("+"):
                    parts = ev.split(":")
                    if len(parts) != 2:
                        raise ConfigurationError(
                            f"worker fault event {ev!r} is not tick:rank"
                        )
                    try:
                        tick, rank = (int(x) for x in parts)
                    except ValueError:
                        raise ConfigurationError(
                            f"worker fault event {ev!r} has non-integer fields"
                        ) from None
                    events.append(WorkerFaultEvent(tick, rank, key))
            elif key in ("seed", "forkfail"):
                name = "seed" if key == "seed" else "fork_failures"
                try:
                    kwargs[name] = int(value)
                except ValueError:
                    raise ConfigurationError(
                        f"worker fault spec {key}={value!r} is not an int"
                    ) from None
            else:
                raise ConfigurationError(
                    f"unknown worker fault spec key {key!r} (known: "
                    f"{', '.join(WORKER_FAULT_KINDS)}, seed, forkfail)"
                )
        return cls(events=tuple(events), **kwargs)


@dataclass
class FaultDecision:
    """Outcome of one transmission's fault draws."""

    dropped: bool = False
    duplicated: bool = False
    delay: int = 0
    dup_delay: int = 0


class FaultInjector:
    """Runtime of a :class:`FaultPlan`: one seeded stream, fixed draws.

    Every transmission consumes exactly four uniforms (drop, duplicate,
    delay?, delay amount) regardless of outcome, so the stream position —
    and therefore every later decision — depends only on the *number* of
    transmissions so far, never on earlier fault outcomes' branchings.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = resolve_rng(plan.seed)
        # cumulative tallies (surfaced via TraversalStats)
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def snapshot_state(self) -> dict:
        """Stream position + tallies for durable checkpoints."""
        return {
            "rng": self._rng.bit_generator.state,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
        }

    def restore_state(self, snap: dict) -> None:
        """Reinstall a :meth:`snapshot_state` image (same plan/seed)."""
        self._rng.bit_generator.state = snap["rng"]
        self.dropped = snap["dropped"]
        self.duplicated = snap["duplicated"]
        self.delayed = snap["delayed"]

    def decide(self) -> FaultDecision:
        """Draw the fault outcome for one wire transmission."""
        plan = self.plan
        u = self._rng.random(4)
        decision = FaultDecision()
        if u[0] < plan.drop_rate:
            decision.dropped = True
            self.dropped += 1
            return decision
        if u[1] < plan.duplicate_rate:
            decision.duplicated = True
            self.duplicated += 1
            decision.dup_delay = 1 + int(u[3] * plan.max_delay) % plan.max_delay
        if u[2] < plan.delay_rate:
            decision.delay = 1 + int(u[3] * plan.max_delay) % plan.max_delay
            self.delayed += 1
        return decision
