"""Message envelopes and aggregated packets.

An :class:`Envelope` is one logical message (a visitor, or a termination
control message) addressed to a final destination rank.  The mailbox layer
aggregates envelopes heading to the same *next hop* into a
:class:`Packet` — "2D routing increases the amount of message aggregation
possible by O(sqrt(p))" — and the cost model charges per packet plus per
byte, which is what makes aggregation profitable in simulated time exactly
as it is on real interconnects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Envelope kinds.
KIND_VISITOR = 0
KIND_CONTROL = 1

#: Fixed per-envelope header bytes (destination + kind tag).
ENVELOPE_HEADER_BYTES = 8
#: Fixed per-packet header bytes (MPI-style match info).
PACKET_HEADER_BYTES = 32
#: Extra per-packet header when reliable delivery is on (sequence number
#: plus piggybacked cumulative ack).  Charged as transport overhead, not
#: baked into :attr:`Packet.wire_bytes`, so logical byte counters stay
#: comparable with unreliable runs.
RELIABLE_HEADER_BYTES = 12
#: Wire size of a standalone cumulative-ack packet (header + ack word).
ACK_PACKET_BYTES = PACKET_HEADER_BYTES + 8


@dataclass(slots=True)
class Envelope:
    """One logical message: ``payload`` bound for rank ``dest``.

    ``count`` is the number of logical messages the envelope stands for:
    1 for ordinary object-path envelopes and control messages, N when the
    payload is a :class:`~repro.core.batch.VisitorBatch` carrying N
    visitors.  ``size_bytes`` is always the *per-message* payload size, so
    wire accounting is identical whether N messages travel as N envelopes
    or as one batch envelope.
    """

    dest: int
    kind: int
    payload: object
    size_bytes: int
    count: int = 1

    @property
    def wire_bytes(self) -> int:
        """Bytes this envelope occupies inside a packet."""
        return self.count * (self.size_bytes + ENVELOPE_HEADER_BYTES)


@dataclass(slots=True)
class Packet:
    """A batch of envelopes moving one hop together.

    ``seq`` and ``ack`` exist only under reliable delivery
    (:mod:`repro.comm.reliable`): ``seq`` is the packet's position in its
    ``(src, hop_dest)`` channel (-1 = unsequenced / plain fabric), ``ack``
    is a piggybacked cumulative ack for the *reverse* channel (-1 = none).
    """

    src: int
    hop_dest: int
    envelopes: list[Envelope] = field(default_factory=list)
    _cached_wire_bytes: int = -1
    seq: int = -1
    ack: int = -1

    @property
    def wire_bytes(self) -> int:
        """Total bytes on the wire, including the packet header (computed
        once — this is on the network hot path)."""
        if self._cached_wire_bytes < 0:
            self._cached_wire_bytes = PACKET_HEADER_BYTES + sum(
                e.wire_bytes for e in self.envelopes
            )
        return self._cached_wire_bytes
