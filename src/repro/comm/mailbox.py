"""The routed, aggregating mailbox (Sections III-B and V).

Per the paper, the mailbox exposes exactly two operations to the visitor
queue::

    send(rank, data)  -- sends data to rank, using the routing and
                         aggregation network
    receive()         -- receives messages from any sender

``send`` never puts an envelope on the wire immediately: envelopes are
buffered per *next hop* and flushed as aggregated packets, either when a
buffer reaches ``aggregation_size`` or at the end of the tick.  Envelopes
arriving at an intermediate hop are re-buffered toward their next hop, so
multi-hop routes re-aggregate traffic at every stage — the mechanism that
lets 2D routing trade hop latency for O(sqrt(p)) channel counts and fatter
packets.

Messages destined for the local rank short-circuit the fabric (delivered
through a local queue, zero network cost) but still count toward the
visitor send/receive totals used by quiescence detection.
"""

from __future__ import annotations

import numpy as np

from repro.comm.message import ENVELOPE_HEADER_BYTES, KIND_VISITOR, Envelope, Packet
from repro.comm.network import Network
from repro.comm.routing import Topology
from repro.errors import CommunicationError
from repro.memory.spill import NS_MAILBOX


class Mailbox:
    """One rank's endpoint on the routed aggregation network."""

    def __init__(
        self,
        rank: int,
        topology: Topology,
        network: Network,
        *,
        aggregation_size: int = 16,
        capacity_bytes: int | None = None,
        spill=None,
    ) -> None:
        if aggregation_size < 1:
            raise CommunicationError(f"aggregation_size must be >= 1, got {aggregation_size}")
        if capacity_bytes is not None and capacity_bytes < 1:
            raise CommunicationError(f"capacity_bytes must be >= 1, got {capacity_bytes}")
        self.rank = rank
        self.topology = topology
        self.network = network
        self.aggregation_size = aggregation_size
        #: Per-destination (per next hop) DRAM cap on buffered wire bytes.
        #: None = unbounded (no backpressure accounting at all).  With a
        #: cap, bytes beyond it backpressure the producer — each overflow
        #: message is a credit stall — and overflow wire bytes live in the
        #: external-memory spill log until the buffer flushes.  The cap is
        #: pure flow control: it never changes which envelopes go into
        #: which packet, so logical counters stay bit-identical.
        self.capacity_bytes = capacity_bytes
        #: Optional :class:`~repro.memory.spill.SpillPager` charging the
        #: overflow bytes' device I/O (None = account, don't meter).
        self.spill = spill
        self._buffers: dict[int, list[Envelope]] = {}
        #: logical message count per hop buffer (an envelope contributes
        #: ``count`` — batch envelopes stand for many messages).
        self._buffer_counts: dict[int, int] = {}
        #: total buffered wire bytes per hop (DRAM-resident + spilled).
        self._buffer_bytes: dict[int, int] = {}
        #: the spilled (beyond-cap) portion of each hop buffer, bytes.
        self._spill_bytes: dict[int, int] = {}
        self._local: list[Envelope] = []
        # next-hop lookup table for this rank (hot path: one list index
        # instead of a routing-method call per enqueued envelope)
        self._hop_row = [
            topology.next_hop(rank, dest) if dest != rank else rank
            for dest in range(topology.num_ranks)
        ]
        self._hop_np = np.asarray(self._hop_row, dtype=np.int64)
        # --- counters ---------------------------------------------------
        #: visitor envelopes originated or forwarded from this rank
        #: (the "visitor send count" of the quiescence algorithm).
        self.visitors_sent = 0
        #: visitor envelopes delivered at their final destination here.
        self.visitors_received = 0
        #: aggregated packets this rank put on the wire.
        self.packets_sent = 0
        #: wire bytes this rank put on the network.
        self.bytes_sent = 0
        #: envelopes re-routed here mid-route (intermediate-hop traffic).
        self.envelopes_forwarded = 0
        #: logical messages that hit backpressure (landed beyond the cap).
        self.bp_stalls = 0
        #: wire bytes spilled to external memory under backpressure.
        self.bp_spilled_bytes = 0
        #: spilled bytes read back at flush time.
        self.bp_unspilled_bytes = 0
        #: high-water mark of DRAM-resident buffered bytes on any one hop
        #: (the backpressure invariant: never exceeds ``capacity_bytes``).
        self.max_resident_bytes = 0

    # ------------------------------------------------------------------ #
    def send(self, dest: int, kind: int, payload: object, size_bytes: int) -> None:
        """Queue one message for ``dest`` (aggregated, routed)."""
        env = Envelope(dest=dest, kind=kind, payload=payload, size_bytes=size_bytes)
        if kind == KIND_VISITOR:
            self.visitors_sent += 1
        if dest == self.rank:
            self._local.append(env)
            return
        self._enqueue(env)

    def send_batch(self, dest: int, batch, size_bytes: int) -> None:
        """Queue a :class:`~repro.core.batch.VisitorBatch` of N visitors for
        ``dest`` as one envelope of logical count N.

        Counter and wire accounting are identical to N consecutive
        :meth:`send` calls (``size_bytes`` is the per-visitor payload
        size); aggregation splits the batch at packet boundaries.
        """
        n = len(batch)
        if n == 0:
            return
        env = Envelope(dest=dest, kind=KIND_VISITOR, payload=batch,
                       size_bytes=size_bytes, count=n)
        self.visitors_sent += n
        if dest == self.rank:
            self._local.append(env)
            return
        self._enqueue(env)

    def send_stream(self, dests: np.ndarray, batch, size_bytes: int) -> None:
        """Queue a mixed-destination :class:`VisitorBatch` stream: visitor
        ``i`` of ``batch`` goes to rank ``dests[i]``.

        Exactly equivalent to N :meth:`send` calls in stream order: one
        envelope per destination *run*, enqueued in stream order.  Run
        envelopes keep every hop buffer's fill level crossing the
        aggregation boundary at the same logical-message position the
        per-visitor calls would, so mid-tick flushes — and therefore the
        rank's global packet emission order, which the fault injector's
        single decision stream keys off — are identical to the object
        path's, not merely per-hop equivalent.
        """
        n = len(batch)
        if n == 0:
            return
        self.visitors_sent += n
        hops = self._hop_np[dests]
        self_m = hops == self.rank  # loopback: next_hop is self only for self
        if self_m.any():
            sub = batch.take(self_m)
            # _local is drained only at receive(); its position relative to
            # the remote enqueues below is unobservable, so the loopback
            # visitors travel as one envelope (stream order preserved).
            self._local.append(
                Envelope(self.rank, KIND_VISITOR, sub, size_bytes, len(sub))
            )
            if self_m.all():
                return
            keep = ~self_m
            batch = batch.take(keep)
            dests = dests[keep]
        cuts = np.flatnonzero(dests[1:] != dests[:-1]) + 1
        if cuts.size == 0:
            self._enqueue(
                Envelope(int(dests[0]), KIND_VISITOR, batch, size_bytes, len(batch))
            )
            return
        bounds = [0, *cuts.tolist(), len(dests)]
        for i in range(len(bounds) - 1):
            lo, hi = bounds[i], bounds[i + 1]
            self._enqueue(
                Envelope(int(dests[lo]), KIND_VISITOR,
                         batch.slice(lo, hi), size_bytes, hi - lo)
            )

    def _account(self, hop: int, env: Envelope) -> None:
        """Flow-control accounting for one envelope entering a hop buffer.

        Byte-granular so the object and batch paths agree exactly: the
        cumulative buffered bytes of a hop determine how much of this
        envelope lands beyond the cap, independent of envelope boundaries.
        Overflow bytes go to the spill log; each logical message with
        bytes beyond the cap counts one credit stall.
        """
        per_msg = env.size_bytes + ENVELOPE_HEADER_BYTES
        pre = self._buffer_bytes.get(hop, 0)
        post = pre + env.count * per_msg
        self._buffer_bytes[hop] = post
        cap = self.capacity_bytes
        over_pre = pre - cap if pre > cap else 0
        over_post = post - cap if post > cap else 0
        spilled = over_post - over_pre
        if spilled:
            self._spill_bytes[hop] = self._spill_bytes.get(hop, 0) + spilled
            self.bp_spilled_bytes += spilled
            self.bp_stalls += -(-spilled // per_msg)  # ceil division
            if self.spill is not None:
                # repro-lint: disable=RPR005 -- the engine drains this pager's epoch into tick costs
                self.spill.spill(NS_MAILBOX, spilled)
        resident = post - over_post
        if resident > self.max_resident_bytes:
            self.max_resident_bytes = resident

    def _enqueue(self, env: Envelope) -> None:
        hop = self._hop_row[env.dest]
        agg = self.aggregation_size
        bounded = self.capacity_bytes is not None
        buffered = self._buffer_counts.get(hop, 0)
        if env.count == 1:  # object-path / control fast path
            self._buffers.setdefault(hop, []).append(env)
            if bounded:
                self._account(hop, env)
            if buffered + 1 >= agg:
                self._flush_hop(hop)
            else:
                self._buffer_counts[hop] = buffered + 1
            return
        # Batch envelopes are split so packet boundaries fall at exactly
        # the logical-message counts the object path would produce: a
        # buffer flushes the moment it reaches ``aggregation_size``
        # messages, mid-batch if necessary.
        while env is not None:
            space = agg - buffered
            if env.count < space:
                self._buffers.setdefault(hop, []).append(env)
                if bounded:
                    self._account(hop, env)
                self._buffer_counts[hop] = buffered + env.count
                return
            head, tail = _split_envelope(env, space)
            self._buffers.setdefault(hop, []).append(head)
            if bounded:
                self._account(hop, head)
            self._buffer_counts[hop] = agg
            self._flush_hop(hop)
            buffered = 0
            env = tail

    def _flush_hop(self, hop: int) -> None:
        buf = self._buffers.pop(hop, None)
        self._buffer_counts.pop(hop, None)
        if self.capacity_bytes is not None:
            self._buffer_bytes.pop(hop, None)
            spilled = self._spill_bytes.pop(hop, None)
            if spilled:
                # read the overflow back from the spill log before the
                # packet goes on the wire
                self.bp_unspilled_bytes += spilled
                if self.spill is not None:
                    # repro-lint: disable=RPR005 -- the engine drains this pager's epoch into tick costs
                    self.spill.unspill(NS_MAILBOX, spilled)
        if not buf:
            return
        pkt = Packet(src=self.rank, hop_dest=hop, envelopes=buf)
        self.network.send_packet(pkt)
        self.packets_sent += 1
        self.bytes_sent += pkt.wire_bytes

    def flush(self) -> None:
        """Flush all aggregation buffers (called at every tick end so
        messages are never stranded)."""
        for hop in list(self._buffers):
            self._flush_hop(hop)

    # ------------------------------------------------------------------ #
    def receive(self, packets: list[Packet]) -> list[Envelope]:
        """Process arriving packets; return envelopes terminating here.

        Envelopes addressed elsewhere are transit traffic: they are
        re-buffered toward their next hop (re-aggregated with whatever else
        this rank is sending) and do not appear in the returned list.
        """
        delivered: list[Envelope] = []
        for pkt in packets:
            if pkt.hop_dest != self.rank:
                raise CommunicationError(
                    f"rank {self.rank} handed a packet addressed to hop {pkt.hop_dest}"
                )
            for env in pkt.envelopes:
                if env.dest == self.rank:
                    delivered.append(env)
                else:
                    self.envelopes_forwarded += env.count
                    self._enqueue(env)
        if self._local:
            delivered.extend(self._local)
            self._local = []
        for env in delivered:
            if env.kind == KIND_VISITOR:
                self.visitors_received += env.count
        return delivered

    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """Checkpointable endpoint state (counters + unflushed envelopes).

        Envelopes and visitor payloads are never mutated after construction,
        so the snapshot shares them and copies only the containers.  The
        flow-control ledger (per-hop byte totals, spilled portions, credit
        counters) round-trips with the buffers: restoring buffered
        multi-hop envelopes without their byte accounting would desynchronise
        the backpressure ledger on the first replayed flush.
        """
        return {
            "buffers": {hop: list(buf) for hop, buf in self._buffers.items()},
            "buffer_counts": dict(self._buffer_counts),
            "buffer_bytes": dict(self._buffer_bytes),
            "spill_bytes": dict(self._spill_bytes),
            "local": list(self._local),
            "visitors_sent": self.visitors_sent,
            "visitors_received": self.visitors_received,
            "packets_sent": self.packets_sent,
            "bytes_sent": self.bytes_sent,
            "envelopes_forwarded": self.envelopes_forwarded,
            "bp_stalls": self.bp_stalls,
            "bp_spilled_bytes": self.bp_spilled_bytes,
            "bp_unspilled_bytes": self.bp_unspilled_bytes,
            "max_resident_bytes": self.max_resident_bytes,
        }

    def restore_state(self, snap: dict) -> None:
        """Reinstall a :meth:`snapshot_state` checkpoint in place.

        Any beyond-cap portion of the restored buffers is re-written to
        the spill log: the pre-crash copy was consumed when the original
        flush read it back, and the restarted rank's DRAM copy is gone, so
        without the re-write a replayed flush would read past the log end.
        (Engine checkpoints are taken post-flush with empty buffers, where
        this is a no-op; it matters for mid-buffer snapshots.)
        """
        self._buffers = {hop: list(buf) for hop, buf in snap["buffers"].items()}
        self._buffer_counts = dict(snap["buffer_counts"])
        self._buffer_bytes = dict(snap["buffer_bytes"])
        self._spill_bytes = dict(snap["spill_bytes"])
        if self.spill is not None:
            for spilled in self._spill_bytes.values():
                # repro-lint: disable=RPR005 -- restore-time re-spill; the crash tick's drain charges it
                self.spill.spill(NS_MAILBOX, spilled)
        self._local = list(snap["local"])
        self.visitors_sent = snap["visitors_sent"]
        self.visitors_received = snap["visitors_received"]
        self.packets_sent = snap["packets_sent"]
        self.bytes_sent = snap["bytes_sent"]
        self.envelopes_forwarded = snap["envelopes_forwarded"]
        self.bp_stalls = snap["bp_stalls"]
        self.bp_spilled_bytes = snap["bp_spilled_bytes"]
        self.bp_unspilled_bytes = snap["bp_unspilled_bytes"]
        self.max_resident_bytes = snap["max_resident_bytes"]

    # ------------------------------------------------------------------ #
    def resident_bytes(self, hop: int | None = None) -> int:
        """DRAM-resident buffered wire bytes on ``hop`` (or the maximum
        over all hops when None) — the quantity the backpressure invariant
        bounds by :attr:`capacity_bytes`."""
        cap = self.capacity_bytes

        def _resident(h: int) -> int:
            total = self._buffer_bytes.get(h, 0)
            return total if cap is None or total <= cap else cap

        if hop is not None:
            return _resident(hop)
        return max((_resident(h) for h in self._buffer_bytes), default=0)

    def has_buffered(self) -> bool:
        """True when unflushed envelopes are sitting in aggregation buffers
        or the local loopback queue."""
        return bool(self._local) or any(self._buffers.values())

    def buffered_visitor_count(self) -> int:
        """Logical visitor messages sitting in unflushed aggregation
        buffers or the local loopback queue (quiescence cross-checks)."""
        total = 0
        for buf in self._buffers.values():
            for env in buf:
                if env.kind == KIND_VISITOR:
                    total += env.count
        for env in self._local:
            if env.kind == KIND_VISITOR:
                total += env.count
        return total


def _split_envelope(env: Envelope, k: int) -> tuple[Envelope, Envelope | None]:
    """Split a batch envelope into its first ``k`` visitors and the rest."""
    if env.count <= k:
        return env, None
    head, tail = env.payload.split(k)
    return (
        Envelope(env.dest, env.kind, head, env.size_bytes, k),
        Envelope(env.dest, env.kind, tail, env.size_bytes, env.count - k),
    )
