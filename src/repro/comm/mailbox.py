"""The routed, aggregating mailbox (Sections III-B and V).

Per the paper, the mailbox exposes exactly two operations to the visitor
queue::

    send(rank, data)  -- sends data to rank, using the routing and
                         aggregation network
    receive()         -- receives messages from any sender

``send`` never puts an envelope on the wire immediately: envelopes are
buffered per *next hop* and flushed as aggregated packets, either when a
buffer reaches ``aggregation_size`` or at the end of the tick.  Envelopes
arriving at an intermediate hop are re-buffered toward their next hop, so
multi-hop routes re-aggregate traffic at every stage — the mechanism that
lets 2D routing trade hop latency for O(sqrt(p)) channel counts and fatter
packets.

Messages destined for the local rank short-circuit the fabric (delivered
through a local queue, zero network cost) but still count toward the
visitor send/receive totals used by quiescence detection.
"""

from __future__ import annotations

from repro.comm.message import KIND_VISITOR, Envelope, Packet
from repro.comm.network import Network
from repro.comm.routing import Topology
from repro.errors import CommunicationError


class Mailbox:
    """One rank's endpoint on the routed aggregation network."""

    def __init__(
        self,
        rank: int,
        topology: Topology,
        network: Network,
        *,
        aggregation_size: int = 16,
    ) -> None:
        if aggregation_size < 1:
            raise CommunicationError(f"aggregation_size must be >= 1, got {aggregation_size}")
        self.rank = rank
        self.topology = topology
        self.network = network
        self.aggregation_size = aggregation_size
        self._buffers: dict[int, list[Envelope]] = {}
        self._local: list[Envelope] = []
        # next-hop lookup table for this rank (hot path: one list index
        # instead of a routing-method call per enqueued envelope)
        self._hop_row = [
            topology.next_hop(rank, dest) if dest != rank else rank
            for dest in range(topology.num_ranks)
        ]
        # --- counters ---------------------------------------------------
        #: visitor envelopes originated or forwarded from this rank
        #: (the "visitor send count" of the quiescence algorithm).
        self.visitors_sent = 0
        #: visitor envelopes delivered at their final destination here.
        self.visitors_received = 0
        #: aggregated packets this rank put on the wire.
        self.packets_sent = 0
        #: wire bytes this rank put on the network.
        self.bytes_sent = 0
        #: envelopes re-routed here mid-route (intermediate-hop traffic).
        self.envelopes_forwarded = 0

    # ------------------------------------------------------------------ #
    def send(self, dest: int, kind: int, payload: object, size_bytes: int) -> None:
        """Queue one message for ``dest`` (aggregated, routed)."""
        env = Envelope(dest=dest, kind=kind, payload=payload, size_bytes=size_bytes)
        if kind == KIND_VISITOR:
            self.visitors_sent += 1
        if dest == self.rank:
            self._local.append(env)
            return
        self._enqueue(env)

    def _enqueue(self, env: Envelope) -> None:
        hop = self._hop_row[env.dest]
        buf = self._buffers.setdefault(hop, [])
        buf.append(env)
        if len(buf) >= self.aggregation_size:
            self._flush_hop(hop)

    def _flush_hop(self, hop: int) -> None:
        buf = self._buffers.pop(hop, None)
        if not buf:
            return
        pkt = Packet(src=self.rank, hop_dest=hop, envelopes=buf)
        self.network.send_packet(pkt)
        self.packets_sent += 1
        self.bytes_sent += pkt.wire_bytes

    def flush(self) -> None:
        """Flush all aggregation buffers (called at every tick end so
        messages are never stranded)."""
        for hop in list(self._buffers):
            self._flush_hop(hop)

    # ------------------------------------------------------------------ #
    def receive(self, packets: list[Packet]) -> list[Envelope]:
        """Process arriving packets; return envelopes terminating here.

        Envelopes addressed elsewhere are transit traffic: they are
        re-buffered toward their next hop (re-aggregated with whatever else
        this rank is sending) and do not appear in the returned list.
        """
        delivered: list[Envelope] = []
        for pkt in packets:
            if pkt.hop_dest != self.rank:
                raise CommunicationError(
                    f"rank {self.rank} handed a packet addressed to hop {pkt.hop_dest}"
                )
            for env in pkt.envelopes:
                if env.dest == self.rank:
                    delivered.append(env)
                else:
                    self.envelopes_forwarded += 1
                    self._enqueue(env)
        if self._local:
            delivered.extend(self._local)
            self._local = []
        for env in delivered:
            if env.kind == KIND_VISITOR:
                self.visitors_received += 1
        return delivered

    # ------------------------------------------------------------------ #
    def has_buffered(self) -> bool:
        """True when unflushed envelopes are sitting in aggregation buffers
        or the local loopback queue."""
        return bool(self._local) or any(self._buffers.values())
