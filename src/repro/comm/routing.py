"""Synthetic routing topologies (Section III-B, Figure 4).

"For dense communication patterns, where every process needs to send
messages to all p other processes, we route the messages through a topology
that partitions the communication. ... Figure 4 illustrates a 2D routing
topology that reduces the number of communicating channels a process
requires to O(sqrt(p)). ... Our experiments on BG/P use a 3D routing
topology ... designed to mirror the BG/P 3D torus interconnect topology."

The Figure 4 example is encoded in the tests: on 16 ranks (4x4), a message
from rank 11 to rank 5 is first aggregated and routed through rank 9 —
i.e. the first hop stays in the *sender's row* and moves to the
*destination's column*, the second hop moves within the column.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import RoutingError


class Topology(ABC):
    """Routing policy: which rank a message heads to next."""

    def __init__(self, num_ranks: int) -> None:
        if num_ranks < 1:
            raise RoutingError(f"need at least 1 rank, got {num_ranks}")
        self.num_ranks = num_ranks

    #: Short identifier used in reports ("direct", "2d", "3d").
    name: str = "abstract"

    @abstractmethod
    def next_hop(self, current: int, dest: int) -> int:
        """The next rank on the route from ``current`` toward ``dest``."""

    def route(self, src: int, dest: int) -> list[int]:
        """The full hop sequence from ``src`` to ``dest`` (excludes ``src``)."""
        self._check(src)
        self._check(dest)
        hops = []
        cur = src
        while cur != dest:
            nxt = self.next_hop(cur, dest)
            if nxt == cur or len(hops) > 4:
                raise RoutingError(
                    f"routing loop from {src} to {dest} via {hops}"
                )  # pragma: no cover - defensive
            hops.append(nxt)
            cur = nxt
        return hops

    def num_hops(self, src: int, dest: int) -> int:
        """Number of network hops between two ranks (0 when equal)."""
        return len(self.route(src, dest))

    def channels(self, rank: int) -> set[int]:
        """All ranks this rank ever sends a packet directly to.

        The size of this set is the "number of communicating channels" the
        paper's topologies are designed to bound.
        """
        self._check(rank)
        out = set()
        for dest in range(self.num_ranks):
            if dest != rank:
                out.add(self.next_hop(rank, dest))
        # A rank also forwards packets mid-route; include those hops.
        for src in range(self.num_ranks):
            for dest in range(self.num_ranks):
                if src == dest:
                    continue
                route = [src, *self.route(src, dest)]
                for a, b in zip(route, route[1:], strict=False):
                    if a == rank:
                        out.add(b)
        out.discard(rank)
        return out

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise RoutingError(f"rank {rank} out of range [0, {self.num_ranks})")


class DirectTopology(Topology):
    """All-to-all: every pair of ranks is a channel (the dense baseline)."""

    name = "direct"

    def next_hop(self, current: int, dest: int) -> int:
        self._check(current)
        self._check(dest)
        return dest


def _balanced_factors(p: int, ndim: int) -> tuple[int, ...]:
    """Factor ``p`` into ``ndim`` near-equal factors (largest last)."""
    dims = []
    remaining = p
    for i in range(ndim, 1, -1):
        target = round(remaining ** (1.0 / i))
        f = max(1, target)
        # search outward for a divisor
        best = 1
        for delta in range(remaining):
            for cand in (f - delta, f + delta):
                if 1 <= cand <= remaining and remaining % cand == 0:
                    best = cand
                    break
            else:
                continue
            break
        dims.append(best)
        remaining //= best
    dims.append(remaining)
    return tuple(sorted(dims))


class Grid2DTopology(Topology):
    """Two-hop row/column routing over an ``r x c`` grid of ranks.

    Rank ``k`` sits at ``(k // c, k % c)``.  A message travels first within
    the sender's row to the destination's column, then within that column —
    so each rank keeps ``(c - 1) + (r - 1) = O(sqrt(p))`` channels and
    row-hop packets aggregate traffic for ``r`` final destinations.
    """

    name = "2d"

    def __init__(self, num_ranks: int, shape: tuple[int, int] | None = None) -> None:
        super().__init__(num_ranks)
        if shape is None:
            shape = _balanced_factors(num_ranks, 2)
        r, c = shape
        if r * c != num_ranks:
            raise RoutingError(f"grid {r}x{c} does not cover {num_ranks} ranks")
        self.rows, self.cols = int(r), int(c)

    def coords(self, rank: int) -> tuple[int, int]:
        """``(row, col)`` of a rank."""
        self._check(rank)
        return rank // self.cols, rank % self.cols

    def next_hop(self, current: int, dest: int) -> int:
        self._check(current)
        self._check(dest)
        if current == dest:
            return dest
        row_cur, col_cur = current // self.cols, current % self.cols
        col_dst = dest % self.cols
        if col_cur != col_dst:
            return row_cur * self.cols + col_dst  # row move to dest's column
        return dest  # column move

    def channels(self, rank: int) -> set[int]:
        row, col = self.coords(rank)
        out = {row * self.cols + c for c in range(self.cols) if c != col}
        out |= {r * self.cols + col for r in range(self.rows) if r != row}
        return out


class Grid3DTopology(Topology):
    """Three-hop routing over an ``x * y * z`` grid, mirroring BG/P's torus.

    Rank ``k`` sits at ``(k // (ny*nz), (k // nz) % ny, k % nz)``.  Routing
    corrects the z coordinate first, then y, then x, so each rank keeps
    ``(nz - 1) + (ny - 1) + (nx - 1) = O(p^(1/3))`` channels.
    """

    name = "3d"

    def __init__(self, num_ranks: int, shape: tuple[int, int, int] | None = None) -> None:
        super().__init__(num_ranks)
        if shape is None:
            shape = _balanced_factors(num_ranks, 3)
        nx, ny, nz = shape
        if nx * ny * nz != num_ranks:
            raise RoutingError(f"grid {nx}x{ny}x{nz} does not cover {num_ranks} ranks")
        self.nx, self.ny, self.nz = int(nx), int(ny), int(nz)

    def coords(self, rank: int) -> tuple[int, int, int]:
        """``(x, y, z)`` of a rank."""
        self._check(rank)
        return rank // (self.ny * self.nz), (rank // self.nz) % self.ny, rank % self.nz

    def _rank(self, x: int, y: int, z: int) -> int:
        return (x * self.ny + y) * self.nz + z

    def next_hop(self, current: int, dest: int) -> int:
        self._check(current)
        self._check(dest)
        if current == dest:
            return dest
        cx, cy, cz = self.coords(current)
        dx, dy, dz = self.coords(dest)
        if cz != dz:
            return self._rank(cx, cy, dz)
        if cy != dy:
            return self._rank(cx, dy, cz)
        return dest

    def channels(self, rank: int) -> set[int]:
        x, y, z = self.coords(rank)
        out = {self._rank(x, y, k) for k in range(self.nz) if k != z}
        out |= {self._rank(x, j, z) for j in range(self.ny) if j != y}
        out |= {self._rank(i, y, z) for i in range(self.nx) if i != x}
        return out


class HypercubeTopology(Topology):
    """Dimension-ordered hypercube routing (the Active Pebbles comparison).

    Section VIII-A's related work (Willcock et al.) routes active messages
    "through a synthetic *hypercube* network".  Each rank keeps one channel
    per address bit (``log2 p`` channels); a message corrects differing
    address bits from least to most significant, taking up to ``log2 p``
    hops.  The rank count must be a power of two.
    """

    name = "hypercube"

    def __init__(self, num_ranks: int) -> None:
        super().__init__(num_ranks)
        if num_ranks & (num_ranks - 1):
            raise RoutingError(
                f"hypercube routing needs a power-of-two rank count, got {num_ranks}"
            )
        self.dimensions = num_ranks.bit_length() - 1

    def next_hop(self, current: int, dest: int) -> int:
        self._check(current)
        self._check(dest)
        diff = current ^ dest
        if diff == 0:
            return dest
        lowest = diff & -diff  # lowest differing bit
        return current ^ lowest

    def route(self, src: int, dest: int) -> list[int]:
        self._check(src)
        self._check(dest)
        hops = []
        cur = src
        while cur != dest:
            cur = self.next_hop(cur, dest)
            hops.append(cur)
        return hops

    def channels(self, rank: int) -> set[int]:
        self._check(rank)
        return {rank ^ (1 << d) for d in range(self.dimensions)}


def make_topology(name: str, num_ranks: int) -> Topology:
    """Factory: ``"direct"``, ``"2d"``, ``"3d"`` or ``"hypercube"``."""
    if name == "direct":
        return DirectTopology(num_ranks)
    if name == "2d":
        return Grid2DTopology(num_ranks)
    if name == "3d":
        return Grid3DTopology(num_ranks)
    if name == "hypercube":
        return HypercubeTopology(num_ranks)
    raise RoutingError(f"unknown topology {name!r}")


def max_channels(topology: Topology) -> int:
    """Largest per-rank channel count — the scaling quantity the routed
    mailbox is designed to bound."""
    return max(len(topology.channels(r)) for r in range(topology.num_ranks))


def mean_hops(topology: Topology) -> float:
    """Average route length over all ordered rank pairs."""
    p = topology.num_ranks
    if p == 1:
        return 0.0
    total = sum(
        topology.num_hops(s, d) for s in range(p) for d in range(p) if s != d
    )
    return total / (p * (p - 1))
