"""Quiescence detection — the ``global_empty()`` of Algorithm 1.

"It is implemented using a simple O(lg(p)) quiescence detection algorithm
based on visitor counting [Mattern 1987].  The algorithm performs an
asynchronous reduction of the global visitor send and receive count using
non-blocking point-to-point MPI communication."

This module implements the classic *double-count* (four-counter) variant:
the root repeatedly runs reduction waves over a binary tree of ranks, each
wave gathering ``(visitors_sent, visitors_received, locally_quiet)``.
Termination is announced only when **two consecutive waves** observe equal
send/receive totals with every rank quiet — a single wave can be fooled by
a message that is counted as received before the probe reaches its sender's
subtree.

"To check for non-termination is an asynchronous event, and only becomes
synchronous after the visitor queues are already empty": waves run
concurrently with useful work and only the final confirming waves happen on
an idle machine.  Control traffic flows through the same mailboxes and
network as visitors, so its cost is accounted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.mailbox import Mailbox
from repro.comm.message import KIND_CONTROL
from repro.errors import TerminationError

#: Wire size of one control message (wave id + two counters + flag).
CONTROL_BYTES = 28

_PROBE = "probe"
_REPLY = "reply"
_TERMINATE = "terminate"


@dataclass(frozen=True)
class LocalSnapshot:
    """One rank's contribution to a reduction wave."""

    sent: int
    received: int
    quiet: bool


class QuiescenceDetector:
    """Per-rank endpoint of the counting quiescence protocol.

    The engine drives it with :meth:`handle` for each arriving control
    envelope and :meth:`maybe_start_wave` (root only) once per tick.  The
    ``snapshot_fn`` callback samples the rank's *current* counters at the
    moment its reply is emitted, which is what makes the double count
    sound.
    """

    def __init__(self, rank: int, num_ranks: int, mailbox: Mailbox, snapshot_fn) -> None:
        self.rank = rank
        self.num_ranks = num_ranks
        self.mailbox = mailbox
        self.snapshot_fn = snapshot_fn
        self.terminated = False
        # wave state
        self._wave = -1
        self._pending_children = 0
        self._acc_sent = 0
        self._acc_recv = 0
        self._acc_quiet = True
        # root-only state
        self._wave_active = False
        self._last_totals: tuple[int, int] | None = None
        self._next_wave_id = 0
        #: statistics: completed waves observed by this rank.
        self.waves_participated = 0

    # ------------------------------------------------------------------ #
    def _children(self) -> list[int]:
        kids = [2 * self.rank + 1, 2 * self.rank + 2]
        return [k for k in kids if k < self.num_ranks]

    def _parent(self) -> int:
        return (self.rank - 1) // 2

    def _send(self, dest: int, payload: tuple) -> None:
        self.mailbox.send(dest, KIND_CONTROL, payload, CONTROL_BYTES)

    # ------------------------------------------------------------------ #
    def maybe_start_wave(self) -> None:
        """Root only: launch a new reduction wave if none is in flight."""
        if self.rank != 0:
            raise TerminationError("only rank 0 starts waves")
        if self.terminated or self._wave_active:
            return
        self._wave_active = True
        self._begin_wave(self._next_wave_id)
        self._next_wave_id += 1

    def _begin_wave(self, wave: int) -> None:
        self._wave = wave
        self._acc_sent = 0
        self._acc_recv = 0
        self._acc_quiet = True
        kids = self._children()
        self._pending_children = len(kids)
        for k in kids:
            self._send(k, (_PROBE, wave))
        if self._pending_children == 0:
            self._emit_reply()

    def _emit_reply(self) -> None:
        snap: LocalSnapshot = self.snapshot_fn()
        sent = self._acc_sent + snap.sent
        recv = self._acc_recv + snap.received
        quiet = self._acc_quiet and snap.quiet
        self.waves_participated += 1
        if self.rank == 0:
            self._conclude_wave(sent, recv, quiet)
        else:
            self._send(self._parent(), (_REPLY, self._wave, sent, recv, quiet))

    def _conclude_wave(self, sent: int, recv: int, quiet: bool) -> None:
        self._wave_active = False
        if quiet and sent == recv:
            if self._last_totals == (sent, recv):
                self._announce_termination()
                return
            self._last_totals = (sent, recv)
        else:
            self._last_totals = None

    def _announce_termination(self) -> None:
        self.terminated = True
        for k in self._children():
            self._send(k, (_TERMINATE,))

    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """Checkpointable protocol state (everything but the wiring)."""
        return {
            "terminated": self.terminated,
            "wave": self._wave,
            "pending_children": self._pending_children,
            "acc_sent": self._acc_sent,
            "acc_recv": self._acc_recv,
            "acc_quiet": self._acc_quiet,
            "wave_active": self._wave_active,
            "last_totals": self._last_totals,
            "next_wave_id": self._next_wave_id,
            "waves_participated": self.waves_participated,
        }

    def restore_state(self, snap: dict) -> None:
        """Reinstall a :meth:`snapshot_state` checkpoint in place."""
        self.terminated = snap["terminated"]
        self._wave = snap["wave"]
        self._pending_children = snap["pending_children"]
        self._acc_sent = snap["acc_sent"]
        self._acc_recv = snap["acc_recv"]
        self._acc_quiet = snap["acc_quiet"]
        self._wave_active = snap["wave_active"]
        self._last_totals = snap["last_totals"]
        self._next_wave_id = snap["next_wave_id"]
        self.waves_participated = snap["waves_participated"]

    # ------------------------------------------------------------------ #
    def handle(self, payload: tuple) -> None:
        """Process one control message addressed to this rank."""
        tag = payload[0]
        if tag == _PROBE:
            _, wave = payload
            self._begin_wave(wave)
        elif tag == _REPLY:
            _, wave, sent, recv, quiet = payload
            if wave != self._wave:
                raise TerminationError(
                    f"rank {self.rank} got reply for wave {wave}, expected {self._wave}"
                )
            self._acc_sent += sent
            self._acc_recv += recv
            self._acc_quiet = self._acc_quiet and quiet
            self._pending_children -= 1
            if self._pending_children == 0:
                self._emit_reply()
        elif tag == _TERMINATE:
            self._announce_termination()
        else:
            raise TerminationError(f"unknown control message {tag!r}")
