"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphConstructionError(ReproError):
    """Raised when an edge list or CSR structure cannot be built as requested."""


class PartitioningError(ReproError):
    """Raised when a partitioning request is invalid (e.g. more partitions than edges)."""


class RoutingError(ReproError):
    """Raised when a routing topology cannot be constructed or a route is invalid."""


class CommunicationError(ReproError):
    """Raised on mailbox / network protocol violations."""


class TraversalError(ReproError):
    """Raised when an asynchronous traversal cannot run or fails an internal
    invariant.

    ``stats`` optionally carries the partial
    :class:`~repro.runtime.trace.TraversalStats` gathered up to the failure
    (populated by the engine's ``max_ticks`` abort so stalled runs can be
    post-mortemed: per-rank counters, tick count, timeline).
    """

    def __init__(self, *args, stats=None) -> None:
        super().__init__(*args)
        self.stats = stats


class TerminationError(TraversalError):
    """Raised when the quiescence detector reaches an inconsistent state."""


class WorkerCrash(ReproError):
    """A parallel-executor worker process failed a barrier.

    Raised parent-side by the worker pool when a worker's pipe reports an
    exception, hits EOF, the process dies, or a barrier deadline expires.
    Carries enough structure for the supervisor to decide between
    respawn-and-replay and graceful degradation, and for the final
    :class:`TraversalError` (fail-fast mode) to show the worker-side
    traceback instead of discarding it.

    ``kind`` is one of ``"error"`` (the worker caught an exception and
    reported it before exiting), ``"crash"`` (the process died or its
    pipe hit EOF — e.g. SIGKILL), or ``"hang"`` (a barrier deadline
    expired while the process was still alive; the pool force-kills it).
    """

    def __init__(self, *args, worker=None, ranks=(), kind="crash",
                 exitcode=None, worker_traceback=None) -> None:
        super().__init__(*args)
        self.worker = worker
        self.ranks = tuple(ranks)
        self.kind = kind
        self.exitcode = exitcode
        self.worker_traceback = worker_traceback


class MemorySystemError(ReproError):
    """Raised on invalid page-cache or device configuration."""


class CheckpointCorruptionError(ReproError):
    """Raised when a durable resume finds no valid epoch on disk.

    The durability layer tolerates individual corrupt epochs (torn writes,
    bit flips, truncated or incomplete manifests) by falling back to the
    previous valid epoch; this error is the end of that ladder — every
    epoch in the durable directory failed validation, so the run cannot be
    resumed.  ``examined`` carries the number of epochs that were checked
    and rejected."""

    def __init__(self, *args, examined=0) -> None:
        super().__init__(*args)
        self.examined = examined


class ConfigurationError(ReproError):
    """Raised when a machine model or engine configuration is invalid."""
