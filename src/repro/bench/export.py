"""Exporting experiment rows as CSV artifacts.

Each experiment driver returns plain dict rows; this module writes them as
CSV so regenerated figures can feed external plotting or regression
tooling.  Columns are the union of keys across rows (first-seen order);
missing cells are empty.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence


def rows_to_csv(rows: Sequence[dict], path: str | Path) -> list[str]:
    """Write rows to ``path``; returns the column order used."""
    if not rows:
        raise ValueError("no rows to export")
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return columns


def load_csv_rows(path: str | Path) -> list[dict]:
    """Read back a CSV written by :func:`rows_to_csv` (values as strings)."""
    with Path(path).open(newline="") as fh:
        return list(csv.DictReader(fh))
