"""One driver per paper figure/table (see DESIGN.md §5 for the index).

Each ``figNN_*`` function runs the experiment at reproduction scale and
returns ``(rows, report)`` where ``rows`` is a list of flat dicts (one per
plotted point) and ``report`` is a formatted table including the paper's
qualitative expectation.  The pytest-benchmark wrappers in ``benchmarks/``
time these drivers and assert the expectations; ``examples/`` and
EXPERIMENTS.md reuse the same outputs.

Default parameters are scaled-down versions of the paper's (recorded in
each docstring); pass larger values for closer-to-paper runs.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.kcore import KCoreAlgorithm
from repro.algorithms.triangles import TriangleCountAlgorithm
from repro.analysis.hubs import hub_stats, rmat_degree_counts
from repro.bench.harness import (
    build_pa_graph,
    build_rmat_graph,
    build_sw_graph,
    mean_over_sources,
    pick_bfs_source,
)
from repro.bench.report import format_table
from repro.core.traversal import run_traversal
from repro.graph.distributed import DistributedGraph
from repro.graph.metrics import quality_1d, quality_2d, quality_edge_list
from repro.runtime.costmodel import (
    EngineConfig,
    bgp_intrepid,
    hyperion_dit,
    leviathan,
    trestles,
)

#: "All other BFS experiments in this work use 256 ghost vertices per
#: partition" — scaled to the reproduction graph sizes.
DEFAULT_GHOSTS = 64


# ---------------------------------------------------------------------- #
# Figure 1 — hub growth
# ---------------------------------------------------------------------- #
def fig01_hub_growth(
    scales: tuple[int, ...] = (10, 12, 14, 16),
    *,
    thresholds: tuple[int, ...] = (64, 256),
    edgefactor: int = 16,
    seed: int = 0,
):
    """Hub growth for Graph500 RMAT graphs.

    Paper: scales 22-30, thresholds 1,000 / 10,000; max hub crosses 10M
    edges by scale 30.  Reproduction: scales 10-16 with thresholds scaled
    by the same ratio to graph size; the claim checked is that all three
    series grow monotonically with scale while mean degree stays fixed.
    """
    rows = []
    for scale in scales:
        degrees = rmat_degree_counts(scale, edgefactor, seed=seed)
        stats = hub_stats(degrees, thresholds)
        rows.append(
            {
                "scale": scale,
                "n": stats.num_vertices,
                "mean_degree": stats.num_edges / stats.num_vertices,
                "max_degree": stats.max_degree,
                **{f"edges_deg>={t}": stats.edges_at_threshold[t] for t in thresholds},
            }
        )
    report = format_table(
        rows,
        ["scale", "n", ("mean_degree", ".1f"), "max_degree"]
        + [f"edges_deg>={t}" for t in thresholds],
        title="Figure 1 — hub growth for Graph500 RMAT graphs "
        "(paper: all hub series grow with scale at constant mean degree)",
    )
    return rows, report


# ---------------------------------------------------------------------- #
# Figure 2 — partition imbalance, 1D vs 2D (vs edge list)
# ---------------------------------------------------------------------- #
def fig02_partition_imbalance(
    *,
    vertices_per_partition: int = 1 << 10,
    partition_counts: tuple[int, ...] = (4, 16, 64, 256),
    edgefactor: int = 16,
    seed: int = 0,
):
    """Weak scaling of edge-count imbalance for 1D and 2D block partitioning.

    Paper: 2^18 vertices per partition; 1D imbalance grows with p, 2D stays
    near 1.  The edge-list series (exact balance by construction) is added
    as the paper's own remedy.
    """
    rows = []
    for p in partition_counts:
        n = vertices_per_partition * p
        scale = int(np.log2(n))
        if (1 << scale) != n:
            raise ValueError("vertices_per_partition * p must be a power of two")
        edges, _ = _rmat_edges_only(scale, edgefactor, seed)
        rows.append(
            {
                "p": p,
                "n": n,
                "imbalance_1d": quality_1d(edges, p).edge_imbalance,
                "imbalance_2d": quality_2d(edges, p).edge_imbalance,
                "imbalance_edge_list": quality_edge_list(edges, p).edge_imbalance,
            }
        )
    report = format_table(
        rows,
        ["p", "n", ("imbalance_1d", ".2f"), ("imbalance_2d", ".2f"),
         ("imbalance_edge_list", ".4f")],
        title="Figure 2 — weak scaling of partition imbalance "
        "(paper: 1D grows with p; 2D stays low; edge list is exact)",
    )
    return rows, report


def _rmat_edges_only(scale: int, edgefactor: int, seed: int):
    from repro.generators.rmat import rmat_edges
    from repro.graph.edge_list import EdgeList

    src, dst = rmat_edges(scale, edgefactor << scale, seed=seed)
    edges = EdgeList.from_arrays(src, dst, 1 << scale).permuted(seed=seed + 1)
    return edges.simple_undirected(), None


# ---------------------------------------------------------------------- #
# Figure 5 — BFS weak scaling on BG/P
# ---------------------------------------------------------------------- #
def fig05_bfs_weak_scaling(
    *,
    vertices_per_rank: int = 1 << 8,
    ranks: tuple[int, ...] = (4, 16, 64),
    num_ghosts: int = DEFAULT_GHOSTS,
    num_sources: int = 2,
    seed: int = 0,
):
    """Weak scaling of asynchronous BFS, BG/P profile, 3D routed mailbox.

    Paper: 2^18 vertices per core up to 131K cores, 64.9 GTEPS peak, 19%
    slower than the best-known BG/P Graph500 entry.  Claim checked: TEPS
    grows close to linearly with p (weak scalability).
    """
    rows = []
    machine = bgp_intrepid()
    for p in ranks:
        scale = int(np.log2(vertices_per_rank * p))
        edges, graph = build_rmat_graph(
            scale, num_partitions=p, num_ghosts=num_ghosts, seed=seed
        )
        row = mean_over_sources(
            edges, graph, num_sources=num_sources, seed=seed,
            machine=machine, topology="3d",
        )
        row["scale"] = scale
        row["teps_per_rank"] = row["teps"] / p
        rows.append(row)
    report = format_table(
        rows,
        ["p", "scale", "n", "m", ("teps", ".3e"), ("teps_per_rank", ".3e"),
         ("time_us", ".0f"), ("visit_imbalance", ".2f")],
        title="Figure 5 — BFS weak scaling, BG/P profile, 3D routing "
        "(paper: near-linear TEPS growth with p)",
    )
    return rows, report


# ---------------------------------------------------------------------- #
# Figure 6 — k-core weak scaling
# ---------------------------------------------------------------------- #
def fig06_kcore_weak_scaling(
    *,
    vertices_per_rank: int = 1 << 7,
    ranks: tuple[int, ...] = (4, 16, 64),
    ks: tuple[int, ...] = (4, 16, 64),
    seed: int = 0,
):
    """Weak scaling of k-core on RMAT graphs, cores k in {4, 16, 64}.

    Paper: 2^18 vertices / 2^22 undirected edges per core, near-linear weak
    scaling (flat time as p grows).  Claim checked: time grows far slower
    than the 16x work increase per step (weak scaling holds).
    """
    rows = []
    machine = bgp_intrepid()
    for p in ranks:
        scale = int(np.log2(vertices_per_rank * p))
        edges, graph = build_rmat_graph(scale, num_partitions=p, seed=seed)
        for k in ks:
            result = run_traversal(
                graph, KCoreAlgorithm(k), machine=machine, topology="3d"
            )
            rows.append(
                {
                    "p": p,
                    "scale": scale,
                    "k": k,
                    "n": graph.num_vertices,
                    "m": graph.num_edges,
                    "core_size": result.data.core_size,
                    "time_us": result.stats.time_us,
                    "visits": result.stats.total_visits,
                }
            )
    report = format_table(
        rows,
        ["p", "scale", "k", "core_size", ("time_us", ".0f"), "visits"],
        title="Figure 6 — k-core weak scaling on BG/P profile "
        "(paper: near-linear weak scaling / flat time)",
    )
    return rows, report


# ---------------------------------------------------------------------- #
# Figure 7 — triangle counting weak scaling on small-world graphs
# ---------------------------------------------------------------------- #
def fig07_triangle_weak_scaling(
    *,
    vertices_per_rank: int = 1 << 6,
    ranks: tuple[int, ...] = (4, 16),
    degree: int = 16,
    rewires: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3),
    seed: int = 0,
):
    """Weak scaling of triangle counting on small-world graphs.

    Paper: uniform degree 32, rewires 0-30%; SW graphs isolate hub effects,
    so weak scaling should be near-linear (time roughly flat in p) and
    higher rewire should not blow up the time.
    """
    rows = []
    machine = bgp_intrepid()
    for p in ranks:
        n = vertices_per_rank * p
        for rewire in rewires:
            edges, graph = build_sw_graph(
                n, degree, rewire=rewire, num_partitions=p, seed=seed
            )
            result = run_traversal(
                graph, TriangleCountAlgorithm(), machine=machine, topology="3d"
            )
            rows.append(
                {
                    "p": p,
                    "n": n,
                    "rewire": rewire,
                    "triangles": result.data.total,
                    "time_us": result.stats.time_us,
                    "visits": result.stats.total_visits,
                }
            )
    report = format_table(
        rows,
        ["p", "n", ("rewire", ".2f"), "triangles", ("time_us", ".0f"), "visits"],
        title="Figure 7 — triangle counting weak scaling on small-world graphs "
        "(paper: near-linear weak scaling; uniform degree isolates hubs)",
    )
    return rows, report


# ---------------------------------------------------------------------- #
# Figure 8 — external-memory BFS weak scaling
# ---------------------------------------------------------------------- #
def fig08_em_bfs_weak_scaling(
    *,
    vertices_per_rank: int = 1 << 9,
    ranks: tuple[int, ...] = (2, 4, 8, 16),
    cache_bytes_per_rank: int = 48 * 1024,
    page_size: int = 256,
    num_ghosts: int = DEFAULT_GHOSTS,
    num_sources: int = 2,
    seed: int = 0,
):
    """Weak scaling of distributed *external memory* BFS, Hyperion profile.

    Paper: 17B edges (169 GB) per node on Fusion-io; 64 nodes traverse a
    trillion-edge graph.  Claim checked: TEPS keeps growing with p while
    the graph (NVRAM-resident) grows proportionally.
    """
    rows = []
    machine = hyperion_dit("nvram", cache_bytes_per_rank=cache_bytes_per_rank,
                           page_size=page_size)
    for p in ranks:
        scale = int(np.log2(vertices_per_rank * p))
        edges, graph = build_rmat_graph(
            scale, num_partitions=p, num_ghosts=num_ghosts, seed=seed
        )
        row = mean_over_sources(
            edges, graph, num_sources=num_sources, seed=seed,
            machine=machine, topology="2d", warm_cache=True,
        )
        row["scale"] = scale
        rows.append(row)
    report = format_table(
        rows,
        ["p", "scale", "m", ("teps", ".3e"), ("time_us", ".0f"),
         ("cache_hit_rate", ".3f")],
        title="Figure 8 — external-memory BFS weak scaling, Hyperion-DIT "
        "profile (paper: TEPS keeps scaling with NVRAM-resident data)",
    )
    return rows, report


# ---------------------------------------------------------------------- #
# Figure 9 — NVRAM data scaling at fixed compute
# ---------------------------------------------------------------------- #
def fig09_nvram_data_scaling(
    *,
    base_scale: int = 9,
    num_ranks: int = 8,
    factors: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    num_ghosts: int = DEFAULT_GHOSTS,
    num_sources: int = 2,
    seed: int = 0,
):
    """Growing NVRAM-resident data at fixed compute (the 39% headline).

    Paper: 64 Hyperion nodes; data grows 34B -> 1T edges (32x); TEPS drops
    only 39% versus the DRAM-only baseline.  Claim checked: the 32x point's
    degradation is moderate (far less than proportional to data growth).

    The per-rank page cache is sized to the 1x working set (the node's
    "DRAM") and stays *warm* across the repeated BFS runs, so factor 1 runs
    at effectively in-memory speed while larger factors increasingly fall
    through to the flash device — the same mechanism as the paper's
    DRAM-vs-Flash split.
    """
    base_edges, base_graph = build_rmat_graph(
        base_scale, num_partitions=num_ranks, num_ghosts=num_ghosts, seed=seed
    )
    csr_bytes_1x = max(
        part.csr.nbytes() for part in base_graph.partitions
    )
    dram_machine = hyperion_dit("dram")
    rows = []
    dram_row = mean_over_sources(
        base_edges, base_graph, num_sources=num_sources, seed=seed,
        machine=dram_machine, topology="2d",
    )
    dram_row.update({"factor": 1, "storage": "dram"})
    rows.append(dram_row)

    nvram_machine = hyperion_dit(
        "nvram", cache_bytes_per_rank=int(csr_bytes_1x * 1.25), page_size=256
    )
    for factor in factors:
        scale = base_scale + int(np.log2(factor))
        edges, graph = build_rmat_graph(
            scale, num_partitions=num_ranks, num_ghosts=num_ghosts, seed=seed
        )
        row = mean_over_sources(
            edges, graph, num_sources=num_sources, seed=seed,
            machine=nvram_machine, topology="2d", warm_cache=True,
        )
        row.update({"factor": factor, "storage": "nvram"})
        rows.append(row)

    base_teps = rows[0]["teps"]
    for row in rows:
        row["teps_vs_dram"] = row["teps"] / base_teps if base_teps else 0.0
    report = format_table(
        rows,
        ["storage", "factor", "m", ("teps", ".3e"), ("teps_vs_dram", ".3f"),
         ("cache_hit_rate", ".3f")],
        title="Figure 9 — NVRAM data scaling at fixed compute "
        "(paper: 32x data with only 39% TEPS degradation)",
    )
    return rows, report


# ---------------------------------------------------------------------- #
# Figure 10 — diameter effect on BFS
# ---------------------------------------------------------------------- #
def fig10_diameter_effect(
    *,
    num_vertices: int = 1 << 12,
    degree: int = 16,
    rewires: tuple[float, ...] = (1.0, 0.3, 0.1, 0.03, 0.01, 0.003),
    num_ranks: int = 16,
    num_sources: int = 2,
    seed: int = 0,
):
    """BFS performance vs graph diameter (small-world rewire sweep).

    Paper: fixed 2^30 vertices on 4096 cores; lowering the rewire
    probability raises the diameter (x axis = BFS level depth) and BFS
    performance falls.  Claim checked: TEPS decreases monotonically as the
    measured BFS depth grows.
    """
    rows = []
    machine = bgp_intrepid()
    for rewire in rewires:
        edges, graph = build_sw_graph(
            num_vertices, degree, rewire=rewire, num_partitions=num_ranks, seed=seed
        )
        row = mean_over_sources(
            edges, graph, num_sources=num_sources, seed=seed,
            machine=machine, topology="3d",
        )
        row["rewire"] = rewire
        rows.append(row)
    rows.sort(key=lambda r: r["max_level"])
    report = format_table(
        rows,
        [("rewire", ".3f"), ("max_level", ".0f"), ("teps", ".3e"),
         ("time_us", ".0f")],
        title="Figure 10 — diameter effect on BFS (paper: performance drops "
        "as BFS depth grows)",
    )
    return rows, report


# ---------------------------------------------------------------------- #
# Figure 11 — max-degree effect on triangle counting
# ---------------------------------------------------------------------- #
def fig11_degree_effect(
    *,
    num_vertices: int = 1 << 11,
    edges_per_vertex: int = 8,
    rewires: tuple[float, ...] = (1.0, 0.75, 0.5, 0.25, 0.0),
    num_ranks: int = 16,
    seed: int = 0,
):
    """Triangle counting vs maximum vertex degree (PA rewire sweep).

    Paper: fixed 2^28 vertices / 2^32 edges on 4096 cores; lowering the
    rewire probability grows the max hub (x axis) and triangle counting
    slows.  Claim checked: time increases monotonically with max degree.
    """
    rows = []
    machine = bgp_intrepid()
    for rewire in rewires:
        edges, graph = build_pa_graph(
            num_vertices, edges_per_vertex, rewire=rewire,
            num_partitions=num_ranks, seed=seed,
        )
        result = run_traversal(
            graph, TriangleCountAlgorithm(), machine=machine, topology="3d"
        )
        rows.append(
            {
                "rewire": rewire,
                "max_degree": int(edges.out_degrees().max()),
                "triangles": result.data.total,
                "time_us": result.stats.time_us,
                "visits": result.stats.total_visits,
            }
        )
    rows.sort(key=lambda r: r["max_degree"])
    report = format_table(
        rows,
        [("rewire", ".2f"), "max_degree", "triangles", ("time_us", ".0f"),
         "visits"],
        title="Figure 11 — vertex-degree effect on triangle counting "
        "(paper: time grows with max degree)",
    )
    return rows, report


# ---------------------------------------------------------------------- #
# Figure 12 — edge list partitioning vs 1D
# ---------------------------------------------------------------------- #
def fig12_elp_vs_1d(
    *,
    vertices_per_rank: int = 1 << 8,
    ranks: tuple[int, ...] = (4, 16, 64),
    num_sources: int = 2,
    seed: int = 0,
):
    """BFS weak scaling: edge list partitioning vs 1D (Figure 12).

    Paper: graph sizes reduced (2^17 vertices per core) so 1D does not run
    out of memory; edge-list scaling is near linear while 1D slows under
    partition imbalance.  Claims checked: 1D's max-partition memory blows
    up with p while edge-list stays flat, and 1D is slower at scale.
    """
    rows = []
    machine = bgp_intrepid()
    for p in ranks:
        scale = int(np.log2(vertices_per_rank * p))
        for strategy in ("edge_list", "1d"):
            edges, graph = build_rmat_graph(
                scale, num_partitions=p, strategy=strategy, seed=seed,
                num_ghosts=DEFAULT_GHOSTS if strategy == "edge_list" else 0,
            )
            row = mean_over_sources(
                edges, graph, num_sources=num_sources, seed=seed,
                machine=machine, topology="3d",
            )
            row["scale"] = scale
            row["max_partition_edges"] = max(
                part.num_local_edges for part in graph.partitions
            )
            row["edge_imbalance"] = row["max_partition_edges"] / (
                graph.num_edges / p
            )
            rows.append(row)
    report = format_table(
        rows,
        ["strategy", "p", "scale", ("teps", ".3e"), ("time_us", ".0f"),
         "max_partition_edges", ("edge_imbalance", ".2f")],
        title="Figure 12 — edge list partitioning vs 1D "
        "(paper: ELP near-linear; 1D suffers imbalance and memory blow-up)",
    )
    return rows, report


# ---------------------------------------------------------------------- #
# Figure 13 — ghost-count sweep
# ---------------------------------------------------------------------- #
def fig13_ghost_sweep(
    *,
    scale: int = 12,
    num_ranks: int = 16,
    ghost_counts: tuple[int, ...] = (0, 1, 2, 8, 64, 256, 512),
    num_sources: int = 2,
    seed: int = 0,
):
    """Percent BFS improvement of k ghosts per partition vs no ghosts.

    Paper: 2^30 vertices on 4096 cores; 1 ghost > 12% improvement, 512
    ghosts 19.5%.  Claim checked: improvement is positive and grows with
    the ghost budget (magnitude depends on the hub structure, as the paper
    itself notes).
    """
    rows = []
    machine = bgp_intrepid()
    baseline = None
    for k in ghost_counts:
        edges, graph = build_rmat_graph(
            scale, num_partitions=num_ranks, num_ghosts=k, seed=seed
        )
        row = mean_over_sources(
            edges, graph, num_sources=num_sources, seed=seed,
            machine=machine, topology="2d",
        )
        row["ghosts"] = k
        if k == 0:
            baseline = row["time_us"]
        row["improvement_pct"] = (
            100.0 * (baseline - row["time_us"]) / baseline if baseline else 0.0
        )
        rows.append(row)
    report = format_table(
        rows,
        ["ghosts", ("time_us", ".0f"), ("improvement_pct", ".1f"),
         ("ghost_filtered", ".0f"), ("visitors_sent", ".0f")],
        title="Figure 13 — ghost-vertex sweep (paper: 1 ghost >12%, "
        "512 ghosts 19.5% improvement)",
    )
    return rows, report


# ---------------------------------------------------------------------- #
# Table II — Graph500 with NAND Flash across machines
# ---------------------------------------------------------------------- #
def table2_graph500_nvram(
    *,
    base_scale: int = 10,
    nvram_extra_scale: int = 3,
    num_sources: int = 2,
    seed: int = 0,
):
    """Table II: DRAM vs NAND-Flash Graph500 runs across machine profiles.

    Paper rows: Hyperion-DIT DRAM (2^31, 1004 MTEPS), Hyperion-DIT
    Fusion-io (2^36, 609 MTEPS), Trestles SATA SSD (2^36, 242 MTEPS),
    Leviathan single node (2^36, 52 MTEPS).  Claim checked: the *ordering*
    of the four rows is reproduced (DRAM > Fusion-io > SATA SSD >
    single-node) with NVRAM rows traversing much larger graphs.
    """
    big_scale = base_scale + nvram_extra_scale
    configs = [
        ("Hyperion-DIT", hyperion_dit("dram"), 16, base_scale, "DRAM"),
        ("Hyperion-DIT",
         hyperion_dit("nvram", cache_bytes_per_rank=96 * 1024, page_size=256), 16,
         big_scale, "Fusion-io"),
        ("Trestles", trestles(cache_bytes_per_rank=96 * 1024, page_size=256), 16,
         big_scale, "SATA SSD"),
        ("Leviathan", leviathan(cache_bytes_per_rank=96 * 1024, page_size=256), 4,
         big_scale, "Fusion-io (1 node)"),
    ]
    rows = []
    for name, machine, p, scale, storage in configs:
        edges, graph = build_rmat_graph(
            scale, num_partitions=p, num_ghosts=DEFAULT_GHOSTS, seed=seed
        )
        row = mean_over_sources(
            edges, graph, num_sources=num_sources, seed=seed,
            machine=machine, topology="2d", warm_cache=True,
        )
        row.update(
            {
                "machine_name": name,
                "storage": storage,
                "scale": scale,
                "mteps": row["teps"] / 1e6,
            }
        )
        rows.append(row)
    report = format_table(
        rows,
        ["machine_name", "storage", "p", "scale", ("mteps", ".3f"),
         ("cache_hit_rate", ".3f")],
        title="Table II — Graph500 with NAND Flash (paper MTEPS: 1004 / 609 "
        "/ 242 / 52; check ordering)",
    )
    return rows, report


# ---------------------------------------------------------------------- #
# Ablations (DESIGN.md §6)
# ---------------------------------------------------------------------- #
def ablation_routing(
    *,
    scale: int = 12,
    num_ranks: int = 64,
    num_sources: int = 2,
    seed: int = 0,
):
    """Direct vs 2D vs 3D routing at larger rank counts: channels per rank
    shrink and packets fatten, at the price of extra hops."""
    from repro.comm.routing import make_topology, max_channels

    edges, graph = build_rmat_graph(
        scale, num_partitions=num_ranks, num_ghosts=DEFAULT_GHOSTS, seed=seed
    )
    machine = bgp_intrepid()
    rows = []
    for name in ("direct", "2d", "3d"):
        topo = make_topology(name, num_ranks)
        row = mean_over_sources(
            edges, graph, num_sources=num_sources, seed=seed,
            machine=machine, topology=topo,
        )
        row["routing"] = name
        row["max_channels"] = max_channels(topo)
        rows.append(row)
    report = format_table(
        rows,
        ["routing", "max_channels", ("packets", ".0f"), ("bytes", ".0f"),
         ("time_us", ".0f"), ("teps", ".3e")],
        title="Ablation — routing topology (channel count vs hop latency)",
    )
    return rows, report


def ablation_locality_ordering(
    *,
    scale: int = 11,
    num_ranks: int = 8,
    cache_bytes_per_rank: int = 24 * 1024,
    num_sources: int = 2,
    seed: int = 0,
):
    """Section V-A's vertex-id tie-breaking on vs off under NVRAM: ordering
    by vertex id should raise the page-cache hit rate."""
    edges, graph = build_rmat_graph(
        scale, num_partitions=num_ranks, num_ghosts=DEFAULT_GHOSTS, seed=seed
    )
    machine = hyperion_dit("nvram", cache_bytes_per_rank=cache_bytes_per_rank,
                           page_size=256)
    rows = []
    for ordering in (True, False):
        row = mean_over_sources(
            edges, graph, num_sources=num_sources, seed=seed,
            machine=machine, topology="2d",
            config=EngineConfig(locality_ordering=ordering),
        )
        row["locality_ordering"] = ordering
        rows.append(row)
    report = format_table(
        rows,
        ["locality_ordering", ("cache_hit_rate", ".4f"), ("time_us", ".0f"),
         ("teps", ".3e")],
        title="Ablation — Section V-A locality ordering under NVRAM",
    )
    return rows, report


def ablation_aggregation(
    *,
    scale: int = 11,
    num_ranks: int = 16,
    sizes: tuple[int, ...] = (1, 4, 16, 64),
    num_sources: int = 2,
    seed: int = 0,
):
    """Aggregation buffer size sweep: bigger buffers mean fewer, fatter
    packets (lower overhead) but can delay the wavefront."""
    edges, graph = build_rmat_graph(
        scale, num_partitions=num_ranks, num_ghosts=DEFAULT_GHOSTS, seed=seed
    )
    machine = bgp_intrepid()
    rows = []
    for size in sizes:
        row = mean_over_sources(
            edges, graph, num_sources=num_sources, seed=seed,
            machine=machine, topology="2d",
            config=EngineConfig(aggregation_size=size),
        )
        row["aggregation_size"] = size
        rows.append(row)
    report = format_table(
        rows,
        ["aggregation_size", ("packets", ".0f"), ("bytes", ".0f"),
         ("time_us", ".0f")],
        title="Ablation — mailbox aggregation buffer size",
    )
    return rows, report


def ablation_termination(
    *,
    scale: int = 11,
    num_ranks: int = 16,
    num_sources: int = 2,
    seed: int = 0,
):
    """Counting quiescence detector vs the omniscient oracle: the detector's
    control traffic and detection delay are its (small) price."""
    edges, graph = build_rmat_graph(
        scale, num_partitions=num_ranks, num_ghosts=DEFAULT_GHOSTS, seed=seed
    )
    machine = bgp_intrepid()
    rows = []
    for use_detector in (True, False):
        row = mean_over_sources(
            edges, graph, num_sources=num_sources, seed=seed,
            machine=machine, topology="2d",
            config=EngineConfig(use_termination_detector=use_detector),
        )
        row["termination"] = "counting-detector" if use_detector else "oracle"
        rows.append(row)
    report = format_table(
        rows,
        ["termination", ("ticks", ".0f"), ("time_us", ".0f"), ("packets", ".0f")],
        title="Ablation — quiescence detection overhead",
    )
    return rows, report


def ablation_io_concurrency(
    *,
    scale: int = 11,
    num_ranks: int = 8,
    cache_bytes_per_rank: int = 24 * 1024,
    concurrencies: tuple[int, ...] = (1, 4, 16, 48),
    num_sources: int = 2,
    seed: int = 0,
):
    """Concurrent I/O sweep (Section II-B's motivation): restricting the
    outstanding NVRAM reads per tick to 1 models a synchronous traversal and
    should be dramatically slower."""
    edges, graph = build_rmat_graph(
        scale, num_partitions=num_ranks, num_ghosts=DEFAULT_GHOSTS, seed=seed
    )
    machine = hyperion_dit("nvram", cache_bytes_per_rank=cache_bytes_per_rank,
                           page_size=256)
    rows = []
    for conc in concurrencies:
        row = mean_over_sources(
            edges, graph, num_sources=num_sources, seed=seed,
            machine=machine, topology="2d",
            config=EngineConfig(io_concurrency=conc),
        )
        row["io_concurrency"] = conc
        rows.append(row)
    report = format_table(
        rows,
        ["io_concurrency", ("time_us", ".0f"), ("teps", ".3e"),
         ("cache_hit_rate", ".3f")],
        title="Ablation — NVRAM I/O concurrency (async batching is what "
        "makes Flash viable)",
    )
    return rows, report


def ablation_async_vs_bsp(
    *,
    num_vertices: int = 1 << 11,
    degree: int = 4,
    rewires: tuple[float, ...] = (1.0, 0.1, 0.01, 0.0),
    num_ranks: int = 16,
    seed: int = 0,
):
    """Asynchronous visitor queue vs an optimised level-synchronous (BSP)
    BFS baseline across a diameter sweep.

    The paper's architectural claim is that asynchrony "mitigates the
    effects of both distributed and external memory latency"; BSP pays a
    barrier + all-to-all per level, so its relative cost grows with the
    BFS depth.
    """
    from repro.algorithms.bfs import bfs as run_bfs
    from repro.algorithms.bsp_bfs import bsp_bfs

    machine = bgp_intrepid()
    rows = []
    for rewire in rewires:
        edges, graph = build_sw_graph(
            num_vertices, degree, rewire=rewire, num_partitions=num_ranks,
            num_ghosts=DEFAULT_GHOSTS, seed=seed,
        )
        source = pick_bfs_source(edges, seed=seed)
        sync = bsp_bfs(graph, source, machine=machine)
        asy = run_bfs(graph, source, machine=machine, topology="direct")
        rows.append(
            {
                "rewire": rewire,
                "depth": sync.max_level,
                "bsp_time_us": sync.time_us,
                "async_time_us": asy.stats.time_us,
                "bsp_over_async": sync.time_us / asy.stats.time_us,
                "supersteps": sync.num_supersteps,
            }
        )
    rows.sort(key=lambda r: r["depth"])
    report = format_table(
        rows,
        [("rewire", ".3f"), "depth", "supersteps", ("bsp_time_us", ".0f"),
         ("async_time_us", ".0f"), ("bsp_over_async", ".2f")],
        title="Ablation — asynchronous visitor queue vs BSP BFS "
        "(async advantage grows with diameter)",
    )
    return rows, report


def ablation_sort_cost(
    *,
    scale: int = 12,
    ranks: tuple[int, ...] = (4, 16, 64),
    num_sources: int = 2,
    seed: int = 0,
):
    """Cost of the one-off global edge sort vs a single BFS traversal.

    Edge list partitioning's extra requirement (§III-A1) quantified: the
    simulated distributed sample sort is a small constant number of
    traversal-equivalents, amortised across every traversal the resident
    graph serves.
    """
    from repro.generators.rmat import rmat_edges as gen_rmat
    from repro.graph.dist_sort import sample_sort_edges
    from repro.graph.edge_list import EdgeList

    machine = bgp_intrepid()
    src, dst = gen_rmat(scale, 16 << scale, seed=seed)
    unsorted_edges = (
        EdgeList.from_arrays(src, dst, 1 << scale)
        .permuted(seed=seed + 1)
        .simple_undirected()
    )
    # simple_undirected returns sorted; shuffle to model raw generator output
    import numpy as _np

    rng = _np.random.default_rng(seed + 2)
    order = rng.permutation(unsorted_edges.num_edges)
    shuffled = EdgeList(
        src=unsorted_edges.src[order], dst=unsorted_edges.dst[order],
        num_vertices=unsorted_edges.num_vertices,
    )
    rows = []
    for p in ranks:
        sort_result = sample_sort_edges(shuffled, p, machine, seed=seed)
        graph = DistributedGraph.build(sort_result.edges, p, num_ghosts=DEFAULT_GHOSTS)
        bfs_row = mean_over_sources(
            sort_result.edges, graph, num_sources=num_sources, seed=seed,
            machine=machine, topology="2d",
        )
        rows.append(
            {
                "p": p,
                "sort_time_us": sort_result.time_us,
                "bfs_time_us": bfs_row["time_us"],
                "sort_over_bfs": sort_result.time_us / bfs_row["time_us"],
                "bucket_imbalance": sort_result.bucket_imbalance,
                "exchange_mb": sort_result.exchange_bytes / 1e6,
            }
        )
    report = format_table(
        rows,
        ["p", ("sort_time_us", ".0f"), ("bfs_time_us", ".0f"),
         ("sort_over_bfs", ".2f"), ("bucket_imbalance", ".2f"),
         ("exchange_mb", ".3f")],
        title="Ablation — one-off distributed sort cost vs one BFS "
        "(the edge-list partitioning setup step, amortised)",
    )
    return rows, report


def ablation_exact_vs_sampled_triangles(
    *,
    num_vertices: int = 1 << 11,
    edges_per_vertex: int = 8,
    samples: tuple[int, ...] = (1_000, 10_000, 50_000),
    num_ranks: int = 16,
    seed: int = 0,
):
    """Exact triangle counting vs wedge-sampling estimates (§VI-C's
    extension): accuracy/cost trade as sample count grows."""
    from repro.algorithms.wedge_sampling import sample_triangle_estimate

    edges, graph = build_pa_graph(
        num_vertices, edges_per_vertex, num_partitions=num_ranks, seed=seed
    )
    machine = bgp_intrepid()
    exact = run_traversal(graph, TriangleCountAlgorithm(), machine=machine,
                          topology="2d")
    rows = [
        {
            "method": "exact",
            "samples": 0,
            "triangles": exact.data.total,
            "rel_error_pct": 0.0,
            "visits_or_checks": exact.stats.total_visits,
        }
    ]
    for s in samples:
        est = sample_triangle_estimate(graph, samples=s, seed=seed)
        rows.append(
            {
                "method": "wedge-sample",
                "samples": s,
                "triangles": int(round(est.estimate)),
                "rel_error_pct": 100.0 * abs(est.estimate - exact.data.total)
                / max(exact.data.total, 1),
                "visits_or_checks": int(est.checks_per_rank.sum()),
            }
        )
    report = format_table(
        rows,
        ["method", "samples", "triangles", ("rel_error_pct", ".2f"),
         "visits_or_checks"],
        title="Ablation — exact vs wedge-sampled triangle counting",
    )
    return rows, report


def ablation_semi_vs_full_external(
    *,
    scale: int = 11,
    num_ranks: int = 8,
    cache_bytes_per_rank: int = 24 * 1024,
    num_sources: int = 2,
    seed: int = 0,
):
    """Semi-external (paper's design: state in DRAM, edges on flash) vs
    fully-external memory (state paged too).

    Section VIII-A's case for edge-list partitioning rests on semi-external
    viability — per-partition state is O(V/p) and can stay resident.
    Paging the state as well makes every pre_visit a random page touch that
    competes with the CSR for the same cache.
    """
    edges, graph = build_rmat_graph(
        scale, num_partitions=num_ranks, num_ghosts=DEFAULT_GHOSTS, seed=seed
    )
    machine = hyperion_dit("nvram", cache_bytes_per_rank=cache_bytes_per_rank,
                           page_size=256)
    rows = []
    for full_external in (False, True):
        row = mean_over_sources(
            edges, graph, num_sources=num_sources, seed=seed,
            machine=machine, topology="2d",
            config=EngineConfig(page_vertex_state=full_external),
        )
        row["memory_mode"] = "fully-external" if full_external else "semi-external"
        rows.append(row)
    report = format_table(
        rows,
        ["memory_mode", ("time_us", ".0f"), ("teps", ".3e"),
         ("cache_hit_rate", ".3f")],
        title="Ablation — semi-external (paper) vs fully-external memory",
    )
    return rows, report


def extension_strong_scaling(
    *,
    scale: int = 12,
    ranks: tuple[int, ...] = (2, 4, 8, 16, 32),
    num_sources: int = 2,
    seed: int = 0,
):
    """Strong scaling (extension): a *fixed* graph across growing rank
    counts.

    The paper reports weak scaling only; strong scaling exposes the
    latency floor — speedup saturates once per-rank work no longer
    amortises the per-hop latency of the wavefront's critical path.
    """
    machine = bgp_intrepid()
    rows = []
    base_time = None
    for p in ranks:
        edges, graph = build_rmat_graph(
            scale, num_partitions=p, num_ghosts=DEFAULT_GHOSTS, seed=seed
        )
        row = mean_over_sources(
            edges, graph, num_sources=num_sources, seed=seed,
            machine=machine, topology="2d",
        )
        if base_time is None:
            base_time = row["time_us"]
        row["speedup"] = base_time / row["time_us"]
        row["efficiency"] = row["speedup"] / (p / ranks[0])
        rows.append(row)
    report = format_table(
        rows,
        ["p", ("time_us", ".0f"), ("speedup", ".2f"), ("efficiency", ".2f"),
         ("teps", ".3e")],
        title="Extension — strong scaling of BFS on a fixed graph "
        "(speedup saturates at the latency floor)",
    )
    return rows, report


def extension_pagerank_convergence(
    *,
    scale: int = 9,
    num_ranks: int = 8,
    thresholds: tuple[float, ...] = (1e-2, 1e-3, 1e-4),
    seed: int = 0,
):
    """PageRank accuracy/work trade (extension): tightening the residual
    threshold buys L1 accuracy at roughly proportional visitor cost."""
    from repro.algorithms.pagerank import PageRankAlgorithm
    from repro.reference.pagerank import pagerank_scores

    edges, graph = build_rmat_graph(scale, num_partitions=num_ranks, seed=seed)
    reference = pagerank_scores(edges)
    machine = bgp_intrepid()
    rows = []
    for threshold in thresholds:
        result = run_traversal(
            graph, PageRankAlgorithm(threshold=threshold),
            machine=machine, topology="2d",
        )
        err = float(abs(result.data.scores - reference).sum())
        rows.append(
            {
                "threshold": threshold,
                "l1_error": err,
                "visits": result.stats.total_visits,
                "time_us": result.stats.time_us,
            }
        )
    report = format_table(
        rows,
        [("threshold", ".0e"), ("l1_error", ".2e"), "visits", ("time_us", ".0f")],
        title="Extension — PageRank convergence: residual threshold vs "
        "L1 error vs work",
    )
    return rows, report
