"""Shared experiment plumbing: graph builders and single-trial runners.

All builders follow the paper's generation pipeline — generate, uniformly
permute labels, simplify to an undirected simple graph — and all runners
return flat ``dict`` rows so experiments compose into tables trivially.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.bfs import BFSAlgorithm
from repro.analysis.teps import bfs_traversed_edges, teps
from repro.analysis.validate import validate_bfs
from repro.comm.routing import Topology
from repro.core.traversal import run_traversal
from repro.errors import TraversalError
from repro.generators.preferential_attachment import preferential_attachment_edges
from repro.generators.rmat import rmat_edges
from repro.generators.small_world import small_world_edges
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.runtime.costmodel import EngineConfig, MachineModel, laptop
from repro.utils.rng import resolve_rng


# ---------------------------------------------------------------------- #
# Graph builders
# ---------------------------------------------------------------------- #
def build_rmat_graph(
    scale: int,
    *,
    edgefactor: int = 16,
    num_partitions: int,
    num_ghosts: int = 0,
    strategy: str = "edge_list",
    seed: int = 0,
) -> tuple[EdgeList, DistributedGraph]:
    """Graph500-style RMAT graph: generate, permute, simplify, partition."""
    n = 1 << scale
    src, dst = rmat_edges(scale, edgefactor << scale, seed=seed)
    edges = (
        EdgeList.from_arrays(src, dst, n)
        .permuted(seed=seed + 1)
        .simple_undirected()
    )
    graph = DistributedGraph.build(
        edges, num_partitions, strategy=strategy, num_ghosts=num_ghosts
    )
    return edges, graph


def build_pa_graph(
    num_vertices: int,
    edges_per_vertex: int,
    *,
    rewire: float = 0.0,
    num_partitions: int,
    num_ghosts: int = 0,
    strategy: str = "edge_list",
    seed: int = 0,
) -> tuple[EdgeList, DistributedGraph]:
    """Preferential-attachment graph with optional rewire (Figure 11)."""
    src, dst = preferential_attachment_edges(
        num_vertices, edges_per_vertex, rewire_probability=rewire, seed=seed
    )
    edges = (
        EdgeList.from_arrays(src, dst, num_vertices)
        .permuted(seed=seed + 1)
        .simple_undirected()
    )
    graph = DistributedGraph.build(
        edges, num_partitions, strategy=strategy, num_ghosts=num_ghosts
    )
    return edges, graph


def build_sw_graph(
    num_vertices: int,
    degree: int,
    *,
    rewire: float = 0.0,
    num_partitions: int,
    num_ghosts: int = 0,
    seed: int = 0,
) -> tuple[EdgeList, DistributedGraph]:
    """Small-world graph with controllable diameter (Figures 7 and 10)."""
    src, dst = small_world_edges(
        num_vertices, degree, rewire_probability=rewire, seed=seed
    )
    edges = (
        EdgeList.from_arrays(src, dst, num_vertices)
        .permuted(seed=seed + 1)
        .simple_undirected()
    )
    graph = DistributedGraph.build(edges, num_partitions, num_ghosts=num_ghosts)
    return edges, graph


# ---------------------------------------------------------------------- #
# Trial runners
# ---------------------------------------------------------------------- #
def pick_bfs_source(edges: EdgeList, *, seed: int = 0, min_degree: int = 1) -> int:
    """Pick a random traversal source with degree >= min_degree, Graph500
    style (sources with zero degree would make degenerate trials)."""
    degrees = edges.out_degrees()
    eligible = np.flatnonzero(degrees >= min_degree)
    if eligible.size == 0:
        raise ValueError("no vertex satisfies the source degree requirement")
    rng = resolve_rng(seed)
    return int(eligible[rng.integers(0, eligible.size)])


def make_page_caches(machine: MachineModel, num_ranks: int):
    """Fresh per-rank page caches for ``machine`` (NVRAM storage only);
    reuse them across trials to model a warm Graph500 run sequence."""
    from repro.memory.page_cache import PageCache
    from repro.runtime.costmodel import STORAGE_NVRAM

    if machine.storage != STORAGE_NVRAM:
        return None
    return [
        PageCache(
            capacity_pages=machine.cache_pages_per_rank,
            page_size=machine.page_size,
            device=machine.device,
        )
        for _ in range(num_ranks)
    ]


def run_bfs_trial(
    edges: EdgeList,
    graph: DistributedGraph,
    *,
    source: int | None = None,
    machine: MachineModel | None = None,
    topology: Topology | str = "direct",
    config: EngineConfig | None = None,
    seed: int = 0,
    page_caches: list | None = None,
) -> dict:
    """One BFS run -> a flat result row (TEPS, counts, cache behaviour)."""
    machine = machine or laptop()
    if source is None:
        source = pick_bfs_source(edges, seed=seed)
    result = run_traversal(
        graph, BFSAlgorithm(source), machine=machine, topology=topology,
        config=config, page_caches=page_caches,
    )
    stats = result.stats
    traversed = bfs_traversed_edges(edges, result.data.levels)
    # Graph500-style validation: a TEPS number only counts if the BFS tree
    # checks out against the input edge list.
    report = validate_bfs(edges, source, result.data.levels, result.data.parents)
    if not report.valid:
        raise TraversalError(
            f"BFS output failed validation: {report.errors[:3]}"
        )
    row = {
        "algorithm": "bfs",
        "machine": machine.name,
        "topology": stats.topology,
        "p": graph.num_partitions,
        "strategy": graph.strategy,
        "n": graph.num_vertices,
        "m": graph.num_edges,
        "source": source,
        "reached": result.data.num_reached,
        "max_level": result.data.max_level,
        "traversed_edges": traversed,
        "time_us": stats.time_us,
        "teps": teps(traversed, stats.time_us) if traversed else 0.0,
        "ticks": stats.ticks,
        "visits": stats.total_visits,
        "visitors_sent": stats.total_visitors_sent,
        "ghost_filtered": stats.total_ghost_filtered,
        "packets": stats.total_packets,
        "bytes": stats.total_bytes,
        "cache_hit_rate": stats.cache_hit_rate(),
        "visit_imbalance": stats.visit_imbalance(),
        "validated": True,
    }
    return row


def mean_over_sources(
    edges: EdgeList,
    graph: DistributedGraph,
    *,
    num_sources: int = 3,
    seed: int = 0,
    warm_cache: bool = False,
    **trial_kwargs,
) -> dict:
    """Average a BFS row over several random sources (Graph500 runs 64;
    the harness default keeps reproduction runs quick).

    With ``warm_cache`` (NVRAM machines), one shared set of page caches
    serves every run, preceded by an unmeasured warm-up traversal — the
    Graph500 pattern of 64 back-to-back BFS runs on one resident dataset.
    """
    caches = None
    if warm_cache:
        machine = trial_kwargs.get("machine") or laptop()
        caches = make_page_caches(machine, graph.num_partitions)
        if caches is not None:
            run_bfs_trial(
                edges, graph, seed=seed + num_sources, page_caches=caches, **trial_kwargs
            )  # warm-up, discarded
    rows = [
        run_bfs_trial(edges, graph, seed=seed + i, page_caches=caches, **trial_kwargs)
        for i in range(num_sources)
    ]
    out = dict(rows[0])
    for key in ("reached", "max_level", "traversed_edges", "time_us", "teps",
                "ticks", "visits", "visitors_sent", "ghost_filtered", "packets",
                "bytes", "cache_hit_rate", "visit_imbalance"):
        out[key] = float(np.mean([r[key] for r in rows]))
    out["num_sources"] = num_sources
    return out
