"""Profiling helpers: find out where a traversal's *host* time goes.

"No optimization without measuring!" — the harness's simulated clock
answers *algorithmic* questions; this module answers the engineering
question of where the simulator itself spends host CPU, using
:mod:`cProfile` so optimisation work targets real bottlenecks rather than
guesses.
"""

from __future__ import annotations

import cProfile
from dataclasses import dataclass
import io
import pstats
from typing import Callable


@dataclass(frozen=True)
class ProfileReport:
    """Digest of one profiled call."""

    result: object
    total_calls: int
    host_seconds: float
    #: (function qualifier, cumulative seconds) for the hottest functions
    hotspots: list[tuple[str, float]]

    def summary(self, top: int = 5) -> str:
        lines = [
            f"host time {self.host_seconds:.3f}s over {self.total_calls} calls; "
            "hottest:"
        ]
        for name, cum in self.hotspots[:top]:
            lines.append(f"  {cum:8.3f}s  {name}")
        return "\n".join(lines)


def profile_call(fn: Callable[[], object], *, top: int = 10) -> ProfileReport:
    """Run ``fn`` under cProfile and return its result plus a hotspot digest."""
    profiler = cProfile.Profile()
    result = profiler.runcall(fn)
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(pstats.SortKey.CUMULATIVE)
    hotspots: list[tuple[str, float]] = []
    for func, (_cc, _nc, _tt, ct, _callers) in sorted(
        stats.stats.items(), key=lambda item: -item[1][3]
    ):
        filename, line, name = func
        if "cProfile" in filename or name == "<built-in method builtins.exec>":
            continue
        short = f"{filename.rsplit('/', 1)[-1]}:{line}({name})"
        hotspots.append((short, ct))
        if len(hotspots) >= top:
            break
    return ProfileReport(
        result=result,
        total_calls=int(stats.total_calls),
        host_seconds=float(stats.total_tt),
        hotspots=hotspots,
    )
