"""Benchmark harness.

One driver function per paper figure/table lives in
:mod:`repro.bench.experiments`; the pytest-benchmark wrappers under
``benchmarks/`` call these with reproduction-scale parameters and assert
the paper's qualitative claims.  :mod:`repro.bench.paper_reference` records
the paper's reported numbers so every report prints paper-vs-measured side
by side.
"""

from repro.bench.harness import (
    build_pa_graph,
    build_rmat_graph,
    build_sw_graph,
    pick_bfs_source,
    run_bfs_trial,
)
from repro.bench.report import format_table

__all__ = [
    "build_rmat_graph",
    "build_pa_graph",
    "build_sw_graph",
    "pick_bfs_source",
    "run_bfs_trial",
    "format_table",
]
