"""Tiny ASCII chart rendering for terminal reports.

Experiment reports are plain-text tables; a sparkline column or a small
bar chart makes trends legible at a glance without a plotting dependency.
Used by the CLI's ``experiment`` command and the examples.
"""

from __future__ import annotations

from typing import Sequence

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render values as a unicode sparkline, e.g. ``▁▃▆█``.

    Constant series render as mid-height bars; empty input gives "".
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _BARS[3] * len(vals)
    span = hi - lo
    return "".join(_BARS[min(int((v - lo) / span * 8), 7)] for v in vals)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    fmt: str = ".3g",
) -> str:
    """Horizontal ASCII bar chart with aligned labels and values."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return ""
    vals = [float(v) for v in values]
    peak = max(max(vals), 1e-300)
    label_width = max(len(str(lb)) for lb in labels)
    lines = []
    for label, v in zip(labels, vals, strict=False):
        bar = "#" * max(1 if v > 0 else 0, round(v / peak * width))
        lines.append(f"{str(label).rjust(label_width)}  {bar.ljust(width)}  {format(v, fmt)}")
    return "\n".join(lines)
