"""Plain-text table formatting for experiment reports."""

from __future__ import annotations

from typing import Sequence


def _fmt(value, spec: str | None) -> str:
    if spec and isinstance(value, (int, float)):
        return format(value, spec)
    return str(value)


def format_table(
    rows: Sequence[dict],
    columns: Sequence[str | tuple[str, str]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table.

    ``columns`` entries are either a key or ``(key, format_spec)``, e.g.
    ``("teps", ".3e")``.  Missing keys render as ``-``.
    """
    specs: list[tuple[str, str | None]] = [
        (c, None) if isinstance(c, str) else (c[0], c[1]) for c in columns
    ]
    header = [key for key, _ in specs]
    body = [
        [_fmt(row.get(key, "-"), spec) for key, spec in specs] for row in rows
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths, strict=False)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths, strict=False)))
    return "\n".join(lines)
