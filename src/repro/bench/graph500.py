"""A Graph500-style benchmark run.

The official benchmark procedure (www.graph500.org, referenced throughout
the paper): construct the graph once, then run BFS from 64 random
non-isolated sources, *validate every search*, and report the distribution
of per-search TEPS.  This module reproduces that procedure over the
simulated machine, including the warm persistent page cache for NVRAM
configurations — the setting of the paper's Table II submissions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.bfs import BFSAlgorithm
from repro.analysis.teps import bfs_traversed_edges, teps
from repro.analysis.validate import validate_bfs
from repro.bench.harness import make_page_caches
from repro.comm.routing import Topology
from repro.core.traversal import run_traversal
from repro.errors import TraversalError
from repro.graph.distributed import DistributedGraph
from repro.graph.edge_list import EdgeList
from repro.runtime.costmodel import EngineConfig, MachineModel, laptop
from repro.utils.rng import resolve_rng


@dataclass(frozen=True)
class Graph500Run:
    """Result of one official-style run (many validated searches)."""

    scale: int
    num_searches: int
    #: per-search TEPS, in search order
    teps_values: np.ndarray
    #: per-search simulated times (microseconds)
    times_us: np.ndarray
    sources: np.ndarray
    all_validated: bool

    @property
    def min_teps(self) -> float:
        return float(self.teps_values.min())

    @property
    def median_teps(self) -> float:
        return float(np.median(self.teps_values))

    @property
    def max_teps(self) -> float:
        return float(self.teps_values.max())

    @property
    def harmonic_mean_teps(self) -> float:
        """Graph500's headline statistic is the harmonic mean of TEPS."""
        return float(len(self.teps_values) / np.sum(1.0 / self.teps_values))

    def summary(self) -> str:
        return (
            f"graph500 scale {self.scale}: {self.num_searches} searches, "
            f"TEPS min/median/max = {self.min_teps:.3e} / "
            f"{self.median_teps:.3e} / {self.max_teps:.3e}, "
            f"harmonic mean {self.harmonic_mean_teps:.3e}, "
            f"validated={self.all_validated}"
        )


def run_graph500(
    edges: EdgeList,
    graph: DistributedGraph,
    *,
    num_searches: int = 64,
    kernel: str = "bfs",
    machine: MachineModel | None = None,
    topology: Topology | str = "2d",
    config: EngineConfig | None = None,
    seed: int = 0,
) -> Graph500Run:
    """Run the official search phase: ``num_searches`` validated searches
    from distinct random non-isolated sources.

    ``kernel`` is ``"bfs"`` (the paper-era benchmark, kernel 2) or
    ``"sssp"`` (the benchmark's later kernel 3, using the framework's
    hash-derived edge weights; validated against sequential Dijkstra).

    For NVRAM machines the page caches persist across searches (warm), as
    on a real submission where the graph stays resident between runs.
    Raises :class:`TraversalError` if any search fails validation — an
    invalid search invalidates the submission.
    """
    if num_searches < 1:
        raise ValueError(f"num_searches must be >= 1, got {num_searches}")
    if kernel not in ("bfs", "sssp"):
        raise ValueError(f"unknown kernel {kernel!r}")
    machine = machine or laptop()
    rng = resolve_rng(seed)
    degrees = edges.out_degrees()
    eligible = np.flatnonzero(degrees > 0)
    if eligible.size == 0:
        raise TraversalError("graph has no non-isolated vertices to search from")
    replace = eligible.size < num_searches
    sources = rng.choice(eligible, size=num_searches, replace=replace)

    caches = make_page_caches(machine, graph.num_partitions)
    teps_values = np.empty(num_searches, dtype=np.float64)
    times = np.empty(num_searches, dtype=np.float64)
    for i, source in enumerate(sources):
        source = int(source)
        if kernel == "bfs":
            result = run_traversal(
                graph, BFSAlgorithm(source), machine=machine, topology=topology,
                config=config, page_caches=caches,
            )
            report = validate_bfs(
                edges, source, result.data.levels, result.data.parents
            )
            if not report.valid:
                raise TraversalError(
                    f"search {i} from source {source} failed validation: "
                    f"{report.errors[:3]}"
                )
            traversed = bfs_traversed_edges(edges, result.data.levels)
        else:
            from repro.algorithms.sssp import SSSPAlgorithm
            from repro.reference.sssp import sssp_distances
            from repro.types import UNREACHED

            result = run_traversal(
                graph, SSSPAlgorithm(source), machine=machine, topology=topology,
                config=config, page_caches=caches,
            )
            reference = sssp_distances(edges, source)
            if not np.allclose(result.data.distances, reference, equal_nan=True):
                raise TraversalError(
                    f"search {i} from source {source} failed SSSP validation"
                )
            levels_proxy = np.where(
                np.isfinite(result.data.distances), 0, UNREACHED
            ).astype(np.int64)
            traversed = bfs_traversed_edges(edges, levels_proxy)
        times[i] = result.stats.time_us
        teps_values[i] = teps(max(traversed, 1), result.stats.time_us)

    scale = int(np.log2(max(graph.num_vertices, 2)))
    return Graph500Run(
        scale=scale,
        num_searches=num_searches,
        teps_values=teps_values,
        times_us=times,
        sources=sources.astype(np.int64),
        all_validated=True,
    )
