"""The paper's reported numbers, for paper-vs-measured reporting.

Only *shape-level* quantities are compared (ratios, orderings, monotone
trends); the simulator is not expected to reproduce absolute TEPS of 2012
hardware.  Each constant cites the paper location it came from.
"""

from __future__ import annotations

#: Figure 5 / Section VII-B1: "achieved 64.9 GTEPS with 2^35 vertices ...
#: only 19% slower than the best known BG/P implementation."
PAPER_BEST_BGP_SLOWDOWN = 0.19
PAPER_PEAK_GTEPS_131K_CORES = 64.9

#: Figure 9 / abstract: "thirty-two times larger datasets with only a 39%
#: performance degradation in TEPS."
PAPER_NVRAM_DATA_FACTOR = 32
PAPER_NVRAM_TEPS_DEGRADATION = 0.39

#: Figure 13: "Using a single ghost shows more than a 12% improvement, and
#: 512 ghosts shows an 19.5% improvement."
PAPER_GHOST_IMPROVEMENT = {1: 12.0, 512: 19.5}
#: "All other BFS experiments in this work use 256 ghost vertices per
#: partition."
PAPER_DEFAULT_GHOSTS = 256

#: Table II — November 2011 Graph500 results using NAND Flash.
#: (machine, storage, log2 vertices, MTEPS)
PAPER_TABLE2 = [
    ("Hyperion-DIT", "DRAM", 31, 1004.0),
    ("Hyperion-DIT", "Fusion-io", 36, 609.0),
    ("Trestles", "SATA SSD", 36, 242.0),
    ("Leviathan", "Fusion-io", 36, 52.0),
]

#: Figure 1: "by the graph size of 2^30 vertices, the max degree hub has
#: already crossed 10 Million edges" (average degree held at 16).
PAPER_FIG1_MAX_DEGREE_AT_SCALE30 = 10_000_000

#: Section VII-B weak-scaling configuration on BG/P: 2^18 vertices per core,
#: largest graph 2^35 vertices on 131K cores.
PAPER_BGP_VERTICES_PER_CORE = 1 << 18

#: Figure 6/7 weak scaling: 2^18 vertices and 2^22 undirected edges per core.
PAPER_KCORE_EDGES_PER_CORE = 1 << 22

#: Figure 8: 17 billion edges (~169 GB CSR) per compute node; 64 nodes give
#: over one trillion edges and 2^36 vertices.
PAPER_EM_EDGES_PER_NODE = 17_000_000_000

#: Figure 12: reduced sizes so 1D fits: 2^17 vertices / 2^21 edges per core.
PAPER_FIG12_VERTICES_PER_CORE = 1 << 17

#: Section VIII-A: 2D partitions go hypersparse when sqrt(p) > degree(g);
#: "for the sparse Graph500 datasets with average degree of 16, this may
#: occur for as low as 256 partitions".
PAPER_HYPERSPARSE_P = 256
