"""Shared type aliases and dtype constants.

Vertex identifiers are 64-bit signed integers throughout, matching the
paper's target scale (2^36 vertices and beyond).  All edge arrays use
:data:`VID_DTYPE` so that indices, degrees and prefix sums never overflow at
the scales exercised by the benchmark harness.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np

#: Vertex identifier (a non-negative integer < ``num_vertices``).
VertexId: TypeAlias = int

#: A partition / MPI-style rank identifier in ``[0, p)``.
Rank: TypeAlias = int

#: NumPy dtype used for vertex ids, edge indices and degrees.
VID_DTYPE = np.int64

#: NumPy dtype used for compact per-vertex algorithm state (BFS levels, ...).
LEVEL_DTYPE = np.int64

#: Sentinel for "unreached / infinity" in integer level arrays.
UNREACHED = np.iinfo(np.int64).max
