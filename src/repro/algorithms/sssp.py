"""Asynchronous Single-Source Shortest Path (extension).

The paper's earlier work ([4], cited in Section IV-A) computed SSSP with
the same prioritized visitor queues; this module provides it on top of the
distributed framework as a label-correcting traversal: ``pre_visit`` is a
monotonic improve-or-drop distance filter (ghost-safe), and the priority
queue orders visitors by tentative distance, so the traversal approximates
asynchronous delta-stepping with delta = one visitor.

Edge weights are derived from a deterministic symmetric hash of the edge's
endpoints (no weight storage needed, identical across replicas and runs);
pass ``unit_weights=True`` to recover BFS distances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.batch import BatchStateArrays, VisitorBatch
from repro.core.traversal import TraversalResult, run_traversal
from repro.core.visitor import AsyncAlgorithm, Visitor
from repro.graph.distributed import DistributedGraph
from repro.types import VID_DTYPE

_INF = float("inf")
_MIX_A = 0x9E3779B1
_MIX_B = 0x85EBCA77
_MASK = (1 << 61) - 1


def edge_weight(u: int, v: int, *, max_weight: int = 16, salt: int = 0) -> int:
    """Deterministic symmetric integer weight in ``[1, max_weight]``."""
    a, b = (u, v) if u <= v else (v, u)
    h = ((a * _MIX_A) ^ (b * _MIX_B) ^ (salt * 0xC2B2AE35)) & _MASK
    return 1 + (h % max_weight)


class SSSPState:
    """Per-vertex tentative distance and parent."""

    __slots__ = ("distance", "parent")

    def __init__(self) -> None:
        self.distance = _INF
        self.parent = -1


class SSSPVisitor(Visitor):
    """Distance-carrying visitor, prioritised by tentative distance."""

    __slots__ = ("distance", "parent", "max_weight", "salt")

    def __init__(self, vertex: int, distance: float, parent: int, max_weight: int, salt: int) -> None:
        super().__init__(vertex)
        self.distance = distance
        self.parent = parent
        self.max_weight = max_weight
        self.salt = salt

    @property
    def priority(self) -> float:
        return self.distance

    def pre_visit(self, vertex_data: SSSPState) -> bool:
        if self.distance < vertex_data.distance:
            vertex_data.distance = self.distance
            vertex_data.parent = self.parent
            return True
        return False

    def visit(self, ctx) -> None:
        if self.distance == ctx.state_of(self.vertex).distance:
            v = self.vertex
            push = ctx.push
            for w in ctx.out_edges(v):
                w = int(w)
                wgt = edge_weight(v, w, max_weight=self.max_weight, salt=self.salt)
                push(SSSPVisitor(w, self.distance + wgt, v, self.max_weight, self.salt))


@dataclass(frozen=True)
class SSSPResult:
    """Gathered SSSP output."""

    source: int
    distances: np.ndarray
    parents: np.ndarray

    @property
    def num_reached(self) -> int:
        return int(np.count_nonzero(np.isfinite(self.distances)))


class SSSPAlgorithm(AsyncAlgorithm):
    """Label-correcting SSSP with hash-derived edge weights."""

    name = "sssp"
    uses_ghosts = True  # monotonic min filter, ghost-safe like BFS
    visitor_bytes = 32
    supports_batch = True
    payload_dtype = np.float64

    def __init__(self, source: int, *, max_weight: int = 16, salt: int = 0,
                 unit_weights: bool = False) -> None:
        if source < 0:
            raise ValueError(f"source must be >= 0, got {source}")
        self.source = source
        self.max_weight = 1 if unit_weights else max_weight
        self.salt = salt

    def make_state(self, vertex: int, degree: int, role: str) -> SSSPState:
        return SSSPState()

    def initial_visitors(self, graph: DistributedGraph, rank: int):
        if rank == graph.min_owner(self.source):
            yield SSSPVisitor(self.source, 0.0, self.source, self.max_weight, self.salt)

    def finalize(self, graph: DistributedGraph, states_per_rank: list[list]) -> SSSPResult:
        n = graph.num_vertices
        distances = np.full(n, np.inf, dtype=np.float64)
        parents = np.full(n, -1, dtype=np.int64)
        for v, state in self.master_states(graph, states_per_rank):
            distances[v] = state.distance
            parents[v] = state.parent
        return SSSPResult(source=self.source, distances=distances, parents=parents)

    # -------------------------- batch path --------------------------- #
    def make_state_arrays(self, vertices, degrees, role, *, masters=None) -> BatchStateArrays:
        n = vertices.size
        return BatchStateArrays(
            values=np.full(n, np.inf, dtype=np.float64),
            parents=np.full(n, -1, dtype=np.int64),
        )

    def initial_batch(self, graph: DistributedGraph, rank: int) -> VisitorBatch | None:
        if rank != graph.min_owner(self.source):
            return None
        return VisitorBatch(
            np.array([self.source], dtype=VID_DTYPE),
            np.array([0.0], dtype=self.payload_dtype),
            np.array([self.source], dtype=np.int64),
        )

    def expand_batch(self, vertices, payloads, lens, targets):
        # Vectorized edge_weight(): int64 wraparound keeps the same low
        # 61 bits as arbitrary-precision Python ints, and ``& _MASK``
        # re-establishes a non-negative value before the modulo — so the
        # weights are bit-identical to the scalar hash.
        u = np.repeat(vertices, lens)
        a = np.minimum(u, targets)
        b = np.maximum(u, targets)
        h = ((a * _MIX_A) ^ (b * _MIX_B) ^ (self.salt * 0xC2B2AE35)) & _MASK
        weights = 1 + (h % self.max_weight)
        return np.repeat(payloads, lens) + weights, u

    def finalize_batch(self, graph: DistributedGraph, arrays_per_rank: list) -> SSSPResult:
        n = graph.num_vertices
        distances = np.full(n, np.inf, dtype=np.float64)
        parents = np.full(n, -1, dtype=np.int64)
        for rank, arrays in enumerate(arrays_per_rank):
            lo = graph.partitions[rank].state_lo
            masters = np.asarray(graph.masters_on(rank))
            distances[masters] = arrays.values[masters - lo]
            parents[masters] = arrays.parents[masters - lo]
        return SSSPResult(source=self.source, distances=distances, parents=parents)


def sssp(graph: DistributedGraph, source: int, **kwargs) -> TraversalResult:
    """Run asynchronous SSSP; algorithm options ``max_weight``/``salt``/
    ``unit_weights`` are accepted alongside :func:`run_traversal` kwargs."""
    algo_keys = {"max_weight", "salt", "unit_weights"}
    algo_kwargs = {k: kwargs.pop(k) for k in list(kwargs) if k in algo_keys}
    return run_traversal(graph, SSSPAlgorithm(source, **algo_kwargs), **kwargs)
