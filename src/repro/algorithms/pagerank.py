"""Asynchronous PageRank by residual push (extension).

A natural fourth algorithm for the visitor framework: the push-based
(Gauss–Southwell) formulation of PageRank maintains per-vertex ``(rank
mass, pending residual)`` state; visitors deliver residual mass, and a
vertex whose accumulated residual reaches a threshold absorbs it into its
mass and pushes ``damping * residual / degree`` to each neighbour.  At
quiescence every pending residual is below the threshold, giving the
standard approximation guarantee (per-vertex error bounded by
``threshold``).

**Split-vertex discipline.**  PageRank accumulates (so ghosts are
forbidden, like k-core), but unlike k-core every copy of a *split* vertex
must see every delivery: their ``pre_visit`` accumulates and always
returns true, so each push walks the whole replica chain
(triangle-counting style) and the threshold gate lives in ``visit``.
Every state copy therefore receives the identical mass stream and
eventually drains the same total (± threshold) over *its own slice* of
the adjacency list — the union covers the full neighbourhood exactly
once.  Sole-copy vertices (the overwhelming majority) have no chain to
feed and gate directly in ``pre_visit``, skipping the queue for
sub-threshold deliveries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.batch import VisitorBatch, occurrence_counts
from repro.core.traversal import TraversalResult, run_traversal
from repro.core.visitor import AsyncAlgorithm, Visitor
from repro.graph.distributed import DistributedGraph
from repro.types import VID_DTYPE


class PageRankState:
    """Per-vertex absorbed mass and pending residual.

    ``gated`` marks sole-copy vertices whose threshold check can happen in
    ``pre_visit`` (dropping sub-threshold deliveries before the queue);
    split vertices must stream every delivery through the replica chain,
    so their gate lives in ``visit``.
    """

    __slots__ = ("mass", "residual", "gated")

    def __init__(self, gated: bool = False) -> None:
        self.mass = 0.0
        self.residual = 0.0
        self.gated = gated


class PageRankVisitor(Visitor):
    """Residual-mass carrier."""

    __slots__ = ("amount", "damping", "threshold")

    def __init__(self, vertex: int, amount: float, damping: float, threshold: float) -> None:
        super().__init__(vertex)
        self.amount = amount
        self.damping = damping
        self.threshold = threshold

    @property
    def priority(self) -> float:
        return -self.amount  # biggest pushes first converge fastest

    def pre_visit(self, state: PageRankState) -> bool:
        # Accumulate at every copy; split-vertex copies always proceed so
        # replicas see the same mass stream as the master (see module
        # docstring), sole copies gate here and skip sub-threshold queueing.
        state.residual += self.amount
        if state.gated:
            return state.residual >= self.threshold
        return True

    def visit(self, ctx) -> None:
        v = self.vertex
        state = ctx.state_of(v)
        residual = state.residual
        if residual < self.threshold:
            return  # below the gate (or already drained by a sibling visit)
        state.residual = 0.0
        state.mass += residual
        degree = ctx.graph.degree(v)
        if degree == 0:
            return
        share = self.damping * residual / degree
        push = ctx.push
        damping = self.damping
        threshold = self.threshold
        for w in ctx.out_edges(v):
            push(PageRankVisitor(int(w), share, damping, threshold))


class PageRankStateArrays:
    """Array-backed PageRank state for one rank (batch path).

    The accumulating pre-visit (``residual += amount``) is the one place
    in the batch engine where float *order* matters: IEEE addition is not
    associative, so within-batch deliveries to the same vertex are folded
    in arrival order — vectorized where every target is distinct, an exact
    scalar walk (Python floats are IEEE doubles) where a vertex repeats —
    making the residual stream bit-identical to the object path's.
    """

    __slots__ = ("mass", "residual", "gated", "threshold")

    def __init__(self, gated: np.ndarray, threshold: float) -> None:
        n = gated.size
        self.mass = np.zeros(n, dtype=np.float64)
        self.residual = np.zeros(n, dtype=np.float64)
        self.gated = gated
        self.threshold = threshold

    def __len__(self) -> int:
        return int(self.mass.size)

    def previsit_batch(self, idx: np.ndarray, batch: VisitorBatch) -> np.ndarray:
        """Accumulate deliveries; gate sole-copy vertices on the threshold
        (split copies always pass — the replica-chain stream)."""
        amounts = batch.payloads
        n = idx.size
        if n == 0:
            return np.zeros(0, dtype=bool)
        residual = self.residual
        thr = self.threshold
        _, inverse, counts = np.unique(idx, return_inverse=True, return_counts=True)
        dup = counts[inverse] > 1
        if not dup.any():
            new = residual[idx] + amounts
            residual[idx] = new
            return ~self.gated[idx] | (new >= thr)
        mask = np.empty(n, dtype=bool)
        uni = ~dup
        if uni.any():
            ui = idx[uni]
            new = residual[ui] + amounts[uni]
            residual[ui] = new
            mask[uni] = ~self.gated[ui] | (new >= thr)
        gated = self.gated
        dpos = np.flatnonzero(dup)
        for i, j, a in zip(
            dpos.tolist(), idx[dpos].tolist(), amounts[dpos].tolist()
        , strict=False):
            r = residual[j] + a
            residual[j] = r
            mask[i] = (not gated[j]) or (r >= thr)
        return mask

    def snapshot(self) -> dict:
        """Checkpointable copy of the mutable state arrays."""
        return {"mass": self.mass.copy(), "residual": self.residual.copy()}

    def restore(self, snap: dict) -> None:
        """Reinstall a :meth:`snapshot` checkpoint in place."""
        self.mass[:] = snap["mass"]
        self.residual[:] = snap["residual"]


@dataclass(frozen=True)
class PageRankResult:
    """Gathered PageRank output."""

    damping: float
    threshold: float
    #: per-vertex scores, L1-normalised to sum to 1.
    scores: np.ndarray

    def top(self, k: int = 10) -> list[tuple[int, float]]:
        """The k highest-ranked vertices."""
        order = np.argsort(self.scores)[::-1][:k]
        return [(int(v), float(self.scores[v])) for v in order]


class PageRankAlgorithm(AsyncAlgorithm):
    """Push-based PageRank to residual tolerance ``threshold``."""

    name = "pagerank"
    uses_ghosts = False  # accumulating state: ghosts would swallow mass
    visitor_bytes = 32
    supports_batch = True
    payload_dtype = np.float64  # the residual amount
    batch_priority_is_payload = False  # operator<: -amount (biggest first)

    def __init__(self, *, damping: float = 0.85, threshold: float = 1e-4) -> None:
        if not 0.0 < damping < 1.0:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        if threshold <= 0.0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        self.damping = damping
        self.threshold = threshold

    def bind(self, graph: DistributedGraph) -> None:
        self._sole_copy = graph.min_owners == graph.max_owners

    def make_state(self, vertex: int, degree: int, role: str) -> PageRankState:
        return PageRankState(gated=bool(self._sole_copy[vertex]))

    def initial_visitors(self, graph: DistributedGraph, rank: int):
        seed = 1.0 - self.damping  # uniform teleport mass, unnormalised
        for v in graph.masters_on(rank):
            yield PageRankVisitor(int(v), seed, self.damping, self.threshold)

    def finalize(self, graph: DistributedGraph, states_per_rank: list[list]) -> PageRankResult:
        scores = np.zeros(graph.num_vertices, dtype=np.float64)
        # Master copies are authoritative (replicas hold the same stream up
        # to sub-threshold drain timing); count leftover residual as mass
        # so the total is conserved.
        for v, state in self.master_states(graph, states_per_rank):
            scores[v] = state.mass + state.residual
        total = scores.sum()
        if total > 0:
            scores /= total
        return PageRankResult(
            damping=self.damping, threshold=self.threshold, scores=scores
        )

    # -------------------------- batch path --------------------------- #
    def make_state_arrays(self, vertices, degrees, role, *, masters=None) -> PageRankStateArrays:
        return PageRankStateArrays(self._sole_copy[vertices], self.threshold)

    def batch_priorities(self, payloads: np.ndarray) -> np.ndarray:
        return -payloads

    def initial_batch(self, graph: DistributedGraph, rank: int) -> VisitorBatch | None:
        masters = np.asarray(graph.masters_on(rank), dtype=VID_DTYPE)
        if masters.size == 0:
            return None
        seed = np.full(masters.size, 1.0 - self.damping, dtype=self.payload_dtype)
        return VisitorBatch(masters, seed)

    def execute_batch(self, ctx, batch: VisitorBatch) -> VisitorBatch | None:
        """The drain-and-push visit, vectorized over one popped run.

        Within a run the only residual mutation is the drain itself
        (arrivals land at ``check_mailbox``, never mid-process), so the
        first pop of each vertex drains iff its residual clears the
        threshold, and every later pop of the same vertex sees either a
        zeroed or an unchanged sub-threshold residual — the exact
        sequential outcome, computed from per-vertex arrival indices.
        """
        vertices = batch.vertices
        arrays = ctx.states
        idx = vertices - ctx.state_lo
        res = arrays.residual[idx]
        drain = (occurrence_counts(vertices) == 0) & (res >= self.threshold)
        gdeg = ctx.graph.global_out_degrees[vertices]
        expand = drain & (gdeg > 0)
        # The object visit reads state first (always), rows only when it
        # pushes — the same state-then-rows order as the monotonic gate.
        ctx.meter_gate_pages(vertices, expand)
        if drain.any():
            di = idx[drain]
            arrays.mass[di] += arrays.residual[di]
            arrays.residual[di] = 0.0
        if not expand.any():
            return None
        ev = vertices[expand]
        lens, targets = ctx.adjacency_batch(ev)
        ctx.counters.edges_scanned += int(lens.sum())
        if targets.size == 0:
            return None
        share = self.damping * res[expand] / gdeg[expand]
        return VisitorBatch(targets, np.repeat(share, lens))

    def finalize_batch(
        self, graph: DistributedGraph, arrays_per_rank: list
    ) -> PageRankResult:
        scores = np.zeros(graph.num_vertices, dtype=np.float64)
        for rank, arrays in enumerate(arrays_per_rank):
            lo = graph.partitions[rank].state_lo
            masters = np.asarray(graph.masters_on(rank))
            scores[masters] = (
                arrays.mass[masters - lo] + arrays.residual[masters - lo]
            )
        total = scores.sum()
        if total > 0:
            scores /= total
        return PageRankResult(
            damping=self.damping, threshold=self.threshold, scores=scores
        )


def pagerank(graph: DistributedGraph, **kwargs) -> TraversalResult:
    """Run asynchronous PageRank; algorithm options ``damping`` and
    ``threshold`` are accepted alongside :func:`run_traversal` kwargs."""
    algo_keys = {"damping", "threshold"}
    algo_kwargs = {k: kwargs.pop(k) for k in list(kwargs) if k in algo_keys}
    return run_traversal(graph, PageRankAlgorithm(**algo_kwargs), **kwargs)
