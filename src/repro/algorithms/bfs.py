"""Asynchronous Breadth-First Search — Algorithms 2 and 3 of the paper.

Every vertex starts at ``length = infinity``; one visitor is queued for the
source with ``length = 0``.  ``pre_visit`` is a monotonic improve-or-drop
filter (safe on ghosts), ``visit`` expands the out-edges with
``length + 1`` visitors, and the priority queue orders visitors by length —
so the asynchronous traversal behaves like a label-correcting BFS whose
wavefront self-organises into levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.batch import BatchStateArrays, VisitorBatch
from repro.core.traversal import TraversalResult, run_traversal
from repro.core.visitor import AsyncAlgorithm, Visitor
from repro.graph.distributed import DistributedGraph
from repro.types import LEVEL_DTYPE, UNREACHED, VID_DTYPE

_INF = float("inf")


class BFSState:
    """Per-vertex BFS state: current best length and parent."""

    __slots__ = ("length", "parent")

    def __init__(self) -> None:
        self.length = _INF
        self.parent = -1


class BFSVisitor(Visitor):
    """Algorithm 2's visitor."""

    __slots__ = ("length", "parent")

    def __init__(self, vertex: int, length: int, parent: int) -> None:
        super().__init__(vertex)
        self.length = length
        self.parent = parent

    @property
    def priority(self) -> int:
        """operator<: sorts by length (Alg. 2 line 21)."""
        return self.length

    def pre_visit(self, vertex_data: BFSState) -> bool:
        if self.length < vertex_data.length:
            vertex_data.length = self.length
            vertex_data.parent = self.parent
            return True
        return False

    def visit(self, ctx) -> None:
        # Only expand if this visitor still carries the vertex's best length
        # (Alg. 2 line 13): a shorter path may have arrived since.
        if self.length == ctx.state_of(self.vertex).length:
            nxt = self.length + 1
            v = self.vertex
            push = ctx.push
            for w in ctx.out_edges(v):
                push(BFSVisitor(int(w), nxt, v))


@dataclass(frozen=True)
class BFSResult:
    """Gathered BFS output."""

    source: int
    #: BFS level per vertex; UNREACHED sentinel for unvisited vertices.
    levels: np.ndarray
    #: BFS tree parent per vertex; -1 for unvisited and for the source's
    #: self-parent convention the paper uses (source's parent is itself).
    parents: np.ndarray

    @property
    def num_reached(self) -> int:
        return int(np.count_nonzero(self.levels != UNREACHED))

    @property
    def max_level(self) -> int:
        """Depth of the BFS tree (the Figure 10 x-axis)."""
        reached = self.levels[self.levels != UNREACHED]
        return int(reached.max()) if reached.size else 0


class BFSAlgorithm(AsyncAlgorithm):
    """BFS from a single source; declares ghost usage (Section IV-B)."""

    name = "bfs"
    uses_ghosts = True
    visitor_bytes = 24  # vertex + length + parent, 8 bytes each
    supports_batch = True
    payload_dtype = np.int64  # lengths ride the wire as integers

    def __init__(self, source: int) -> None:
        if source < 0:
            raise ValueError(f"source must be >= 0, got {source}")
        self.source = source

    def make_state(self, vertex: int, degree: int, role: str) -> BFSState:
        # Masters, replicas and ghosts all hold the same monotonic state;
        # replicas converge because visitors pass the master first.
        return BFSState()

    def initial_visitors(self, graph: DistributedGraph, rank: int):
        if rank == graph.min_owner(self.source):
            yield BFSVisitor(self.source, 0, self.source)

    def finalize(self, graph: DistributedGraph, states_per_rank: list[list]) -> BFSResult:
        n = graph.num_vertices
        levels = np.full(n, UNREACHED, dtype=LEVEL_DTYPE)
        parents = np.full(n, -1, dtype=LEVEL_DTYPE)
        for v, state in self.master_states(graph, states_per_rank):
            if state.length != _INF:
                levels[v] = int(state.length)
                parents[v] = state.parent
        return BFSResult(source=self.source, levels=levels, parents=parents)

    # -------------------------- batch path --------------------------- #
    def make_state_arrays(self, vertices, degrees, role, *, masters=None) -> BatchStateArrays:
        n = vertices.size
        return BatchStateArrays(
            values=np.full(n, _INF, dtype=np.float64),
            parents=np.full(n, -1, dtype=np.int64),
        )

    def initial_batch(self, graph: DistributedGraph, rank: int) -> VisitorBatch | None:
        if rank != graph.min_owner(self.source):
            return None
        return VisitorBatch(
            np.array([self.source], dtype=VID_DTYPE),
            np.array([0], dtype=self.payload_dtype),
            np.array([self.source], dtype=np.int64),
        )

    def expand_batch(self, vertices, payloads, lens, targets):
        return np.repeat(payloads + 1, lens), np.repeat(vertices, lens)

    def finalize_batch(self, graph: DistributedGraph, arrays_per_rank: list) -> BFSResult:
        n = graph.num_vertices
        levels = np.full(n, UNREACHED, dtype=LEVEL_DTYPE)
        parents = np.full(n, -1, dtype=LEVEL_DTYPE)
        for rank, arrays in enumerate(arrays_per_rank):
            lo = graph.partitions[rank].state_lo
            masters = np.asarray(graph.masters_on(rank))
            vals = arrays.values[masters - lo]
            reached = np.isfinite(vals)
            mv = masters[reached]
            levels[mv] = vals[reached].astype(LEVEL_DTYPE)
            parents[mv] = arrays.parents[masters - lo][reached]
        return BFSResult(source=self.source, levels=levels, parents=parents)


def bfs(graph: DistributedGraph, source: int, **kwargs) -> TraversalResult:
    """Run asynchronous BFS; ``kwargs`` forward to :func:`run_traversal`."""
    return run_traversal(graph, BFSAlgorithm(source), **kwargs)
