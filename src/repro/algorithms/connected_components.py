"""Asynchronous Connected Components (extension).

Minimum-label propagation with the same visitor pattern the paper's earlier
work used for CC: every vertex is seeded with a visitor carrying its own
id; ``pre_visit`` keeps the minimum label seen (monotonic, so ghost
filtering is safe), and each improvement broadcasts to the neighbours.  At
quiescence every vertex's label is the smallest vertex id in its component.

Input must be undirected (symmetrized) for the labels to mean components.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.batch import BatchStateArrays, VisitorBatch
from repro.core.traversal import TraversalResult, run_traversal
from repro.core.visitor import AsyncAlgorithm, Visitor
from repro.graph.distributed import DistributedGraph
from repro.types import VID_DTYPE

_UNSET = 1 << 62


class CCState:
    """Per-vertex component label (min vertex id seen)."""

    __slots__ = ("label",)

    def __init__(self) -> None:
        self.label = _UNSET


class CCVisitor(Visitor):
    """Label-carrying visitor, prioritised by label so small labels win
    races early and suppress larger propagation waves."""

    __slots__ = ("label",)

    def __init__(self, vertex: int, label: int) -> None:
        super().__init__(vertex)
        self.label = label

    @property
    def priority(self) -> int:
        return self.label

    def pre_visit(self, vertex_data: CCState) -> bool:
        if self.label < vertex_data.label:
            vertex_data.label = self.label
            return True
        return False

    def visit(self, ctx) -> None:
        if self.label == ctx.state_of(self.vertex).label:
            label = self.label
            push = ctx.push
            for w in ctx.out_edges(self.vertex):
                push(CCVisitor(int(w), label))


@dataclass(frozen=True)
class CCResult:
    """Gathered connected-components output."""

    labels: np.ndarray

    @property
    def num_components(self) -> int:
        return int(np.unique(self.labels).size)

    def component_sizes(self) -> dict[int, int]:
        """Map component label -> vertex count."""
        labels, counts = np.unique(self.labels, return_counts=True)
        return {int(lb): int(c) for lb, c in zip(labels, counts, strict=False)}


class ConnectedComponentsAlgorithm(AsyncAlgorithm):
    """Min-label connected components on an undirected graph."""

    name = "connected_components"
    uses_ghosts = True  # monotonic min filter
    visitor_bytes = 16
    supports_batch = True
    payload_dtype = np.int64  # labels are vertex ids

    def make_state(self, vertex: int, degree: int, role: str) -> CCState:
        return CCState()

    def initial_visitors(self, graph: DistributedGraph, rank: int):
        for v in graph.masters_on(rank):
            yield CCVisitor(int(v), int(v))

    def finalize(self, graph: DistributedGraph, states_per_rank: list[list]) -> CCResult:
        labels = np.full(graph.num_vertices, -1, dtype=VID_DTYPE)
        for v, state in self.master_states(graph, states_per_rank):
            labels[v] = state.label if state.label != _UNSET else v
        return CCResult(labels=labels)

    # -------------------------- batch path --------------------------- #
    def make_state_arrays(self, vertices, degrees, role, *, masters=None) -> BatchStateArrays:
        return BatchStateArrays(values=np.full(vertices.size, _UNSET, dtype=np.int64))

    def initial_batch(self, graph: DistributedGraph, rank: int) -> VisitorBatch | None:
        masters = np.asarray(graph.masters_on(rank), dtype=VID_DTYPE)
        if masters.size == 0:
            return None
        return VisitorBatch(masters, masters.astype(self.payload_dtype), None)

    def expand_batch(self, vertices, payloads, lens, targets):
        return np.repeat(payloads, lens), None

    def finalize_batch(self, graph: DistributedGraph, arrays_per_rank: list) -> CCResult:
        labels = np.full(graph.num_vertices, -1, dtype=VID_DTYPE)
        for rank, arrays in enumerate(arrays_per_rank):
            lo = graph.partitions[rank].state_lo
            masters = np.asarray(graph.masters_on(rank))
            vals = arrays.values[masters - lo]
            labels[masters] = np.where(vals != _UNSET, vals, masters)
        return CCResult(labels=labels)


def connected_components(graph: DistributedGraph, **kwargs) -> TraversalResult:
    """Run asynchronous connected components."""
    return run_traversal(graph, ConnectedComponentsAlgorithm(), **kwargs)
