"""Asynchronous traversal algorithms (Section VI).

The paper's three algorithms — BFS (Alg. 2/3), K-Core decomposition
(Alg. 4/5) and Triangle Counting (Alg. 6/7) — plus two extensions the
authors' earlier work computed with the same visitor pattern: single-source
shortest path and connected components.
"""

from repro.algorithms.bfs import BFSAlgorithm, BFSResult, bfs
from repro.algorithms.connected_components import (
    ConnectedComponentsAlgorithm,
    connected_components,
)
from repro.algorithms.kcore import KCoreAlgorithm, KCoreResult, kcore
from repro.algorithms.pagerank import PageRankAlgorithm, PageRankResult, pagerank
from repro.algorithms.sssp import SSSPAlgorithm, sssp
from repro.algorithms.triangles import TriangleCountAlgorithm, triangle_count

__all__ = [
    "BFSAlgorithm",
    "BFSResult",
    "bfs",
    "KCoreAlgorithm",
    "KCoreResult",
    "kcore",
    "TriangleCountAlgorithm",
    "triangle_count",
    "SSSPAlgorithm",
    "sssp",
    "PageRankAlgorithm",
    "PageRankResult",
    "pagerank",
    "ConnectedComponentsAlgorithm",
    "connected_components",
]
