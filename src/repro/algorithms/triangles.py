"""Asynchronous Triangle Counting — Algorithms 6 and 7 of the paper.

"The visitor's pre_visit always returns true; every visitor will execute
its visit procedure.  The visit procedure has three main duties: first
visit, length-2 path visit, and search for closing edge of length-3 cycle.
At each step, the vertices of the triangle are visited in increasing order
to prevent the triangle from being counted multiple times."

A triangle ``A < B < C`` is discovered as: seed visitor at ``A`` creates a
length-1 visitor to each ``B > A``; at ``B`` a length-2 visitor goes to
each ``C > B`` carrying ``third = A``; at ``C`` the closing-edge check
``A in out_edges(C)`` increments ``C``'s counter — so each vertex counts
the triangles "for which the vertex identifier is the largest member".

With edge list partitioning, a split vertex's visitors are forwarded along
the whole replica chain (pre_visit is always true); each replica expands or
checks only its own slice of the adjacency list, so the union covers the
full list exactly once, and the closing edge lives in exactly one slice.
Counter increments therefore land on whichever state copy holds the edge —
``finalize`` sums over *all* copies, not just masters.  Triangle counting
cannot use ghosts (precise event counts are required).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.traversal import TraversalResult, run_traversal
from repro.core.visitor import AsyncAlgorithm, Visitor
from repro.graph.distributed import DistributedGraph
from repro.types import VID_DTYPE


class TriangleState:
    """Per-vertex triangle counter (Alg. 7 line 4)."""

    __slots__ = ("num_triangles",)

    def __init__(self) -> None:
        self.num_triangles = 0


class TriangleVisitor(Visitor):
    """Algorithm 6's visitor; ``second``/``third`` default to "infinity"
    (None) as in the paper's initialisation."""

    __slots__ = ("second", "third")

    def __init__(self, vertex: int, second: int | None = None, third: int | None = None) -> None:
        super().__init__(vertex)
        self.second = second
        self.third = third

    def pre_visit(self, vertex_data: TriangleState) -> bool:
        return True

    def visit(self, ctx) -> None:
        v = self.vertex
        if self.second is None:  # first visit
            push = ctx.push
            for w in ctx.out_edges(v):
                w = int(w)
                if w > v:
                    push(TriangleVisitor(w, v))
        elif self.third is None:  # length-2 path visit
            push = ctx.push
            second = self.second
            for w in ctx.out_edges(v):
                w = int(w)
                if w > v:
                    push(TriangleVisitor(w, v, second))
        else:  # closing-edge check
            if ctx.has_local_edge(v, self.third):
                ctx.state_of(v).num_triangles += 1


@dataclass(frozen=True)
class TriangleCountResult:
    """Gathered triangle-counting output."""

    total: int
    #: Per-vertex counts of triangles whose largest member is the vertex.
    per_vertex: np.ndarray


class TriangleCountAlgorithm(AsyncAlgorithm):
    """Exact triangle counting on a simple undirected graph."""

    name = "triangle_count"
    uses_ghosts = False  # precise counts required
    visitor_bytes = 24  # vertex + second + third

    def make_state(self, vertex: int, degree: int, role: str) -> TriangleState:
        return TriangleState()

    def initial_visitors(self, graph: DistributedGraph, rank: int):
        for v in graph.masters_on(rank):
            yield TriangleVisitor(int(v))

    def finalize(
        self, graph: DistributedGraph, states_per_rank: list[list]
    ) -> TriangleCountResult:
        # Counter increments land wherever the closing edge is stored, so
        # sum every state copy (each increment exists in exactly one copy).
        per_vertex = np.zeros(graph.num_vertices, dtype=VID_DTYPE)
        for rank, states in enumerate(states_per_rank):
            lo = graph.partitions[rank].state_lo
            for i, state in enumerate(states):
                if state.num_triangles:
                    per_vertex[lo + i] += state.num_triangles
        return TriangleCountResult(total=int(per_vertex.sum()), per_vertex=per_vertex)


def triangle_count(graph: DistributedGraph, **kwargs) -> TraversalResult:
    """Run asynchronous triangle counting; ``kwargs`` forward to
    :func:`run_traversal`."""
    return run_traversal(graph, TriangleCountAlgorithm(), **kwargs)
