"""Asynchronous Triangle Counting — Algorithms 6 and 7 of the paper.

"The visitor's pre_visit always returns true; every visitor will execute
its visit procedure.  The visit procedure has three main duties: first
visit, length-2 path visit, and search for closing edge of length-3 cycle.
At each step, the vertices of the triangle are visited in increasing order
to prevent the triangle from being counted multiple times."

A triangle ``A < B < C`` is discovered as: seed visitor at ``A`` creates a
length-1 visitor to each ``B > A``; at ``B`` a length-2 visitor goes to
each ``C > B`` carrying ``third = A``; at ``C`` the closing-edge check
``A in out_edges(C)`` increments ``C``'s counter — so each vertex counts
the triangles "for which the vertex identifier is the largest member".

With edge list partitioning, a split vertex's visitors are forwarded along
the whole replica chain (pre_visit is always true); each replica expands or
checks only its own slice of the adjacency list, so the union covers the
full list exactly once, and the closing edge lives in exactly one slice.
Counter increments therefore land on whichever state copy holds the edge —
``finalize`` sums over *all* copies, not just masters.  Triangle counting
cannot use ghosts (precise event counts are required).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.batch import VisitorBatch, concat_ranges
from repro.core.traversal import TraversalResult, run_traversal
from repro.core.visitor import AsyncAlgorithm, Visitor
from repro.graph.distributed import DistributedGraph
from repro.types import VID_DTYPE


class TriangleState:
    """Per-vertex triangle counter (Alg. 7 line 4)."""

    __slots__ = ("num_triangles",)

    def __init__(self) -> None:
        self.num_triangles = 0


class TriangleVisitor(Visitor):
    """Algorithm 6's visitor; ``second``/``third`` default to "infinity"
    (None) as in the paper's initialisation."""

    __slots__ = ("second", "third")

    def __init__(self, vertex: int, second: int | None = None, third: int | None = None) -> None:
        super().__init__(vertex)
        self.second = second
        self.third = third

    def pre_visit(self, vertex_data: TriangleState) -> bool:
        return True

    def visit(self, ctx) -> None:
        v = self.vertex
        if self.second is None:  # first visit
            push = ctx.push
            for w in ctx.out_edges(v):
                w = int(w)
                if w > v:
                    push(TriangleVisitor(w, v))
        elif self.third is None:  # length-2 path visit
            push = ctx.push
            second = self.second
            for w in ctx.out_edges(v):
                w = int(w)
                if w > v:
                    push(TriangleVisitor(w, v, second))
        else:  # closing-edge check
            if ctx.has_local_edge(v, self.third):
                ctx.state_of(v).num_triangles += 1


class TriangleStateArrays:
    """Array-backed triangle counters for one rank (batch path).

    The batch twin of N :class:`TriangleState` objects: pre-visit always
    passes (no state read), and counter increments land wherever the
    closing edge is stored — an order-free integer ``np.add.at``, so
    within-batch duplicates need no sequential resolution.
    """

    __slots__ = ("counts",)

    def __init__(self, n: int) -> None:
        self.counts = np.zeros(n, dtype=np.int64)

    def __len__(self) -> int:
        return int(self.counts.size)

    def previsit_batch(self, idx: np.ndarray, batch: VisitorBatch) -> np.ndarray:
        """Alg. 6: ``pre_visit`` always returns true."""
        return np.ones(idx.size, dtype=bool)

    def snapshot(self) -> dict:
        """Checkpointable copy of the mutable state arrays."""
        return {"counts": self.counts.copy()}

    def restore(self, snap: dict) -> None:
        """Reinstall a :meth:`snapshot` checkpoint in place."""
        self.counts[:] = snap["counts"]


@dataclass(frozen=True)
class TriangleCountResult:
    """Gathered triangle-counting output."""

    total: int
    #: Per-vertex counts of triangles whose largest member is the vertex.
    per_vertex: np.ndarray


class TriangleCountAlgorithm(AsyncAlgorithm):
    """Exact triangle counting on a simple undirected graph."""

    name = "triangle_count"
    uses_ghosts = False  # precise counts required
    visitor_bytes = 24  # vertex + second + third
    supports_batch = True
    payload_dtype = np.int64  # ``second``; -1 is the paper's "infinity"
    batch_extra_dtypes = (np.int64,)  # ``third``; -1 likewise
    batch_priority_is_payload = False  # constant priority 0 (base Visitor)

    def make_state(self, vertex: int, degree: int, role: str) -> TriangleState:
        return TriangleState()

    def initial_visitors(self, graph: DistributedGraph, rank: int):
        for v in graph.masters_on(rank):
            yield TriangleVisitor(int(v))

    def finalize(
        self, graph: DistributedGraph, states_per_rank: list[list]
    ) -> TriangleCountResult:
        # Counter increments land wherever the closing edge is stored, so
        # sum every state copy (each increment exists in exactly one copy).
        per_vertex = np.zeros(graph.num_vertices, dtype=VID_DTYPE)
        for rank, states in enumerate(states_per_rank):
            lo = graph.partitions[rank].state_lo
            for i, state in enumerate(states):
                if state.num_triangles:
                    per_vertex[lo + i] += state.num_triangles
        return TriangleCountResult(total=int(per_vertex.sum()), per_vertex=per_vertex)

    # -------------------------- batch path --------------------------- #
    def make_state_arrays(self, vertices, degrees, role, *, masters=None) -> TriangleStateArrays:
        return TriangleStateArrays(vertices.size)

    def batch_priorities(self, payloads: np.ndarray) -> np.ndarray:
        return np.zeros(payloads.size, dtype=np.int64)

    def initial_batch(self, graph: DistributedGraph, rank: int) -> VisitorBatch | None:
        masters = np.asarray(graph.masters_on(rank), dtype=VID_DTYPE)
        if masters.size == 0:
            return None
        sentinel = np.full(masters.size, -1, dtype=np.int64)
        return VisitorBatch(masters, sentinel, None, (sentinel,))

    def execute_batch(self, ctx, batch: VisitorBatch) -> VisitorBatch | None:
        """Alg. 6's three-phase visit, vectorized over one popped run.

        First visits (``second == -1``) and length-2 visits (``third ==
        -1``) both scan the vertex's full local row but push only the
        strict suffix ``w > v`` (the increasing-order discipline);
        closing-edge checks probe membership via the shared
        :meth:`~repro.graph.csr.CSR.has_edges` kernel and increment the
        counter wherever the edge is stored.
        """
        vertices = batch.vertices
        second = batch.payloads
        third = batch.extras[0]
        closing = third >= 0
        found = np.zeros(vertices.size, dtype=bool)
        if closing.any():
            found[closing] = ctx.csr.has_edges(vertices[closing], third[closing])
        ctx.meter_closing_pages(vertices, found)
        csr = ctx.csr
        r = vertices - csr.vertex_base
        deg = csr.row_ptr[r + 1] - csr.row_ptr[r]
        # Expansion scans the whole local row; the closing probe charges
        # its binary search, max(1, bit_length(local_degree)) — and
        # frexp's exponent of a positive integer *is* its bit length.
        probe_cost = np.maximum(1, np.frexp(deg.astype(np.float64))[1])
        ctx.counters.edges_scanned += int(np.where(closing, probe_cost, deg).sum())
        if found.any():
            np.add.at(ctx.states.counts, vertices[found] - ctx.state_lo, 1)
        expand = ~closing
        if not expand.any():
            return None
        ev = vertices[expand]
        starts, lens = csr.row_suffix_above(ev, ev)
        targets = csr.cols[concat_ranges(starts, lens)]
        if targets.size == 0:
            return None
        # New visitors carry second = the expanding vertex, third = its
        # old second (-1 on first visits — exactly Alg. 6's two pushes).
        out_second = np.repeat(ev, lens)
        out_third = np.repeat(second[expand], lens)
        return VisitorBatch(targets, out_second, None, (out_third,))

    def finalize_batch(
        self, graph: DistributedGraph, arrays_per_rank: list
    ) -> TriangleCountResult:
        per_vertex = np.zeros(graph.num_vertices, dtype=VID_DTYPE)
        for rank, arrays in enumerate(arrays_per_rank):
            lo = graph.partitions[rank].state_lo
            per_vertex[lo:lo + len(arrays)] += arrays.counts
        return TriangleCountResult(total=int(per_vertex.sum()), per_vertex=per_vertex)


def triangle_count(graph: DistributedGraph, **kwargs) -> TraversalResult:
    """Run asynchronous triangle counting; ``kwargs`` forward to
    :func:`run_traversal`."""
    return run_traversal(graph, TriangleCountAlgorithm(), **kwargs)
