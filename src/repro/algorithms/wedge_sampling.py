"""Approximate triangle counting by wedge sampling.

Algorithm 6's discussion: "It can also be extended to use approximate
sampling based triangle counting methods [Seshadhri, Pinar, Kolda 2013]."

A *wedge* is a length-2 path (a, v, b); it is *closed* when the edge (a, b)
exists, and every triangle closes exactly three wedges.  Sampling wedges
uniformly and measuring the closure fraction ``c`` gives::

    triangles ~= c * total_wedges / 3

with standard binomial error bars.  Exact counting costs
``O(|E| * d_max)`` visitors (§VI-D3); the sampled estimate costs
``O(samples)`` closure checks — the trade the paper points at for graphs
whose hubs make exact counting expensive.

The estimator runs against the :class:`DistributedGraph`: each closure
check is performed on the partition that owns the relevant adjacency
slice, and per-rank check counts are reported so the cost model story
stays consistent with the exact algorithm's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.distributed import DistributedGraph
from repro.utils.rng import resolve_rng


@dataclass(frozen=True)
class WedgeSampleResult:
    """Triangle estimate from sampled wedges."""

    estimate: float
    closure_fraction: float
    total_wedges: int
    samples: int
    #: binomial standard error of the *estimate* (not the fraction)
    std_error: float
    #: closure checks performed per rank (cost accounting)
    checks_per_rank: np.ndarray


def total_wedge_count(degrees: np.ndarray) -> int:
    """Number of wedges: sum over vertices of C(degree, 2)."""
    d = degrees.astype(np.float64)
    return int((d * (d - 1) / 2).sum())


def sample_triangle_estimate(
    graph: DistributedGraph,
    *,
    samples: int = 10_000,
    seed: int | np.random.Generator | None = 0,
) -> WedgeSampleResult:
    """Estimate the triangle count of a simple undirected distributed graph.

    Wedge centres are drawn proportionally to ``C(degree, 2)`` (uniform
    over wedges); the two endpoints are a uniform pair of the centre's
    neighbours; closure is checked with the owning partition's sorted-row
    binary search.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    rng = resolve_rng(seed)
    degrees = graph.global_out_degrees
    weights = degrees.astype(np.float64)
    weights = weights * (weights - 1) / 2
    total_wedges = int(weights.sum())
    checks_per_rank = np.zeros(graph.num_partitions, dtype=np.int64)
    if total_wedges == 0:
        return WedgeSampleResult(
            estimate=0.0, closure_fraction=0.0, total_wedges=0, samples=samples,
            std_error=0.0, checks_per_rank=checks_per_rank,
        )

    prob = weights / weights.sum()
    centres = rng.choice(graph.num_vertices, size=samples, p=prob)

    closed = 0
    edges = graph.edges
    src_sorted = edges.src
    for v in centres:
        v = int(v)
        lo = np.searchsorted(src_sorted, v, side="left")
        hi = np.searchsorted(src_sorted, v, side="right")
        deg = hi - lo
        i = int(rng.integers(0, deg))
        j = int(rng.integers(0, deg - 1))
        if j >= i:
            j += 1
        a = int(edges.dst[lo + i])
        b = int(edges.dst[lo + j])
        # closure check on the partition(s) owning a's adjacency slice
        for rank in graph.replica_ranks(a):
            checks_per_rank[rank] += 1
            part = graph.partitions[rank]
            if part.holds_vertex(a) and part.csr.degree(a) and part.csr.has_edge(a, b):
                closed += 1
                break

    fraction = closed / samples
    estimate = fraction * total_wedges / 3.0
    std_error = (
        total_wedges / 3.0
        * float(np.sqrt(max(fraction * (1 - fraction), 0.0) / samples))
    )
    return WedgeSampleResult(
        estimate=estimate,
        closure_fraction=fraction,
        total_wedges=total_wedges,
        samples=samples,
        std_error=std_error,
        checks_per_rank=checks_per_rank,
    )
