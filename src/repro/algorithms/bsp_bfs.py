"""Level-synchronous (BSP) BFS baseline.

The paper's framework is *asynchronous*: visitors flow continuously and
termination is detected by counting, so no rank ever waits at a barrier.
The conventional alternative — used by most Graph500 entries of the era —
is bulk-synchronous level-by-level BFS: expand the whole frontier, exchange
the next frontier, barrier, repeat.

This module implements that baseline over the same
:class:`DistributedGraph` and machine models, so the asynchrony claim
("our asynchronous approach mitigates the effects of both distributed and
external memory latency") can be tested as an ablation: per level, BSP
pays a full barrier + all-to-all round regardless of how little work the
level contains, which hurts exactly when the diameter is high or latency
is large.

The computation per rank is vectorised NumPy (this baseline models an
*optimised* BSP code, not a strawman).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.distributed import DistributedGraph
from repro.runtime.costmodel import MachineModel, laptop
from repro.types import LEVEL_DTYPE, UNREACHED, VID_DTYPE


@dataclass(frozen=True)
class BSPBFSResult:
    """Output of the level-synchronous baseline."""

    source: int
    levels: np.ndarray
    #: simulated time, comparable to the async TraversalStats.time_us
    time_us: float
    num_supersteps: int
    total_frontier_messages: int

    @property
    def num_reached(self) -> int:
        return int(np.count_nonzero(self.levels != UNREACHED))

    @property
    def max_level(self) -> int:
        reached = self.levels[self.levels != UNREACHED]
        return int(reached.max()) if reached.size else 0


#: Synchronisation cost of one BSP barrier, in hop latencies (a dissemination
#: barrier costs O(log p) network rounds).
BARRIER_HOPS = 2.0


def bsp_bfs(
    graph: DistributedGraph,
    source: int,
    *,
    machine: MachineModel | None = None,
) -> BSPBFSResult:
    """Run level-synchronous BFS on the distributed graph.

    Each superstep: every rank scans its slice of the frontier's adjacency
    (vectorised), produces next-frontier candidates, and exchanges them
    all-to-all.  Superstep time = max over ranks of (scan + message costs)
    + barrier; total time is the sum over supersteps — the barrier per
    level is the structural difference from the asynchronous engine.
    """
    machine = machine or laptop()
    p = graph.num_partitions
    n = graph.num_vertices
    levels = np.full(n, UNREACHED, dtype=LEVEL_DTYPE)
    levels[source] = 0

    frontier = np.array([source], dtype=VID_DTYPE)
    level = 0
    time_us = 0.0
    supersteps = 0
    total_messages = 0
    log_p = max(1.0, np.log2(max(p, 2)))

    while frontier.size:
        supersteps += 1
        # --- per-rank expansion over its local adjacency slices ---------
        per_rank_scan = np.zeros(p, dtype=np.int64)
        per_rank_out = [[] for _ in range(p)]
        for v in frontier:
            v = int(v)
            for rank in graph.replica_ranks(v):
                nbrs = graph.out_edges_local(rank, v)
                if nbrs.size:
                    per_rank_scan[rank] += nbrs.size
                    per_rank_out[rank].append(nbrs)

        candidates = []
        per_rank_msgs = np.zeros(p, dtype=np.int64)
        for rank in range(p):
            if per_rank_out[rank]:
                outs = np.concatenate(per_rank_out[rank])
                fresh = outs[levels[outs] == UNREACHED]
                candidates.append(fresh)
                per_rank_msgs[rank] = fresh.size
        total_messages += int(per_rank_msgs.sum())

        # --- superstep cost: critical-path rank + alltoall + barrier ----
        rank_cost = (
            per_rank_scan * machine.edge_scan_us
            + per_rank_msgs * (24 * machine.byte_us)
            + np.minimum(per_rank_msgs, p - 1) * machine.packet_overhead_us
        )
        barrier_us = BARRIER_HOPS * log_p * machine.hop_latency_us + machine.min_tick_us
        time_us += float(rank_cost.max(initial=0.0)) + barrier_us + machine.hop_latency_us

        # --- advance the level ------------------------------------------
        if candidates:
            nxt = np.unique(np.concatenate(candidates))
        else:
            nxt = np.empty(0, dtype=VID_DTYPE)
        level += 1
        if nxt.size:
            levels[nxt] = level
        frontier = nxt

    return BSPBFSResult(
        source=source,
        levels=levels,
        time_us=time_us,
        num_supersteps=supersteps,
        total_frontier_messages=total_messages,
    )
