"""Asynchronous K-Core decomposition — Algorithms 4 and 5 of the paper.

"To compute the k-core decomposition of an undirected graph, we
asynchronously remove vertices from the core whose degree is less than k.
As vertices are removed, they may create a dynamic cascade of recursive
removals."

Every vertex initialises ``kcore = degree(v) + 1`` and ``alive = True``,
and one visitor is seeded per vertex.  Each arriving visitor decrements the
counter; when it drops below ``k`` the vertex dies and notifies all its
neighbours.  The seed visitor's decrement cancels the ``+ 1``, so a vertex
dies exactly when ``degree - removed_neighbors < k`` — the standard peeling
condition.

**Replicas of split vertices.**  The paper's forwarding rule (Alg. 1) only
forwards a visitor past a state copy whose ``pre_visit`` returned true, so
a counting replica would never see the non-fatal decrements and diverge.
Masters therefore hold the real counter, while replicas initialise in a
*hair-trigger* state (``kcore = k``): the single visitor the master
forwards on its own death fires the replica immediately, making each
partition of the split adjacency list emit its removal notifications
exactly once.  K-core "cannot use ghosts" because precise counts are
required (Section IV-B); the algorithm accordingly declares
``uses_ghosts = False``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.batch import VisitorBatch, occurrence_counts
from repro.core.traversal import TraversalResult, run_traversal
from repro.core.visitor import ROLE_MASTER, AsyncAlgorithm, Visitor
from repro.graph.distributed import DistributedGraph
from repro.types import LEVEL_DTYPE, VID_DTYPE


class KCoreState:
    """Per-vertex k-core state (Alg. 5 lines 6-7)."""

    __slots__ = ("alive", "kcore")

    def __init__(self, kcore: int) -> None:
        self.alive = True
        self.kcore = kcore


#: One generated visitor class per ``k`` (class identity matters: ``k`` is
#: a class-static, and the class must be importable by name so visitor
#: envelopes can cross the parallel executor's worker pipes).
_KCORE_VISITOR_CLASSES: dict[int, type] = {}


def make_kcore_visitor(k: int):
    """Create (or reuse) a visitor class with ``k`` as its static parameter
    (Alg. 5 line 4: ``kcore_visitor::k <- k``).  The class is registered
    under a per-``k`` module-level name, which makes instances picklable —
    the parallel executor's workers fork after the algorithm is built, so
    the name resolves on their side too."""
    cached = _KCORE_VISITOR_CLASSES.get(k)
    if cached is not None:
        return cached

    class KCoreVisitor(Visitor):
        __slots__ = ()
        _k = k

        def pre_visit(self, vertex_data: KCoreState) -> bool:
            if vertex_data.alive:
                vertex_data.kcore -= 1
                if vertex_data.kcore < self._k:
                    vertex_data.alive = False
                    return True
            return False

        def visit(self, ctx) -> None:
            v = self.vertex
            push = ctx.push
            cls = type(self)
            for w in ctx.out_edges(v):
                push(cls(int(w)))

    KCoreVisitor.__name__ = f"KCoreVisitor_k{k}"
    KCoreVisitor.__qualname__ = KCoreVisitor.__name__
    globals()[KCoreVisitor.__name__] = KCoreVisitor
    _KCORE_VISITOR_CLASSES[k] = KCoreVisitor
    return KCoreVisitor


class KCoreStateArrays:
    """Array-backed k-core state for one rank (batch path).

    Implements the state-array protocol of
    :class:`~repro.core.batch.BatchStateArrays` with the *counting*
    pre-visit of Alg. 5: each arrival decrements the live counter; the
    single arrival that drops it below ``k`` kills the vertex and passes.
    """

    __slots__ = ("alive", "kcore", "k")

    def __init__(self, k: int, kcore: np.ndarray) -> None:
        self.alive = np.ones(kcore.size, dtype=bool)
        self.kcore = kcore
        self.k = k

    def __len__(self) -> int:
        return int(self.kcore.size)

    def previsit_batch(self, idx: np.ndarray, batch: VisitorBatch) -> np.ndarray:
        """Exact sequential equivalent of N counting ``pre_visit`` calls.

        A live vertex with counter ``c`` dies on its ``(c - k + 1)``-th
        arrival (the live invariant ``c >= k`` makes that index >= 1), so
        with per-vertex arrival indices in hand the whole batch resolves
        in closed form: decrements stop at the kill, the kill arrival
        alone passes, later arrivals see a dead vertex and drop.
        """
        n = idx.size
        alive = self.alive
        kcore = self.kcore
        if n == 0:
            return np.zeros(0, dtype=bool)
        if n == 1:
            i = idx[0]
            if not alive[i]:
                return np.array([False])
            kcore[i] -= 1
            if kcore[i] < self.k:
                alive[i] = False
                return np.array([True])
            return np.array([False])
        occ = occurrence_counts(idx)
        alive_pre = alive[idx]
        # Arrivals needed to kill each target, measured from its pre-batch
        # counter (meaningful only where the vertex is live).
        kill_at = np.maximum(1, kcore[idx] - self.k + 1)
        mask = alive_pre & (occ + 1 == kill_at)
        # Fold the batch into the arrays via the *first* arrival of each
        # vertex (occ == 0 rows carry the pre-batch counter): the vertex
        # absorbs min(count, kill_at) decrements and dies iff the batch
        # reached its kill index.
        first = occ == 0
        fidx = idx[first]
        uniq, counts = np.unique(idx, return_counts=True)
        cnt = counts[np.searchsorted(uniq, fidx)]
        live_first = alive_pre[first]
        ka = kill_at[first]
        kcore[fidx] -= np.where(live_first, np.minimum(cnt, ka), 0)
        alive[fidx[live_first & (cnt >= ka)]] = False
        return mask

    def snapshot(self) -> dict:
        """Checkpointable copy of the mutable state arrays."""
        return {"alive": self.alive.copy(), "kcore": self.kcore.copy()}

    def restore(self, snap: dict) -> None:
        """Reinstall a :meth:`snapshot` checkpoint in place."""
        self.alive[:] = snap["alive"]
        self.kcore[:] = snap["kcore"]


@dataclass(frozen=True)
class KCoreResult:
    """Gathered k-core output."""

    k: int
    #: Membership mask: ``alive[v]`` is True when v survives in the k-core.
    alive: np.ndarray

    @property
    def core_size(self) -> int:
        return int(np.count_nonzero(self.alive))

    def members(self) -> np.ndarray:
        """Vertex ids in the k-core."""
        return np.flatnonzero(self.alive).astype(LEVEL_DTYPE)


class KCoreAlgorithm(AsyncAlgorithm):
    """K-core membership for one requested ``k``.

    Input must be a simple undirected graph (symmetrized, deduplicated) so
    the out-degree equals the undirected degree.
    """

    name = "kcore"
    uses_ghosts = False  # precise counts required
    visitor_bytes = 8  # just the vertex id
    supports_batch = True
    payload_dtype = np.int64  # no payload; an all-zeros column rides along

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._visitor_cls = make_kcore_visitor(k)

    def make_state(self, vertex: int, degree: int, role: str) -> KCoreState:
        if role == ROLE_MASTER:
            return KCoreState(degree + 1)
        # Replica hair trigger: dies on the first forwarded (fatal) visitor.
        return KCoreState(self.k)

    def initial_visitors(self, graph: DistributedGraph, rank: int):
        cls = self._visitor_cls
        for v in graph.masters_on(rank):
            yield cls(int(v))

    def finalize(self, graph: DistributedGraph, states_per_rank: list[list]) -> KCoreResult:
        alive = np.zeros(graph.num_vertices, dtype=bool)
        for v, state in self.master_states(graph, states_per_rank):
            alive[v] = state.alive
        return KCoreResult(k=self.k, alive=alive)

    # -------------------------- batch path --------------------------- #
    def make_state_arrays(self, vertices, degrees, role, *, masters=None) -> KCoreStateArrays:
        # Masters start at degree + 1 (the seed visitor cancels the +1);
        # replicas are hair-triggered at k, dying on the first forwarded
        # visitor.  Ghosts are forbidden, so ``masters`` is always given.
        kcore = np.where(masters, degrees.astype(np.int64) + 1, self.k)
        return KCoreStateArrays(self.k, kcore)

    def initial_batch(self, graph: DistributedGraph, rank: int) -> VisitorBatch | None:
        masters = np.asarray(graph.masters_on(rank), dtype=VID_DTYPE)
        if masters.size == 0:
            return None
        return VisitorBatch(masters, np.zeros(masters.size, dtype=self.payload_dtype))

    def execute_batch(self, ctx, batch: VisitorBatch) -> VisitorBatch | None:
        # Every queued k-core visitor is a death notification: the visit
        # expands the vertex's whole local row unconditionally and never
        # reads vertex state (no state pages, even fully-external).
        vertices = batch.vertices
        ctx.meter_row_pages(vertices)
        lens, targets = ctx.adjacency_batch(vertices)
        ctx.counters.edges_scanned += int(lens.sum())
        if targets.size == 0:
            return None
        return VisitorBatch(targets, np.zeros(targets.size, dtype=self.payload_dtype))

    def finalize_batch(self, graph: DistributedGraph, arrays_per_rank: list) -> KCoreResult:
        alive = np.zeros(graph.num_vertices, dtype=bool)
        for rank, arrays in enumerate(arrays_per_rank):
            lo = graph.partitions[rank].state_lo
            masters = np.asarray(graph.masters_on(rank))
            alive[masters] = arrays.alive[masters - lo]
        return KCoreResult(k=self.k, alive=alive)


def kcore(graph: DistributedGraph, k: int, **kwargs) -> TraversalResult:
    """Run asynchronous k-core; ``kwargs`` forward to :func:`run_traversal`."""
    return run_traversal(graph, KCoreAlgorithm(k), **kwargs)
