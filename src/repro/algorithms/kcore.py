"""Asynchronous K-Core decomposition — Algorithms 4 and 5 of the paper.

"To compute the k-core decomposition of an undirected graph, we
asynchronously remove vertices from the core whose degree is less than k.
As vertices are removed, they may create a dynamic cascade of recursive
removals."

Every vertex initialises ``kcore = degree(v) + 1`` and ``alive = True``,
and one visitor is seeded per vertex.  Each arriving visitor decrements the
counter; when it drops below ``k`` the vertex dies and notifies all its
neighbours.  The seed visitor's decrement cancels the ``+ 1``, so a vertex
dies exactly when ``degree - removed_neighbors < k`` — the standard peeling
condition.

**Replicas of split vertices.**  The paper's forwarding rule (Alg. 1) only
forwards a visitor past a state copy whose ``pre_visit`` returned true, so
a counting replica would never see the non-fatal decrements and diverge.
Masters therefore hold the real counter, while replicas initialise in a
*hair-trigger* state (``kcore = k``): the single visitor the master
forwards on its own death fires the replica immediately, making each
partition of the split adjacency list emit its removal notifications
exactly once.  K-core "cannot use ghosts" because precise counts are
required (Section IV-B); the algorithm accordingly declares
``uses_ghosts = False``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.traversal import TraversalResult, run_traversal
from repro.core.visitor import ROLE_MASTER, AsyncAlgorithm, Visitor
from repro.graph.distributed import DistributedGraph
from repro.types import LEVEL_DTYPE


class KCoreState:
    """Per-vertex k-core state (Alg. 5 lines 6-7)."""

    __slots__ = ("alive", "kcore")

    def __init__(self, kcore: int) -> None:
        self.alive = True
        self.kcore = kcore


def make_kcore_visitor(k: int):
    """Create a visitor class with ``k`` as its static parameter
    (Alg. 5 line 4: ``kcore_visitor::k <- k``)."""

    class KCoreVisitor(Visitor):
        __slots__ = ()
        _k = k

        def pre_visit(self, vertex_data: KCoreState) -> bool:
            if vertex_data.alive:
                vertex_data.kcore -= 1
                if vertex_data.kcore < self._k:
                    vertex_data.alive = False
                    return True
            return False

        def visit(self, ctx) -> None:
            v = self.vertex
            push = ctx.push
            cls = type(self)
            for w in ctx.out_edges(v):
                push(cls(int(w)))

    return KCoreVisitor


@dataclass(frozen=True)
class KCoreResult:
    """Gathered k-core output."""

    k: int
    #: Membership mask: ``alive[v]`` is True when v survives in the k-core.
    alive: np.ndarray

    @property
    def core_size(self) -> int:
        return int(np.count_nonzero(self.alive))

    def members(self) -> np.ndarray:
        """Vertex ids in the k-core."""
        return np.flatnonzero(self.alive).astype(LEVEL_DTYPE)


class KCoreAlgorithm(AsyncAlgorithm):
    """K-core membership for one requested ``k``.

    Input must be a simple undirected graph (symmetrized, deduplicated) so
    the out-degree equals the undirected degree.
    """

    name = "kcore"
    uses_ghosts = False  # precise counts required
    visitor_bytes = 8  # just the vertex id

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._visitor_cls = make_kcore_visitor(k)

    def make_state(self, vertex: int, degree: int, role: str) -> KCoreState:
        if role == ROLE_MASTER:
            return KCoreState(degree + 1)
        # Replica hair trigger: dies on the first forwarded (fatal) visitor.
        return KCoreState(self.k)

    def initial_visitors(self, graph: DistributedGraph, rank: int):
        cls = self._visitor_cls
        for v in graph.masters_on(rank):
            yield cls(int(v))

    def finalize(self, graph: DistributedGraph, states_per_rank: list[list]) -> KCoreResult:
        alive = np.zeros(graph.num_vertices, dtype=bool)
        for v, state in self.master_states(graph, states_per_rank):
            alive[v] = state.alive
        return KCoreResult(k=self.k, alive=alive)


def kcore(graph: DistributedGraph, k: int, **kwargs) -> TraversalResult:
    """Run asynchronous k-core; ``kwargs`` forward to :func:`run_traversal`."""
    return run_traversal(graph, KCoreAlgorithm(k), **kwargs)
