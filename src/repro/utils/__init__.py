"""Small shared utilities: RNG handling, statistics, identifier bit-packing."""

from repro.utils.rng import resolve_rng, spawn_rngs
from repro.utils.stats import describe, imbalance, log2_histogram

__all__ = [
    "resolve_rng",
    "spawn_rngs",
    "imbalance",
    "describe",
    "log2_histogram",
]
