"""Vertex *locator* packing.

Section III-A1 of the paper: ``min_owner`` / ``max_owner`` "can be performed
in constant time by preserving the rank owner information with the
identifier v ... We choose to store the owner information as part of the
identifier."

A locator packs, into a single 64-bit integer:

===========  ======  =======================================================
field        bits    meaning
===========  ======  =======================================================
vertex id    39      global vertex identifier (up to 2^39 vertices — beyond
                     the paper's 2^36 target)
min_owner    16      rank of the master partition (up to 65 536 ranks)
span          8      ``max_owner - min_owner`` (adjacency lists span at most
                     255 extra consecutive partitions; larger spans are
                     clamped and must fall back to a directory lookup)
===========  ======  =======================================================

The three fields occupy 63 bits, so a packed locator is always a
non-negative ``int64``.  The packing is vectorised so a whole edge list's
worth of locators can be produced in one NumPy pass.
"""

from __future__ import annotations

import numpy as np

VERTEX_BITS = 39
OWNER_BITS = 16
SPAN_BITS = 8

_VERTEX_MASK = (1 << VERTEX_BITS) - 1
_OWNER_MASK = (1 << OWNER_BITS) - 1
_SPAN_MASK = (1 << SPAN_BITS) - 1

MAX_VERTEX = _VERTEX_MASK
MAX_OWNER = _OWNER_MASK
MAX_SPAN = _SPAN_MASK

_OWNER_SHIFT = VERTEX_BITS
_SPAN_SHIFT = VERTEX_BITS + OWNER_BITS


def pack(vertex: np.ndarray | int, min_owner: np.ndarray | int, max_owner: np.ndarray | int):
    """Pack vertex ids plus owner range into 64-bit locators (vectorised)."""
    v = np.asarray(vertex, dtype=np.int64)
    lo = np.asarray(min_owner, dtype=np.int64)
    hi = np.asarray(max_owner, dtype=np.int64)
    if np.any(v < 0) or np.any(v > MAX_VERTEX):
        raise ValueError(f"vertex id out of range for {VERTEX_BITS}-bit locator field")
    if np.any(lo < 0) or np.any(lo > MAX_OWNER):
        raise ValueError(f"owner rank out of range for {OWNER_BITS}-bit locator field")
    span = hi - lo
    if np.any(span < 0):
        raise ValueError("max_owner must be >= min_owner")
    span = np.minimum(span, MAX_SPAN)
    packed = (span << _SPAN_SHIFT) | (lo << _OWNER_SHIFT) | v
    if packed.ndim == 0:
        return int(packed)
    return packed


def vertex_of(locator: np.ndarray | int):
    """Extract the global vertex id from a locator."""
    out = np.asarray(locator, dtype=np.int64) & _VERTEX_MASK
    return int(out) if out.ndim == 0 else out


def min_owner_of(locator: np.ndarray | int):
    """Extract the master partition rank from a locator."""
    out = (np.asarray(locator, dtype=np.int64) >> _OWNER_SHIFT) & _OWNER_MASK
    return int(out) if out.ndim == 0 else out


def span_of(locator: np.ndarray | int):
    """Extract the (clamped) owner span ``max_owner - min_owner``."""
    out = (np.asarray(locator, dtype=np.int64) >> _SPAN_SHIFT) & _SPAN_MASK
    return int(out) if out.ndim == 0 else out


def max_owner_of(locator: np.ndarray | int):
    """Extract ``max_owner`` (exact only when the true span fit in the field)."""
    loc = np.asarray(locator, dtype=np.int64)
    out = ((loc >> _OWNER_SHIFT) & _OWNER_MASK) + ((loc >> _SPAN_SHIFT) & _SPAN_MASK)
    return int(out) if out.ndim == 0 else out
