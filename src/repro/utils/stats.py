"""Statistics helpers used by the partition-quality and hub-growth analyses."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def imbalance(counts: np.ndarray | list[int]) -> float:
    """Load imbalance of a distribution: ``max / mean``.

    This is the metric plotted in Figure 2 of the paper ("imbalance computed
    for the distribution of edges per partition").  A perfectly balanced
    partitioning has imbalance 1.0; a partitioning where one partition holds
    double its fair share has imbalance 2.0.  An all-zero (or empty)
    distribution is defined to be perfectly balanced.
    """
    arr = np.asarray(counts, dtype=np.float64)
    if arr.size == 0:
        return 1.0
    mean = arr.mean()
    if mean == 0:
        return 1.0
    return float(arr.max() / mean)


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a distribution."""

    count: int
    total: float
    mean: float
    minimum: float
    maximum: float
    p50: float
    p99: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} sum={self.total:.6g} mean={self.mean:.6g} "
            f"min={self.minimum:.6g} p50={self.p50:.6g} p99={self.p99:.6g} max={self.maximum:.6g}"
        )


def describe(values: np.ndarray | list[float]) -> Summary:
    """Summarise ``values`` (used in reports and traces)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return Summary(
        count=int(arr.size),
        total=float(arr.sum()),
        mean=float(arr.mean()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        p50=float(np.percentile(arr, 50)),
        p99=float(np.percentile(arr, 99)),
    )


def log2_histogram(values: np.ndarray) -> dict[int, int]:
    """Histogram of ``values`` into power-of-two buckets.

    Bucket ``b`` counts entries ``v`` with ``2**b <= v < 2**(b+1)``; zeros go
    into bucket ``-1``.  Used to summarise scale-free degree distributions,
    whose interesting structure lives in the tail.
    """
    arr = np.asarray(values)
    out: dict[int, int] = {}
    zeros = int(np.count_nonzero(arr == 0))
    if zeros:
        out[-1] = zeros
    positive = arr[arr > 0]
    if positive.size:
        buckets = np.floor(np.log2(positive.astype(np.float64))).astype(np.int64)
        for b, c in zip(*np.unique(buckets, return_counts=True), strict=False):
            out[int(b)] = int(c)
    return out
