"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed or
a pre-built :class:`numpy.random.Generator`.  Centralising the conversion
keeps experiments exactly reproducible: the same seed always produces the
same graph, the same permutation and the same traversal, regardless of how
many components share the entropy stream.
"""

from __future__ import annotations

import numpy as np


def resolve_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a fresh OS-seeded generator; an ``int`` yields a
    ``default_rng(seed)``; an existing generator is passed through untouched
    so callers can share one stream across several components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Used when an experiment needs one stream per simulated rank so that
    per-rank randomness does not depend on rank scheduling order.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    root = resolve_rng(seed)
    children = root.bit_generator.seed_seq.spawn(n)
    return [np.random.default_rng(child) for child in children]
