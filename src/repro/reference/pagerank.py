"""Reference PageRank via power iteration on the sparse adjacency."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.edge_list import EdgeList


def pagerank_scores(
    edges: EdgeList,
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 500,
) -> np.ndarray:
    """Power-iteration PageRank, L1-normalised.

    Dangling vertices keep their teleport mass (no redistribution),
    matching the push formulation's behaviour where a zero-degree vertex
    absorbs but never pushes.
    """
    n = edges.num_vertices
    if n == 0:
        return np.zeros(0)
    out_deg = edges.out_degrees().astype(np.float64)
    inv = np.zeros(n)
    nonzero = out_deg > 0
    inv[nonzero] = 1.0 / out_deg[nonzero]
    # column-stochastic-ish transition: P[j, i] = 1/deg(i) for edge i -> j
    weights = inv[edges.src]
    transition = sp.csr_matrix((weights, (edges.dst, edges.src)), shape=(n, n))

    teleport = np.full(n, (1.0 - damping) / n)
    scores = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        nxt = teleport + damping * (transition @ scores)
        # dangling mass simply decays (absorbed), matching the push model;
        # renormalise at the end instead of redistributing.
        if np.abs(nxt - scores).sum() < tol:
            scores = nxt
            break
        scores = nxt
    total = scores.sum()
    return scores / total if total > 0 else scores
