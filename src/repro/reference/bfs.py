"""Reference BFS: frontier-vectorised level computation."""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSR
from repro.graph.edge_list import EdgeList
from repro.types import LEVEL_DTYPE, UNREACHED, VID_DTYPE


def bfs_levels(edges: EdgeList, source: int) -> np.ndarray:
    """BFS levels from ``source`` over the directed edge list.

    Returns an array with the level of each vertex, :data:`UNREACHED` for
    unreachable vertices.  Uses whole-frontier NumPy expansion per level —
    O(V + E) total work, no Python-per-edge loops.
    """
    n = edges.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    sorted_edges = edges.sorted_by_source()
    csr = CSR.from_edges(sorted_edges.src, sorted_edges.dst, num_rows=n, sort_rows=False)
    levels = np.full(n, UNREACHED, dtype=LEVEL_DTYPE)
    levels[source] = 0
    frontier = np.array([source], dtype=VID_DTYPE)
    level = 0
    row_ptr, cols = csr.row_ptr, csr.cols
    while frontier.size:
        level += 1
        starts = row_ptr[frontier]
        stops = row_ptr[frontier + 1]
        counts = stops - starts
        if counts.sum() == 0:
            break
        # Gather all outgoing targets of the frontier in one shot.
        idx = np.repeat(starts, counts) + _ragged_arange(counts)
        targets = cols[idx]
        fresh = targets[levels[targets] == UNREACHED]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        levels[fresh] = level
        frontier = fresh
    return levels


def _ragged_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(c)`` for each c in counts, vectorised."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=VID_DTYPE)
    ends = np.cumsum(counts)
    out = np.arange(total, dtype=VID_DTYPE)
    resets = np.zeros(total, dtype=VID_DTYPE)
    resets[ends[:-1]] = counts[:-1]
    return out - np.repeat(ends - counts, counts)
