"""Reference connected components via SciPy's csgraph."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components as _cc

from repro.graph.edge_list import EdgeList
from repro.types import VID_DTYPE


def component_labels(edges: EdgeList) -> np.ndarray:
    """Per-vertex component label, canonicalised to the minimum vertex id
    in each component (matching the distributed min-label algorithm)."""
    n = edges.num_vertices
    data = np.ones(edges.num_edges, dtype=np.int8)
    a = sp.csr_matrix((data, (edges.src, edges.dst)), shape=(n, n))
    _, raw = _cc(a, directed=False)
    # canonicalise: map each raw component id to its minimum vertex id
    min_vertex = np.full(raw.max(initial=0) + 1, n, dtype=VID_DTYPE)
    np.minimum.at(min_vertex, raw, np.arange(n, dtype=VID_DTYPE))
    return min_vertex[raw]
