"""Reference SSSP via SciPy Dijkstra with the same hash-derived weights."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import dijkstra

from repro.algorithms.sssp import edge_weight
from repro.graph.edge_list import EdgeList


def sssp_distances(
    edges: EdgeList, source: int, *, max_weight: int = 16, salt: int = 0
) -> np.ndarray:
    """Shortest-path distances from ``source`` using the identical
    deterministic edge weights as :class:`SSSPAlgorithm`."""
    n = edges.num_vertices
    weights = np.array(
        [
            edge_weight(int(u), int(v), max_weight=max_weight, salt=salt)
            for u, v in zip(edges.src, edges.dst, strict=False)
        ],
        dtype=np.float64,
    )
    a = sp.csr_matrix((weights, (edges.src, edges.dst)), shape=(n, n))
    return dijkstra(a, directed=True, indices=source)
