"""Reference k-core: sequential peeling with a bucket queue.

Computes full *core numbers* (the largest k such that the vertex is in the
k-core) in O(V + E) with the Batagelj–Zaveršnik bucket method; membership
in the k-core is then a threshold test.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSR
from repro.graph.edge_list import EdgeList
from repro.types import VID_DTYPE


def core_numbers(edges: EdgeList) -> np.ndarray:
    """Core number of every vertex of a simple undirected edge list.

    ``edges`` must be symmetrized and deduplicated
    (:meth:`EdgeList.simple_undirected`).
    """
    n = edges.num_vertices
    core = np.zeros(n, dtype=VID_DTYPE)
    if n == 0:
        return core
    sorted_edges = edges.sorted_by_source()
    csr = CSR.from_edges(sorted_edges.src, sorted_edges.dst, num_rows=n, sort_rows=False)
    degree = np.diff(csr.row_ptr).astype(VID_DTYPE)

    # Batagelj–Zaveršnik: vertices sorted by degree, with bucket starts.
    max_deg = int(degree.max(initial=0))
    vert = np.argsort(degree, kind="stable").astype(VID_DTYPE)
    pos = np.empty(n, dtype=VID_DTYPE)
    pos[vert] = np.arange(n, dtype=VID_DTYPE)
    bins = np.zeros(max_deg + 2, dtype=VID_DTYPE)
    np.add.at(bins, degree + 1, 1)
    bins = np.cumsum(bins)[:-1]  # bins[d] = first index in vert of degree-d bucket

    row_ptr, cols = csr.row_ptr, csr.cols
    deg = degree.copy()
    for i in range(n):
        v = int(vert[i])
        core[v] = deg[v]
        for j in range(int(row_ptr[v]), int(row_ptr[v + 1])):
            w = int(cols[j])
            if deg[w] > deg[v]:
                dw = int(deg[w])
                pw = int(pos[w])
                pb = int(bins[dw])
                u = int(vert[pb])
                if u != w:
                    vert[pb], vert[pw] = w, u
                    pos[w], pos[u] = pb, pw
                bins[dw] = pb + 1
                deg[w] = dw - 1
    return core


def kcore_members(edges: EdgeList, k: int) -> np.ndarray:
    """Boolean mask of vertices in the k-core (core number >= k)."""
    return core_numbers(edges) >= k
