"""Reference triangle counting via sparse matrix algebra.

For a simple undirected graph with adjacency matrix A, the total triangle
count is ``sum((A @ A) * A) / 6``.  The per-vertex variant counts, for each
vertex ``v``, the edges among its *lower-id* neighbours — which is exactly
the distributed algorithm's "largest member" attribution.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.edge_list import EdgeList
from repro.types import VID_DTYPE


def _adjacency(edges: EdgeList) -> sp.csr_matrix:
    n = edges.num_vertices
    data = np.ones(edges.num_edges, dtype=np.int64)
    a = sp.csr_matrix((data, (edges.src, edges.dst)), shape=(n, n))
    a.data[:] = 1  # collapse any duplicates defensively
    return a


def total_triangles(edges: EdgeList) -> int:
    """Total triangles in a simple undirected edge list."""
    if edges.num_edges == 0:
        return 0
    a = _adjacency(edges)
    paths2 = (a @ a).multiply(a)
    return int(paths2.sum()) // 6


def triangles_per_max_vertex(edges: EdgeList) -> np.ndarray:
    """Per-vertex counts matching the distributed algorithm's convention:
    ``out[v]`` = number of triangles whose *largest* member is ``v``."""
    n = edges.num_vertices
    out = np.zeros(n, dtype=VID_DTYPE)
    if edges.num_edges == 0:
        return out
    mask = edges.src < edges.dst
    lo, hi = edges.src[mask], edges.dst[mask]
    # Row v of a_lower lists v's neighbours with smaller ids.
    a_lower = sp.csr_matrix((np.ones(lo.size, dtype=np.int64), (hi, lo)), shape=(n, n))
    a_full = _adjacency(edges)
    indptr, indices = a_lower.indptr, a_lower.indices
    for v in range(n):
        nbrs = indices[indptr[v] : indptr[v + 1]]
        if nbrs.size < 2:
            continue
        sub = a_full[nbrs][:, nbrs]  # undirected edges among lower neighbours
        out[v] = int(sub.sum()) // 2
    return out
