"""Sequential reference implementations.

Independent, simple, vectorised single-process algorithms used to validate
the distributed asynchronous results.  They share no code with the
distributed framework (beyond :class:`EdgeList`/:class:`CSR`), so agreement
between the two is meaningful evidence of correctness; the tests
additionally validate these references against ``networkx``.
"""

from repro.reference.bfs import bfs_levels
from repro.reference.components import component_labels
from repro.reference.kcore import core_numbers, kcore_members
from repro.reference.pagerank import pagerank_scores
from repro.reference.sssp import sssp_distances
from repro.reference.triangles import total_triangles, triangles_per_max_vertex

__all__ = [
    "bfs_levels",
    "core_numbers",
    "kcore_members",
    "total_triangles",
    "triangles_per_max_vertex",
    "component_labels",
    "sssp_distances",
    "pagerank_scores",
]
