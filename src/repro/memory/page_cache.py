"""User-space page cache (Section II-B).

"We implemented a custom page cache that resides in user space and provides
a POSIX I/O interface.  Our custom page cache was designed to support a
high level of concurrent I/O requests, both for cache hits and misses, and
interfaces with NVRAM using direct I/O."

The simulated cache is an exact-LRU page map in front of a
:class:`~repro.memory.device.MemoryDevice`.  Accesses are recorded per
*tick epoch*; misses accumulated within one epoch are assumed issued
concurrently (the asynchronous visitor queue naturally batches them), so
the engine charges ``device.batch_read_us`` over the whole batch.  Hits
cost a DRAM page touch.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import MemorySystemError
from repro.memory.device import MemoryDevice

#: DRAM cost of touching one cached page, microseconds.
HIT_COST_US = 0.05


class PageCache:
    """Exact-LRU user-space page cache for one rank's graph data."""

    def __init__(self, *, capacity_pages: int, page_size: int, device: MemoryDevice) -> None:
        if capacity_pages < 1:
            raise MemorySystemError(f"capacity_pages must be >= 1, got {capacity_pages}")
        if page_size < 8:
            raise MemorySystemError(f"page_size must be >= 8 bytes, got {page_size}")
        self.capacity_pages = capacity_pages
        self.page_size = page_size
        self.device = device
        self._lru: OrderedDict[int, None] = OrderedDict()
        # cumulative statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # per-epoch (per-tick) counters, drained by the engine
        self.epoch_hits = 0
        self.epoch_misses = 0

    # ------------------------------------------------------------------ #
    def access(self, page_id: int) -> bool:
        """Touch one page; returns True on hit.

        A miss installs the page (direct I/O read), evicting the LRU page
        when full — the paper's cache bypasses the OS page cache
        (O_DIRECT), so there is no second-level cache behind this one.
        """
        if page_id in self._lru:
            self._lru.move_to_end(page_id)
            self.hits += 1
            self.epoch_hits += 1
            return True
        self.misses += 1
        self.epoch_misses += 1
        if len(self._lru) >= self.capacity_pages:
            self._lru.popitem(last=False)
            self.evictions += 1
        self._lru[page_id] = None
        return False

    def access_range(self, byte_lo: int, byte_hi: int, *, namespace: int = 0) -> None:
        """Touch every page overlapping ``[byte_lo, byte_hi)``.

        ``namespace`` separates address spaces of distinct backing arrays
        (e.g. a CSR's row-pointer array vs its column array) sharing one
        cache.
        """
        if byte_hi <= byte_lo:
            return
        first = byte_lo // self.page_size
        last = (byte_hi - 1) // self.page_size
        base = namespace << 44  # namespaces are disjoint 16 TiB windows
        for page in range(first, last + 1):
            self.access(base | page)

    # ------------------------------------------------------------------ #
    def drain_epoch_us(self, *, concurrency: int | None = None) -> float:
        """Charge and reset the current epoch's accesses.

        Returns the simulated time for this epoch: hits at DRAM page cost,
        misses as one concurrent device batch.
        """
        cost = self.epoch_hits * HIT_COST_US + self.device.batch_read_us(
            self.epoch_misses, self.page_size, concurrency=concurrency
        )
        self.epoch_hits = 0
        self.epoch_misses = 0
        return cost

    @property
    def resident_pages(self) -> int:
        """Pages currently cached."""
        return len(self._lru)

    def hit_rate(self) -> float:
        """Cumulative hit rate (1.0 when no accesses yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 1.0
