"""User-space page cache (Section II-B).

"We implemented a custom page cache that resides in user space and provides
a POSIX I/O interface.  Our custom page cache was designed to support a
high level of concurrent I/O requests, both for cache hits and misses, and
interfaces with NVRAM using direct I/O."

The simulated cache is an exact-LRU page map in front of a
:class:`~repro.memory.device.MemoryDevice`.  Accesses are recorded per
*tick epoch*; misses accumulated within one epoch are assumed issued
concurrently (the asynchronous visitor queue naturally batches them), so
the engine charges ``device.batch_read_us`` over the whole batch.  Hits
cost a DRAM page touch.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.errors import MemorySystemError
from repro.memory.device import MemoryDevice

#: DRAM cost of touching one cached page, microseconds.
HIT_COST_US = 0.05

#: Bit position separating the namespace tag from the page number in a
#: page id (namespaces are disjoint 16 TiB windows).
NAMESPACE_SHIFT = 44


class PageCache:
    """Exact-LRU user-space page cache for one rank's graph data."""

    def __init__(self, *, capacity_pages: int, page_size: int, device: MemoryDevice) -> None:
        if capacity_pages < 1:
            raise MemorySystemError(f"capacity_pages must be >= 1, got {capacity_pages}")
        if page_size < 8:
            raise MemorySystemError(f"page_size must be >= 8 bytes, got {page_size}")
        self.capacity_pages = capacity_pages
        self.page_size = page_size
        self.device = device
        self._lru: OrderedDict[int, None] = OrderedDict()
        # cumulative statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # per-epoch (per-tick) counters, drained by the engine
        self.epoch_hits = 0
        self.epoch_misses = 0
        #: Optional :class:`~repro.memory.faults.StorageFaultInjector`;
        #: when set, each drained epoch's miss batch is inspected for
        #: read errors / spikes / torn pages and the extra time charged.
        self.fault_injector = None
        #: The last drained epoch's :class:`~repro.memory.faults.
        #: EpochStorageFaults` (None when fault-free) — read by the engine
        #: to surface fault counters and escalate permanent failures.
        self.last_epoch_faults = None

    # ------------------------------------------------------------------ #
    def access(self, page_id: int) -> bool:
        """Touch one page; returns True on hit.

        A miss installs the page (direct I/O read), evicting the LRU page
        when full — the paper's cache bypasses the OS page cache
        (O_DIRECT), so there is no second-level cache behind this one.
        """
        if page_id in self._lru:
            self._lru.move_to_end(page_id)
            self.hits += 1
            self.epoch_hits += 1
            return True
        self.misses += 1
        self.epoch_misses += 1
        if len(self._lru) >= self.capacity_pages:
            self._lru.popitem(last=False)
            self.evictions += 1
        self._lru[page_id] = None
        return False

    def access_range(self, byte_lo: int, byte_hi: int, *, namespace: int = 0) -> None:
        """Touch every page overlapping ``[byte_lo, byte_hi)``.

        ``namespace`` separates address spaces of distinct backing arrays
        (e.g. a CSR's row-pointer array vs its column array) sharing one
        cache.
        """
        if byte_hi <= byte_lo:
            return
        first = byte_lo // self.page_size
        last = (byte_hi - 1) // self.page_size
        base = namespace << NAMESPACE_SHIFT
        for page in range(first, last + 1):
            self.access(base | page)

    def access_pages(self, page_ids: np.ndarray) -> None:
        """Touch a batch of (namespaced) page ids in order.

        Exactly equivalent to calling :meth:`access` once per id, in
        sequence — same hit/miss/eviction counts, same final LRU order —
        but the common no-eviction case is handled in bulk: duplicates are
        folded with :func:`np.unique`, hit/miss totals are added in one
        step, and recency is replayed only once per distinct page (final
        recency among touched pages is their last-occurrence order, which
        is what sequential touching produces).  Under eviction pressure
        (the batch could displace one of its own pages mid-stream) the
        exact per-page walk runs instead.
        """
        n = int(page_ids.size)
        if n == 0:
            return
        lru = self._lru
        uniq = np.unique(page_ids)
        new = [p for p in uniq.tolist() if p not in lru]
        if len(lru) + len(new) <= self.capacity_pages:
            misses = len(new)
            hits = n - misses
            self.hits += hits
            self.epoch_hits += hits
            self.misses += misses
            self.epoch_misses += misses
            if uniq.size == n:  # already in last-occurrence order
                last_order = page_ids.tolist()
            else:
                rev = page_ids[::-1]
                _, first_in_rev = np.unique(rev, return_index=True)
                last_order = rev[np.sort(first_in_rev)][::-1].tolist()
            move = lru.move_to_end
            for p in last_order:
                if p in lru:
                    move(p)
                else:
                    lru[p] = None
            return
        access = self.access
        for p in page_ids.tolist():
            access(p)

    # ------------------------------------------------------------------ #
    def drain_epoch_us(self, *, concurrency: int | None = None) -> float:
        """Charge and reset the current epoch's accesses.

        Returns the simulated time for this epoch: hits at DRAM page cost,
        misses as one concurrent device batch.  With a
        :attr:`fault_injector` attached, the miss batch is additionally
        inspected for storage faults (retries with backoff, latency
        spikes, torn-page re-reads, degraded bandwidth) whose time is
        charged on top; the tally lands in :attr:`last_epoch_faults`.
        """
        misses = self.epoch_misses
        cost = self.epoch_hits * HIT_COST_US + self.device.batch_read_us(
            misses, self.page_size, concurrency=concurrency
        )
        self.last_epoch_faults = None
        if self.fault_injector is not None and misses:
            faults = self.fault_injector.inspect_epoch(
                misses, self.device, self.page_size
            )
            cost += faults.extra_us
            self.last_epoch_faults = faults
        self.epoch_hits = 0
        self.epoch_misses = 0
        return cost

    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """Full cache state for supervision images: the LRU order (oldest
        first) plus every counter, so a respawned worker's cache resumes
        with bit-identical hit/miss/eviction evolution.  Taken at tick
        barriers, where the epoch counters are freshly drained."""
        return {
            "lru": list(self._lru),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "epoch_hits": self.epoch_hits,
            "epoch_misses": self.epoch_misses,
        }

    def restore_state(self, snap: dict) -> None:
        """Adopt a :meth:`snapshot_state` image in place."""
        self._lru = OrderedDict((page, None) for page in snap["lru"])
        self.hits = snap["hits"]
        self.misses = snap["misses"]
        self.evictions = snap["evictions"]
        self.epoch_hits = snap["epoch_hits"]
        self.epoch_misses = snap["epoch_misses"]
        self.last_epoch_faults = None

    @property
    def resident_pages(self) -> int:
        """Pages currently cached."""
        return len(self._lru)

    def hit_rate(self) -> float:
        """Cumulative hit rate (1.0 when no accesses yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 1.0
