"""External-memory backing for CSR partitions.

When a machine model stores graph data on NVRAM, each rank's CSR is
accessed through a :class:`PagedCSR`: every adjacency-row read touches the
row-pointer pages and the column pages of that row through the rank's
user-space page cache.  This is what makes the Section V-A locality
optimisation observable — visitors ordered by vertex id touch consecutive
CSR rows, which share pages.
"""

from __future__ import annotations

import numpy as np

from repro.core.batch import concat_ranges
from repro.graph.csr import CSR
from repro.memory.page_cache import NAMESPACE_SHIFT, PageCache

_NS_ROW_PTR = 0
_NS_COLS = 1
_ITEM_BYTES = 8  # int64 ids on disk, matching the in-memory layout


class PagedCSR:
    """A CSR whose reads are metered through a page cache."""

    def __init__(self, csr: CSR, cache: PageCache) -> None:
        self.csr = csr
        self.cache = cache

    def neighbors(self, v: int):
        """Adjacency row of ``v``, charging page touches for the row pointer
        pair and the column range."""
        lo, hi = self.csr.row_range(v)
        r = v - self.csr.vertex_base
        self.cache.access_range(r * _ITEM_BYTES, (r + 2) * _ITEM_BYTES, namespace=_NS_ROW_PTR)
        if hi > lo:
            self.cache.access_range(lo * _ITEM_BYTES, hi * _ITEM_BYTES, namespace=_NS_COLS)
        return self.csr.cols[lo:hi]

    def has_edge(self, v: int, w: int) -> bool:
        """Membership test with the same page accounting as a row read.

        The binary search touches O(log d) pages in the worst case; charging
        the whole row is a deliberate, documented simplification that keeps
        the model conservative for the triangle-counting external-memory
        runs.
        """
        self.neighbors(v)
        return self.csr.has_edge(v, w)

    def row_page_segments(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Page-id segments of the given adjacency rows, in row order.

        Returns ``(starts, lengths)`` of shape ``(n, 2)``: per row, first
        the row-pointer page range, then the column page range (length 0
        for empty rows) — the same pages, in the same order, that
        :meth:`neighbors` touches one row at a time.  Page ids carry their
        namespace tag so they can be fed straight to
        :meth:`PageCache.access_pages`.
        """
        ps = self.cache.page_size
        r = vertices - self.csr.vertex_base
        lo = self.csr.row_ptr[r]
        hi = self.csr.row_ptr[r + 1]
        starts = np.empty((r.size, 2), dtype=np.int64)
        lengths = np.empty((r.size, 2), dtype=np.int64)
        # row-pointer pair: bytes [r*8, (r+2)*8)
        first = (r * _ITEM_BYTES) // ps
        last = ((r + 2) * _ITEM_BYTES - 1) // ps
        starts[:, 0] = first + (_NS_ROW_PTR << NAMESPACE_SHIFT)
        lengths[:, 0] = last - first + 1
        # column range: bytes [lo*8, hi*8), empty rows touch nothing
        first = (lo * _ITEM_BYTES) // ps
        last = (hi * _ITEM_BYTES - 1) // ps
        starts[:, 1] = first + (_NS_COLS << NAMESPACE_SHIFT)
        lengths[:, 1] = np.where(hi > lo, last - first + 1, 0)
        return starts, lengths

    def touch_rows(self, vertices: np.ndarray) -> None:
        """Meter a batch of adjacency rows through the page cache in one
        :meth:`PageCache.access_pages` call (batch-path fast metering)."""
        starts, lengths = self.row_page_segments(vertices)
        self.cache.access_pages(concat_ranges(starts.ravel(), lengths.ravel()))

    def data_bytes(self) -> int:
        """Bytes of graph data behind this view (for footprint reports)."""
        return self.csr.nbytes()
