"""External-memory backing for CSR partitions.

When a machine model stores graph data on NVRAM, each rank's CSR is
accessed through a :class:`PagedCSR`: every adjacency-row read touches the
row-pointer pages and the column pages of that row through the rank's
user-space page cache.  This is what makes the Section V-A locality
optimisation observable — visitors ordered by vertex id touch consecutive
CSR rows, which share pages.
"""

from __future__ import annotations

from repro.graph.csr import CSR
from repro.memory.page_cache import PageCache

_NS_ROW_PTR = 0
_NS_COLS = 1
_ITEM_BYTES = 8  # int64 ids on disk, matching the in-memory layout


class PagedCSR:
    """A CSR whose reads are metered through a page cache."""

    def __init__(self, csr: CSR, cache: PageCache) -> None:
        self.csr = csr
        self.cache = cache

    def neighbors(self, v: int):
        """Adjacency row of ``v``, charging page touches for the row pointer
        pair and the column range."""
        lo, hi = self.csr.row_range(v)
        r = v - self.csr.vertex_base
        self.cache.access_range(r * _ITEM_BYTES, (r + 2) * _ITEM_BYTES, namespace=_NS_ROW_PTR)
        if hi > lo:
            self.cache.access_range(lo * _ITEM_BYTES, hi * _ITEM_BYTES, namespace=_NS_COLS)
        return self.csr.cols[lo:hi]

    def has_edge(self, v: int, w: int) -> bool:
        """Membership test with the same page accounting as a row read.

        The binary search touches O(log d) pages in the worst case; charging
        the whole row is a deliberate, documented simplification that keeps
        the model conservative for the triangle-counting external-memory
        runs.
        """
        self.neighbors(v)
        return self.csr.has_edge(v, w)

    def data_bytes(self) -> int:
        """Bytes of graph data behind this view (for footprint reports)."""
        return self.csr.nbytes()
