"""Simulated memory hierarchy: DRAM, NVRAM devices and the user-space page cache.

Stands in for the paper's Fusion-io / SATA-SSD NAND Flash and the custom
user-space page cache of Section II-B ("designed to support a high level of
concurrent I/O requests, both for cache hits and misses, and interfaces
with NVRAM using direct I/O").  See DESIGN.md for the substitution
rationale.
"""

from repro.memory.backing import PagedCSR
from repro.memory.device import MemoryDevice, dram, fusion_io, sata_ssd
from repro.memory.faults import StorageFaultInjector, StorageFaultPlan
from repro.memory.page_cache import PageCache
from repro.memory.spill import SpillPager

__all__ = [
    "MemoryDevice",
    "dram",
    "fusion_io",
    "sata_ssd",
    "PageCache",
    "PagedCSR",
    "SpillPager",
    "StorageFaultPlan",
    "StorageFaultInjector",
]
