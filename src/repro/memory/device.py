"""NVRAM / DRAM device models.

The defining property the paper exploits is that NAND Flash delivers good
throughput only under *high concurrency*: "high levels of concurrent I/O
are required to achieve optimal performance from NVRAM devices; this is the
underlying motivation for designing highly concurrent asynchronous graph
traversals."  A device is therefore characterised by three numbers: random
page-read latency, sustained bandwidth, and the number of outstanding I/Os
it can service in parallel.

A batch of ``misses`` page faults issued together (as an asynchronous
traversal does naturally) costs::

    ceil(misses / io_parallelism) * read_latency_us
        + misses * page_size / bandwidth

A synchronous traversal would issue the same misses one at a time and pay
``misses * read_latency_us`` — the gap the asynchronous design exists to
close (see ``benchmarks/bench_ablation_concurrency.py``).

Latency/bandwidth figures are order-of-magnitude characteristics of the
devices named in Table II (enterprise PCIe Fusion-io, commodity SATA SSD,
circa 2012), not measurements of any specific product.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.errors import MemorySystemError


@dataclass(frozen=True)
class MemoryDevice:
    """A storage device characterised for the cost model."""

    name: str
    #: Latency of one random page read, microseconds.
    read_latency_us: float
    #: Sustained read bandwidth, bytes per microsecond (== MB/s).
    bandwidth_bytes_per_us: float
    #: Concurrent outstanding reads the device services at full rate.
    io_parallelism: int
    #: Latency of one page write (None = same as read; NAND program
    #: operations are typically slower than reads).
    write_latency_us: float | None = None
    #: Sustained write bandwidth (None = same as read).
    write_bandwidth_bytes_per_us: float | None = None

    def __post_init__(self) -> None:
        if self.read_latency_us < 0:
            raise MemorySystemError(f"negative latency for {self.name}")
        if self.bandwidth_bytes_per_us <= 0:
            raise MemorySystemError(f"non-positive bandwidth for {self.name}")
        if self.io_parallelism < 1:
            raise MemorySystemError(f"io_parallelism must be >= 1 for {self.name}")
        if self.write_latency_us is not None and self.write_latency_us < 0:
            raise MemorySystemError(f"negative write latency for {self.name}")
        if (self.write_bandwidth_bytes_per_us is not None
                and self.write_bandwidth_bytes_per_us <= 0):
            raise MemorySystemError(f"non-positive write bandwidth for {self.name}")

    def batch_read_us(self, num_pages: int, page_size: int, *, concurrency: int | None = None) -> float:
        """Time to read ``num_pages`` random pages issued as one batch.

        ``concurrency`` caps the overlap (defaults to the device limit); a
        fully synchronous caller passes 1.
        """
        if num_pages == 0:
            return 0.0
        overlap = self.io_parallelism if concurrency is None else max(1, min(concurrency, self.io_parallelism))
        waves = ceil(num_pages / overlap)
        return waves * self.read_latency_us + num_pages * page_size / self.bandwidth_bytes_per_us

    def batch_write_us(self, num_pages: int, page_size: int, *, concurrency: int | None = None) -> float:
        """Time to write ``num_pages`` pages issued as one batch (same
        concurrency model as :meth:`batch_read_us`; used by the external-
        memory spill path)."""
        if num_pages == 0:
            return 0.0
        latency = self.write_latency_us if self.write_latency_us is not None else self.read_latency_us
        bw = (self.write_bandwidth_bytes_per_us
              if self.write_bandwidth_bytes_per_us is not None
              else self.bandwidth_bytes_per_us)
        overlap = self.io_parallelism if concurrency is None else max(1, min(concurrency, self.io_parallelism))
        waves = ceil(num_pages / overlap)
        return waves * latency + num_pages * page_size / bw


def dram() -> MemoryDevice:
    """Main memory as a 'device' (used when the page cache backs DRAM-resident
    data, e.g. for unit tests; DRAM-only runs normally bypass paging)."""
    return MemoryDevice(
        name="dram", read_latency_us=0.1, bandwidth_bytes_per_us=10_000.0, io_parallelism=64
    )


def fusion_io() -> MemoryDevice:
    """Enterprise PCIe NAND Flash — the *per-rank share* of one card.

    A Hyperion-DIT node runs 8 ranks against a single Fusion-io drive, so
    each rank sees roughly 1/8 of the card's ~1.2 GB/s bandwidth and queue
    depth; latency is the card's random-read latency.
    """
    return MemoryDevice(
        name="fusion-io", read_latency_us=60.0, bandwidth_bytes_per_us=200.0, io_parallelism=10
    )


def sata_ssd() -> MemoryDevice:
    """Commodity SATA SSD, per-rank share (Trestles' storage; "our approach
    is not limited to enterprise class NVRAM")."""
    return MemoryDevice(
        name="sata-ssd", read_latency_us=160.0, bandwidth_bytes_per_us=30.0, io_parallelism=4
    )
