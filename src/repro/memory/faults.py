"""Deterministic fault injection for the simulated memory system.

The network got its hostile substrate in :mod:`repro.comm.faults`; this
module does the same for storage.  A :class:`StorageFaultPlan` is an
immutable, seed-driven description of how a :class:`~repro.memory.device.
MemoryDevice` misbehaves under load: transient read errors (retried with
backoff), latency spikes, torn pages (detected by the page cache's
per-page checksums and re-read), and sustained bandwidth degradation.
The :class:`StorageFaultInjector` is the runtime: one seeded stream per
rank, a fixed number of draws per page miss, so the stream position —
and therefore every later decision — depends only on the *number* of
misses so far, never on earlier outcomes.  Because the logical miss
sequence of a traversal is itself deterministic, storage faults perturb
only simulated time and the fault counters, never results.

A read that still fails after ``max_retries`` attempts is a *permanent*
failure: the page cache surfaces it to the engine, which either escalates
into the :class:`~repro.runtime.recovery.RecoveryManager` (re-fetching the
page from a checkpoint replica) or raises
:class:`~repro.errors.MemorySystemError` when no recovery path exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.utils.rng import spawn_rngs


@dataclass(frozen=True)
class StorageFaultPlan:
    """Seeded description of storage misbehaviour.

    ``read_error_rate`` / ``spike_rate`` / ``torn_rate`` are independent
    per-miss probabilities; ``bandwidth_degradation`` divides the device's
    sustained bandwidth for the whole run (a worn or contended device).  A
    plan with all rates zero and degradation 1 is a valid no-op.
    """

    seed: int = 0
    #: Probability one device read fails transiently and is retried.
    read_error_rate: float = 0.0
    #: Probability one device read hits a latency spike.
    spike_rate: float = 0.0
    #: Extra latency of one spike, microseconds.
    spike_us: float = 500.0
    #: Probability one page arrives torn (checksum mismatch -> re-read).
    torn_rate: float = 0.0
    #: Factor by which sustained bandwidth is degraded (>= 1).
    bandwidth_degradation: float = 1.0
    #: Read attempts before a failing page is declared permanently lost.
    max_retries: int = 3
    #: Backoff before retry ``i`` (charged ``i * retry_backoff_us``).
    retry_backoff_us: float = 50.0

    def __post_init__(self) -> None:
        for name in ("read_error_rate", "spike_rate", "torn_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1), got {rate}")
        if self.bandwidth_degradation < 1.0:
            raise ConfigurationError(
                f"bandwidth_degradation must be >= 1, got {self.bandwidth_degradation}"
            )
        if self.max_retries < 1:
            raise ConfigurationError(f"max_retries must be >= 1, got {self.max_retries}")
        if self.spike_us < 0 or self.retry_backoff_us < 0:
            raise ConfigurationError("spike_us and retry_backoff_us must be >= 0")

    # ------------------------------------------------------------------ #
    @property
    def any_faults(self) -> bool:
        """True when the plan can actually perturb a run."""
        return bool(
            self.read_error_rate
            or self.spike_rate
            or self.torn_rate
            or self.bandwidth_degradation > 1.0
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec: str) -> "StorageFaultPlan":
        """Parse the CLI storage-fault mini-language.

        ``SPEC`` is a comma-separated ``key=value`` list::

            seed=7,readerr=0.05,spike=0.02,spikeus=800,torn=0.01,slow=4,retries=3,backoff=50
        """
        aliases = {
            "seed": ("seed", int),
            "readerr": ("read_error_rate", float),
            "spike": ("spike_rate", float),
            "spikeus": ("spike_us", float),
            "torn": ("torn_rate", float),
            "slow": ("bandwidth_degradation", float),
            "retries": ("max_retries", int),
            "backoff": ("retry_backoff_us", float),
        }
        kwargs: dict = {}
        for item in filter(None, (s.strip() for s in spec.split(","))):
            if "=" not in item:
                raise ConfigurationError(
                    f"storage fault spec item {item!r} is not key=value"
                )
            key, _, value = item.partition("=")
            key = key.strip().lower()
            if key not in aliases:
                raise ConfigurationError(
                    f"unknown storage fault spec key {key!r} "
                    f"(known: {', '.join(sorted(aliases))})"
                )
            name, conv = aliases[key]
            try:
                kwargs[name] = conv(value)
            except ValueError:
                raise ConfigurationError(
                    f"storage fault spec {key}={value!r} is not a {conv.__name__}"
                ) from None
        return cls(**kwargs)


@dataclass
class EpochStorageFaults:
    """Outcome of one epoch's miss batch through the injector."""

    retries: int = 0
    spikes: int = 0
    torn_pages: int = 0
    #: Pages that exhausted ``max_retries`` (escalated to recovery).
    permanent_failures: int = 0
    #: Simulated time added by retries, backoff, spikes and re-reads.
    extra_us: float = 0.0


class StorageFaultInjector:
    """Runtime of a :class:`StorageFaultPlan` for one rank's device.

    Every page miss consumes exactly three uniforms (error, spike, torn)
    regardless of outcome.  The retry count for a failing read is derived
    *geometrically from the single error uniform* — attempt ``k`` fails
    iff ``u < rate ** k`` — so no extra draws are needed and the stream
    position stays a pure function of the miss count.
    """

    def __init__(self, plan: StorageFaultPlan, rank: int, num_ranks: int) -> None:
        self.plan = plan
        self._rng = spawn_rngs(plan.seed, num_ranks)[rank]
        # cumulative tallies (surfaced via TraversalStats)
        self.retries = 0
        self.spikes = 0
        self.torn_pages = 0
        self.permanent_failures = 0

    def snapshot_state(self) -> dict:
        """Stream position + tallies for durable checkpoints."""
        return {
            "rng": self._rng.bit_generator.state,
            "retries": self.retries,
            "spikes": self.spikes,
            "torn_pages": self.torn_pages,
            "permanent_failures": self.permanent_failures,
        }

    def restore_state(self, snap: dict) -> None:
        """Reinstall a :meth:`snapshot_state` image (same plan/rank)."""
        self._rng.bit_generator.state = snap["rng"]
        self.retries = snap["retries"]
        self.spikes = snap["spikes"]
        self.torn_pages = snap["torn_pages"]
        self.permanent_failures = snap["permanent_failures"]

    def inspect_epoch(self, num_misses: int, device, page_size: int) -> EpochStorageFaults:
        """Draw the fault outcomes for one epoch's batch of page misses.

        Returns the epoch tally, including the simulated time the faults
        add on top of the healthy batch-read cost.  Degraded bandwidth is
        charged here too (the extra transfer time the slow device needs),
        so the healthy :meth:`~repro.memory.device.MemoryDevice.
        batch_read_us` stays untouched for baseline comparisons.
        """
        plan = self.plan
        out = EpochStorageFaults()
        if num_misses == 0:
            return out
        if plan.bandwidth_degradation > 1.0:
            healthy = num_misses * page_size / device.bandwidth_bytes_per_us
            out.extra_us += healthy * (plan.bandwidth_degradation - 1.0)
        if not (plan.read_error_rate or plan.spike_rate or plan.torn_rate):
            return out
        u = self._rng.random((num_misses, 3))
        per_read = device.read_latency_us * plan.bandwidth_degradation
        for i in range(num_misses):
            ue = u[i, 0]
            if ue < plan.read_error_rate:
                # attempt k (1-based) fails iff ue < rate**k, capped
                failed = 1
                threshold = plan.read_error_rate * plan.read_error_rate
                while ue < threshold and failed < plan.max_retries:
                    failed += 1
                    threshold *= plan.read_error_rate
                if failed >= plan.max_retries:
                    out.permanent_failures += 1
                retried = min(failed, plan.max_retries)
                out.retries += retried
                for attempt in range(1, retried + 1):
                    out.extra_us += attempt * plan.retry_backoff_us + per_read
            if u[i, 1] < plan.spike_rate:
                out.spikes += 1
                out.extra_us += plan.spike_us
            if u[i, 2] < plan.torn_rate:
                # checksum mismatch: the page is re-read once
                out.torn_pages += 1
                out.extra_us += per_read + page_size / (
                    device.bandwidth_bytes_per_us / plan.bandwidth_degradation
                )
        self.retries += out.retries
        self.spikes += out.spikes
        self.torn_pages += out.torn_pages
        self.permanent_failures += out.permanent_failures
        return out
