"""External-memory spill store for overflow state (Section V-A).

The paper's visitor queue "may require substantial memory for its
operation ... the queue itself may be stored in external memory".  A
:class:`SpillPager` models that path for one rank: an append-only,
page-aligned log on the rank's storage device, fronted by a small
dedicated :class:`~repro.memory.page_cache.PageCache` for read-back.
Two namespaces share the log address space: mailbox aggregation-buffer
overflow (bytes beyond the bounded mailbox's DRAM cap) and visitor-queue
overflow (pending visitors beyond the configured resident limit).

The pager is pure cost accounting: spilled bytes are charged device
*write* time when they leave DRAM and page-cache *read* time when they
return, all folded into the owning rank's per-tick cost.  It deliberately
uses its own cache instance so a pressured run's CSR cache hit/miss
counters stay bit-identical to the unpressured baseline.
"""

from __future__ import annotations

from math import ceil

from repro.errors import MemorySystemError
from repro.memory.device import MemoryDevice
from repro.memory.page_cache import PageCache

#: Spill-log namespaces (disjoint windows of one pager's address space).
NS_MAILBOX = 0
NS_QUEUE = 1

#: Simulated bytes of one spilled queue entry beyond the visitor payload
#: (the heap key: priority, tie, sequence number).
QUEUE_ENTRY_OVERHEAD_BYTES = 24


class SpillPager:
    """One rank's append-only external-memory spill log."""

    def __init__(self, *, page_size: int, device: MemoryDevice,
                 cache_pages: int = 16) -> None:
        if page_size < 8:
            raise MemorySystemError(f"page_size must be >= 8, got {page_size}")
        self.page_size = page_size
        self.device = device
        self.cache = PageCache(
            capacity_pages=cache_pages, page_size=page_size, device=device
        )
        self._write_cursor = [0, 0]
        self._read_cursor = [0, 0]
        # cumulative totals (surfaced via TraversalStats)
        self.bytes_spilled = 0
        self.bytes_unspilled = 0
        # per-epoch write accumulator (reads are metered by the cache)
        self._epoch_write_bytes = 0

    # ------------------------------------------------------------------ #
    def spill(self, namespace: int, nbytes: int) -> None:
        """Append ``nbytes`` to the namespace's log (device write)."""
        if nbytes <= 0:
            return
        self._write_cursor[namespace] += nbytes
        self._epoch_write_bytes += nbytes
        self.bytes_spilled += nbytes

    def unspill(self, namespace: int, nbytes: int) -> None:
        """Read the oldest ``nbytes`` back from the namespace's log.

        The log is consumed FIFO (a circular spill file); reads go through
        the pager's cache, so a read-back that lands on still-resident
        pages is a cheap DRAM touch.
        """
        if nbytes <= 0:
            return
        lo = self._read_cursor[namespace]
        hi = lo + nbytes
        if hi > self._write_cursor[namespace]:
            raise MemorySystemError(
                f"spill namespace {namespace}: reading past the log end "
                f"({hi} > {self._write_cursor[namespace]})"
            )
        self.cache.access_range(lo, hi, namespace=namespace)
        self._read_cursor[namespace] = hi
        self.bytes_unspilled += nbytes

    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """Full pager state for supervision images: log cursors, byte
        totals and the read-back cache, so a respawned worker's spill
        charges evolve bit-identically.  Taken at tick barriers, where
        the epoch write accumulator is freshly drained."""
        return {
            "write_cursor": list(self._write_cursor),
            "read_cursor": list(self._read_cursor),
            "bytes_spilled": self.bytes_spilled,
            "bytes_unspilled": self.bytes_unspilled,
            "epoch_write_bytes": self._epoch_write_bytes,
            "cache": self.cache.snapshot_state(),
        }

    def restore_state(self, snap: dict) -> None:
        """Adopt a :meth:`snapshot_state` image in place."""
        self._write_cursor = list(snap["write_cursor"])
        self._read_cursor = list(snap["read_cursor"])
        self.bytes_spilled = snap["bytes_spilled"]
        self.bytes_unspilled = snap["bytes_unspilled"]
        self._epoch_write_bytes = snap["epoch_write_bytes"]
        self.cache.restore_state(snap["cache"])

    # ------------------------------------------------------------------ #
    def drain_epoch_us(self, *, concurrency: int | None = None) -> float:
        """Charge and reset this epoch's spill I/O (writes + read-backs)."""
        cost = 0.0
        if self._epoch_write_bytes:
            pages = ceil(self._epoch_write_bytes / self.page_size)
            cost += self.device.batch_write_us(
                pages, self.page_size, concurrency=concurrency
            )
            self._epoch_write_bytes = 0
        cost += self.cache.drain_epoch_us(concurrency=concurrency)
        return cost
