"""Traversal statistics: per-rank counters and the aggregate trace.

Every quantity the cost model charges is first *measured* here; the
benchmark harness reports both the simulated time and the raw counts, so a
reader can always decompose a TEPS number into its mechanical causes
(visitors, messages, cache misses).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class RankCounters:
    """Cumulative event counts for one simulated rank."""

    visits: int = 0
    previsits: int = 0
    pushes: int = 0
    ghost_filtered: int = 0
    edges_scanned: int = 0
    visitors_sent: int = 0
    visitors_received: int = 0
    packets_sent: int = 0
    bytes_sent: int = 0
    envelopes_forwarded: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    # resource pressure (zero when unconstrained)
    #: logical messages that hit mailbox backpressure on this rank.
    bp_stalls: int = 0
    #: mailbox overflow bytes spilled to external memory.
    bp_spilled_bytes: int = 0
    #: pending visitors paged out of / back into the external queue.
    queue_spilled: int = 0
    queue_unspilled: int = 0
    busy_us: float = 0.0


@dataclass(frozen=True)
class TickSample:
    """One entry of the optional per-tick timeline."""

    tick: int
    time_us: float  # cumulative simulated time at tick end
    queued_visitors: int  # sum of local queue depths across ranks
    packets_in_flight: int
    visits_this_tick: int
    # Reliable-delivery / fault-injection activity (zero on plain fabric).
    retransmits: int = 0
    faults: int = 0  # drops + duplications + delays injected this tick
    recoveries: int = 0  # rank restarts completed this tick
    # Memory-pressure activity (zero when unconstrained).
    cache_hits: int = 0  # page-cache hits across ranks this tick
    cache_misses: int = 0
    bp_stalls: int = 0  # messages backpressured this tick


@dataclass
class TraversalStats:
    """Aggregate outcome of one simulated traversal."""

    algorithm: str
    machine: str
    topology: str
    num_ranks: int
    num_vertices: int
    num_edges: int
    ticks: int = 0
    time_us: float = 0.0
    termination_waves: int = 0
    used_detector: bool = True
    ranks: list[RankCounters] = field(default_factory=list)
    #: Per-tick samples, populated when ``EngineConfig.trace_timeline``.
    timeline: list[TickSample] = field(default_factory=list)

    # --- reliable delivery / fault injection (zero on plain fabric) ----- #
    #: Seed of the active :class:`~repro.comm.faults.FaultPlan` (None when
    #: the run used the plain lossless fabric).
    fault_seed: int | None = None
    #: Wire transmissions the fault injector dropped / duplicated / delayed.
    packets_dropped: int = 0
    packets_duplicated: int = 0
    packets_delayed: int = 0
    #: Arriving copies discarded by receiver-side dedup.
    duplicates_discarded: int = 0
    #: Timeout-driven retransmissions (packets / wire bytes incl. headers).
    retransmitted_packets: int = 0
    retransmitted_bytes: int = 0
    #: Standalone cumulative-ack packets (piggybacked acks are free).
    ack_packets: int = 0
    #: Reliability wire tax: sequence/ack headers plus standalone acks.
    reliable_overhead_bytes: int = 0
    #: Total fabric rounds the transport spun (1 per tick when fault-free).
    transport_rounds: int = 0
    # --- checkpoint / crash recovery ------------------------------------ #
    crashes: int = 0
    recoveries: int = 0
    #: Logical ticks re-executed from delivery logs during restarts.
    replayed_ticks: int = 0
    checkpoints_taken: int = 0
    checkpoint_bytes: int = 0
    #: Simulated time charged for restarts (restore + replay compute).
    recovery_us: float = 0.0

    # --- resource pressure (zero when unconstrained; INTERNALS §9) ------ #
    #: Simulated time charged for credit-stall waits under backpressure.
    backpressure_stall_us: float = 0.0
    #: Simulated time charged for spill-log device I/O (writes + reads).
    spill_io_us: float = 0.0
    #: Reliable-transport injections deferred by the per-channel window.
    transport_window_stalls: int = 0
    #: Seed of the active storage fault plan (None = healthy devices).
    storage_fault_seed: int | None = None
    #: Storage fault outcomes: retried reads, latency spikes, torn pages
    #: (checksum re-reads) and permanent failures.
    storage_retries: int = 0
    storage_spikes: int = 0
    torn_pages: int = 0
    storage_errors: int = 0
    #: Pages re-fetched through the recovery manager after permanent
    #: device failures.
    storage_recoveries: int = 0
    #: Simulated time the storage faults added (retries/backoff/spikes/
    #: re-reads/degraded bandwidth).
    storage_fault_us: float = 0.0
    #: Largest per-rank slowdown of the active straggler plan (1.0 = none).
    max_slowdown: float = 1.0
    #: Simulated time lost to straggler skew (after rebalance).
    straggler_stall_us: float = 0.0
    #: Simulated time work stealing clawed back from the skewed critical
    #: path.
    rebalanced_us: float = 0.0

    # --- worker supervision (zero without a pool; INTERNALS §12) -------- #
    #: Worker-process failures the supervisor detected (all kinds).
    worker_crashes: int = 0
    #: The subset classified as hangs (barrier deadline, force-killed).
    worker_hangs: int = 0
    #: Replacement workers successfully respawned and rejoined.
    worker_respawns: int = 0
    #: Logical ticks re-executed by respawned workers catching up from the
    #: supervision epoch images (host-side work, simulation-invisible).
    worker_replayed_ticks: int = 0
    #: Ranks the parent absorbed into its own tick loop after the restart
    #: budget ran out (graceful degradation).
    degraded_ranks: int = 0
    #: Supervision cost priced through the machine model (restarts,
    #: image restores, replayed compute).  Deliberately *not* added to
    #: ``time_us``: the simulated cluster never failed, only the host
    #: processes did, so the simulated clock stays bit-identical to the
    #: unfailed run and this field carries the what-if price tag.
    supervision_us: float = 0.0

    # --- durable host-crash checkpoints (zero without --durable) -------- #
    #: Durable epochs committed to disk (tmp + fsync + rename).
    durable_checkpoints: int = 0
    #: Simulated checkpoint image bytes (the estimator the cost model
    #: charges, *not* host pickle sizes — those are ``durable_disk_bytes``).
    durable_bytes: int = 0
    #: Simulated time charged for durable checkpoint I/O through the
    #: machine model's ``checkpoint_byte_us`` rate.  Folded into the
    #: per-tick cost vector, so it *is* part of ``time_us`` and must stay
    #: bit-identical between an uninterrupted run and a resumed one.
    # repro-lint: disable=RPR008 -- rides time_us by design (charged to the simulated clock), so it must stay bit-identity-checked, i.e. OUT of the DURABILITY_STATS_FIELDS exclusion tuple
    durable_io_us: float = 0.0
    #: Host bytes actually written to the durable directory (pickle +
    #: manifest sizes; host-dependent, excluded from bit-identity).
    durable_disk_bytes: int = 0
    #: Epochs that failed write-time read-back verification (injected or
    #: real corruption detected while the run was still alive).
    durable_corrupt_epochs: int = 0
    #: Corrupt/incomplete epochs skipped while resuming (fallback ladder).
    durable_fallbacks: int = 0
    #: Times this stats object was restored from a durable epoch.
    durable_resumes: int = 0
    #: Tick of the most recent successful durable resume (-1 = never).
    durable_resume_tick: int = -1
    #: blake2b over the run's concatenated per-tick order digests (set at
    #: finalize when ``record_order_digests``; None otherwise).  One field
    #: that certifies the whole execution schedule — the crash-restart
    #: harness compares it across kill/resume boundaries.
    order_digest: str | None = None

    # ------------------------------------------------------------------ #
    def _sum(self, attr: str):
        return sum(getattr(r, attr) for r in self.ranks)

    @property
    def total_visits(self) -> int:
        return self._sum("visits")

    @property
    def total_previsits(self) -> int:
        return self._sum("previsits")

    @property
    def total_pushes(self) -> int:
        return self._sum("pushes")

    @property
    def total_ghost_filtered(self) -> int:
        return self._sum("ghost_filtered")

    @property
    def total_edges_scanned(self) -> int:
        return self._sum("edges_scanned")

    @property
    def total_visitors_sent(self) -> int:
        return self._sum("visitors_sent")

    @property
    def total_packets(self) -> int:
        return self._sum("packets_sent")

    @property
    def total_bytes(self) -> int:
        return self._sum("bytes_sent")

    @property
    def total_cache_hits(self) -> int:
        return self._sum("cache_hits")

    @property
    def total_cache_misses(self) -> int:
        return self._sum("cache_misses")

    @property
    def total_cache_evictions(self) -> int:
        return self._sum("cache_evictions")

    @property
    def total_bp_stalls(self) -> int:
        return self._sum("bp_stalls")

    @property
    def total_bp_spilled_bytes(self) -> int:
        return self._sum("bp_spilled_bytes")

    @property
    def total_queue_spilled(self) -> int:
        return self._sum("queue_spilled")

    @property
    def time_seconds(self) -> float:
        return self.time_us * 1e-6

    def cache_hit_rate(self) -> float:
        """Cumulative page-cache hit rate across ranks (1.0 for DRAM runs)."""
        total = self.total_cache_hits + self.total_cache_misses
        return self.total_cache_hits / total if total else 1.0

    def visit_imbalance(self) -> float:
        """Max/mean of per-rank visitor executions — the hotspot metric
        ghosts exist to reduce."""
        counts = np.array([r.visits for r in self.ranks], dtype=np.float64)
        mean = counts.mean() if counts.size else 0.0
        return float(counts.max() / mean) if mean > 0 else 1.0

    def summary(self) -> str:
        """Single-line human-readable digest (examples / harness output)."""
        line = (
            f"{self.algorithm} on {self.machine}/{self.topology} p={self.num_ranks}: "
            f"{self.time_us / 1e6:.4f}s sim, {self.ticks} ticks, "
            f"{self.total_visits} visits, {self.total_packets} packets, "
            f"hit-rate {self.cache_hit_rate():.3f}"
        )
        if self.fault_seed is not None:
            line += (
                f" | faults seed={self.fault_seed}: "
                f"{self.packets_dropped} dropped, "
                f"{self.retransmitted_packets} retransmits, "
                f"{self.recoveries} recoveries"
            )
        if self.total_bp_stalls or self.total_queue_spilled:
            line += (
                f" | pressure: {self.total_bp_stalls} bp-stalls, "
                f"{self.total_bp_spilled_bytes} bytes spilled, "
                f"{self.total_queue_spilled} visitors paged out"
            )
        if self.storage_fault_seed is not None:
            line += (
                f" | storage seed={self.storage_fault_seed}: "
                f"{self.storage_retries} retries, {self.torn_pages} torn, "
                f"{self.storage_errors} failures"
            )
        if self.max_slowdown > 1.0:
            line += (
                f" | stragglers x{self.max_slowdown:g}: "
                f"{self.straggler_stall_us / 1e6:.4f}s stalled"
            )
        if self.worker_crashes or self.degraded_ranks:
            line += (
                f" | supervision: {self.worker_crashes} worker failures "
                f"({self.worker_hangs} hung), {self.worker_respawns} respawns, "
                f"{self.worker_replayed_ticks} ticks replayed, "
                f"{self.degraded_ranks} ranks degraded"
            )
        if self.durable_checkpoints or self.durable_resumes:
            line += (
                f" | durable: {self.durable_checkpoints} epochs "
                f"({self.durable_bytes} bytes), "
                f"{self.durable_resumes} resumes, "
                f"{self.durable_fallbacks} fallbacks"
            )
        return line


#: ``TraversalStats`` fields describing the supervision layer's own
#: activity.  These are the *only* fields allowed to differ between a
#: worker-chaos run and its unfailed baseline — every other counter (and
#: the simulated clock) is covered by the bit-identity contract, so the
#: chaos suite compares full stats minus exactly this set.
SUPERVISION_STATS_FIELDS = (
    "worker_crashes",
    "worker_hangs",
    "worker_respawns",
    "worker_replayed_ticks",
    "degraded_ranks",
    "supervision_us",
)

#: ``TraversalStats`` fields describing the durability layer's own
#: activity.  A resumed run legitimately differs from an uninterrupted one
#: here (it restored at least once, may have skipped corrupt epochs, and
#: host pickle sizes are machine-dependent) — everything *outside* this
#: set, including ``durable_io_us`` inside ``time_us``, stays under the
#: bit-identity contract and the crash-restart gate compares it.
DURABILITY_STATS_FIELDS = (
    "durable_checkpoints",
    "durable_bytes",
    "durable_disk_bytes",
    "durable_corrupt_epochs",
    "durable_fallbacks",
    "durable_resumes",
    "durable_resume_tick",
)
