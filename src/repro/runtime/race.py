"""Tick-order race detector — is the algorithm schedule-invariant?

The engine's within-tick rank execution order is a *scheduling freedom*:
under the reliable transport, arrivals are released in canonical
``(src, seq)`` order regardless of how sends interleaved inside the
sending tick, so a correct asynchronous algorithm must produce the same
per-tick behaviour whichever order the simulated ranks take their turns.
Code that sneaks shared state across ranks (a Python-level global, a
mutated module attribute, an object aliased across partitions) breaks
that invariance — and such bugs are notoriously hard to localise because
end-state checks only say *something* differed.

:func:`detect_races` runs the traversal twice with
:attr:`~repro.runtime.costmodel.EngineConfig.record_order_digests` on —
once in natural rank order, once perturbed (reversed by default) — and
compares the per-tick order digests.  The first differing tick is where
the schedule first leaked into observable behaviour, and the per-rank
digests narrow it to the ranks involved.  A clean report is a strong
(though not exhaustive — one perturbation, not all ``p!``) determinism
check; a divergent one is a precise bug report.

The plain fabric preserves global send order, so perturbing rank order
there would change *delivery* order and flag perfectly correct code;
``detect_races`` therefore forces ``reliable=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.comm.routing import Topology
from repro.core.traversal import resolve_config
from repro.core.visitor import AsyncAlgorithm
from repro.graph.distributed import DistributedGraph
from repro.runtime.costmodel import EngineConfig, MachineModel, laptop
from repro.runtime.engine import SimulationEngine


@dataclass(frozen=True)
class RaceReport:
    """Outcome of one baseline-vs-perturbed race check."""

    #: True when every tick's digest matched (and tick counts agree).
    clean: bool
    #: 1-based tick of the first digest mismatch; None when clean.
    first_divergent_tick: int | None
    #: Ranks whose per-rank digests differ at the divergent tick (empty
    #: when clean, or when the runs diverged only in tick count).
    divergent_ranks: tuple[int, ...]
    #: Tick counts of the two runs.
    baseline_ticks: int
    perturbed_ticks: int
    #: The perturbed rank execution order that was compared against
    #: natural order.
    rank_order: tuple[int, ...]

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.clean:
            return (
                f"race check clean: {self.baseline_ticks} ticks "
                f"bit-identical under perturbed rank order "
                f"{list(self.rank_order)}"
            )
        where = (
            f"ranks {', '.join(map(str, self.divergent_ranks))}"
            if self.divergent_ranks
            else "tick-count mismatch"
        )
        return (
            f"RACE: first divergent tick {self.first_divergent_tick} "
            f"({where}); baseline ran {self.baseline_ticks} ticks, "
            f"perturbed {self.perturbed_ticks} — visitor application "
            f"depends on rank scheduling order"
        )


def detect_races(
    graph: DistributedGraph,
    algorithm,
    *,
    machine: MachineModel | None = None,
    topology: Topology | str = "direct",
    config: EngineConfig | None = None,
    rank_order: tuple[int, ...] | None = None,
    **overrides,
) -> RaceReport:
    """Run ``algorithm`` twice (natural vs perturbed rank order) and
    report the first tick where observable behaviour diverges.

    Parameters
    ----------
    graph, machine, topology, config:
        As :func:`~repro.core.traversal.run_traversal`.
    algorithm:
        An :class:`AsyncAlgorithm` instance, or a zero-argument factory
        returning one.  A factory is the safe choice when the algorithm
        object accumulates per-run state — each run gets a fresh one; a
        plain instance is rebound and reused for both runs.
    rank_order:
        The perturbed execution order to compare against natural order;
        defaults to reversed rank order.
    **overrides:
        The :func:`run_traversal` convenience overrides (``batch``,
        ``faults``, ``checkpoint_interval``, ...).  ``reliable`` is
        forced on — the canonical-release transport is what makes the
        perturbation a pure scheduling change.
    """
    base = resolve_config(config, **overrides)
    if not base.reliable_active:
        base = replace(base, reliable=True)
    p = graph.num_partitions
    order = (
        tuple(int(r) for r in rank_order)
        if rank_order is not None
        else tuple(reversed(range(p)))
    )

    def _run(cfg: EngineConfig) -> SimulationEngine:
        algo = (
            algorithm
            if isinstance(algorithm, AsyncAlgorithm)
            else algorithm()
        )
        engine = SimulationEngine(
            graph, algo, machine or laptop(), topology=topology, config=cfg
        )
        engine.run()
        return engine

    baseline = _run(replace(base, record_order_digests=True, rank_order=None))
    perturbed = _run(replace(base, record_order_digests=True, rank_order=order))

    b, q = baseline.tick_digests, perturbed.tick_digests
    first: int | None = None
    for i, (db, dq) in enumerate(zip(b, q, strict=False)):
        if db != dq:
            first = i + 1
            break
    if first is None and len(b) != len(q):
        # Identical prefix but one run kept going: divergence surfaces at
        # the first tick the shorter run never executed.
        first = min(len(b), len(q)) + 1
    divergent_ranks: tuple[int, ...] = ()
    if first is not None and first <= min(len(b), len(q)):
        rb = baseline.tick_rank_digests[first - 1]
        rq = perturbed.tick_rank_digests[first - 1]
        divergent_ranks = tuple(
            r for r, (x, y) in enumerate(zip(rb, rq, strict=False)) if x != y
        )
    return RaceReport(
        clean=first is None,
        first_divergent_tick=first,
        divergent_ranks=divergent_ranks,
        baseline_ticks=len(b),
        perturbed_ticks=len(q),
        rank_order=order,
    )
