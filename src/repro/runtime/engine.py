"""The discrete-event simulation engine.

Executes the *real* Algorithm-1 code (push / check_mailbox / local priority
queues / replica forwarding / counting quiescence detection) on ``p``
simulated ranks, advancing a simulated clock.

One **tick** is the engine's scheduling quantum: every rank drains its
arrived packets, executes up to ``visitor_budget`` visitors, and flushes
its aggregation buffers; packets flushed in tick ``t`` arrive at their next
hop in tick ``t + 1``.  Tick duration is::

    max( per-rank cost this tick ...,  min_tick,  hop latency if traffic )

i.e. the **critical path**: a rank hammered by a hub hotspot, or stalled on
page-cache misses, stretches the tick for everyone — which is precisely how
imbalance and hotspots cost wall-clock time on a real machine, and what
makes the paper's mitigations (edge list partitioning, ghosts, routing,
locality ordering) show up in simulated TEPS.
"""

from __future__ import annotations

import hashlib
import os
import signal
import struct

import numpy as np

from repro.comm.mailbox import Mailbox
from repro.comm.message import KIND_CONTROL, KIND_VISITOR
from repro.comm.network import Network
from repro.comm.reliable import ReliableTransport
from repro.comm.routing import Topology, make_topology
from repro.comm.termination import LocalSnapshot, QuiescenceDetector
from repro.core.batch import GhostArrayTable
from repro.core.batch_queue import BatchVisitorQueueRank
from repro.core.visitor import ROLE_GHOST, AsyncAlgorithm
from repro.core.visitor_queue import VisitorQueueRank
from repro.errors import (
    ConfigurationError,
    MemorySystemError,
    TerminationError,
    TraversalError,
)
from repro.graph.distributed import DistributedGraph
from repro.graph.ghosts import GhostTable
from repro.memory.backing import PagedCSR
from repro.memory.device import dram
from repro.memory.faults import StorageFaultInjector
from repro.memory.page_cache import PageCache
from repro.memory.spill import SpillPager
from repro.runtime.costmodel import STORAGE_NVRAM, EngineConfig, MachineModel
from repro.runtime.durability import DurabilityManager
from repro.runtime.parallel import (
    ParallelRecoveryManager,
    WorkerCrash,
    WorkerPool,
    WorkerSupervisor,
)
from repro.runtime.pressure import StragglerClock
from repro.runtime.recovery import RecoveryManager, estimate_checkpoint_bytes
from repro.runtime.trace import RankCounters, TickSample, TraversalStats


class SimulationEngine:
    """Run one asynchronous traversal on a simulated distributed machine."""

    def __init__(
        self,
        graph: DistributedGraph,
        algorithm: AsyncAlgorithm,
        machine: MachineModel,
        *,
        topology: Topology | str = "direct",
        config: EngineConfig | None = None,
        page_caches: list[PageCache] | None = None,
    ) -> None:
        self.graph = graph
        self.algorithm = algorithm
        self.machine = machine
        self.config = config or EngineConfig()
        p = graph.num_partitions
        self.topology = (
            topology if isinstance(topology, Topology) else make_topology(topology, p)
        )
        if self.topology.num_ranks != p:
            raise TraversalError(
                f"topology covers {self.topology.num_ranks} ranks, graph has {p}"
            )

        #: Effective worker-process count (capped at the rank count); > 1
        #: routes :meth:`run` through the process-parallel executor.
        self.workers = min(self.config.workers, p)
        #: Barrier IPC telemetry from the worker pool (frame / pickled-byte
        #: / barrier-wait counters); stays None at ``workers=1``.
        self.ipc_counters: dict | None = None
        if self.workers > 1 and page_caches is not None:
            raise ConfigurationError(
                "caller-provided page_caches cannot stay warm across worker "
                "processes; run warm-cache traversals with workers=1"
            )

        #: Plain lossless fabric, or the reliable transport when a fault
        #: plan or ``reliable=True`` is configured (same interface; the
        #: mailboxes cannot tell them apart).
        self.reliable_mode = self.config.reliable_active
        if self.reliable_mode:
            self.network: Network | ReliableTransport = ReliableTransport(
                p,
                self.config.faults,
                retransmit_timeout=self.config.retransmit_timeout,
                max_attempts=self.config.retransmit_max_attempts,
                max_rounds_per_tick=self.config.max_rounds_per_tick,
                channel_window=self.config.transport_window,
            )
        else:
            self.network = Network(p)

        #: Per-rank external-memory spill logs, present only under resource
        #: pressure (bounded mailboxes or a visitor-queue resident limit).
        #: Each pager owns its own small page cache so the CSR cache's
        #: hit/miss counters stay bit-identical to an unpressured run.
        self.spills: list[SpillPager | None] = [None] * p
        if self.config.spill_active:
            spill_device = machine.device if machine.device is not None else dram()
            self.spills = [
                SpillPager(
                    page_size=machine.page_size,
                    device=spill_device,
                    cache_pages=self.config.spill_cache_pages,
                )
                for _ in range(p)
            ]
        self.mailboxes = [
            Mailbox(
                r,
                self.topology,
                self.network,
                aggregation_size=self.config.aggregation_size,
                capacity_bytes=self.config.mailbox_cap_bytes,
                spill=self.spills[r],
            )
            for r in range(p)
        ]

        self.caches: list[PageCache | None] = [None] * p
        paged: list[PagedCSR | None] = [None] * p
        if machine.storage == STORAGE_NVRAM:
            if page_caches is not None and len(page_caches) != p:
                raise TraversalError(
                    f"page_caches must have one cache per rank ({p}), got {len(page_caches)}"
                )
            for r in range(p):
                # Caller-provided caches stay warm across traversals,
                # modelling Graph500's repeated BFS runs over a persistent
                # user-space page cache.
                cache = page_caches[r] if page_caches is not None else PageCache(
                    capacity_pages=machine.cache_pages_per_rank,
                    page_size=machine.page_size,
                    device=machine.device,
                )
                self.caches[r] = cache
                paged[r] = PagedCSR(graph.partitions[r].csr, cache)

        #: Storage fault injection: one deterministic per-rank stream shared
        #: by the rank's CSR cache and spill cache (drained CSR-first, so
        #: the uniform draws land identically run to run).
        self.storage_plan = self.config.storage_faults
        if self.storage_plan is not None and self.storage_plan.any_faults:
            has_target = any(c is not None for c in self.caches) or any(
                s is not None for s in self.spills
            )
            if not has_target:
                raise ConfigurationError(
                    "storage_faults configured but no component performs "
                    "device I/O (need an NVRAM machine or an active spill "
                    "pager via mailbox_cap_bytes/queue_spill)"
                )
            for r in range(p):
                injector = StorageFaultInjector(self.storage_plan, r, p)
                if self.caches[r] is not None:
                    self.caches[r].fault_injector = injector
                if self.spills[r] is not None:
                    self.spills[r].cache.fault_injector = injector

        #: Straggler simulation: seeded per-rank slowdowns applied to tick
        #: costs (simulated time only — the logical schedule is untouched).
        self.straggler: StragglerClock | None = None
        if self.config.stragglers is not None and self.config.stragglers.any_skew:
            self.straggler = StragglerClock(self.config.stragglers, p)

        algorithm.bind(graph)
        #: Whether the vectorized batch fast path is active this run.
        self.batch_mode = bool(self.config.batch)
        if self.batch_mode and not algorithm.supports_batch:
            raise TraversalError(
                f"algorithm {algorithm.name!r} does not implement the batch "
                f"fast path; run with batch=False (the default object path)"
            )
        rank_cls = BatchVisitorQueueRank if self.batch_mode else VisitorQueueRank
        self.ranks: list[VisitorQueueRank | BatchVisitorQueueRank] = []
        for r in range(p):
            ghost_table = None
            candidates = graph.partitions[r].ghost_candidates
            if algorithm.uses_ghosts and candidates.size:
                if self.batch_mode:
                    ghost_table = GhostArrayTable(
                        candidates,
                        algorithm.make_state_arrays(
                            candidates,
                            graph.global_out_degrees[candidates],
                            ROLE_GHOST,
                        ),
                    )
                else:
                    ghost_table = GhostTable(
                        candidates,
                        lambda v: algorithm.make_state(v, graph.degree(v), ROLE_GHOST),
                    )
            state_pager = None
            if self.config.page_vertex_state and self.caches[r] is not None:
                # fully-external mode: vertex state shares the rank's page
                # cache with the CSR (one DRAM budget), 16 bytes per state.
                state_pager = (self.caches[r], 16)
            self.ranks.append(
                rank_cls(
                    r,
                    graph,
                    algorithm,
                    self.mailboxes[r],
                    ghost_table=ghost_table,
                    paged_csr=paged[r],
                    locality_ordering=self.config.locality_ordering,
                    state_pager=state_pager,
                )
            )

        #: Within-tick rank execution order.  Natural by default; the race
        #: detector perturbs it — a scheduling freedom that correct code
        #: must be invariant to under the reliable transport's canonical
        #: ``(src, seq)`` release (plain fabric delivery order would shift
        #: with it, so EngineConfig rejects that combination).
        order = self.config.rank_order
        if order is not None and len(order) != p:
            raise ConfigurationError(
                f"rank_order has {len(order)} entries, graph has {p} ranks"
            )
        self._rank_order: list[int] = (
            list(range(p)) if order is None else [int(r) for r in order]
        )

        #: Per-tick order digests (race detection); empty unless
        #: ``record_order_digests`` is set.  ``tick_digests[t-1]`` folds the
        #: per-rank digests of tick ``t``; ``tick_rank_digests`` keeps them
        #: separate so a divergence can be localised to ranks.
        self.tick_digests: list[bytes] = []
        self.tick_rank_digests: list[tuple[bytes, ...]] = []
        self._record_digests = bool(self.config.record_order_digests)
        if self._record_digests:
            self._digest_prev = np.zeros((p, 5), dtype=np.int64)
            for rk in self.ranks:
                rk.order_probe = []

        self.detectors: list[QuiescenceDetector] | None = None
        if self.config.use_termination_detector:
            self.detectors = [
                QuiescenceDetector(r, p, self.mailboxes[r], self._make_snapshot_fn(r))
                for r in range(p)
            ]

        #: Checkpoint/restart coordinator (crash recovery); present only
        #: when the reliable transport is on and checkpointing is enabled.
        self.recovery: RecoveryManager | None = None
        self._checkpoint_every = self.config.checkpoint_every
        if self.reliable_mode and self._checkpoint_every:
            self.recovery = RecoveryManager(self)
            self.network.recovery = self.recovery

        #: Worker-local crash-recovery snapshots re-seeded into freshly
        #: forked workers after a durable resume (rank -> {"queue",
        #: "mailbox", "detector"} snap); empty otherwise — INTERNALS §13.
        self._resume_recovery_snaps: dict[int, dict] = {}
        #: Durable on-disk epoch writer/reader (host-crash recovery);
        #: present only when ``durable_dir`` is configured.
        self.durable: DurabilityManager | None = None
        if self.config.durable_dir is not None:
            if self.config.durable_resume and page_caches is not None:
                raise ConfigurationError(
                    "durable_resume cannot combine with caller-provided "
                    "page_caches: the epoch restore would overwrite the "
                    "warm cache state the caller is trying to preserve"
                )
            self.durable = DurabilityManager(self)

    # ------------------------------------------------------------------ #
    def _make_snapshot_fn(self, r: int):
        mailbox = self.mailboxes[r]
        rank = self.ranks[r]
        return lambda: LocalSnapshot(
            sent=mailbox.visitors_sent,
            received=mailbox.visitors_received,
            quiet=rank.locally_quiet(),
        )

    # ------------------------------------------------------------------ #
    def run(self) -> tuple[list[list], TraversalStats]:
        """Seed, traverse to global quiescence, return (states, stats)."""
        p = self.graph.num_partitions
        m = self.machine
        cfg = self.config
        stats = TraversalStats(
            algorithm=self.algorithm.name,
            machine=m.name,
            topology=self.topology.name,
            num_ranks=p,
            num_vertices=self.graph.num_vertices,
            num_edges=self.graph.num_edges,
            used_detector=self.detectors is not None,
        )

        # Warm (caller-provided) caches carry statistics from earlier
        # traversals; report per-run deltas.
        cache_base = [
            (c.hits, c.misses, c.evictions) if c is not None else (0, 0, 0)
            for c in self.caches
        ]
        for c in self.caches:
            if c is not None:
                c.drain_epoch_us()  # discard any epoch residue defensively
        if self.storage_plan is not None and self.storage_plan.any_faults:
            stats.storage_fault_seed = self.storage_plan.seed
        if self.straggler is not None:
            stats.max_slowdown = float(self.straggler.max_slowdown)

        # Durable resume: reinstall the newest valid on-disk epoch *before*
        # seeding (and, for workers > 1, before the pool forks, so workers
        # inherit the restored state copy-on-write).  The restored stats
        # object replaces the fresh one wholesale.
        resume = None
        if self.durable is not None and cfg.durable_resume:
            resume = self.durable.load_latest()
            if resume is not None:
                stats = resume.stats
                cache_base = [tuple(cb) for cb in resume.loop["cache_base"]]

        if self.workers > 1:
            return self._run_parallel(stats, resume)

        if resume is None:
            if self.batch_mode:
                for r in range(p):
                    seed = self.algorithm.initial_batch(self.graph, r)
                    if seed is not None:
                        self.ranks[r].push_batch(seed)
            else:
                for r in range(p):
                    for visitor in self.algorithm.initial_visitors(self.graph, r):
                        self.ranks[r].push(visitor)

        # Previous / current cumulative counter snapshots for the per-tick
        # cost deltas, columns: previsits, visits, edges, packets, bytes.
        prev = np.zeros((p, 5), dtype=np.int64)
        cur = np.empty((p, 5), dtype=np.int64)
        # Cumulative backpressure stalls already charged (the mailboxes keep
        # the ledger; the engine charges per-tick deltas into the clock).
        bp_prev = np.zeros(p, dtype=np.int64)
        last_cache_hits = 0
        last_cache_misses = 0
        last_bp_stalls = 0
        if cfg.trace_timeline:
            last_cache_hits = sum(c.hits for c in self.caches if c is not None)
            last_cache_misses = sum(c.misses for c in self.caches if c is not None)

        if self.recovery is not None:
            stats.fault_seed = cfg.faults.seed if cfg.faults is not None else None
            if resume is None:
                self.recovery.initial_checkpoint()
            else:
                self._apply_resume_recovery(resume)
        elif self.reliable_mode and cfg.faults is not None:
            stats.fault_seed = cfg.faults.seed

        ticks = 0
        time_us = 0.0
        last_total_visits = 0
        if resume is not None:
            loop = resume.loop
            ticks = loop["ticks"]
            time_us = loop["time_us"]
            prev[:] = loop["prev"]
            bp_prev[:] = loop["bp_prev"]
            last_total_visits = loop["last_total_visits"]
            last_cache_hits = loop["last_cache_hits"]
            last_cache_misses = loop["last_cache_misses"]
            last_bp_stalls = loop["last_bp_stalls"]
        while True:
            t = ticks + 1
            arrivals = self.network.advance()
            report = self.network.take_report() if self.reliable_mode else None
            had_traffic = any(arrivals)
            control_events = [0] * p
            for r in self._rank_order:
                if self.recovery is not None:
                    self.recovery.log_arrivals(t, r, arrivals[r])
                control_events[r] = self._rank_tick(r, arrivals[r])

            if self.detectors is not None and not self.detectors[0].terminated:
                self.detectors[0].maybe_start_wave()

            for r in self._rank_order:
                self.mailboxes[r].flush()

            if self._record_digests:
                self._record_order_digest(t)

            checkpoint_costs = None
            if (
                self.recovery is not None
                and t % self._checkpoint_every == 0
            ):
                checkpoint_costs = self.recovery.checkpoint(t)

            # ---- charge simulated time ---------------------------------
            # Vectorized counter-delta bookkeeping.  The expression below is
            # elementwise and left-associated exactly like a scalar per-rank
            # formula would be, so each rank's cost is the bit-identical
            # IEEE double a scalar loop would compute.
            for r in range(p):
                c = self.ranks[r].counters
                mb = self.mailboxes[r]
                cur[r, 0] = c.previsits
                cur[r, 1] = c.visits
                cur[r, 2] = c.edges_scanned
                cur[r, 3] = mb.packets_sent
                cur[r, 4] = mb.bytes_sent
            delta = cur - prev
            prev[:] = cur
            costs = (
                (delta[:, 0] + np.asarray(control_events)) * m.previsit_us
                + delta[:, 1] * m.visit_us
                + delta[:, 2] * m.edge_scan_us
                + delta[:, 3] * m.packet_overhead_us
                + delta[:, 4] * m.byte_us
            )
            for r in range(p):
                cache = self.caches[r]
                if cache is not None:
                    costs[r] += cache.drain_epoch_us(concurrency=cfg.io_concurrency)
                    self._charge_storage_faults(stats, costs, r, cache)
                spill = self.spills[r]
                if spill is not None:
                    if cfg.queue_spill is not None:
                        self.ranks[r].sync_spill(spill, cfg.queue_spill)
                    spill_us = spill.drain_epoch_us(concurrency=cfg.io_concurrency)
                    if spill_us:
                        costs[r] += spill_us
                        stats.spill_io_us += spill_us
                    self._charge_storage_faults(stats, costs, r, spill.cache)
                if cfg.mailbox_cap_bytes is not None:
                    stalls = self.mailboxes[r].bp_stalls
                    bp_delta = stalls - bp_prev[r]
                    bp_prev[r] = stalls
                    if bp_delta:
                        charge = bp_delta * m.credit_stall_us
                        costs[r] += charge
                        stats.backpressure_stall_us += charge
            if report is not None:
                # Reliability tax and recovery time, kept out of the logical
                # counters: retransmissions and standalone acks pay packet
                # overhead, all protocol bytes pay wire cost, restarted
                # ranks pay their restore + replay time.
                for r in range(p):
                    extra = (
                        (report.retrans_packets[r] + report.ack_packets[r])
                        * m.packet_overhead_us
                        + (report.retrans_bytes[r] + report.overhead_bytes[r])
                        * m.byte_us
                        + report.recovery_us[r]
                    )
                    if extra:
                        costs[r] += extra
                self._accumulate_report(stats, report)
            if checkpoint_costs is not None:
                costs += checkpoint_costs
            # Durable epoch cost, estimated *after* every rank's flush and
            # spill sync (the parallel workers read the same post-sync
            # queue lengths rank-locally, so workers=1 and workers=N charge
            # the bit-identical durable I/O into the simulated clock).
            durable_costs = None
            if self.durable is not None and self.durable.due(t):
                durable_costs = self.durable.epoch_costs(
                    [estimate_checkpoint_bytes(self, r) for r in range(p)]
                )
                costs += durable_costs
            if self.straggler is not None:
                tick_cost = self.straggler.tick_cost(costs)
                tick_floor = self.straggler.pacing_floor(m.min_tick_us)
            else:
                tick_cost = float(costs.max())
                tick_floor = m.min_tick_us
            tick_time = max(tick_cost, tick_floor)
            if had_traffic or not self.network.idle():
                hops = 1 if report is None else max(1, report.data_latency)
                tick_time = max(tick_time, m.hop_latency_us * hops)
            time_us += tick_time
            ticks += 1

            if cfg.trace_timeline:
                visits_now = sum(rk.counters.visits for rk in self.ranks)
                hits_now = sum(c.hits for c in self.caches if c is not None)
                misses_now = sum(c.misses for c in self.caches if c is not None)
                bp_now = sum(mb.bp_stalls for mb in self.mailboxes)
                stats.timeline.append(
                    TickSample(
                        tick=ticks,
                        time_us=time_us,
                        queued_visitors=sum(rk.queue_length() for rk in self.ranks),
                        packets_in_flight=self.network.packets_in_flight(),
                        visits_this_tick=visits_now - last_total_visits,
                        retransmits=(
                            sum(report.retrans_packets) if report is not None else 0
                        ),
                        faults=(
                            report.dropped + report.duplicated + report.delayed
                            if report is not None
                            else 0
                        ),
                        recoveries=(
                            len(report.recovered) if report is not None else 0
                        ),
                        cache_hits=hits_now - last_cache_hits,
                        cache_misses=misses_now - last_cache_misses,
                        bp_stalls=bp_now - last_bp_stalls,
                    )
                )
                last_total_visits = visits_now
                last_cache_hits = hits_now
                last_cache_misses = misses_now
                last_bp_stalls = bp_now

            if durable_costs is not None:
                self.durable.write_epoch(
                    ticks,
                    {
                        "ticks": ticks,
                        "time_us": time_us,
                        "prev": prev.copy(),
                        "bp_prev": bp_prev.copy(),
                        "last_total_visits": last_total_visits,
                        "last_cache_hits": last_cache_hits,
                        "last_cache_misses": last_cache_misses,
                        "last_bp_stalls": last_bp_stalls,
                        "cache_base": list(cache_base),
                    },
                    stats,
                )
            if cfg.kill_at_tick is not None and ticks == cfg.kill_at_tick:
                # Crash-restart harness hook: die hard *after* this tick's
                # epoch (if any) committed, like a host power loss.
                os.kill(os.getpid(), signal.SIGKILL)

            # ---- stop? -------------------------------------------------
            if self.detectors is not None:
                if all(d.terminated for d in self.detectors):
                    self._assert_truly_done()
                    break
            else:
                if self._oracle_done():
                    break
            if ticks >= cfg.max_ticks:
                # Attach the partial stats so a stalled run can be
                # post-mortemed (per-rank counters, tick count, timeline).
                self._finalize_stats(stats, ticks, time_us, cache_base)
                raise TraversalError(
                    f"traversal exceeded max_ticks={cfg.max_ticks} "
                    f"(queued visitors: {[rk.queue_length() for rk in self.ranks]})",
                    stats=stats,
                )

        self._finalize_stats(stats, ticks, time_us, cache_base)
        return [rank.states for rank in self.ranks], stats

    # ------------------------------------------------------------------ #
    def _run_parallel(
        self, stats: TraversalStats, resume=None
    ) -> tuple[list, TraversalStats]:
        """The tick loop with per-rank work fanned out to a forked worker
        pool (:mod:`repro.runtime.parallel`).

        Structured as the sequential loop with every rank-local step
        replaced by its barrier report: the parent replays worker packet
        buckets into the real network in the sequential global send order,
        folds counter deltas and spill/cache charges in ascending rank
        order with the same float-addition order, and keeps everything it
        owns sequentially (transport, cost model, straggler clock,
        recovery logs, digests, stats) — which is what makes ``workers=N``
        bit-identical to ``workers=1``.

        Every barrier goes through a :class:`WorkerSupervisor`: inactive
        (the default) it is a thin pass-through that fails fast on the
        first worker loss; active (``worker_restarts``/``worker_faults``)
        it respawns-and-replays failed workers and degrades gracefully to
        in-process execution when the budget runs out — see INTERNALS §12.
        """
        p = self.graph.num_partitions
        m = self.machine
        cfg = self.config
        reports: dict | None = None
        ticks = 0
        time_us = 0.0
        resume_tick = 0
        if resume is not None:
            resume_tick = resume.loop["ticks"]
            if resume.recovery is not None:
                # Worker-local crash-recovery snapshot halves, picked up by
                # each forked worker at startup (same-epoch invariant: they
                # match the transplanted parent-side recovery state).
                self._resume_recovery_snaps = {
                    r: snap
                    for r, snap in enumerate(resume.rank_recovery_snaps)
                    if snap is not None
                }
        with WorkerPool(self, seed_ranks=(resume is None)) as pool:
            supervisor = WorkerSupervisor(self, pool)
            # Seed-phase packets, replayed in natural rank order — exactly
            # where the sequential path's seeding eager-flushes land.  A
            # resumed pool sends bare readies (the restored network already
            # carries every in-flight packet).
            seed_packets = supervisor.start()
            for r in range(p):
                for pkt in seed_packets.get(r, ()):
                    self.network.send_packet(pkt)

            if self.recovery is not None:
                # Swap in the process-aware coordinator: snapshots and
                # replay execute in the owning worker, the parent keeps the
                # transport snapshots, logs and cost accounting.
                self.recovery = ParallelRecoveryManager(self, supervisor)
                self.network.recovery = self.recovery
                stats.fault_seed = cfg.faults.seed if cfg.faults is not None else None
                if resume is None:
                    self.recovery.initial_checkpoint()
                else:
                    self._apply_resume_recovery(resume)
            elif self.reliable_mode and cfg.faults is not None:
                stats.fault_seed = cfg.faults.seed
            if resume is None:
                # Tick-0 supervision images when no recovery manager drives
                # checkpoints (no-op if the initial checkpoint shipped them).
                supervisor.prime()
            else:
                supervisor.note_completed(resume_tick)
                if supervisor.active and self.recovery is None:
                    # Fresh supervision images at the resume tick (safe:
                    # there are no recorded simulated recoveries to align
                    # with).  With a transplanted recovery manager we must
                    # NOT re-image — images and worker recovery snaps have
                    # to come from the same epoch — so worker self-healing
                    # resumes at the next recovery checkpoint instead.
                    supervisor.checkpoint(resume_tick)

            prev = np.zeros((p, 5), dtype=np.int64)
            cur = np.empty((p, 5), dtype=np.int64)
            bp_prev = np.zeros(p, dtype=np.int64)
            last_total_visits = 0
            last_cache_hits = 0
            last_cache_misses = 0
            last_bp_stalls = 0
            if resume is not None:
                ticks = resume_tick
                time_us = resume.loop["time_us"]
                prev[:] = resume.loop["prev"]
                bp_prev[:] = resume.loop["bp_prev"]
                last_total_visits = resume.loop["last_total_visits"]
                last_cache_hits = resume.loop["last_cache_hits"]
                last_cache_misses = resume.loop["last_cache_misses"]
                last_bp_stalls = resume.loop["last_bp_stalls"]

            try:
                while True:
                    t = ticks + 1
                    arrivals = self.network.advance()
                    report = self.network.take_report() if self.reliable_mode else None
                    had_traffic = any(arrivals)
                    if self.recovery is not None:
                        for r in self._rank_order:
                            self.recovery.log_arrivals(t, r, arrivals[r])

                    reports, wave_packets = supervisor.tick(t, arrivals)
                    # Deterministic barrier merge: the sequential global
                    # send order is per-rank phase A, the rank-0 wave, then
                    # per-rank phase B, each in ``_rank_order``.
                    for r in self._rank_order:
                        for pkt in reports[r].packets_a:
                            self.network.send_packet(pkt)
                    for pkt in wave_packets:
                        self.network.send_packet(pkt)
                    for r in self._rank_order:
                        for pkt in reports[r].packets_b:
                            self.network.send_packet(pkt)

                    if self._record_digests:
                        self._fold_order_digest(
                            t,
                            [reports[r].counters[:5] for r in range(p)],
                            [reports[r].probe or () for r in range(p)],
                        )

                    # Tick t's barrier is complete: a worker failure from
                    # here on (including during the checkpoint below) must
                    # replay *through* t, not t-1.
                    supervisor.note_completed(t)

                    checkpoint_costs = None
                    if (
                        self.recovery is not None
                        and t % self._checkpoint_every == 0
                    ):
                        checkpoint_costs = self.recovery.checkpoint(t)
                    supervisor.maybe_checkpoint(t)

                    control_events = [reports[r].controls for r in range(p)]
                    for r in range(p):
                        cnt = reports[r].counters
                        cur[r, 0] = cnt[0]
                        cur[r, 1] = cnt[1]
                        cur[r, 2] = cnt[2]
                        cur[r, 3] = cnt[5]
                        cur[r, 4] = cnt[6]
                    delta = cur - prev
                    prev[:] = cur
                    costs = (
                        (delta[:, 0] + np.asarray(control_events)) * m.previsit_us
                        + delta[:, 1] * m.visit_us
                        + delta[:, 2] * m.edge_scan_us
                        + delta[:, 3] * m.packet_overhead_us
                        + delta[:, 4] * m.byte_us
                    )
                    for r in range(p):
                        rep = reports[r]
                        if self.caches[r] is not None:
                            costs[r] += rep.cache_us
                            self._charge_fault_record(stats, costs, r, rep.cache_faults)
                        if self.spills[r] is not None:
                            if rep.spill_us:
                                costs[r] += rep.spill_us
                                stats.spill_io_us += rep.spill_us
                            self._charge_fault_record(stats, costs, r, rep.spill_faults)
                        if cfg.mailbox_cap_bytes is not None:
                            bp_delta = rep.bp_stalls - bp_prev[r]
                            bp_prev[r] = rep.bp_stalls
                            if bp_delta:
                                charge = bp_delta * m.credit_stall_us
                                costs[r] += charge
                                stats.backpressure_stall_us += charge
                    if report is not None:
                        for r in range(p):
                            extra = (
                                (report.retrans_packets[r] + report.ack_packets[r])
                                * m.packet_overhead_us
                                + (report.retrans_bytes[r] + report.overhead_bytes[r])
                                * m.byte_us
                                + report.recovery_us[r]
                            )
                            if extra:
                                costs[r] += extra
                        self._accumulate_report(stats, report)
                    if checkpoint_costs is not None:
                        costs += checkpoint_costs
                    # Durable epoch cost from the workers' rank-local
                    # estimates (the parent's fork-time rank state is
                    # stale; see RankTickReport.ckpt_bytes).
                    durable_costs = None
                    if self.durable is not None and self.durable.due(t):
                        durable_costs = self.durable.epoch_costs(
                            [reports[r].ckpt_bytes for r in range(p)]
                        )
                        costs += durable_costs
                    if self.straggler is not None:
                        tick_cost = self.straggler.tick_cost(costs)
                        tick_floor = self.straggler.pacing_floor(m.min_tick_us)
                    else:
                        tick_cost = float(costs.max())
                        tick_floor = m.min_tick_us
                    tick_time = max(tick_cost, tick_floor)
                    if had_traffic or not self.network.idle():
                        hops = 1 if report is None else max(1, report.data_latency)
                        tick_time = max(tick_time, m.hop_latency_us * hops)
                    time_us += tick_time
                    ticks += 1

                    if cfg.trace_timeline:
                        visits_now = sum(reports[r].counters[1] for r in range(p))
                        hits_now = sum(reports[r].cache_hits for r in range(p))
                        misses_now = sum(reports[r].cache_misses for r in range(p))
                        bp_now = sum(reports[r].bp_stalls for r in range(p))
                        stats.timeline.append(
                            TickSample(
                                tick=ticks,
                                time_us=time_us,
                                queued_visitors=sum(
                                    reports[r].queue_len for r in range(p)
                                ),
                                packets_in_flight=self.network.packets_in_flight(),
                                visits_this_tick=visits_now - last_total_visits,
                                retransmits=(
                                    sum(report.retrans_packets)
                                    if report is not None
                                    else 0
                                ),
                                faults=(
                                    report.dropped + report.duplicated
                                    + report.delayed
                                    if report is not None
                                    else 0
                                ),
                                recoveries=(
                                    len(report.recovered) if report is not None else 0
                                ),
                                cache_hits=hits_now - last_cache_hits,
                                cache_misses=misses_now - last_cache_misses,
                                bp_stalls=bp_now - last_bp_stalls,
                            )
                        )
                        last_total_visits = visits_now
                        last_cache_hits = hits_now
                        last_cache_misses = misses_now
                        last_bp_stalls = bp_now

                    if durable_costs is not None:
                        # Captured after note_completed / this tick's
                        # checkpoints, so the shipped recovery snaps are
                        # current.  Workers collect their own ranks'
                        # sections; parallel runs never carry a warm cache
                        # base (caller caches are rejected with workers>1).
                        self.durable.write_epoch(
                            ticks,
                            {
                                "ticks": ticks,
                                "time_us": time_us,
                                "prev": prev.copy(),
                                "bp_prev": bp_prev.copy(),
                                "last_total_visits": last_total_visits,
                                "last_cache_hits": last_cache_hits,
                                "last_cache_misses": last_cache_misses,
                                "last_bp_stalls": last_bp_stalls,
                                "cache_base": [(0, 0, 0)] * p,
                            },
                            stats,
                            rank_sections=supervisor.durable_capture(),
                        )
                    if cfg.kill_at_tick is not None and ticks == cfg.kill_at_tick:
                        os.kill(os.getpid(), signal.SIGKILL)

                    # ---- stop? ---------------------------------------- #
                    if self.detectors is not None:
                        if all(reports[r].terminated for r in range(p)):
                            self._assert_truly_done_parallel(reports)
                            break
                    else:
                        if (
                            self.network.idle()
                            and all(reports[r].quiet for r in range(p))
                            and not any(reports[r].buffered for r in range(p))
                        ):
                            break
                    if ticks >= cfg.max_ticks:
                        self._finalize_stats_parallel(stats, ticks, time_us, supervisor)
                        raise TraversalError(
                            f"traversal exceeded max_ticks={cfg.max_ticks} "
                            f"(queued visitors: "
                            f"{[reports[r].queue_len for r in range(p)]})",
                            stats=stats,
                        )
            except WorkerCrash as crash:
                # First-class worker failure the supervisor could not (or
                # was not allowed to) heal: partial stats from the last
                # barrier, wrapped exactly like the max_ticks post-mortem.
                self._attach_partial_stats(stats, ticks, time_us, reports)
                self._fold_supervision_stats(stats, supervisor)
                raise TraversalError(
                    f"parallel worker failed after {ticks} ticks: {crash}",
                    stats=stats,
                ) from crash

            states = self._finalize_stats_parallel(stats, ticks, time_us, supervisor)
            self.ipc_counters = pool.ipc_counters()
            return states, stats

    def _finalize_stats_parallel(
        self,
        stats: TraversalStats,
        ticks: int,
        time_us: float,
        supervisor: WorkerSupervisor,
    ) -> list:
        """Parallel twin of :meth:`_finalize_stats`: counters come from the
        workers' finalize barrier; batch states are read zero-copy from the
        shared arenas, object states are pickled back once."""
        counters, states_by_rank, waves = supervisor.finalize()
        p = self.graph.num_partitions
        for r in range(p):
            stats.ranks.append(counters[r])
        stats.ticks = ticks
        stats.time_us = time_us
        if self.detectors is not None and waves is not None:
            stats.termination_waves = waves
        if self.recovery is not None:
            stats.checkpoints_taken = self.recovery.checkpoints_taken
            stats.checkpoint_bytes = self.recovery.checkpoint_bytes
        if self.straggler is not None:
            stats.straggler_stall_us = self.straggler.stall_us
            stats.rebalanced_us = self.straggler.rebalanced_us
            stats.max_slowdown = float(self.straggler.max_slowdown)
        self._fold_supervision_stats(stats, supervisor)
        stats.order_digest = self._order_digest_hex()
        if self.batch_mode:
            return [rank.states for rank in self.ranks]
        return [states_by_rank[r] for r in range(p)]

    def _apply_resume_recovery(self, resume) -> None:
        """Transplant a durable epoch's in-memory recovery state.

        Transplanted, never realigned: re-checkpointing at the resume tick
        would shorten a later simulated crash's replay window and change
        its ``recovery_us`` — breaking bit-identity with the uninterrupted
        run.  Sequentially, each rank's full snapshot half rides
        ``resume.rank_recovery_snaps``; under ``workers > 1`` those halves
        are re-seeded worker-side via ``_resume_recovery_snaps`` and the
        parent keeps only the transport snapshots, mirroring
        :class:`~repro.runtime.parallel.ParallelRecoveryManager`.
        """
        rec = self.recovery
        sec = resume.recovery
        if rec is None or sec is None:
            return
        p = self.graph.num_partitions
        rec.epoch_tick = sec["epoch_tick"]
        rec._state_bytes = list(sec["state_bytes"])
        rec._log = [dict(sec["log"][r]) for r in range(p)]
        rec.checkpoints_taken = sec["checkpoints_taken"]
        rec.checkpoint_bytes = sec["checkpoint_bytes"]
        rec.recoveries = sec["recoveries"]
        parallel = self.workers > 1
        for r in range(p):
            snap = {} if parallel else dict(resume.rank_recovery_snaps[r] or {})
            snap["transport"] = sec["transport"][r]
            rec._snaps[r] = snap

    def _order_digest_hex(self) -> str | None:
        """Whole-run schedule certificate: blake2b over the concatenated
        per-tick order digests (None unless digests are recorded)."""
        if not self._record_digests:
            return None
        h = hashlib.blake2b(digest_size=16)
        for d in self.tick_digests:
            h.update(d)
        return h.hexdigest()

    @staticmethod
    def _fold_supervision_stats(
        stats: TraversalStats, supervisor: WorkerSupervisor
    ) -> None:
        """Surface the supervisor's own activity (excluded from the chaos
        bit-identity contract via ``SUPERVISION_STATS_FIELDS``)."""
        stats.worker_crashes = supervisor.worker_crashes
        stats.worker_hangs = supervisor.worker_hangs
        stats.worker_respawns = supervisor.worker_respawns
        stats.worker_replayed_ticks = supervisor.worker_replayed_ticks
        stats.degraded_ranks = supervisor.degraded_ranks
        stats.supervision_us = supervisor.supervision_us

    def _attach_partial_stats(
        self, stats: TraversalStats, ticks: int, time_us: float, reports: dict | None
    ) -> None:
        """Post-mortem counters for a run killed by a worker failure,
        reconstructed from the last completed barrier."""
        if reports is not None and not stats.ranks:
            for r in range(self.graph.num_partitions):
                cnt = reports[r].counters
                stats.ranks.append(
                    RankCounters(
                        visits=cnt[1],
                        previsits=cnt[0],
                        pushes=cnt[3],
                        ghost_filtered=cnt[4],
                        edges_scanned=cnt[2],
                        visitors_sent=cnt[7],
                        visitors_received=cnt[8],
                        packets_sent=cnt[5],
                        bytes_sent=cnt[6],
                        bp_stalls=reports[r].bp_stalls,
                    )
                )
        stats.ticks = ticks
        stats.time_us = time_us

    def _assert_truly_done_parallel(self, reports: dict) -> None:
        """:meth:`_assert_truly_done` over the barrier reports."""
        p = self.graph.num_partitions
        if not all(reports[r].quiet for r in range(p)):
            raise TerminationError("detector fired with visitors still queued")
        if any(reports[r].buffered_visitors for r in range(p)):
            raise TerminationError("detector fired with visitors buffered")
        if self.network.visitor_envelopes_in_flight():
            raise TerminationError("detector fired with visitors in flight")

    # ------------------------------------------------------------------ #
    def _rank_tick(self, r: int, packets: list) -> int:
        """One rank's slice of a tick: drain arrivals, run visitors.

        Shared by the main loop and crash-recovery replay (the recovery
        manager re-executes logged ticks through this exact code path so
        replays are behaviour-identical).  Returns the number of control
        messages handled (charged like pre-visits).
        """
        controls = 0
        envelopes = self.mailboxes[r].receive(packets)
        if envelopes:
            visitors = [e.payload for e in envelopes if e.kind == KIND_VISITOR]
            if visitors:
                self.ranks[r].check_mailbox(visitors)
            if self.detectors is not None:
                for e in envelopes:
                    if e.kind == KIND_CONTROL:
                        controls += 1
                        self.detectors[r].handle(e.payload)
        self.ranks[r].process(self.config.visitor_budget)
        return controls

    def _record_order_digest(self, tick: int) -> None:
        """Fold one tick's observable visitor-application order into digests.

        Each rank's digest covers (tick, rank, counter deltas, the sequence
        of vertices whose visitors ran this tick); the tick digest folds the
        per-rank digests in rank-id order, so it is identical for any two
        schedules that produce the same per-rank behaviour — exactly the
        invariant the race detector checks.
        """
        rows: list[tuple[int, int, int, int, int]] = []
        probes: list[tuple[int, ...]] = []
        for r in range(self.graph.num_partitions):
            c = self.ranks[r].counters
            rows.append((c.previsits, c.visits, c.edges_scanned, c.pushes,
                         c.ghost_filtered))
            probe = self.ranks[r].order_probe
            probes.append(tuple(probe))
            if probe:
                probe.clear()
        self._fold_order_digest(tick, rows, probes)

    def _fold_order_digest(self, tick, rows, probes) -> None:
        """Digest fold shared by the sequential and parallel paths: the
        parallel barrier feeds it the worker-reported counter rows and
        drained probe sequences, producing bit-identical digests."""
        rank_digests: list[bytes] = []
        for r in range(self.graph.num_partitions):
            cur = rows[r]
            prev = self._digest_prev[r]
            h = hashlib.blake2b(digest_size=16)
            h.update(struct.pack(
                "<7q", tick, r, *(int(a) - int(b) for a, b in zip(cur, prev, strict=False))
            ))
            probe = probes[r]
            if probe:
                h.update(np.asarray(probe, dtype=np.int64).tobytes())
            self._digest_prev[r] = cur
            rank_digests.append(h.digest())
        tick_h = hashlib.blake2b(digest_size=16)
        for d in rank_digests:
            tick_h.update(d)
        self.tick_digests.append(tick_h.digest())
        self.tick_rank_digests.append(tuple(rank_digests))

    def _charge_storage_faults(self, stats, costs, r: int, cache) -> None:
        """Fold one cache's epoch fault record into the run stats; escalate
        permanent read failures to the recovery manager (or fail the run).

        The retry/backoff/degradation time itself is already inside the
        drain cost; this accumulates the observability counters and charges
        the replicated-store re-fetch for pages the device gave up on.
        """
        self._charge_fault_record(stats, costs, r, cache.last_epoch_faults)

    def _charge_fault_record(self, stats, costs, r: int, faults) -> None:
        """:meth:`_charge_storage_faults` body over an explicit epoch fault
        record (the parallel barrier ships records, not caches)."""
        if faults is None:
            return
        stats.storage_retries += faults.retries
        stats.storage_spikes += faults.spikes
        stats.torn_pages += faults.torn_pages
        stats.storage_fault_us += faults.extra_us
        if faults.permanent_failures:
            stats.storage_errors += faults.permanent_failures
            if self.recovery is None:
                raise MemorySystemError(
                    f"rank {r}: {faults.permanent_failures} page read(s) "
                    f"still failing after "
                    f"{self.storage_plan.max_retries} retries with no "
                    f"recovery manager to re-fetch them (enable the "
                    f"reliable transport with checkpointing, or lower "
                    f"read_error_rate)"
                )
            costs[r] += self.recovery.storage_recover(r, faults.permanent_failures)
            stats.storage_recoveries += faults.permanent_failures

    def _finalize_stats(
        self,
        stats: TraversalStats,
        ticks: int,
        time_us: float,
        cache_base: list[tuple[int, int, int]],
    ) -> None:
        """Fold per-rank counters (and recovery totals) into ``stats``."""
        for r in range(self.graph.num_partitions):
            rank = self.ranks[r]
            rank.sync_mailbox_counters()
            cache = self.caches[r]
            if cache is not None:
                rank.counters.cache_hits = cache.hits - cache_base[r][0]
                rank.counters.cache_misses = cache.misses - cache_base[r][1]
                rank.counters.cache_evictions = cache.evictions - cache_base[r][2]
            stats.ranks.append(rank.counters)
        stats.ticks = ticks
        stats.time_us = time_us
        if self.detectors is not None:
            stats.termination_waves = self.detectors[0].waves_participated
        if self.recovery is not None:
            stats.checkpoints_taken = self.recovery.checkpoints_taken
            stats.checkpoint_bytes = self.recovery.checkpoint_bytes
        if self.straggler is not None:
            stats.straggler_stall_us = self.straggler.stall_us
            stats.rebalanced_us = self.straggler.rebalanced_us
            stats.max_slowdown = float(self.straggler.max_slowdown)
        stats.order_digest = self._order_digest_hex()

    @staticmethod
    def _accumulate_report(stats: TraversalStats, report) -> None:
        """Add one tick's transport report to the run totals."""
        stats.packets_dropped += report.dropped
        stats.packets_duplicated += report.duplicated
        stats.packets_delayed += report.delayed
        stats.duplicates_discarded += report.duplicates_discarded
        stats.retransmitted_packets += sum(report.retrans_packets)
        stats.retransmitted_bytes += sum(report.retrans_bytes)
        stats.ack_packets += sum(report.ack_packets)
        stats.reliable_overhead_bytes += sum(report.overhead_bytes)
        stats.transport_rounds += report.rounds
        stats.transport_window_stalls += report.window_stalls
        stats.crashes += len(report.crashed)
        stats.recoveries += len(report.recovered)
        stats.replayed_ticks += report.replayed_ticks
        stats.recovery_us += sum(report.recovery_us)

    # ------------------------------------------------------------------ #
    def _oracle_done(self) -> bool:
        """Omniscient global-emptiness check (engine-internal)."""
        return (
            self.network.idle()
            and all(rk.locally_quiet() for rk in self.ranks)
            and not any(mb.has_buffered() for mb in self.mailboxes)
        )

    def _assert_truly_done(self) -> None:
        """Cross-check the detector against global truth.

        The counting quiescence protocol must never announce termination
        while visitor work remains; this is the safety invariant the tests
        lean on.  Control traffic may still be in flight (the termination
        broadcast itself), so only visitor work is checked.
        """
        if not all(rk.locally_quiet() for rk in self.ranks):
            raise TerminationError("detector fired with visitors still queued")
        if any(mb.buffered_visitor_count() for mb in self.mailboxes):
            raise TerminationError("detector fired with visitors buffered")
        if self.network.visitor_envelopes_in_flight():
            raise TerminationError("detector fired with visitors in flight")
