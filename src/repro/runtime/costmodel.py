"""Machine cost models and engine configuration.

A :class:`MachineModel` maps the engine's measured events (visitor
executions, pre-visits, edge scans, packets, bytes, page-cache activity) to
simulated microseconds.  The presets are *profiles* of the machines in the
paper's evaluation — relative magnitudes chosen to reflect each system's
character (BG/P: slow cores, fast balanced torus; Hyperion: fast x86 cores,
commodity fabric, NAND Flash under the graph) — not measurements.  All
paper-vs-measured comparisons in EXPERIMENTS.md are therefore about curve
*shapes* and ratios, never absolute TEPS.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.memory.device import MemoryDevice, dram, fusion_io, sata_ssd

#: Storage placement of the graph's CSR image.
STORAGE_DRAM = "dram"
STORAGE_NVRAM = "nvram"


@dataclass(frozen=True)
class MachineModel:
    """Cost parameters of one simulated cluster (all times in microseconds)."""

    name: str
    #: Fixed CPU cost of executing one visitor's ``visit``.
    visit_us: float
    #: CPU cost of one ``pre_visit`` evaluation (ghost, master or replica).
    previsit_us: float
    #: CPU + DRAM cost per adjacency entry scanned.
    edge_scan_us: float
    #: Software overhead per aggregated packet injected into the network.
    packet_overhead_us: float
    #: Wire cost per payload byte.
    byte_us: float
    #: Latency of one network hop (a tick with traffic lasts at least this).
    hop_latency_us: float
    #: Floor on tick duration (scheduler / polling quantum).
    min_tick_us: float
    #: Stall charged per logical message that hits mailbox backpressure
    #: (one credit round-trip's amortised share; bounded-mailbox runs only).
    credit_stall_us: float = 1.0
    #: Where the CSR lives: :data:`STORAGE_DRAM` or :data:`STORAGE_NVRAM`.
    storage: str = STORAGE_DRAM
    #: Backing device when ``storage == "nvram"``.
    device: MemoryDevice | None = None
    #: Page size of the user-space page cache.
    page_size: int = 4096
    #: Page-cache capacity per rank, bytes (NVRAM mode only).
    cache_bytes_per_rank: int = 64 * 1024
    #: Cost per byte of writing an epoch checkpoint (crash recovery).
    checkpoint_byte_us: float = 0.0002
    #: Cost per byte of restoring a checkpoint on a restarted rank.
    restore_byte_us: float = 0.0002
    #: Fixed cost of one rank restart (process relaunch + rejoin).
    restart_us: float = 100.0

    def __post_init__(self) -> None:
        if self.storage not in (STORAGE_DRAM, STORAGE_NVRAM):
            raise ConfigurationError(f"unknown storage {self.storage!r}")
        if self.storage == STORAGE_NVRAM and self.device is None:
            raise ConfigurationError("NVRAM storage requires a device model")
        for field_name in ("visit_us", "previsit_us", "edge_scan_us", "packet_overhead_us",
                           "byte_us", "hop_latency_us", "min_tick_us", "credit_stall_us",
                           "checkpoint_byte_us", "restore_byte_us", "restart_us"):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{field_name} must be >= 0")

    @property
    def cache_pages_per_rank(self) -> int:
        """Page-cache capacity in pages."""
        return max(1, self.cache_bytes_per_rank // self.page_size)

    def with_storage(self, storage: str, *, device: MemoryDevice | None = None,
                     cache_bytes_per_rank: int | None = None) -> MachineModel:
        """A copy of this model with different graph-data placement."""
        kwargs = {"storage": storage}
        if device is not None:
            kwargs["device"] = device
        if cache_bytes_per_rank is not None:
            kwargs["cache_bytes_per_rank"] = cache_bytes_per_rank
        return replace(self, **kwargs)


@dataclass(frozen=True)
class EngineConfig:
    """Execution knobs of the simulation engine."""

    #: Max visitors a rank executes per tick (batching quantum).  Larger
    #: budgets batch more I/O and amortise per-tick latency, at the cost of
    #: coarser asynchrony.
    visitor_budget: int = 64
    #: Envelopes per aggregation buffer before an eager flush.
    aggregation_size: int = 16
    #: Run the counting quiescence detector (Algorithm 1's global_empty);
    #: when False the engine uses its omniscient oracle instead.
    use_termination_detector: bool = True
    #: Tie-break equal-priority visitors by vertex id (the Section V-A
    #: external-memory locality optimisation); False tie-breaks by arrival.
    locality_ordering: bool = True
    #: Abort the traversal after this many ticks (safety net).
    max_ticks: int = 5_000_000
    #: Cap on concurrent page-cache misses per tick (None = device limit).
    io_concurrency: int | None = None
    #: Record a per-tick timeline (queue depths, in-flight packets, work)
    #: into the traversal stats — for debugging and the timeline example.
    trace_timeline: bool = False
    #: NVRAM machines only: page *vertex state* through the cache as well
    #: (fully-external memory).  The default False is the paper's
    #: *semi-external* design — vertex state in DRAM, edges on flash —
    #: whose superiority §VIII-A argues and the ablation measures.
    page_vertex_state: bool = False
    #: Run the vectorized batch fast path (SoA visitor batches, array
    #: pre-visit, batched page metering).  Requires
    #: ``algorithm.supports_batch``; produces bit-identical states and
    #: traversal stats to the object path, just faster wall-clock.
    batch: bool = False
    #: Worker processes executing the per-rank tick work.  1 (default) is
    #: the sequential in-process path; N > 1 fans ``_rank_tick`` out to a
    #: persistent pool of N forked workers (capped at the rank count) and
    #: merges packets, counters and spill/cache charges at a deterministic
    #: per-tick barrier in canonical rank order, so stats, result arrays,
    #: wire-level transport counters and order digests stay bit-identical
    #: to the sequential schedule.  Wall-clock only; requires a platform
    #: with the ``fork`` start method (Linux).
    workers: int = 1
    #: Barrier IPC transport of the parallel executor (INTERNALS §14).
    #: ``"ring"`` (default) ships a steady-state batch tick's packets and
    #: report scalars through per-worker shared-memory SPSC rings as SoA
    #: frames — zero pickled bytes on the barrier fast path — keeping the
    #: pipe as the control plane and as the correctness fallback
    #: (object-path payloads, ring overflow).  ``"pipe"`` keeps every
    #: barrier reply on the pickled multiprocessing pipe (the PR 6
    #: transport).  Wall-clock only: results, stats and order digests are
    #: bit-identical either way; ignored at ``workers=1``.
    ipc_transport: str = "ring"
    #: Fault plan for the simulated fabric (``repro.comm.faults.FaultPlan``;
    #: None = lossless fabric).  Setting a plan implies reliable delivery.
    faults: object | None = None
    #: Run the reliable-delivery transport (seq/ack/retransmit/dedup) even
    #: without faults — used to measure the protocol's no-fault tax.
    reliable: bool = False
    #: Ticks between epoch checkpoints for crash recovery.  0 = automatic:
    #: 16 when the fault plan contains rank crashes, otherwise off.
    checkpoint_interval: int = 0
    #: Fabric rounds before an unacked packet is retransmitted (doubles per
    #: attempt, capped at 64 rounds).
    retransmit_timeout: int = 4
    #: Retransmission attempts before the transport declares the fabric
    #: unrecoverable.
    retransmit_max_attempts: int = 16
    #: Safety valve: abort if one tick's delivery cannot complete within
    #: this many fabric rounds.
    max_rounds_per_tick: int = 100_000
    # --- resource-pressure knobs (INTERNALS §9) ------------------------ #
    #: Per-destination (per next hop) DRAM cap on mailbox aggregation
    #: buffers, bytes.  Overflow backpressures the producer (a credit
    #: stall per message) and spills to external memory; None = unbounded.
    mailbox_cap_bytes: int | None = None
    #: Resident pending-visitor limit per rank; overflow pages through the
    #: external-memory spill log (the paper's §V-A external queue).
    #: None = fully DRAM-resident.
    queue_spill: int | None = None
    #: Storage fault plan (``repro.memory.faults.StorageFaultPlan``;
    #: None = healthy devices).
    storage_faults: object | None = None
    #: Straggler plan (``repro.runtime.pressure.StragglerPlan``;
    #: None = uniform rank speeds).
    stragglers: object | None = None
    #: Per-channel in-flight window of the reliable transport (max unacked
    #: packets per (src, dst) pair; None = unbounded).  Requires the
    #: reliable transport.
    transport_window: int | None = None
    #: Dedicated spill-pager cache capacity, pages (per rank).
    spill_cache_pages: int = 16
    # --- worker-supervision knobs (INTERNALS §12) ---------------------- #
    #: Respawn budget of the parallel executor's supervision layer: total
    #: worker-restart attempts allowed per run.  0 (default) keeps PR 6's
    #: fail-fast behaviour — any worker failure aborts the run with a
    #: ``TraversalError`` — unless a ``worker_faults`` plan is set, in
    #: which case failures degrade immediately to parent-side execution.
    #: N > 0 turns supervision on: failed workers are respawned, restored
    #: from the latest supervision epoch images and replayed back to the
    #: barrier; when the budget runs out the parent absorbs the orphaned
    #: ranks and the run completes at reduced parallelism.
    worker_restarts: int = 0
    #: Barrier deadline in host seconds: a worker that stays silent past
    #: this (scaled by the tick's arrival volume) is classified as hung
    #: and force-killed.  None = a default deadline when supervision is
    #: active, no deadline otherwise (PR 6 behaviour).
    worker_barrier_timeout: float | None = None
    #: Worker-process fault plan
    #: (``repro.comm.faults.WorkerFaultPlan``; None = healthy workers).
    #: Requires ``workers > 1``; injects real process failures (SIGKILL,
    #: hangs, mid-phase exits, fork failures) for the chaos suite.
    worker_faults: object | None = None
    # --- race-detection knobs (INTERNALS §10) -------------------------- #
    #: Record per-tick order digests (rank-by-rank counter deltas plus the
    #: visitor-application sequence) into ``SimulationEngine.tick_digests``.
    #: Pure observability: costs, states and stats are untouched.
    record_order_digests: bool = False
    #: Rank execution order within a tick — a permutation of
    #: ``range(num_ranks)``; ``None`` means natural order.  A non-natural
    #: order requires the reliable transport, whose canonical ``(src, seq)``
    #: release makes arrival order independent of send interleaving; on the
    #: plain fabric the perturbation would change delivery order and flag
    #: perfectly correct algorithms.  Used by ``repro.runtime.race``.
    rank_order: tuple[int, ...] | None = None
    # --- durable host-crash checkpoints (INTERNALS §13) ---------------- #
    #: Directory for durable on-disk epoch checkpoints (None = off).  One
    #: live run per directory; epochs are written atomically every
    #: ``durable_interval`` ticks and a killed run restarts from the
    #: newest valid epoch with ``durable_resume``.
    durable_dir: str | None = None
    #: Logical ticks between durable epochs.
    durable_interval: int = 16
    #: Committed epochs retained on disk (older ones are pruned; the
    #: newest write-verified epoch is always kept as a fallback rung).
    durable_keep: int = 2
    #: Resume from the newest valid epoch in ``durable_dir`` instead of
    #: starting fresh (an empty directory still starts fresh).
    durable_resume: bool = False
    #: Durable-storage fault plan
    #: (``repro.runtime.durability.DurableFaultPlan``; None = healthy
    #: disk).  Corrupts committed epochs post-write for the fallback
    #: ladder tests.
    durable_faults: object | None = None
    #: SIGKILL this process after the durable epoch at this tick commits
    #: (crash-restart harness hook; requires ``durable_dir``).
    kill_at_tick: int | None = None

    def __post_init__(self) -> None:
        if self.visitor_budget < 1:
            raise ConfigurationError("visitor_budget must be >= 1")
        if self.aggregation_size < 1:
            raise ConfigurationError("aggregation_size must be >= 1")
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.ipc_transport not in ("ring", "pipe"):
            raise ConfigurationError(
                f"ipc_transport must be 'ring' or 'pipe', "
                f"got {self.ipc_transport!r}"
            )
        if self.max_ticks < 1:
            raise ConfigurationError("max_ticks must be >= 1")
        if self.checkpoint_interval < 0:
            raise ConfigurationError("checkpoint_interval must be >= 0")
        if self.checkpoint_interval > 0 and not self.reliable_active:
            raise ConfigurationError(
                "checkpoint_interval requires the reliable transport "
                "(set reliable=True or provide a fault plan)"
            )
        if self.retransmit_max_attempts < 1:
            raise ConfigurationError("retransmit_max_attempts must be >= 1")
        if self.max_rounds_per_tick < 1:
            raise ConfigurationError("max_rounds_per_tick must be >= 1")
        if self.mailbox_cap_bytes is not None and self.mailbox_cap_bytes < 1:
            raise ConfigurationError("mailbox_cap_bytes must be >= 1")
        if self.queue_spill is not None and self.queue_spill < 0:
            raise ConfigurationError("queue_spill must be >= 0")
        if self.transport_window is not None:
            if self.transport_window < 1:
                raise ConfigurationError("transport_window must be >= 1")
            if not self.reliable_active:
                raise ConfigurationError(
                    "transport_window requires the reliable transport "
                    "(set reliable=True or provide a fault plan)"
                )
        if self.spill_cache_pages < 1:
            raise ConfigurationError("spill_cache_pages must be >= 1")
        if self.worker_restarts < 0:
            raise ConfigurationError("worker_restarts must be >= 0")
        if self.worker_barrier_timeout is not None and self.worker_barrier_timeout <= 0:
            raise ConfigurationError("worker_barrier_timeout must be > 0")
        if self.worker_faults is not None:
            if self.workers <= 1:
                raise ConfigurationError(
                    "worker_faults requires workers > 1 (there is no worker "
                    "pool to fail at workers=1)"
                )
            if self.storage_faults is not None:
                raise ConfigurationError(
                    "worker_faults cannot combine with storage_faults: the "
                    "storage fault injector's RNG stream position cannot be "
                    "restored across a worker respawn"
                )
        if self.durable_interval < 1:
            raise ConfigurationError("durable_interval must be >= 1")
        if self.durable_keep < 1:
            raise ConfigurationError("durable_keep must be >= 1")
        if self.durable_dir is None:
            for name in ("durable_resume", "durable_faults", "kill_at_tick"):
                if getattr(self, name):
                    raise ConfigurationError(
                        f"{name} requires durable_dir (set --durable DIR)"
                    )
        if self.kill_at_tick is not None and self.kill_at_tick < 1:
            raise ConfigurationError("kill_at_tick must be >= 1")
        if self.rank_order is not None:
            order = tuple(self.rank_order)
            if sorted(order) != list(range(len(order))):
                raise ConfigurationError(
                    f"rank_order must be a permutation of range(p), got {order!r}"
                )
            if order != tuple(range(len(order))) and not self.reliable_active:
                raise ConfigurationError(
                    "a perturbed rank_order requires the reliable transport "
                    "(its canonical (src, seq) release keeps arrival order "
                    "schedule-invariant; set reliable=True)"
                )

    # ------------------------------------------------------------------ #
    @property
    def reliable_active(self) -> bool:
        """Whether this run uses the reliable transport (explicitly, or
        implied by a fault plan)."""
        return self.reliable or self.faults is not None

    @property
    def spill_active(self) -> bool:
        """Whether this run needs a per-rank external-memory spill pager
        (a bounded mailbox or a resident-limited visitor queue)."""
        return self.mailbox_cap_bytes is not None or self.queue_spill is not None

    @property
    def supervision_active(self) -> bool:
        """Whether the parallel executor runs with self-healing on: a
        restart budget, or an injection plan to survive (a plan with
        ``worker_restarts=0`` degrades on the first failure instead of
        respawning — the budget-exhausted path, just immediately)."""
        return self.worker_restarts > 0 or self.worker_faults is not None

    @property
    def checkpoint_every(self) -> int:
        """Effective checkpoint interval in ticks (0 = no checkpointing)."""
        if self.checkpoint_interval > 0:
            return self.checkpoint_interval
        if self.faults is not None and getattr(self.faults, "has_crashes", False):
            return 16
        return 0


# ---------------------------------------------------------------------- #
# Machine profiles
# ---------------------------------------------------------------------- #
def laptop() -> MachineModel:
    """A fast, flat, in-memory profile for tests and quickstarts."""
    return MachineModel(
        name="laptop",
        visit_us=0.2,
        previsit_us=0.05,
        edge_scan_us=0.01,
        packet_overhead_us=1.0,
        byte_us=0.001,
        hop_latency_us=1.0,
        min_tick_us=0.5,
    )


def bgp_intrepid() -> MachineModel:
    """IBM BG/P Intrepid profile: slow PowerPC 450 cores, low-latency
    balanced 3D torus (Figures 5, 6, 7, 10, 11, 12, 13)."""
    return MachineModel(
        name="bgp-intrepid",
        visit_us=1.2,
        previsit_us=0.3,
        edge_scan_us=0.08,
        packet_overhead_us=3.0,
        byte_us=0.0026,  # ~375 MB/s per link
        hop_latency_us=2.5,
        min_tick_us=1.0,
    )


def hyperion_dit(
    storage: str = STORAGE_DRAM, *, cache_bytes_per_rank: int = 256 * 1024,
    page_size: int = 4096,
) -> MachineModel:
    """Hyperion-DIT profile: 8-core x86 nodes, 24 GB DRAM, node-local
    Fusion-io NAND Flash (Figures 8, 9; Table II rows 1-2)."""
    return MachineModel(
        name=f"hyperion-dit-{storage}",
        visit_us=0.35,
        previsit_us=0.08,
        edge_scan_us=0.02,
        packet_overhead_us=2.0,
        byte_us=0.001,  # ~1 GB/s IB-ish per rank share
        hop_latency_us=3.0,
        min_tick_us=1.0,
        storage=storage,
        device=fusion_io() if storage == STORAGE_NVRAM else None,
        page_size=page_size,
        cache_bytes_per_rank=cache_bytes_per_rank,
    )


def trestles(*, cache_bytes_per_rank: int = 256 * 1024, page_size: int = 4096) -> MachineModel:
    """SDSC Trestles profile: commodity SATA SSDs (Table II row 3)."""
    return MachineModel(
        name="trestles",
        visit_us=0.35,
        previsit_us=0.08,
        edge_scan_us=0.02,
        packet_overhead_us=2.5,
        byte_us=0.0015,
        hop_latency_us=3.5,
        min_tick_us=1.0,
        storage=STORAGE_NVRAM,
        device=sata_ssd(),
        page_size=page_size,
        cache_bytes_per_rank=cache_bytes_per_rank,
    )


def leviathan(*, cache_bytes_per_rank: int = 1024 * 1024, page_size: int = 4096) -> MachineModel:
    """LLNL Leviathan profile: one fat node, 40 cores, 12 TB Fusion-io; no
    inter-node network, so hop latency is shared-memory cheap — but every
    rank contends for the *same* flash cards, so the per-rank device share
    has a fraction of a dedicated card's bandwidth and queue depth
    (Table II row 4: single-node trails the distributed NVRAM systems)."""
    shared_fusion_io = MemoryDevice(
        name="fusion-io-shared",
        read_latency_us=60.0,
        bandwidth_bytes_per_us=150.0,  # one card's 1.2 GB/s split 8 ways
        io_parallelism=6,
    )
    return MachineModel(
        name="leviathan",
        visit_us=0.35,
        previsit_us=0.08,
        edge_scan_us=0.02,
        packet_overhead_us=0.3,
        byte_us=0.0002,
        hop_latency_us=0.3,
        min_tick_us=0.5,
        storage=STORAGE_NVRAM,
        device=shared_fusion_io,
        page_size=page_size,
        cache_bytes_per_rank=cache_bytes_per_rank,
    )


def dram_reference() -> MemoryDevice:
    """Convenience re-export of the DRAM device model."""
    return dram()
