"""Single-producer/single-consumer byte rings in anonymous ``MAP_SHARED``
arenas — the shared-memory half of the parallel executor's zero-pickle
barrier transport (INTERNALS §14).

A :class:`SpscRing` is one direction of one parent↔worker link: the
producer appends variable-length *frames* (a tag word plus an opaque
payload produced by :mod:`repro.runtime.packet_codec`), the consumer reads
them back in order.  The backing store is the same anonymous
``mmap.mmap(-1, ...)`` arena :class:`repro.core.batch.SharedArrayBlock`
uses, so a worker forked after construction writes the very pages the
parent reads — no pickling, no pipe copies, no named segments to unlink.

Synchronisation is deliberately *not* in here: the executor's pipe tokens
are the happens-before edge.  A producer only advances ``tail`` before its
fixed-size pipe token, and the consumer only reads frames after receiving
that token, so the control words never race.  What the ring *does* defend
against is torn or stale data — a producer killed mid-write, a replacement
process resuming against a dirty arena — via a per-frame sequence word and
a CRC-32 over the payload, both checked on every read
(:class:`RingIntegrityError`).  Overflow is not an error here either:
:meth:`try_write` refuses and the caller spills to the pickled pipe path,
which is always correct.

Layout (offsets in bytes)::

    0    head   u64  consumer cursor (monotonic byte count)
    8    rseq   u64  consumer's next expected frame sequence
    64   tail   u64  producer cursor (monotonic byte count)
    72   wseq   u64  producer's next frame sequence
    128  data   [capacity bytes, frames padded to 8-byte starts]

    frame := seq u64 | tag u32 | length u32 | crc32 u64 | payload | pad

Head/tail live on separate 64-byte cache lines (one writer each); both
are monotonic, so ``tail - head`` is the buffered byte count and positions
are taken modulo the capacity — frames wrap around the arena boundary in
up to two slices.
"""

from __future__ import annotations

import mmap
import struct
import zlib

__all__ = ["RingIntegrityError", "RingOverflow", "SpscRing"]

#: Control-word block preceding the data region (two cache lines).
_CTRL_BYTES = 128
_HEAD = 0
_RSEQ = 8
_TAIL = 64
_WSEQ = 72

#: Per-frame header: sequence, tag, payload length, payload CRC-32.
_FRAME = struct.Struct("<QIIQ")
_ALIGN = 8


class RingOverflow(Exception):
    """The frame does not fit in the ring's free space (spill to pipe)."""


class RingIntegrityError(Exception):
    """A frame failed its sequence or checksum validation (torn write,
    stale arena, or a protocol bug) — the reader must not trust it."""


class SpscRing:
    """One direction of a parent↔worker shared-memory frame channel."""

    __slots__ = ("_mmap", "_buf", "capacity", "frames_written", "frames_read")

    def __init__(self, capacity: int) -> None:
        if capacity <= _FRAME.size + _ALIGN:
            raise ValueError(f"ring capacity {capacity} is too small")
        # Round up so wrapped offsets stay 8-aligned.
        capacity = -(-capacity // _ALIGN) * _ALIGN
        self.capacity = capacity
        self._mmap = mmap.mmap(-1, _CTRL_BYTES + capacity)
        self._buf = memoryview(self._mmap)
        #: host-side telemetry (per-process; the parent's counts feed the
        #: bench's ``ipc_frames`` column).
        self.frames_written = 0
        self.frames_read = 0

    # ------------------------------------------------------------------ #
    # control words
    # ------------------------------------------------------------------ #
    def _get(self, off: int) -> int:
        return struct.unpack_from("<Q", self._buf, off)[0]

    def _set(self, off: int, value: int) -> None:
        struct.pack_into("<Q", self._buf, off, value)

    def used(self) -> int:
        """Buffered (unread) bytes."""
        return self._get(_TAIL) - self._get(_HEAD)

    def free(self) -> int:
        """Writable bytes remaining."""
        return self.capacity - self.used()

    @staticmethod
    def frame_cost(payload_len: int) -> int:
        """Ring bytes one frame of ``payload_len`` bytes consumes."""
        return -(-(_FRAME.size + payload_len) // _ALIGN) * _ALIGN

    def reset(self) -> None:
        """Discard everything buffered and restart the sequence space.

        Parent-side only, and only while no producer is live — the
        supervisor calls this before forking a replacement worker, so the
        replacement starts against a clean arena instead of a dead
        producer's partial frames.
        """
        self._set(_HEAD, 0)
        self._set(_RSEQ, 0)
        self._set(_TAIL, 0)
        self._set(_WSEQ, 0)

    def close(self) -> None:
        """Release the mapping (drop all frames)."""
        self._buf.release()
        self._mmap.close()

    # ------------------------------------------------------------------ #
    # producer
    # ------------------------------------------------------------------ #
    def _copy_in(self, pos: int, data) -> None:
        """Copy ``data`` into the arena at logical position ``pos``,
        wrapping at the capacity boundary (at most two slices)."""
        data = memoryview(data).cast("B")
        n = len(data)
        pos %= self.capacity
        first = min(n, self.capacity - pos)
        off = _CTRL_BYTES + pos
        self._buf[off:off + first] = data[:first]
        if first < n:
            self._buf[_CTRL_BYTES:_CTRL_BYTES + n - first] = data[first:]

    def try_write(self, tag: int, payload) -> bool:
        """Append one frame; returns False when it does not fit (the
        caller spills to the pipe instead — never blocks, never waits)."""
        payload = memoryview(payload).cast("B")
        need = self.frame_cost(len(payload))
        if need > self.free():
            return False
        tail = self._get(_TAIL)
        seq = self._get(_WSEQ)
        crc = zlib.crc32(payload)
        self._copy_in(tail, _FRAME.pack(seq, tag, len(payload), crc))
        self._copy_in(tail + _FRAME.size, payload)
        # Publish order: the data is in place before tail moves, and the
        # consumer will not look before the pipe token anyway.
        self._set(_WSEQ, seq + 1)
        self._set(_TAIL, tail + need)
        self.frames_written += 1
        return True

    def write(self, tag: int, payload) -> None:
        """:meth:`try_write` that raises :class:`RingOverflow` instead of
        returning False."""
        if not self.try_write(tag, payload):
            raise RingOverflow(
                f"frame of {len(memoryview(payload).cast('B'))} payload "
                f"bytes does not fit ({self.free()} of {self.capacity} free)"
            )

    # ------------------------------------------------------------------ #
    # consumer
    # ------------------------------------------------------------------ #
    def _copy_out(self, pos: int, n: int) -> bytearray:
        """Copy ``n`` bytes out of the arena at logical position ``pos``
        (two slices across the wrap).  Returns a *writable* buffer so the
        codec can hand out mutable numpy views without another copy."""
        out = bytearray(n)
        pos %= self.capacity
        first = min(n, self.capacity - pos)
        off = _CTRL_BYTES + pos
        out[:first] = self._buf[off:off + first]
        if first < n:
            out[first:] = self._buf[_CTRL_BYTES:_CTRL_BYTES + n - first]
        return out

    def read(self) -> tuple[int, bytearray]:
        """Consume the next frame; returns ``(tag, payload)``.

        Raises :class:`RingIntegrityError` when the ring is empty (the
        producer promised a frame it never finished) or when the frame
        fails its sequence/length/checksum validation.
        """
        head = self._get(_HEAD)
        tail = self._get(_TAIL)
        buffered = tail - head
        if buffered < _FRAME.size:
            raise RingIntegrityError(
                f"expected a frame but only {buffered} bytes are buffered"
            )
        seq, tag, length, crc = _FRAME.unpack_from(
            bytes(self._copy_out(head, _FRAME.size))
        )
        rseq = self._get(_RSEQ)
        if seq != rseq:
            raise RingIntegrityError(
                f"frame sequence {seq} != expected {rseq} (torn or stale frame)"
            )
        if _FRAME.size + length > buffered or length > self.capacity:
            raise RingIntegrityError(
                f"frame length {length} exceeds the {buffered} buffered bytes"
            )
        payload = self._copy_out(head + _FRAME.size, length)
        if zlib.crc32(payload) != crc:
            raise RingIntegrityError(
                f"frame {seq} checksum mismatch (torn write)"
            )
        self._set(_RSEQ, rseq + 1)
        self._set(_HEAD, head + self.frame_cost(length))
        self.frames_read += 1
        return tag, payload
