"""Straggler modelling and mitigation (resource-pressure layer).

Scale-free traversals are communication-bound, so one slow rank drags the
whole machine: every tick lasts as long as its critical path, and the
quiescence waves that decide termination circulate at the speed of the
slowest participant.  A :class:`StragglerPlan` is a seeded, immutable
description of per-rank slowdowns — which ranks run slow and by how much —
plus the two mitigations the engine applies:

* **work-stealing rebalance** (``rebalance`` in ``[0, 1]``): the fraction
  of a straggler's excess per-tick work that idle ranks steal.  At 0 the
  tick costs the full skewed critical path; at 1 it costs the best
  achievable balance (never better than the unskewed critical path or the
  mean skewed load).
* **adaptive tick pacing** (``pacing``): the engine tracks an EWMA of the
  observed skew (scaled / unscaled critical path) and stretches the idle-
  tick floor by it, modelling slow ranks polling their mailboxes and
  termination waves proportionally less often.  Without it a skewed
  machine would finish its control-plane drain at full speed, which no
  real cluster does.

Like every pressure mechanism, stragglers charge *simulated time only*:
the logical schedule — who visits what on which tick — is untouched, so
results and logical counters stay bit-identical to the uniform-speed run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import resolve_rng


@dataclass(frozen=True)
class StragglerPlan:
    """Seeded description of per-rank slowdown skew.

    ``factor`` multiplies the per-tick compute cost of each straggler
    rank.  Stragglers are either listed explicitly (``ranks``) or drawn
    deterministically from ``seed``: each rank independently straggles
    with probability ``fraction``, with at least one straggler forced
    (the worst case is the interesting one) when ``fraction > 0``.
    """

    seed: int = 0
    #: Slowdown multiplier applied to straggler ranks (>= 1).
    factor: float = 4.0
    #: Fraction of ranks that straggle (ignored when ``ranks`` is given).
    fraction: float = 0.25
    #: Explicit straggler ranks (overrides seeded selection).
    ranks: tuple[int, ...] = ()
    #: Work-stealing efficiency in [0, 1]: fraction of straggler excess
    #: work idle ranks absorb each tick.
    rebalance: float = 0.0
    #: Stretch idle-tick pacing by the observed skew EWMA.
    pacing: bool = True

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ConfigurationError(f"factor must be >= 1, got {self.factor}")
        if not 0.0 <= self.fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in [0, 1], got {self.fraction}")
        if not 0.0 <= self.rebalance <= 1.0:
            raise ConfigurationError(f"rebalance must be in [0, 1], got {self.rebalance}")
        if not isinstance(self.ranks, tuple):
            object.__setattr__(self, "ranks", tuple(self.ranks))
        if any(r < 0 for r in self.ranks):
            raise ConfigurationError("straggler ranks must be >= 0")

    # ------------------------------------------------------------------ #
    @property
    def any_skew(self) -> bool:
        """True when the plan can actually slow a run down."""
        return self.factor > 1.0 and (bool(self.ranks) or self.fraction > 0.0)

    def slowdowns(self, num_ranks: int) -> np.ndarray:
        """Per-rank slowdown multipliers (float64, length ``num_ranks``)."""
        out = np.ones(num_ranks, dtype=np.float64)
        if self.factor <= 1.0:
            return out
        if self.ranks:
            for r in self.ranks:
                if r >= num_ranks:
                    raise ConfigurationError(
                        f"straggler rank {r} out of range for p={num_ranks}"
                    )
                out[r] = self.factor
            return out
        if self.fraction <= 0.0:
            return out
        rng = resolve_rng(self.seed)
        mask = rng.random(num_ranks) < self.fraction
        if not mask.any():
            mask[int(rng.integers(num_ranks))] = True
        out[mask] = self.factor
        return out

    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec: str) -> "StragglerPlan":
        """Parse the CLI straggler mini-language.

        ``SPEC`` is a comma-separated ``key=value`` list::

            seed=3,factor=4,fraction=0.25,rebalance=0.5,pacing=1

        ``ranks`` pins the straggler set explicitly, joining ranks with
        ``+`` (``ranks=1+5``).
        """
        aliases = {
            "seed": ("seed", int),
            "factor": ("factor", float),
            "fraction": ("fraction", float),
            "rebalance": ("rebalance", float),
            "pacing": ("pacing", lambda v: bool(int(v))),
        }
        kwargs: dict = {}
        for item in filter(None, (s.strip() for s in spec.split(","))):
            if "=" not in item:
                raise ConfigurationError(
                    f"straggler spec item {item!r} is not key=value"
                )
            key, _, value = item.partition("=")
            key = key.strip().lower()
            if key == "ranks":
                try:
                    kwargs["ranks"] = tuple(int(x) for x in value.split("+"))
                except ValueError:
                    raise ConfigurationError(
                        f"straggler ranks {value!r} are not '+'-joined integers"
                    ) from None
            elif key in aliases:
                name, conv = aliases[key]
                try:
                    kwargs[name] = conv(value)
                except ValueError:
                    raise ConfigurationError(
                        f"straggler spec {key}={value!r} is invalid"
                    ) from None
            else:
                raise ConfigurationError(
                    f"unknown straggler spec key {key!r} "
                    f"(known: {', '.join(sorted(aliases))}, ranks)"
                )
        return cls(**kwargs)


class StragglerClock:
    """Engine-side runtime of a :class:`StragglerPlan`.

    Turns the per-rank cost vector of one tick into the tick's effective
    critical-path cost, accounting for skew, work stealing and pacing.
    All methods are pure float arithmetic on deterministic inputs, so the
    same workload always produces the same simulated times.
    """

    #: EWMA smoothing weight for the observed-skew estimate.
    ALPHA = 0.2

    def __init__(self, plan: StragglerPlan, num_ranks: int) -> None:
        self.plan = plan
        self.slowdowns = plan.slowdowns(num_ranks)
        self.max_slowdown = float(self.slowdowns.max())
        self._skew_ewma = 1.0
        # cumulative tallies (surfaced via TraversalStats)
        self.stall_us = 0.0
        self.rebalanced_us = 0.0

    def tick_cost(self, costs: np.ndarray) -> float:
        """Effective critical-path cost of one tick under skew.

        ``costs`` is the unscaled per-rank cost vector.  Straggler ranks'
        work is stretched by their slowdown; work stealing then moves a
        ``rebalance`` fraction of the gap between the skewed critical path
        and the best achievable balance — which is bounded below by both
        the *unskewed* critical path (stolen work still has to run
        somewhere) and the mean skewed load (perfect spreading).
        """
        base = float(costs.max())
        scaled = costs * self.slowdowns
        skewed = float(scaled.max())
        if skewed <= base:
            return base
        balanced = max(base, float(scaled.mean()))
        effective = skewed - self.plan.rebalance * (skewed - balanced)
        self.stall_us += effective - base
        self.rebalanced_us += skewed - effective
        if base > 0.0:
            self._skew_ewma += self.ALPHA * (skewed / base - self._skew_ewma)
        return effective

    def pacing_floor(self, min_tick_us: float) -> float:
        """The idle-tick duration floor under adaptive pacing."""
        if not self.plan.pacing:
            return min_tick_us
        return min_tick_us * min(self._skew_ewma, self.max_slowdown)

    def snapshot_state(self) -> dict:
        """EWMA + tallies for durable checkpoints (the EWMA feeds the
        pacing floor, so it is part of the simulated clock's state)."""
        return {
            "skew_ewma": self._skew_ewma,
            "stall_us": self.stall_us,
            "rebalanced_us": self.rebalanced_us,
        }

    def restore_state(self, snap: dict) -> None:
        """Reinstall a :meth:`snapshot_state` image (same plan)."""
        self._skew_ewma = snap["skew_ewma"]
        self.stall_us = snap["stall_us"]
        self.rebalanced_us = snap["rebalanced_us"]
