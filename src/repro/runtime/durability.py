"""Durable on-disk checkpoint/resume with host-crash recovery (INTERNALS §13).

The in-memory recovery layers (:mod:`repro.runtime.recovery` for simulated
rank crashes, the supervision images in :mod:`repro.runtime.parallel` for
worker-process failures) both die with the host process.  The
:class:`DurabilityManager` closes that gap: on a configurable tick cadence
it serialises *everything* a restarted process needs — traversal state and
queues for every rank, both spill/pressure ledgers, the whole network
fabric (reliable-transport channels included), RNG stream positions,
per-tick order digests, the in-memory recovery epoch, and the run's
cumulative statistics — into an **epoch** on disk, written atomically.

One epoch is two files in the durable directory::

    epoch_00000032.bin    concatenated, independently pickled sections
    epoch_00000032.json   manifest: format, tick, config key, and one
                          {name, offset, length, blake2b} entry per section

Both are written via ``tmp + fsync + os.replace`` with a directory fsync,
data file first — the manifest rename is the commit point, so a host crash
at any instant leaves either the previous complete epoch or the new one,
never a torn hybrid.  Every section carries its own blake2b checksum;
validation at resume walks epochs newest-to-oldest and **falls back** past
any epoch whose manifest or payload fails verification (torn write, bit
rot, truncation, a vanished section), raising
:class:`~repro.errors.CheckpointCorruptionError` only when no valid epoch
remains.  Deliberate corruption for tests rides a seeded
:class:`DurableFaultPlan`.

Resume restores the engine *in place* before the tick loop (and, for
``workers > 1``, before the pool forks — workers inherit the restored
state copy-on-write), so the continued run re-executes the exact schedule
the uninterrupted run would have: results, logical counters, simulated
time and per-tick order digests land bit-identical.  Durable write costs
are simulated through ``MachineModel.checkpoint_byte_us`` on the epoch
tick, and the durable counters are folded into the stats *before* the
stats section is pickled, so a resumed run's totals equal an
uninterrupted run's.

The durable directory is single-writer: one live run per directory.
Interrupted atomic writes leave ``epoch_*.tmp*`` files behind; they are
swept at manager construction and at interpreter exit
(:func:`sweep_orphans`), so crashed runs never accumulate junk.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import CheckpointCorruptionError, ConfigurationError
from repro.utils.rng import resolve_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import SimulationEngine
    from repro.runtime.trace import TraversalStats

#: On-disk epoch format version (bumped on incompatible layout changes).
FORMAT_VERSION = 1

#: Simulated bytes of one rank's durable section beyond its crash-recovery
#: image (manifest entry, section framing, pager/cache/ledger state).
DURABLE_SECTION_OVERHEAD_BYTES = 256

#: Sections every valid epoch must carry.
REQUIRED_SECTIONS = frozenset(
    ("loop", "stats", "ranks", "network", "rng", "digests", "recovery")
)

_DATA_SUFFIX = ".bin"
_MANIFEST_SUFFIX = ".json"
_CHECKSUM_BYTES = 16

#: Tmp files this process currently has in flight (removed at exit so a
#: failed atomic write never leaves junk behind — see :func:`sweep_orphans`
#: for files left by *other* crashed processes).
_LIVE_TMP_FILES: set[str] = set()
_ATEXIT_REGISTERED = False


def _cleanup_live_tmp() -> None:
    """Interpreter-exit sweep of this process's in-flight tmp files."""
    for path in sorted(_LIVE_TMP_FILES):
        try:
            os.unlink(path)
        except OSError:
            pass
    _LIVE_TMP_FILES.clear()


def sweep_orphans(durable_dir: str) -> int:
    """Remove ``epoch_*.tmp*`` leftovers from previously crashed runs.

    A SIGKILL (or power loss) mid-write strands the atomic-write tmp file;
    committed epochs are untouched, but without this sweep every crashed
    run would leak one junk file into the durable directory.  Returns the
    number of files removed.
    """
    try:
        names = os.listdir(durable_dir)
    except FileNotFoundError:
        return 0
    removed = 0
    for name in sorted(names):
        if name.startswith("epoch_") and ".tmp" in name:
            try:
                os.unlink(os.path.join(durable_dir, name))
                removed += 1
            except OSError:
                pass
    return removed


def _atomic_write(path: str, data: bytes) -> None:
    """Crash-safe file publish: tmp + flush + fsync + rename + dir fsync.

    The tmp name carries the pid so concurrent crash-harness restarts in
    the same directory can never collide, and any stranded tmp matches the
    ``epoch_*.tmp*`` sweep pattern.
    """
    tmp = f"{path}.tmp{os.getpid()}"
    _LIVE_TMP_FILES.add(tmp)
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        _LIVE_TMP_FILES.discard(tmp)
    dir_fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


# ---------------------------------------------------------------------- #
# Fault injection
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class DurableFaultPlan:
    """Seeded description of durable-storage corruption for tests.

    Each field lists the epoch *ticks* whose freshly committed epoch is
    corrupted (post-commit — modelling media corruption after a clean
    write): ``torn`` truncates the data file, ``bitflip`` flips one bit in
    it, ``manifest`` truncates the manifest JSON, and ``missing`` rewrites
    the manifest without one section entry.  Byte offsets and section
    picks are drawn from one seeded stream in a fixed per-epoch order, so
    the same plan always damages the same bytes.
    """

    seed: int = 0
    torn: tuple[int, ...] = ()
    bitflip: tuple[int, ...] = ()
    manifest: tuple[int, ...] = ()
    missing: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for name in ("torn", "bitflip", "manifest", "missing"):
            ticks = getattr(self, name)
            if not isinstance(ticks, tuple):
                object.__setattr__(self, name, tuple(ticks))
                ticks = getattr(self, name)
            if any(t < 1 for t in ticks):
                raise ConfigurationError(
                    f"durable fault ticks must be >= 1, got {name}={ticks!r}"
                )

    @property
    def any_faults(self) -> bool:
        """True when the plan can actually corrupt an epoch."""
        return bool(self.torn or self.bitflip or self.manifest or self.missing)

    @classmethod
    def from_spec(cls, spec: str) -> "DurableFaultPlan":
        """Parse the CLI durable-fault mini-language.

        ``SPEC`` is a comma-separated ``key=value`` list; the fault values
        are '+'-joined epoch ticks::

            seed=7,torn=32,bitflip=16+48,manifest=64,missing=80
        """
        kwargs: dict = {}
        modes = ("torn", "bitflip", "manifest", "missing")
        for item in filter(None, (s.strip() for s in spec.split(","))):
            if "=" not in item:
                raise ConfigurationError(
                    f"durable fault spec item {item!r} is not key=value"
                )
            key, _, value = item.partition("=")
            key = key.strip().lower()
            if key == "seed":
                try:
                    kwargs["seed"] = int(value)
                except ValueError:
                    raise ConfigurationError(
                        f"durable fault seed {value!r} is not an int"
                    ) from None
            elif key in modes:
                try:
                    kwargs[key] = tuple(int(x) for x in value.split("+"))
                except ValueError:
                    raise ConfigurationError(
                        f"durable fault {key}={value!r} is not '+'-joined ints"
                    ) from None
            else:
                raise ConfigurationError(
                    f"unknown durable fault spec key {key!r} "
                    f"(known: {', '.join(modes)}, seed)"
                )
        return cls(**kwargs)


# ---------------------------------------------------------------------- #
# Per-rank section capture / restore (shared with the parallel executor)
# ---------------------------------------------------------------------- #
def _rank_storage_injector(engine: "SimulationEngine", r: int):
    """The rank's storage fault injector, if any.  The *same* object is
    shared by the rank's CSR cache and spill cache, so capture/restore
    must touch it exactly once per rank."""
    cache = engine.caches[r]
    if cache is not None and cache.fault_injector is not None:
        return cache.fault_injector
    spill = engine.spills[r]
    if spill is not None and spill.cache.fault_injector is not None:
        return spill.cache.fault_injector
    return None


def collect_rank_section(
    engine: "SimulationEngine", r: int, recovery_snap: dict | None = None
) -> dict:
    """One rank's durable section: queue, spill ledger, mailbox (with its
    flow-control ledger), detector, CSR cache, spill pager, storage-fault
    RNG stream, plus the rank's in-memory crash-recovery snapshot so the
    simulated recovery epoch survives the host restart.  Shared by the
    sequential writer and the parallel workers' ``durable`` command (each
    worker collects its own ranks; the section never depends on
    parent-side state)."""
    rank = engine.ranks[r]
    sec: dict = {
        "queue": rank.snapshot_state(),
        "spilled_visitors": rank.spill_ledger,
        "mailbox": engine.mailboxes[r].snapshot_state(),
    }
    if engine.detectors is not None:
        sec["detector"] = engine.detectors[r].snapshot_state()
    if engine.caches[r] is not None:
        sec["cache"] = engine.caches[r].snapshot_state()
    if engine.spills[r] is not None:
        sec["spill"] = engine.spills[r].snapshot_state()
    injector = _rank_storage_injector(engine, r)
    if injector is not None:
        sec["storage_injector"] = injector.snapshot_state()
    if recovery_snap is not None:
        sec["recovery_snap"] = {
            k: recovery_snap[k]
            for k in ("queue", "mailbox", "detector")
            if k in recovery_snap
        }
    return sec


def restore_rank_section(engine: "SimulationEngine", r: int, sec: dict) -> None:
    """Reinstall one rank's durable section in place.

    Order matters: the mailbox restore re-spills any beyond-cap buffer
    bytes into the pager (see :meth:`Mailbox.restore_state`), so the spill
    pager's exact recorded state is restored *last*, overriding that
    re-spill's cursor and epoch-accumulator side effects with the
    bit-exact pre-crash pager state.
    """
    engine.ranks[r].restore_state(sec["queue"])
    engine.ranks[r].spill_ledger = sec["spilled_visitors"]
    engine.mailboxes[r].restore_state(sec["mailbox"])
    if "detector" in sec:
        engine.detectors[r].restore_state(sec["detector"])
    if "cache" in sec:
        engine.caches[r].restore_state(sec["cache"])
    if "spill" in sec:
        engine.spills[r].restore_state(sec["spill"])
    if "storage_injector" in sec:
        _rank_storage_injector(engine, r).restore_state(sec["storage_injector"])


# ---------------------------------------------------------------------- #
# Resume payload
# ---------------------------------------------------------------------- #
@dataclass
class ResumeState:
    """What :meth:`DurabilityManager.load_latest` hands back to the engine
    after restoring rank/network/RNG/digest state in place: the loop
    variables, the restored stats object, and the in-memory recovery
    epoch's parent-side remainder for the engine to transplant."""

    tick: int
    loop: dict
    stats: "TraversalStats"
    #: recovery section ({"epoch_tick", "state_bytes", "log", "transport",
    #: counter fields}) or None when the run had no recovery manager.
    recovery: dict | None
    #: per-rank worker-local crash-recovery snapshots (or None entries).
    rank_recovery_snaps: list


# ---------------------------------------------------------------------- #
# The manager
# ---------------------------------------------------------------------- #
class DurabilityManager:
    """Durable epoch writer/reader for one engine run."""

    def __init__(self, engine: "SimulationEngine") -> None:
        global _ATEXIT_REGISTERED
        cfg = engine.config
        self.engine = engine
        self.dir: str = cfg.durable_dir
        self.interval: int = cfg.durable_interval
        self.keep: int = cfg.durable_keep
        self.fault_plan: DurableFaultPlan | None = cfg.durable_faults
        os.makedirs(self.dir, exist_ok=True)
        #: leak sweep for previously crashed runs (satellite of the same
        #: contract: the durable dir never accumulates junk across kills).
        self.orphans_swept = sweep_orphans(self.dir)
        if not _ATEXIT_REGISTERED:
            atexit.register(_cleanup_live_tmp)
            _ATEXIT_REGISTERED = True
        self._rng = (
            resolve_rng(self.fault_plan.seed) if self.fault_plan is not None else None
        )
        #: ticks whose epoch passed this run's post-write read-back.
        self._valid_ticks: list[int] = []
        #: simulated per-rank byte sizes of the pending epoch (set by
        #: :meth:`epoch_costs` on the due tick, consumed by
        #: :meth:`write_epoch`'s write-time stat fold).
        self._last_sim_bytes: list[int] = []
        self._last_io_us: float = 0.0

    # -------------------------------------------------------------- #
    def due(self, tick: int) -> bool:
        """Whether logical tick ``tick`` ends a durable epoch."""
        return tick % self.interval == 0

    def epoch_costs(self, ckpt_bytes_by_rank: list[int]) -> np.ndarray:
        """Per-rank simulated cost of writing this tick's epoch.

        ``ckpt_bytes_by_rank`` is each rank's crash-recovery image size
        (:func:`~repro.runtime.recovery.estimate_checkpoint_bytes`),
        computed at the post-flush barrier — rank-locally in the owning
        worker under ``workers > 1``, so the charge is bit-identical to
        the sequential schedule.  Charged through
        ``MachineModel.checkpoint_byte_us`` into the tick's cost vector.
        """
        m = self.engine.machine
        nbytes = [b + DURABLE_SECTION_OVERHEAD_BYTES for b in ckpt_bytes_by_rank]
        costs = np.asarray(nbytes, dtype=np.float64) * m.checkpoint_byte_us
        self._last_sim_bytes = nbytes
        self._last_io_us = float(costs.sum())
        return costs

    # -------------------------------------------------------------- #
    def config_key(self) -> dict:
        """Schedule-affecting run identity embedded in every manifest.

        A resume whose key differs raises ``ConfigurationError`` (wrong
        run, not corruption).  ``workers`` and the supervision knobs are
        deliberately absent: per-rank sections let a run killed at
        ``--workers 4`` resume at ``--workers 1`` and vice versa — the
        logical schedule is worker-count-invariant by construction.
        """
        eng = self.engine
        cfg = eng.config
        g = eng.graph
        return {
            "algorithm": eng.algorithm.name,
            "batch": eng.batch_mode,
            "machine": eng.machine.name,
            "topology": eng.topology.name,
            "num_ranks": g.num_partitions,
            "num_vertices": int(g.num_vertices),
            "num_edges": int(g.num_edges),
            "visitor_budget": cfg.visitor_budget,
            "aggregation_size": cfg.aggregation_size,
            "detector": cfg.use_termination_detector,
            "locality_ordering": cfg.locality_ordering,
            "reliable": cfg.reliable_active,
            "checkpoint_every": cfg.checkpoint_every,
            "faults": repr(cfg.faults),
            "storage_faults": repr(cfg.storage_faults),
            "stragglers": repr(cfg.stragglers),
            "mailbox_cap_bytes": cfg.mailbox_cap_bytes,
            "queue_spill": cfg.queue_spill,
            "transport_window": cfg.transport_window,
            "spill_cache_pages": cfg.spill_cache_pages,
            "page_vertex_state": cfg.page_vertex_state,
            "record_digests": cfg.record_order_digests,
            "durable_interval": self.interval,
        }

    # -------------------------------------------------------------- #
    # Writing
    # -------------------------------------------------------------- #
    def _path(self, tick: int, suffix: str) -> str:
        return os.path.join(self.dir, f"epoch_{tick:08d}{suffix}")

    def write_epoch(
        self,
        tick: int,
        loop: dict,
        stats: "TraversalStats",
        rank_sections: list[dict] | None = None,
    ) -> None:
        """Atomically publish the epoch ending at ``tick``.

        The durable counters are folded into ``stats`` *before* the stats
        section is pickled (write-time folding): a resumed run restores
        those totals and re-increments only for the epochs it writes
        itself, so final stats — including ``durable_io_us``, which rides
        the simulated clock — land identical to an uninterrupted run's.

        ``rank_sections`` is the parallel executor's worker-collected
        sections; ``None`` (sequential) collects them live.
        """
        eng = self.engine
        p = eng.graph.num_partitions
        stats.durable_checkpoints += 1
        stats.durable_bytes += int(sum(self._last_sim_bytes))
        stats.durable_io_us += self._last_io_us
        if rank_sections is None:
            rec = eng.recovery
            rank_sections = [
                collect_rank_section(
                    eng, r, recovery_snap=(rec._snaps[r] if rec is not None else None)
                )
                for r in range(p)
            ]
        digests = None
        if eng._record_digests:
            digests = {
                "tick_digests": list(eng.tick_digests),
                "tick_rank_digests": list(eng.tick_rank_digests),
                "digest_prev": eng._digest_prev.copy(),
            }
        sections = [
            ("loop", loop),
            ("stats", stats),
            ("ranks", rank_sections),
            ("network", eng.network.snapshot_full()),
            ("rng", {
                "straggler": (
                    eng.straggler.snapshot_state()
                    if eng.straggler is not None
                    else None
                ),
            }),
            ("digests", digests),
            ("recovery", self._recovery_section()),
        ]
        blobs = [
            # Highest protocol (5): framed numpy buffers serialize without
            # the protocol-4 bytes-object copy — epoch images are the
            # biggest residual pickle producer now that barrier traffic
            # rides the shared-memory rings.
            (name, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
            for name, obj in sections
        ]
        entries = []
        offset = 0
        for name, blob in blobs:
            entries.append({
                "name": name,
                "offset": offset,
                "length": len(blob),
                "blake2b": hashlib.blake2b(
                    blob, digest_size=_CHECKSUM_BYTES
                ).hexdigest(),
            })
            offset += len(blob)
        manifest = {
            "format": FORMAT_VERSION,
            "tick": tick,
            "config": self.config_key(),
            "sections": entries,
        }
        data = b"".join(blob for _, blob in blobs)
        manifest_bytes = json.dumps(manifest, sort_keys=True).encode("utf-8")
        bin_path = self._path(tick, _DATA_SUFFIX)
        man_path = self._path(tick, _MANIFEST_SUFFIX)
        _atomic_write(bin_path, data)
        _atomic_write(man_path, manifest_bytes)  # commit point
        stats.durable_disk_bytes += len(data) + len(manifest_bytes)
        self._apply_faults(tick, bin_path, man_path)
        # Post-write read-back: a corrupt epoch stays on disk (resume
        # exercises the fallback ladder) but never counts as a keeper.
        if self._validate_epoch(tick):
            self._valid_ticks.append(tick)
        else:
            stats.durable_corrupt_epochs += 1
        self._prune()

    def _recovery_section(self) -> dict | None:
        """Parent-side remainder of the in-memory recovery epoch: the
        transport channel snapshots, delivery logs and counters.  The
        rank-local halves ride each rank's section (``recovery_snap``)."""
        rec = self.engine.recovery
        if rec is None:
            return None
        p = self.engine.graph.num_partitions
        return {
            "epoch_tick": rec.epoch_tick,
            "state_bytes": list(rec._state_bytes),
            "log": [dict(rec._log[r]) for r in range(p)],
            "transport": [
                (rec._snaps[r] or {}).get("transport") for r in range(p)
            ],
            "checkpoints_taken": rec.checkpoints_taken,
            "checkpoint_bytes": rec.checkpoint_bytes,
            "recoveries": rec.recoveries,
        }

    def _apply_faults(self, tick: int, bin_path: str, man_path: str) -> None:
        """Deliberately damage the just-committed epoch per the fault plan
        (fixed mode order so the RNG draws are reproducible)."""
        plan = self.fault_plan
        if plan is None:
            return
        if tick in plan.torn:
            size = os.path.getsize(bin_path)
            if size:
                cut = int(self._rng.integers(0, size))
                with open(bin_path, "r+b") as fh:
                    fh.truncate(cut)
        if tick in plan.bitflip:
            size = os.path.getsize(bin_path)
            if size:
                off = int(self._rng.integers(0, size))
                with open(bin_path, "r+b") as fh:
                    fh.seek(off)
                    byte = fh.read(1)[0]
                    fh.seek(off)
                    fh.write(bytes([byte ^ 0x40]))
        if tick in plan.manifest:
            size = os.path.getsize(man_path)
            with open(man_path, "r+b") as fh:
                fh.truncate(size // 2)
        if tick in plan.missing:
            with open(man_path, "rb") as fh:
                manifest = json.loads(fh.read().decode("utf-8"))
            idx = int(self._rng.integers(0, len(manifest["sections"])))
            del manifest["sections"][idx]
            _atomic_write(
                man_path, json.dumps(manifest, sort_keys=True).encode("utf-8")
            )

    def _prune(self) -> None:
        """Retire old epochs: keep the newest ``keep`` ticks, plus the
        newest write-verified epoch when every kept tick failed its
        read-back — the corruption-fallback ladder must always have a
        rung.  Data files whose manifest is gone (a crash between the two
        renames) are removed too."""
        ticks = self.epoch_ticks()
        kept = set(ticks[-self.keep:])
        valid_on_disk = [t for t in self._valid_ticks if t in set(ticks)]
        if valid_on_disk and not (kept & set(valid_on_disk)):
            kept.add(valid_on_disk[-1])
        for t in ticks:
            if t not in kept:
                for suffix in (_DATA_SUFFIX, _MANIFEST_SUFFIX):
                    try:
                        os.unlink(self._path(t, suffix))
                    except OSError:
                        pass
        tick_set = set(ticks)
        try:
            names = os.listdir(self.dir)
        except FileNotFoundError:
            return
        for name in sorted(names):
            if (
                name.startswith("epoch_")
                and name.endswith(_DATA_SUFFIX)
                and ".tmp" not in name
            ):
                stem = name[len("epoch_"):-len(_DATA_SUFFIX)]
                if stem.isdigit() and int(stem) not in tick_set:
                    try:
                        os.unlink(os.path.join(self.dir, name))
                    except OSError:
                        pass

    # -------------------------------------------------------------- #
    # Reading
    # -------------------------------------------------------------- #
    def epoch_ticks(self) -> list[int]:
        """Committed epoch ticks on disk (manifest present), ascending."""
        try:
            names = os.listdir(self.dir)
        except FileNotFoundError:
            return []
        out = []
        for name in sorted(names):
            if (
                name.startswith("epoch_")
                and name.endswith(_MANIFEST_SUFFIX)
                and ".tmp" not in name
            ):
                stem = name[len("epoch_"):-len(_MANIFEST_SUFFIX)]
                if stem.isdigit():
                    out.append(int(stem))
        return sorted(out)

    def _validate_epoch(self, tick: int) -> bool:
        """Read-back verification without installing anything."""
        try:
            return self._try_load(tick) is not None
        except ConfigurationError:  # pragma: no cover - own write, own key
            return False

    def _try_load(self, tick: int) -> dict | None:
        """Load and fully verify one epoch; ``None`` on any corruption.

        A parseable manifest whose config key differs raises
        ``ConfigurationError`` instead — that epoch belongs to a different
        run, which fallback must not silently paper over.
        """
        try:
            with open(self._path(tick, _MANIFEST_SUFFIX), "rb") as fh:
                manifest = json.loads(fh.read().decode("utf-8"))
        except (OSError, ValueError, UnicodeDecodeError):
            return None
        if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_VERSION:
            return None
        entries = manifest.get("sections")
        if not isinstance(entries, list):
            return None
        names = {e.get("name") for e in entries if isinstance(e, dict)}
        if not REQUIRED_SECTIONS <= names:
            return None
        if manifest.get("config") != self.config_key():
            raise ConfigurationError(
                f"durable epoch {tick} in {self.dir!r} was written by a "
                f"different run configuration; refusing to resume from it "
                f"(point --durable at a fresh directory or rerun with the "
                f"original configuration)"
            )
        try:
            with open(self._path(tick, _DATA_SUFFIX), "rb") as fh:
                data = fh.read()
        except OSError:
            return None
        payload: dict = {}
        try:
            for entry in entries:
                off, length = entry["offset"], entry["length"]
                blob = data[off:off + length]
                if len(blob) != length:
                    return None
                digest = hashlib.blake2b(
                    blob, digest_size=_CHECKSUM_BYTES
                ).hexdigest()
                if digest != entry["blake2b"]:
                    return None
                payload[entry["name"]] = pickle.loads(blob)
        except (KeyError, TypeError, ValueError, EOFError,
                pickle.UnpicklingError, AttributeError, IndexError):
            return None
        return payload

    def load_latest(self) -> ResumeState | None:
        """Resume path: restore the newest valid epoch in place.

        Walks epochs newest-to-oldest, skipping (and counting) every
        corrupt one — the fallback ladder.  Returns ``None`` when the
        directory holds no epochs at all (a fresh ``--resume`` run starts
        from scratch); raises
        :class:`~repro.errors.CheckpointCorruptionError` when epochs
        exist but none validates.  The restored stats object replaces the
        fresh run's wholesale (see :class:`ResumeState`).
        """
        ticks = self.epoch_ticks()
        if not ticks:
            return None
        skipped = 0
        for tick in reversed(ticks):
            payload = self._try_load(tick)
            if payload is None:
                skipped += 1
                continue
            return self._install(tick, payload, skipped)
        raise CheckpointCorruptionError(
            f"no valid durable epoch in {self.dir!r}: all {skipped} "
            f"on-disk epoch(s) failed verification (torn writes, bit rot "
            f"or truncation past the retention window)",
            examined=skipped,
        )

    def _install(self, tick: int, payload: dict, skipped: int) -> ResumeState:
        """Reinstall a verified epoch into the live engine."""
        eng = self.engine
        p = eng.graph.num_partitions
        rank_sections = payload["ranks"]
        for r in range(p):
            restore_rank_section(eng, r, rank_sections[r])
        eng.network.restore_full(payload["network"])
        straggler_snap = payload["rng"]["straggler"]
        if straggler_snap is not None and eng.straggler is not None:
            eng.straggler.restore_state(straggler_snap)
        digests = payload["digests"]
        if digests is not None and eng._record_digests:
            eng.tick_digests = list(digests["tick_digests"])
            eng.tick_rank_digests = list(digests["tick_rank_digests"])
            eng._digest_prev = np.array(digests["digest_prev"], dtype=np.int64)
        stats = payload["stats"]
        stats.durable_resumes += 1
        stats.durable_resume_tick = tick
        stats.durable_fallbacks += skipped
        stats.durable_corrupt_epochs += skipped
        return ResumeState(
            tick=tick,
            loop=payload["loop"],
            stats=stats,
            recovery=payload["recovery"],
            rank_recovery_snaps=[
                sec.get("recovery_snap") for sec in rank_sections
            ],
        )
