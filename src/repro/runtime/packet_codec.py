"""SoA packet-frame codec: a tick's packets as flat numpy columns.

The parallel executor's barrier traffic is lists of
:class:`~repro.comm.message.Packet` — batch-path payloads are
:class:`~repro.core.batch.VisitorBatch` column blocks, control payloads
are the termination detector's small tuples.  Pickling those object
graphs per tick is what PR 6's pipe transport paid for every barrier;
this codec flattens the same structure into a handful of contiguous
numpy columns (struct-of-arrays, one ``frombuffer`` each to decode) so a
frame can be memcpy'd through a :class:`~repro.runtime.shm_ring.SpscRing`
with zero pickled bytes.

Frame layout (little-endian, in order)::

    header   <IIIII>  n_packets, n_envelopes, n_batches, n_controls,
                      n_control_values
    schema   u8 length + [v_dtype, p_dtype, has_parents, parents_dtype,
                          n_extras, extras dtypes...]   (batch payloads)
    packets  src i32 | hop_dest i32 | seq i64 | ack i64 | n_env i32
    envs     dest i32 | kind u8 | size_bytes i64 | count i64 | ptype u8
    batches  length i64 per batch, then the concatenated vertices /
             payloads / parents / per-extra columns
    controls arity u8 per tuple, then per-value type codes u8 and
             values i64

Everything a steady-state batch tick emits is encodable; anything else —
object-path ``Visitor`` payloads, an unregistered control string, batch
envelopes with heterogeneous column schemas — raises
:class:`UnframeablePayload` and the caller falls back to the pickled
pipe, which is always correct.  Decoding is exact: dtypes, ``seq``/``ack``
stamps, per-message byte sizes, control value *types* (``bool`` vs
``int``) all round-trip, so the parent's barrier merge replays
bit-identical packets whether they travelled as frames or as pickles.

Decoded batch columns are numpy views over the frame buffer — pass a
writable buffer (``bytearray``, as :meth:`SpscRing.read` returns) so the
reconstructed batches are mutable like their pickled twins.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.comm.message import Envelope, Packet
from repro.core.batch import VisitorBatch

__all__ = [
    "UnframeablePayload",
    "decode_ints",
    "decode_packets",
    "encode_ints",
    "encode_packets",
]


class UnframeablePayload(Exception):
    """The packet list carries content the SoA frame format cannot
    represent; ship it over the pickled pipe instead."""


_HEADER = struct.Struct("<IIIII")

#: Envelope payload type codes.
_PT_BATCH = 0
_PT_CONTROL = 1

#: Control tuple value type codes (bool before int: bool is an int).
_CV_INT = 0
_CV_BOOL = 1
_CV_STR = 2

#: The registered control strings (the termination detector's message
#: tags — see ``repro/comm/termination.py``).  Any other string payload
#: value makes the packet list unframeable.
_CONTROL_STRINGS = ("probe", "reply", "terminate")
_CONTROL_CODES = {s: i for i, s in enumerate(_CONTROL_STRINGS)}

#: Supported column dtypes, by wire code.
_DTYPES = tuple(
    np.dtype(n)
    for n in (
        "int8", "int16", "int32", "int64",
        "uint8", "uint16", "uint32", "uint64",
        "float32", "float64", "bool",
    )
)
_DTYPE_CODES = {dt: i for i, dt in enumerate(_DTYPES)}


def _dtype_code(dtype: np.dtype) -> int:
    code = _DTYPE_CODES.get(dtype)
    if code is None:
        raise UnframeablePayload(f"unsupported column dtype {dtype}")
    return code


# ---------------------------------------------------------------------- #
# Encode
# ---------------------------------------------------------------------- #
def encode_packets(packets: list[Packet]) -> bytes:
    """Flatten ``packets`` into one frame payload (see module docstring).
    Raises :class:`UnframeablePayload` for anything the format cannot
    carry — the caller must fall back to the pipe."""
    n_packets = len(packets)
    pkt_src = np.empty(n_packets, dtype=np.int32)
    pkt_dst = np.empty(n_packets, dtype=np.int32)
    pkt_seq = np.empty(n_packets, dtype=np.int64)
    pkt_ack = np.empty(n_packets, dtype=np.int64)
    pkt_nenv = np.empty(n_packets, dtype=np.int32)

    env_dest: list[int] = []
    env_kind: list[int] = []
    env_size: list[int] = []
    env_count: list[int] = []
    env_ptype: list[int] = []

    schema: tuple | None = None  # (v_code, p_code, par_code|None, extra codes)
    vb_lens: list[int] = []
    vb_vertices: list[bytes] = []
    vb_payloads: list[bytes] = []
    vb_parents: list[bytes] = []
    vb_extras: list[list[bytes]] = []

    ctl_arity: list[int] = []
    ctl_types: list[int] = []
    ctl_vals: list[int] = []

    for i, pkt in enumerate(packets):
        pkt_src[i] = pkt.src
        pkt_dst[i] = pkt.hop_dest
        pkt_seq[i] = pkt.seq
        pkt_ack[i] = pkt.ack
        pkt_nenv[i] = len(pkt.envelopes)
        for env in pkt.envelopes:
            env_dest.append(env.dest)
            env_kind.append(env.kind)
            env_size.append(env.size_bytes)
            env_count.append(env.count)
            payload = env.payload
            if isinstance(payload, VisitorBatch):
                env_ptype.append(_PT_BATCH)
                sig = (
                    _dtype_code(payload.vertices.dtype),
                    _dtype_code(payload.payloads.dtype),
                    None if payload.parents is None
                    else _dtype_code(payload.parents.dtype),
                    tuple(_dtype_code(e.dtype) for e in payload.extras),
                )
                if schema is None:
                    schema = sig
                    vb_extras.extend([] for _ in sig[3])
                elif sig != schema:
                    # One frame carries one batch column schema; a tick of
                    # one algorithm is homogeneous, so a mismatch means
                    # mixed payload shapes — spill rather than guess.
                    raise UnframeablePayload(
                        "heterogeneous visitor-batch schemas in one frame"
                    )
                vb_lens.append(len(payload))
                vb_vertices.append(payload.vertices.tobytes())
                vb_payloads.append(payload.payloads.tobytes())
                if payload.parents is not None:
                    vb_parents.append(payload.parents.tobytes())
                for j, extra in enumerate(payload.extras):
                    vb_extras[j].append(extra.tobytes())
            elif isinstance(payload, tuple):
                env_ptype.append(_PT_CONTROL)
                ctl_arity.append(len(payload))
                for value in payload:
                    if isinstance(value, bool):
                        ctl_types.append(_CV_BOOL)
                        ctl_vals.append(int(value))
                    elif isinstance(value, int):
                        ctl_types.append(_CV_INT)
                        ctl_vals.append(value)
                    elif isinstance(value, str):
                        code = _CONTROL_CODES.get(value)
                        if code is None:
                            raise UnframeablePayload(
                                f"unregistered control string {value!r}"
                            )
                        ctl_types.append(_CV_STR)
                        ctl_vals.append(code)
                    else:
                        raise UnframeablePayload(
                            f"control value of type {type(value).__name__}"
                        )
            else:
                raise UnframeablePayload(
                    f"envelope payload of type {type(payload).__name__}"
                )

    if schema is None:
        schema_bytes = b""
    else:
        v_code, p_code, par_code, extra_codes = schema
        schema_bytes = bytes(
            [v_code, p_code,
             0 if par_code is None else 1,
             par_code if par_code is not None else 0,
             len(extra_codes), *extra_codes]
        )

    parts = [
        _HEADER.pack(n_packets, len(env_dest), len(vb_lens),
                     len(ctl_arity), len(ctl_types)),
        bytes([len(schema_bytes)]), schema_bytes,
        pkt_src.tobytes(), pkt_dst.tobytes(), pkt_seq.tobytes(),
        pkt_ack.tobytes(), pkt_nenv.tobytes(),
        np.asarray(env_dest, dtype=np.int32).tobytes(),
        np.asarray(env_kind, dtype=np.uint8).tobytes(),
        np.asarray(env_size, dtype=np.int64).tobytes(),
        np.asarray(env_count, dtype=np.int64).tobytes(),
        np.asarray(env_ptype, dtype=np.uint8).tobytes(),
        np.asarray(vb_lens, dtype=np.int64).tobytes(),
        *vb_vertices, *vb_payloads, *vb_parents,
        *(b for col in vb_extras for b in col),
        np.asarray(ctl_arity, dtype=np.uint8).tobytes(),
        np.asarray(ctl_types, dtype=np.uint8).tobytes(),
        np.asarray(ctl_vals, dtype=np.int64).tobytes(),
    ]
    return b"".join(parts)


# ---------------------------------------------------------------------- #
# Decode
# ---------------------------------------------------------------------- #
def _take(buf, dtype: np.dtype, count: int, offset: int) -> tuple[np.ndarray, int]:
    arr = np.frombuffer(buf, dtype=dtype, count=count, offset=offset)
    return arr, offset + arr.nbytes


def decode_packets(buf) -> list[Packet]:
    """Inverse of :func:`encode_packets`.  ``buf`` should be writable
    (``bytearray``) so the reconstructed batch columns are mutable."""
    n_packets, n_env, n_vb, n_ctl, n_ctl_vals = _HEADER.unpack_from(buf, 0)
    off = _HEADER.size
    schema_len = buf[off]
    off += 1
    schema_raw = bytes(buf[off:off + schema_len])
    off += schema_len

    i32, i64, u8 = np.dtype("<i4"), np.dtype("<i8"), np.dtype("u1")
    pkt_src, off = _take(buf, i32, n_packets, off)
    pkt_dst, off = _take(buf, i32, n_packets, off)
    pkt_seq, off = _take(buf, i64, n_packets, off)
    pkt_ack, off = _take(buf, i64, n_packets, off)
    pkt_nenv, off = _take(buf, i32, n_packets, off)
    env_dest, off = _take(buf, i32, n_env, off)
    env_kind, off = _take(buf, u8, n_env, off)
    env_size, off = _take(buf, i64, n_env, off)
    env_count, off = _take(buf, i64, n_env, off)
    env_ptype, off = _take(buf, u8, n_env, off)
    vb_lens, off = _take(buf, i64, n_vb, off)

    total = int(vb_lens.sum()) if n_vb else 0
    bounds = np.zeros(n_vb + 1, dtype=np.int64)
    if n_vb:
        np.cumsum(vb_lens, out=bounds[1:])
    vertices = payloads = parents = None
    extras_cols: list[np.ndarray] = []
    has_parents = False
    if schema_len:
        v_dt = _DTYPES[schema_raw[0]]
        p_dt = _DTYPES[schema_raw[1]]
        has_parents = bool(schema_raw[2])
        par_dt = _DTYPES[schema_raw[3]]
        n_extras = schema_raw[4]
        extra_dts = [_DTYPES[c] for c in schema_raw[5:5 + n_extras]]
        vertices, off = _take(buf, v_dt, total, off)
        payloads, off = _take(buf, p_dt, total, off)
        if has_parents:
            parents, off = _take(buf, par_dt, total, off)
        for dt in extra_dts:
            col, off = _take(buf, dt, total, off)
            extras_cols.append(col)

    ctl_arity, off = _take(buf, u8, n_ctl, off)
    ctl_types, off = _take(buf, u8, n_ctl_vals, off)
    ctl_vals, off = _take(buf, i64, n_ctl_vals, off)

    packets: list[Packet] = []
    e = 0   # envelope cursor
    vb = 0  # batch cursor
    ct = 0  # control-tuple cursor
    cv = 0  # control-value cursor
    for i in range(n_packets):
        envelopes: list[Envelope] = []
        for _ in range(int(pkt_nenv[i])):
            if env_ptype[e] == _PT_BATCH:
                lo, hi = int(bounds[vb]), int(bounds[vb + 1])
                payload = VisitorBatch(
                    vertices[lo:hi],
                    payloads[lo:hi],
                    parents[lo:hi] if has_parents else None,
                    tuple(col[lo:hi] for col in extras_cols),
                )
                vb += 1
            else:
                arity = int(ctl_arity[ct])
                values = []
                for k in range(cv, cv + arity):
                    code = ctl_types[k]
                    if code == _CV_INT:
                        values.append(int(ctl_vals[k]))
                    elif code == _CV_BOOL:
                        values.append(bool(ctl_vals[k]))
                    else:
                        values.append(_CONTROL_STRINGS[int(ctl_vals[k])])
                payload = tuple(values)
                cv += arity
                ct += 1
            envelopes.append(
                Envelope(
                    dest=int(env_dest[e]),
                    kind=int(env_kind[e]),
                    payload=payload,
                    size_bytes=int(env_size[e]),
                    count=int(env_count[e]),
                )
            )
            e += 1
        packets.append(
            Packet(
                src=int(pkt_src[i]),
                hop_dest=int(pkt_dst[i]),
                envelopes=envelopes,
                seq=int(pkt_seq[i]),
                ack=int(pkt_ack[i]),
            )
        )
    return packets


# ---------------------------------------------------------------------- #
# Scalar sequences (order probes)
# ---------------------------------------------------------------------- #
def encode_ints(values) -> bytes:
    """Encode a flat int sequence (an order-probe stream) as one column."""
    return np.asarray(values, dtype=np.int64).tobytes()


def decode_ints(buf) -> tuple[int, ...]:
    """Inverse of :func:`encode_ints`."""
    return tuple(int(v) for v in np.frombuffer(buf, dtype=np.int64))
